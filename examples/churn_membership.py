#!/usr/bin/env python3
"""Churn: processes joining and leaving a live heap (Contribution 4).

Nodes join and leave a Skeap cluster between operation batches (the
paper's lazy processing).  The demo shows that no stored element is ever
lost, the heap's semantics survive, and the splice probes cost O(log n)
hops.

Run:  python examples/churn_membership.py
"""

import random

from repro import BOTTOM, SkeapHeap, check_skeap_history

START_NODES = 10


def main() -> None:
    rng = random.Random(5)
    heap = SkeapHeap(n_nodes=START_NODES, n_priorities=3, seed=5)
    next_id = START_NODES

    inserted = 0
    for phase in range(4):
        # Some traffic…
        live = list(heap.topology.real_ids)
        for _ in range(12):
            heap.insert(priority=rng.randint(1, 3), value=inserted, at=rng.choice(live))
            inserted += 1
        heap.settle()

        # …then churn at the batch boundary.
        if phase % 2 == 0:
            report = heap.add_node(next_id)
            print(f"phase {phase}: node {next_id} joined "
                  f"(probe {report.probe_hops} hops, {report.elements_moved} elements handed over)")
            next_id += 1
        else:
            victim = rng.choice(list(heap.topology.real_ids))
            report = heap.remove_node(victim)
            print(f"phase {phase}: node {victim} left "
                  f"(probe {report.probe_hops} hops, {report.elements_moved} elements handed over)")

    # Drain everything through the survivors and verify nothing was lost.
    drained = 0
    live = list(heap.topology.real_ids)
    while True:
        pulls = [heap.delete_min(at=node) for node in live]
        heap.settle()
        got = sum(1 for p in pulls if p.result is not BOTTOM)
        drained += got
        if got == 0:
            break
    print(f"drained {drained} of {inserted} inserted elements after churn")
    assert drained == inserted, "churn must not lose elements"

    check_skeap_history(heap.history)
    print("history check: sequentially consistent across all churn ✓")


if __name__ == "__main__":
    main()
