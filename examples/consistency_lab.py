#!/usr/bin/env python3
"""Consistency lab: what sequential consistency buys, and what it costs.

The paper's three heaps sit on a semantics/scalability trade-off:

* **Skeap** — sequentially consistent, but message size grows with the
  injection rate (O(Λ log² n) bits);
* **Seap** — only serializable (a node's own requests may be served out of
  its local order), but every message is O(log n) bits;
* **Seap-SC** — the Section-6 sketch: sequentially consistent *and*
  arbitrary priorities, paying with Θ(k²) sorting messages per phase.

This script runs the same adversarial little program on all three and
shows where each sits.

Run:  python examples/consistency_lab.py
"""

from repro import BOTTOM, SeapHeap, SeapSCHeap, SkeapHeap
from repro.errors import ConsistencyError
from repro.semantics import check_local_consistency

N = 6


def locally_ordered_probe(heap) -> tuple[bool, bool]:
    """Node 0 issues DeleteMin *then* Insert.  A sequentially consistent
    heap must not serve that delete with the later insert."""
    d = heap.delete_min(at=0)
    heap.insert(priority=5, value="later", at=0)
    heap.settle(800_000)
    overtaken = d.result is not BOTTOM
    try:
        check_local_consistency(heap.history)
        locally_consistent = True
    except ConsistencyError:
        locally_consistent = False
    return overtaken, locally_consistent


def main() -> None:
    print(f"{'heap':9} {'overtaken?':11} {'locally consistent?':20} {'messages':9}")
    for name, heap in (
        ("skeap", SkeapHeap(N, n_priorities=5, seed=3)),
        ("seap", SeapHeap(N, seed=3)),
        ("seap-sc", SeapSCHeap(N, seed=3)),
    ):
        overtaken, consistent = locally_ordered_probe(heap)
        print(
            f"{name:9} {str(overtaken):11} {str(consistent):20} "
            f"{heap.metrics.messages:9}"
        )

    print()
    print("skeap and seap-sc keep node 0's delete ahead of its later insert")
    print("(the delete returns ⊥); plain seap trades that guarantee away for")
    print("O(log n)-bit messages and serves the delete with the later insert.")


if __name__ == "__main__":
    main()
