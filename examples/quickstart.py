#!/usr/bin/env python3
"""Quickstart: a distributed heap on 16 simulated processes.

Builds a Skeap cluster (constant priorities, sequential consistency),
issues a handful of requests from different nodes, and shows that
DeleteMin always returns the most urgent element — plus the machine check
that the whole execution was sequentially consistent.

Run:  python examples/quickstart.py
"""

from repro import SkeapHeap, check_skeap_history

N_NODES = 16


def main() -> None:
    heap = SkeapHeap(n_nodes=N_NODES, n_priorities=3, seed=7)

    # Insert from three different processes; priority 1 is most urgent.
    heap.insert(priority=3, value="low: rebuild search index", at=2)
    heap.insert(priority=1, value="urgent: page the on-call", at=9)
    heap.insert(priority=2, value="medium: rotate the logs", at=14)

    # Pull twice from two other processes.
    first = heap.delete_min(at=4)
    second = heap.delete_min(at=11)

    rounds = heap.settle()
    print(f"settled after {rounds} synchronous rounds on {N_NODES} processes")
    print(f"first  DeleteMin -> p{first.result.priority}: {first.result.value}")
    print(f"second DeleteMin -> p{second.result.priority}: {second.result.value}")
    assert first.result.priority == 1
    assert second.result.priority == 2

    # An empty-heap DeleteMin returns the paper's ⊥.
    heap.delete_min(at=0)
    third = heap.delete_min(at=1)
    heap.settle()
    print(f"third  DeleteMin -> {third.result!r} (heap empty)")

    # Machine-check Theorem 3.2(2): sequential + heap consistency.
    check_skeap_history(heap.history)
    print("history check: sequentially consistent and heap consistent ✓")

    print(f"max message size observed: {heap.metrics.max_message_bits} bits")
    print(f"peak per-process congestion: {heap.metrics.congestion} messages/round")


if __name__ == "__main__":
    main()
