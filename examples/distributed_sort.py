#!/usr/bin/env python3
"""Distributed sorting via the heap — the paper's second application.

Every process inserts its local values into a Seap heap; repeatedly
deleting the minimum then yields the globally sorted sequence.  This is
heap sort where both the data and the heap are distributed.

Run:  python examples/distributed_sort.py
"""

from repro import BOTTOM, SeapHeap
from repro.workloads import sorting_batch

N_NODES = 8
N_VALUES = 96


def main() -> None:
    values = sorting_batch(N_VALUES, seed=3)
    heap = SeapHeap(n_nodes=N_NODES, seed=3)

    print(f"scattering {N_VALUES} values over {N_NODES} processes")
    for i, value in enumerate(values):
        heap.insert(priority=value, value=value, at=i % N_NODES)

    # Drain in waves: every process pulls its share each wave.  pause()
    # aligns each wave to one DeleteMin phase, so a wave returns exactly the
    # N_NODES globally smallest remaining values — a contiguous run of the
    # sorted order.  Sorted waves therefore concatenate into sorted output.
    drained: list[int] = []
    while len(drained) < N_VALUES:
        heap.pause()
        pulls = [heap.delete_min(at=node) for node in range(N_NODES)]
        heap.resume()
        heap.settle()
        wave = [p.result.value for p in pulls if p.result is not BOTTOM]
        drained.extend(sorted(wave))

    assert drained == sorted(values), "distributed heap sort must sort"
    print(f"sorted {N_VALUES} values in waves of {N_NODES}")
    print(f"first five: {drained[:5]}")
    print(f"last five:  {drained[-5:]}")
    print(f"rounds simulated: {heap.metrics.rounds}")


if __name__ == "__main__":
    main()
