#!/usr/bin/env python3
"""Live service: the simulated cluster behind a real TCP boundary.

Starts a :class:`~repro.service.QueueService` on an ephemeral loopback
port — an 8-process Skeap cluster pumped by the server's own event loop —
then talks to it the way any external program would: over sockets, with
the length-prefixed JSON wire protocol, from two concurrent client
connections.  Finishes with the semantics checkers run over the
*server-observed* history, so the network hop provably cost no
consistency.

Run:  python examples/live_service.py
"""

import asyncio

from repro import QueueClient, QueueService
from repro.semantics.checkers import check_element_conservation, check_skeap_history
from repro.semantics.history import History

N_NODES = 8


async def main() -> None:
    async with QueueService("skeap", n_nodes=N_NODES, seed=7) as service:
        print(f"live skeap service on {service.host}:{service.port} "
              f"({N_NODES} simulated processes behind one socket)")

        producer = await QueueClient.connect(
            service.host, service.port, client="producer"
        )
        consumer = await QueueClient.connect(
            service.host, service.port, client="consumer"
        )
        print(f"producer submits at node {producer.node}, "
              f"consumer at node {consumer.node}")

        jobs = [
            (3, "low: rebuild search index"),
            (1, "urgent: page the on-call"),
            (2, "medium: rotate the logs"),
            (1, "urgent: failover the primary"),
        ]
        inserted = await asyncio.gather(
            *(producer.insert(priority, value) for priority, value in jobs)
        )
        for result, (priority, value) in zip(inserted, jobs):
            print(f"  insert p={priority} -> uid {result.uid} "
                  f"(op {result.op_id}, {result.latency * 1e3:.1f} ms)")

        print("consumer drains by urgency:")
        while not (got := await consumer.delete_min()).bot:
            print(f"  deletemin -> p={got.priority} {got.value!r}")

        payload = await consumer.history()
        history = History.from_jsonable(payload["history"])
        check_skeap_history(history)
        check_element_conservation(history, payload["stored_uids"])
        print(f"checked: {len(history)} ops over the wire were sequentially "
              "consistent, heap-consistent, and conserved every element")

        await producer.aclose()
        await consumer.aclose()


if __name__ == "__main__":
    asyncio.run(main())
