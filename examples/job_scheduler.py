#!/usr/bin/env python3
"""Priority job scheduling — the paper's motivating application (Section 1).

Producers submit jobs with urgency classes into a Seap heap; worker
processes pull jobs with DeleteMin.  The demo verifies the scheduler
invariant the heap provides: no job is served while a strictly more
urgent job that was already scheduled is still waiting.

Run:  python examples/job_scheduler.py
"""

from collections import Counter

from repro import BOTTOM, SeapHeap, check_seap_history
from repro.workloads import scheduling_trace

N_NODES = 12
N_JOBS = 60
N_WORK_CYCLES = 4


def main() -> None:
    heap = SeapHeap(n_nodes=N_NODES, seed=42)
    trace = scheduling_trace(N_JOBS, N_NODES, n_urgency_classes=3, seed=42)

    print(f"submitting {N_JOBS} jobs from {N_NODES} processes")
    submitted = Counter()
    for job in trace:
        # Seap takes arbitrary integer priorities; use urgency directly.
        heap.insert(priority=job.urgency, value=job.payload, at=job.submitted_by)
        submitted[job.urgency] += 1
    print(f"  urgency mix: {dict(sorted(submitted.items()))}")

    served: list[tuple[int, str]] = []
    jobs_per_cycle = N_JOBS // N_WORK_CYCLES
    for cycle in range(N_WORK_CYCLES):
        pulls = [
            heap.delete_min(at=worker % N_NODES)
            for worker in range(jobs_per_cycle)
        ]
        heap.settle()
        got = [p.result for p in pulls if p.result is not BOTTOM]
        served.extend((e.priority, e.value) for e in got)
        top = Counter(e.priority for e in got)
        print(f"  work cycle {cycle}: served {len(got)} jobs, urgencies {dict(sorted(top.items()))}")

    assert len(served) == N_JOBS, "every job must be served exactly once"
    assert len({v for _, v in served}) == N_JOBS

    # Scheduler invariant: within each cycle, jobs served are a most-urgent
    # prefix of what was in the heap — verified by the serializability and
    # heap-consistency checker over the full history.
    check_seap_history(heap.history)
    print("history check: serializable and heap consistent ✓")
    print(f"max message size observed: {heap.metrics.max_message_bits} bits "
          f"(O(log n) — Seap's headline property)")


if __name__ == "__main__":
    main()
