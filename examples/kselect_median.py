#!/usr/bin/env python3
"""Distributed k-selection: finding order statistics without gathering.

KSelect (Section 4) locates the k-th smallest of m elements spread over n
processes in O(log n) rounds using only O(log n)-bit messages.  This demo
computes the median and the 99th percentile of 2,000 measurements spread
over 32 processes, and contrasts the message sizes with the naive
gather-everything-at-one-node approach.

Run:  python examples/kselect_median.py
"""

import numpy as np

from repro import GatherSelectCluster, KSelectCluster

N_NODES = 32
M = 2000


def main() -> None:
    rng = np.random.default_rng(2026)
    # Latency-like measurements: heavy-tailed, duplicated values allowed —
    # uids break ties, as in the paper's element order.
    latencies = (rng.lognormal(3.0, 0.7, size=M) * 1000).astype(int)
    keys = [(int(v), uid) for uid, v in enumerate(latencies)]
    truth = sorted(keys)

    cluster = KSelectCluster(N_NODES, seed=11)
    cluster.scatter(keys)

    for label, k in (("p50", M // 2), ("p99", int(M * 0.99))):
        value, _uid = cluster.select(k)
        assert (value, _uid) == truth[k - 1]
        print(f"{label}: rank {k} of {M} -> {value} µs")
    print(f"KSelect max message size: {cluster.metrics.max_message_bits} bits")

    gather = GatherSelectCluster(N_NODES, seed=11)
    gather.scatter(keys)
    assert gather.select(M // 2) == truth[M // 2 - 1]
    print(f"gather-to-root max message size: {gather.metrics.max_message_bits} bits")
    ratio = gather.metrics.max_message_bits / cluster.metrics.max_message_bits
    print(f"naive approach ships {ratio:.0f}x larger messages near the root")


if __name__ == "__main__":
    main()
