"""Skack: a sequentially consistent distributed stack (FSS18b lineage).

The paper notes that the Skueue construction "can also be extended to a
distributed stack" [FSS18b].  The extension is one switch on the same
machinery: the anchor serves delete positions from the *tail* of its
interval (youngest first, ``discipline="lifo"``) instead of the head.
Everything else — batching, interval decomposition, the DHT rendezvous —
is untouched, which is precisely why the aggregation-tree design
generalizes across queue, stack and heap.

::

    s = SkackStack(n_nodes=8, seed=1)
    s.push("a", at=0)
    s.push("b", at=3)
    handle = s.pop(at=5)
    s.settle()
    assert handle.result.value == "b"   # LIFO
"""

from __future__ import annotations

from typing import Any

from .skeap.heap import SkeapHeap
from .skeap.protocol import OpHandle

__all__ = ["SkackStack"]


class SkackStack(SkeapHeap):
    """A distributed LIFO stack: Skeap with one priority, tail service."""

    def __init__(self, n_nodes: int, seed: int = 0, **kwargs):
        kwargs.pop("n_priorities", None)
        kwargs.pop("discipline", None)
        super().__init__(
            n_nodes, n_priorities=1, seed=seed, discipline="lifo", **kwargs
        )

    def push(self, value: Any = None, at: int | None = None) -> OpHandle:
        """Push ``value`` onto the stack."""
        return self.insert(priority=1, value=value, at=at)

    def pop(self, at: int | None = None) -> OpHandle:
        """Pop the youngest element, or ⊥ when empty."""
        return self.delete_min(at=at)

    def stack_height(self) -> int:
        """Live elements according to the anchor's interval."""
        return self.live_elements()
