"""Structured tracing: a zero-cost-when-disabled event bus for the kernel.

Aggregate counters (``repro.sim.metrics``) answer *how much*; they cannot
answer *which* message, hop or phase a cost or a failure belongs to.  This
module adds the causal layer: a :class:`Tracer` collects structured
:class:`TraceEvent` records for message sends and deliveries, fault
actions (drop/dup/delay/retransmit/dedup/partition cuts), routing-flight
launches, hops and landings, protocol-phase transitions, and node
lifecycle — and threads a **causal context** through all of them.

The causal context is a small tuple stamped onto every message and flight
at transmit time:

* ``("op", owner, seq)`` — this message belongs to one heap operation's
  exclusive work (its DHT Put/Get and the routing it spawns), so the
  operation's end-to-end *span* can be reconstructed with exact per-hop
  and per-bit attribution;
* ``("skeap-it", i)`` / ``("seap-ep", e)`` — this message belongs to the
  shared batch machinery of Skeap iteration ``i`` / Seap epoch ``e``
  (aggregation, assignment, decomposition, broadcasts, KSelect), whose
  cost is collective by construction.

Propagation is ambient: the runner sets :attr:`Tracer.ctx` to the handled
message's context before dispatching it, so every message a handler sends
inherits its trigger's context with **no protocol code involved**.
Protocols only set the context explicitly at causality *boundaries*: when
a batch snapshot turns buffered ops into an iteration contribution, and
when a decomposed assignment turns back into per-op DHT requests.

The overhead contract (see ``docs/OBSERVABILITY.md``):

* **disabled** (the default — no tracer installed): the only cost is one
  ``is not None`` test on the transmit/delivery paths; no event objects,
  no context bookkeeping;
* **enabled**: observation only.  The tracer draws no randomness, sends
  no messages, and never mutates payloads or sizes (the context rides
  outside the sized payload), so metrics, tables and histories are
  byte-identical with tracing on and off.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable

__all__ = [
    "TraceEvent",
    "Tracer",
    "tracing",
    "default_tracer",
    "SEND",
    "DELIVER",
    "FLIGHT",
    "HOP",
    "LAND",
    "FAULT",
    "OP",
    "PHASE",
    "NODE",
    "OP_CTX",
    "op_ctx",
]

# -- event kinds ---------------------------------------------------------------

SEND = "send"        #: a message entered the channel (one per logical send)
DELIVER = "deliver"  #: a message was handled at its destination
FLIGHT = "flight"    #: a hop-compressed routing flight was launched
HOP = "hop"          #: one hop of a flight was charged (no node touched)
LAND = "land"        #: a flight's terminal delivery
FAULT = "fault"      #: the faulty transport acted (drop/dup/delay/... )
OP = "op"            #: heap-operation lifecycle (submit/batched/dht/done)
PHASE = "phase"      #: a protocol phase transition (anchor-side)
NODE = "node"        #: node lifecycle (register/deregister/crash/restart)

#: First element of a per-operation causal context tuple.
OP_CTX = "op"


def op_ctx(op_id) -> tuple:
    """The causal-context tuple for one heap operation's exclusive work."""
    return (OP_CTX, op_id[0], op_id[1])


class TraceEvent:
    """One structured event: a timestamp, a kind, and flat data fields.

    ``ts`` is the runner's clock — the round index under the synchronous
    driver (the paper's cost model and the Perfetto clock), simulated time
    under the asynchronous driver.  ``ctx`` is the causal context the
    event belongs to (or ``None`` for uncaused/ambient events).
    """

    __slots__ = ("ts", "kind", "ctx", "data")

    def __init__(self, ts: float, kind: str, ctx: tuple | None, data: dict):
        self.ts = ts
        self.kind = kind
        self.ctx = ctx
        self.data = data

    def to_dict(self) -> dict:
        """A JSON-ready flat dict (tuples become lists via json.dumps)."""
        d = {"ts": self.ts, "kind": self.kind}
        if self.ctx is not None:
            d["ctx"] = list(self.ctx)
        d.update(self.data)
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceEvent({self.ts}, {self.kind!r}, ctx={self.ctx}, {self.data})"


class Tracer:
    """The event bus: an append-only log plus the ambient causal context.

    A tracer is attached to a runner at construction (see
    :func:`tracing`); the runner binds its clock and performs all
    hot-path emission under ``if tracer is not None`` guards.  Protocol
    code reaches the tracer through :attr:`repro.sim.node.ProtocolNode.
    tracer` and must use the same guard.
    """

    __slots__ = ("events", "ctx", "_now", "_seq_base")

    def __init__(self):
        self.events: list[TraceEvent] = []
        #: the causal context new sends inherit (None = uncaused)
        self.ctx: tuple | None = None
        self._now: Callable[[], float] = lambda: 0.0
        self._seq_base: int | None = None

    # -- wiring ----------------------------------------------------------

    def bind_clock(self, now: Callable[[], float]) -> None:
        """Adopt a runner's clock; called by the runner at attach time."""
        self._now = now

    def rel_seq(self, seq: int) -> int:
        """Normalize a process-global ``Message.seq`` to this run.

        The global counter survives across runs in one process; within a
        single deterministic run the allocated block is contiguous, so
        offsetting by the first observed value makes two identical runs
        emit bit-identical sequence numbers.
        """
        base = self._seq_base
        if base is None or seq < base:
            base = self._seq_base = seq
        return seq - base

    # -- emission --------------------------------------------------------

    def emit(self, kind: str, /, **data: Any) -> None:
        """Append one event stamped with the clock and the current context.

        The leading parameters are positional-only so data fields may use
        any name (including ``kind``/``ctx``) without colliding.
        """
        self.events.append(TraceEvent(self._now(), kind, self.ctx, data))

    def emit_ctx(self, kind: str, ctx: tuple | None, /, **data: Any) -> None:
        """Append one event with an explicit causal context."""
        self.events.append(TraceEvent(self._now(), kind, ctx, data))

    # -- reading ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]


# -- ambient installation ------------------------------------------------------

#: Stack of ambient tracers; runners adopt the top entry at construction.
_ACTIVE: list[Tracer] = []


def default_tracer() -> Tracer | None:
    """The tracer new runners should attach to (None = tracing disabled)."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def tracing(tracer: Tracer):
    """Install ``tracer`` as the ambient tracer for the ``with`` body.

    Every runner constructed inside the body attaches to it — which is
    how whole scenarios (the ``harness trace`` CLI, ``replay --trace``)
    are traced without threading a parameter through every constructor.
    """
    _ACTIVE.append(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.pop()
