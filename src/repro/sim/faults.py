"""Deterministic fault injection: drops, duplicates, reordering, partitions.

The paper's consistency theorems (3.2(2), 5.1(2)) are stated for an
asynchronous network where messages may be *arbitrarily* delayed — and a
practical deployment additionally loses, duplicates and reorders packets
and suffers bounded partitions.  This module turns those failure modes
into a **seeded, serializable plan** that both simulation drivers can
execute byte-for-byte reproducibly, so the semantic checkers in
``repro.semantics`` can be exercised against hostile schedules (the
SkipSim methodology: simulate the protocol, inject the faults, check the
invariants).

The model is a *reliable transport over a faulty channel*:

* every fault is a :class:`FaultEvent` — a concrete, individually
  removable record (which makes delta-debugging shrink well-defined);
* message faults target the *nth original transmission* on an ordered
  channel ``(src, dst)``; retransmissions are not re-counted, so removing
  one event never re-targets another;
* a **drop** consumes the transmission; if the plan is ``reliable`` the
  sender retransmits after ``retry_timeout`` (the acknowledgment/timeout
  discipline every real transport layers under these protocols), so
  progress survives loss;
* a **dup** delivers a second copy; when ``dedup`` is on the receiver
  discards whichever copy arrives second (sequence-number deduplication),
  so handlers still see each logical message exactly once;
* a **delay** holds one message back by a bounded extra latency —
  adversarial reordering *at delivery*, beyond the drivers' baseline
  non-FIFO shuffle;
* a **partition** cuts the network along a node bipartition for a bounded
  window; crossing messages are dropped (and retried past the window when
  reliable);
* a **crash** schedules a node through the membership leave/join path at
  a quiescent boundary (the paper's lazy processing points) — the fuzz
  harness applies these, the transport ignores them.

Disabling ``reliable`` or ``dedup`` is how the fuzz harness *seeds* a
transport bug on purpose and demonstrates that the checkers catch it.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Iterable

from ..errors import SimulationError
from .message import Message
from .trace import FAULT

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "TransportStats",
    "DROP",
    "DUP",
    "DELAY",
    "PARTITION",
    "CRASH",
    "MESSAGE_KINDS",
]

DROP = "drop"
DUP = "dup"
DELAY = "delay"
PARTITION = "partition"
CRASH = "crash"

#: Kinds matched against individual transmissions.
MESSAGE_KINDS = (DROP, DUP, DELAY)


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One concrete fault.  Unused fields stay at their defaults.

    Message kinds (``drop``/``dup``/``delay``) target the ``nth`` original
    transmission on the channel ``src -> dst`` (virtual-node ids, 0-based
    count).  ``delay`` adds ``hold`` time units of extra latency; ``dup``
    delivers the copy ``hold`` units after the original.

    ``partition`` cuts messages between ``group`` and its complement
    during ``[start, start + duration)``.

    ``crash`` asks the harness to remove real node ``node`` at quiescent
    slot ``slot`` and re-join it ``down_for`` slots later.
    """

    kind: str
    src: int = 0
    dst: int = 0
    nth: int = 0
    hold: float = 0.0
    start: float = 0.0
    duration: float = 0.0
    group: tuple[int, ...] = ()
    slot: int = 0
    node: int = 0
    down_for: int = 1

    def to_dict(self) -> dict:
        d = asdict(self)
        d["group"] = list(d["group"])
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "FaultEvent":
        d = dict(d)
        d["group"] = tuple(d.get("group", ()))
        return cls(**d)


@dataclass(slots=True)
class FaultPlan:
    """A complete, serializable fault schedule plus transport knobs.

    ``reliable``/``dedup`` model the acknowledgment layer: retransmission
    of dropped messages after ``retry_timeout`` time units (capped at
    ``max_retries`` attempts) and sequence-number suppression of duplicate
    deliveries.  Turning either off is an intentionally seeded transport
    bug for the fuzzer to catch.
    """

    seed: int = 0
    events: list[FaultEvent] = field(default_factory=list)
    reliable: bool = True
    dedup: bool = True
    retry_timeout: float = 4.0
    max_retries: int = 50

    def message_events(self) -> list[FaultEvent]:
        return [e for e in self.events if e.kind in MESSAGE_KINDS]

    def partition_events(self) -> list[FaultEvent]:
        return [e for e in self.events if e.kind == PARTITION]

    def crash_events(self) -> list[FaultEvent]:
        return [e for e in self.events if e.kind == CRASH]

    def with_events(self, events: Iterable[FaultEvent]) -> "FaultPlan":
        """A copy of this plan carrying ``events`` (shrinking candidates)."""
        return replace(self, events=list(events))

    # -- serialization (the replay file format) --------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "reliable": self.reliable,
            "dedup": self.dedup,
            "retry_timeout": self.retry_timeout,
            "max_retries": self.max_retries,
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        return cls(
            seed=int(d.get("seed", 0)),
            events=[FaultEvent.from_dict(e) for e in d.get("events", [])],
            reliable=bool(d.get("reliable", True)),
            dedup=bool(d.get("dedup", True)),
            retry_timeout=float(d.get("retry_timeout", 4.0)),
            max_retries=int(d.get("max_retries", 50)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


@dataclass(slots=True)
class TransportStats:
    """What the faulty transport actually did during a run."""

    sent: int = 0
    dropped: int = 0
    retransmitted: int = 0
    duplicated: int = 0
    deduped: int = 0
    lost: int = 0  # dropped with no (successful) retransmission

    def as_dict(self) -> dict:
        return asdict(self)


class FaultInjector:
    """Executes a :class:`FaultPlan` at the transport boundary.

    Both runners consult :meth:`deliveries` at transmit time (it returns
    the delivery schedule for one logical send: zero or more
    ``(extra_delay, message)`` pairs on top of the driver's own latency)
    and :meth:`accept` at delivery time (the duplicate-suppression
    filter).  All decisions are pure functions of the plan and the
    channel's send count, so a fixed plan yields a fixed schedule.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.stats = TransportStats()
        #: event bus set by the owning runner when tracing is enabled.
        #: Purely observational — no decision consults it.
        self.tracer = None
        self._sent_on: dict[tuple[int, int], int] = {}
        self._by_target: dict[tuple[int, int, int], list[FaultEvent]] = {}
        for ev in plan.message_events():
            self._by_target.setdefault((ev.src, ev.dst, ev.nth), []).append(ev)
        self._partitions: list[tuple[float, float, frozenset[int]]] = [
            (ev.start, ev.start + ev.duration, frozenset(ev.group))
            for ev in plan.partition_events()
            if ev.duration > 0 and ev.group
        ]
        #: seqs that were duplicated and must be deduplicated on arrival
        self._dup_seqs: set[int] = set()
        self._seen_seqs: set[int] = set()

    # -- channel decisions -------------------------------------------------

    def _cut(self, src: int, dst: int, at: float) -> bool:
        """Whether a partition separates ``src`` from ``dst`` at ``at``."""
        for start, end, group in self._partitions:
            if start <= at < end and (src in group) != (dst in group):
                return True
        return False

    def _retransmit_at(self, src: int, dst: int, now: float) -> float | None:
        """First retry instant that clears every partition, or ``None``.

        Retries happen every ``retry_timeout`` after the drop; a retry
        that lands inside a partition window is itself lost and retried.
        """
        timeout = self.plan.retry_timeout
        for attempt in range(1, self.plan.max_retries + 1):
            t = now + attempt * timeout
            if not self._cut(src, dst, t):
                self.stats.retransmitted += attempt
                return t
        return None

    def deliveries(self, msg: Message, now: float) -> list[tuple[float, Message]]:
        """The delivery schedule for one original transmission.

        Returns ``(extra_delay, message)`` pairs; an empty list means the
        message is lost for good (unreliable transport).  Duplicated
        deliveries reuse the message's ``seq``, which is what
        :meth:`accept` deduplicates on.
        """
        src, dst = msg.sender, msg.dest
        channel = (src, dst)
        nth = self._sent_on.get(channel, 0)
        self._sent_on[channel] = nth + 1
        self.stats.sent += 1

        extra = 0.0
        cut = self._cut(src, dst, now)
        dropped = cut
        dup_hold: float | None = None
        for ev in self._by_target.get((src, dst, nth), ()):
            if ev.kind == DROP:
                dropped = True
            elif ev.kind == DELAY:
                extra += max(ev.hold, 0.0)
            elif ev.kind == DUP:
                dup_hold = max(ev.hold, 0.0)

        tr = self.tracer
        if tr is not None and extra > 0.0:
            tr.emit_ctx(
                FAULT, msg.trace_ctx, fault=DELAY,
                src=src, dst=dst, nth=nth, hold=extra,
            )
        out: list[tuple[float, Message]] = []
        if dropped:
            self.stats.dropped += 1
            if tr is not None:
                tr.emit_ctx(
                    FAULT, msg.trace_ctx, fault=DROP,
                    src=src, dst=dst, nth=nth,
                    why="partition" if cut else "event",
                )
            if self.plan.reliable:
                at = self._retransmit_at(src, dst, now)
                if at is None:
                    self.stats.lost += 1
                    if tr is not None:
                        tr.emit_ctx(
                            FAULT, msg.trace_ctx, fault="lost",
                            src=src, dst=dst, nth=nth,
                        )
                else:
                    out.append((at - now + extra, msg))
                    if tr is not None:
                        tr.emit_ctx(
                            FAULT, msg.trace_ctx, fault="retransmit",
                            src=src, dst=dst, nth=nth, at=at,
                        )
            else:
                self.stats.lost += 1
                if tr is not None:
                    tr.emit_ctx(
                        FAULT, msg.trace_ctx, fault="lost",
                        src=src, dst=dst, nth=nth,
                    )
        else:
            out.append((extra, msg))

        if dup_hold is not None and out:
            base = out[0][0]
            out.append((base + dup_hold, msg))
            self.stats.duplicated += 1
            if tr is not None:
                tr.emit_ctx(
                    FAULT, msg.trace_ctx, fault=DUP,
                    src=src, dst=dst, nth=nth, hold=dup_hold,
                )
            if self.plan.dedup:
                self._dup_seqs.add(msg.seq)
        return out

    def accept(self, msg: Message) -> bool:
        """Delivery-time filter: suppress all but the first duplicate copy."""
        if msg.seq not in self._dup_seqs:
            return True
        if msg.seq in self._seen_seqs:
            self.stats.deduped += 1
            if self.tracer is not None:
                self.tracer.emit_ctx(
                    FAULT, msg.trace_ctx, fault="dedup",
                    src=msg.sender, dst=msg.dest,
                )
            return False
        self._seen_seqs.add(msg.seq)
        return True

    # -- validation --------------------------------------------------------

    def require_no_losses(self) -> None:
        """Raise unless every dropped message was eventually retransmitted.

        Useful after a run that *should* have had a reliable transport:
        a nonzero ``lost`` count means the retry budget was exhausted.
        """
        if self.stats.lost:
            raise SimulationError(
                f"{self.stats.lost} message(s) permanently lost "
                f"(reliable={self.plan.reliable})"
            )
