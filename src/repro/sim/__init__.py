"""Simulation kernel: the paper's asynchronous message-passing model.

Exports the node/message abstractions, both execution drivers (synchronous
rounds for performance, asynchronous events for correctness-under-delay),
the fault-injection transport, metrics, and the seeded randomness
utilities.
"""

from .async_runner import AsyncRunner, adversarial_delay, uniform_delay
from .faults import FaultEvent, FaultInjector, FaultPlan, TransportStats
from .flight import Flight, exact_transport_default
from .message import Message, payload_size_bits
from .metrics import MetricsCollector, MetricsSnapshot
from .node import ProtocolNode, SimContext
from .rng import PseudoRandomHash, RngRegistry, derive_seed
from .sync_runner import SyncRunner
from .trace import TraceEvent, Tracer, default_tracer, tracing

__all__ = [
    "AsyncRunner",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "Flight",
    "Message",
    "MetricsCollector",
    "MetricsSnapshot",
    "ProtocolNode",
    "PseudoRandomHash",
    "RngRegistry",
    "SimContext",
    "SyncRunner",
    "TraceEvent",
    "Tracer",
    "TransportStats",
    "adversarial_delay",
    "default_tracer",
    "derive_seed",
    "exact_transport_default",
    "payload_size_bits",
    "tracing",
    "uniform_delay",
]
