"""Synchronous round driver — the paper's performance-analysis model.

Time proceeds in rounds; all messages sent in round *i* are processed in
round *i+1*, and each node is activated once per round (Section 1.1).  This
is the driver under which every quantitative experiment runs, because the
paper's round/congestion bounds are stated in exactly this model.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..errors import SimulationError
from .message import Message
from .metrics import MetricsCollector
from .node import ProtocolNode
from .rng import RngRegistry

__all__ = ["SyncRunner"]


class SyncRunner:
    """Drives a set of :class:`ProtocolNode` in lockstep rounds."""

    def __init__(
        self,
        seed: int = 0,
        owner_of: Callable[[int], int] | None = None,
    ):
        self.rng = RngRegistry(seed)
        self.nodes: dict[int, ProtocolNode] = {}
        self.metrics = MetricsCollector(owner_of=owner_of)
        self._inbox: list[Message] = []
        self._outbox: list[Message] = []
        self._round = 0

    # -- SimContext interface ------------------------------------------

    @property
    def now(self) -> float:
        return float(self._round)

    def transmit(self, msg: Message) -> None:
        if msg.dest not in self.nodes:
            raise SimulationError(f"message to unknown node {msg.dest}: {msg!r}")
        self._outbox.append(msg)

    # -- setup -----------------------------------------------------------

    def register(self, node: ProtocolNode) -> None:
        if node.id in self.nodes:
            raise SimulationError(f"duplicate node id {node.id}")
        self.nodes[node.id] = node
        node.bind(self)

    def register_all(self, nodes: Iterable[ProtocolNode]) -> None:
        for node in nodes:
            self.register(node)

    def deregister(self, node_id: int) -> None:
        """Remove a node (membership Leave); its channel must be empty."""
        if any(m.dest == node_id for m in self._outbox):
            raise SimulationError(f"cannot deregister node {node_id}: messages in flight")
        del self.nodes[node_id]

    # -- execution ---------------------------------------------------------

    def step(self) -> None:
        """Execute one synchronous round.

        Deliver every message sent in the previous round (in deterministic
        but arbitrary — non-FIFO — order), then activate every node once.
        """
        self._inbox, self._outbox = self._outbox, []
        # Deterministic shuffle: ordering by a seeded draw exercises the
        # model's "channels are unordered" guarantee without real entropy.
        if len(self._inbox) > 1:
            order = self.rng.stream("sync", "delivery").permutation(len(self._inbox))
            self._inbox = [self._inbox[i] for i in order]
        for msg in self._inbox:
            self.metrics.record_delivery(msg)
            self.nodes[msg.dest].handle(msg)
        self._inbox.clear()
        for node_id in sorted(self.nodes):
            self.nodes[node_id].on_activate()
        self.metrics.end_round()
        self._round += 1

    def pending_messages(self) -> int:
        """Messages in flight (sent but not yet delivered)."""
        return len(self._outbox)

    def is_quiescent(self) -> bool:
        """No messages in flight and no node declares outstanding work."""
        return self.pending_messages() == 0 and not any(
            n.has_work() for n in self.nodes.values()
        )

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_rounds: int = 1_000_000,
    ) -> int:
        """Run rounds until ``predicate()`` is true; return rounds elapsed.

        Raises :class:`SimulationError` if the bound is exhausted — a
        liveness failure is a bug, not a timeout to ignore.
        """
        start = self._round
        while not predicate():
            if self._round - start >= max_rounds:
                raise SimulationError(
                    f"predicate not reached within {max_rounds} rounds"
                )
            self.step()
        return self._round - start

    def run_until_quiescent(self, max_rounds: int = 1_000_000) -> int:
        """Run until the system is quiescent; return rounds elapsed."""
        # One initial step lets activations seed the first messages.
        if self.is_quiescent():
            return 0
        start = self._round
        self.step()
        self.run_until(self.is_quiescent, max_rounds=max_rounds)
        return self._round - start
