"""Synchronous round driver — the paper's performance-analysis model.

Time proceeds in rounds; all messages sent in round *i* are processed in
round *i+1*, and each node may act once per round (Section 1.1).  This is
the driver under which every quantitative experiment runs, because the
paper's round/congestion bounds are stated in exactly this model.

Activation is *sparse*: instead of iterating every registered node every
round, the runner keeps a wake-set and only activates nodes that received
a message this round, asked to be woken (:meth:`wake`), or declared
pending activation work via :meth:`ProtocolNode.wants_activation` after
their previous activation.  Skipped activations are no-ops by the node
contract, so the message trace — and therefore every metric — is
bit-for-bit identical to dense iteration.
"""

from __future__ import annotations

import math
import os
from typing import Callable, Iterable

from ..errors import SimulationError
from .faults import FaultInjector
from .flight import Flight, exact_transport_default
from .message import Message, payload_size_bits
from .metrics import MetricsCollector
from .node import (
    ProtocolNode,
    _BATCH_TABLES,
    _HANDLER_TABLES,
    _build_batch_table,
    _build_handler_table,
)
from .rng import RngRegistry
from .trace import DELIVER, FLIGHT, HOP, LAND, NODE, SEND, default_tracer

__all__ = ["SyncRunner", "batched_dispatch_default"]


def batched_dispatch_default() -> bool:
    """Whether the environment opts runs into the batched kernel.

    ``REPRO_BATCHED=1`` (any value but ``0``/empty) turns it on — the hook
    the harness ``--batched`` flag uses so process-pool workers inherit
    the choice, mirroring ``REPRO_EXACT_TRANSPORT``.
    """
    return os.environ.get("REPRO_BATCHED", "") not in ("", "0")


#: Per-action free lists never grow beyond this many parked messages; the
#: cap only bounds memory — an empty free list just means a fresh
#: allocation, never a behavior change.
_POOL_CAP = 4096


class SyncRunner:
    """Drives a set of :class:`ProtocolNode` in lockstep rounds."""

    def __init__(
        self,
        seed: int = 0,
        owner_of: Callable[[int], int] | None = None,
        metrics_detail: bool = False,
        faults: FaultInjector | None = None,
        exact_transport: bool | None = None,
        batched_dispatch: bool | None = None,
    ):
        self.rng = RngRegistry(seed)
        self.nodes: dict[int, ProtocolNode] = {}
        self.metrics = MetricsCollector(owner_of=owner_of, detail=metrics_detail)
        self.faults = faults
        #: escape hatch: force per-hop legacy transport for routed messages
        self.exact_transport = (
            exact_transport_default() if exact_transport is None
            else bool(exact_transport)
        )
        #: opt-in: group deliveries by (node class, action) and recycle
        #: Message objects (see :meth:`batching_enabled` for the gates)
        self.batched_dispatch = (
            batched_dispatch_default() if batched_dispatch is None
            else bool(batched_dispatch)
        )
        #: how many hop-compressed flights were launched (observability)
        self.flights_launched = 0
        #: how many rounds the batched kernel executed (observability)
        self.batched_rounds = 0
        #: Message construction/reuse counters (bench-kernel reads these)
        self.msgs_allocated = 0
        self.msgs_reused = 0
        #: per-action free lists of delivered, recycled Message objects;
        #: only the batched kernel parks messages here, and only after
        #: their handlers ran, so a pooled message is never in flight.
        self._msg_pool: dict[str, list[Message]] = {}
        self._owner_of = self.metrics._owner_of
        #: outbox entries are Messages plus in-transit :class:`Flight`s; a
        #: flight occupies exactly one slot per round it is in transit, so
        #: the delivery permutation and ``pending_messages`` see the same
        #: population as under exact transport.
        self._outbox: list = []
        #: fault-delayed messages, keyed by their delivery round
        self._future: dict[int, list[Message]] = {}
        self._future_count = 0
        #: messages in flight per destination (O(1) deregister safety check)
        self._inflight_by_dest: dict[int, int] = {}
        #: node ids to activate in the next round
        self._wake: set[int] = set()
        #: superset of the node ids whose ``has_work()`` may be true —
        #: every path that can give a node work (registration, delivery,
        #: activation, an explicit wake) adds it here, and quiescence
        #: checks prune it back down, so ``is_quiescent`` is O(active)
        #: instead of O(all registered nodes).
        self._maybe_active: set[int] = set()
        self._delivery_rng = self.rng.stream("sync", "delivery")
        self._round = 0
        #: event bus (None = tracing disabled; every emission is guarded).
        #: The tracer observes only — it draws no randomness and never
        #: touches payloads — so traced and untraced runs are bit-identical.
        self.tracer = default_tracer()
        if self.tracer is not None:
            self.tracer.bind_clock(lambda: float(self._round))
            if faults is not None:
                faults.tracer = self.tracer

    # -- SimContext interface ------------------------------------------

    @property
    def now(self) -> float:
        return float(self._round)

    def transmit(self, msg: Message) -> None:
        dest = msg.dest
        if dest not in self.nodes:
            raise SimulationError(f"message to unknown node {dest}: {msg!r}")
        tr = self.tracer
        if tr is not None:
            if msg.trace_ctx is None:
                msg.trace_ctx = tr.ctx
            tr.emit_ctx(
                SEND, msg.trace_ctx,
                src=msg.sender, dst=dest, act=msg.action,
                bits=msg.size_bits, seq=tr.rel_seq(msg.seq),
            )
        inflight = self._inflight_by_dest
        if self.faults is None:
            self._outbox.append(msg)
            inflight[dest] = inflight.get(dest, 0) + 1
            return
        # Sent in round r, a message normally arrives in round r+1; a
        # fault-delayed copy arrives ceil(extra) rounds later.
        for extra, m in self.faults.deliveries(msg, float(self._round)):
            rounds = int(math.ceil(extra))
            if rounds <= 0:
                self._outbox.append(m)
            else:
                due = self._round + 1 + rounds
                self._future.setdefault(due, []).append(m)
                self._future_count += 1
            inflight[dest] = inflight.get(dest, 0) + 1

    def transmit_action(
        self,
        sender: int,
        dest: int,
        action: str,
        payload: dict,
        size_bits: int = 0,
    ) -> None:
        """Construct-and-transmit entry point for node sends.

        Identical to building a :class:`Message` and calling
        :meth:`transmit`, except that a recycled message from the
        per-action free list is reused when one is available.  The pool is
        only ever filled by the batched kernel (which parks messages after
        their handlers ran), so in per-message mode this is a plain
        construction — and a reused message differs from a fresh one only
        in its ``seq``, which nothing on the batched path reads: faults
        (the only seq consumer) disable batching entirely.
        """
        free = self._msg_pool.get(action)
        if free:
            msg = free.pop()
            msg.sender = sender
            msg.dest = dest
            msg.payload = payload
            msg.size_bits = (
                size_bits if size_bits else 8 + payload_size_bits(payload)
            )
            self.msgs_reused += 1
        else:
            msg = Message(
                sender=sender, dest=dest, action=action,
                payload=payload, size_bits=size_bits,
            )
            self.msgs_allocated += 1
        if self.faults is None and self.tracer is None:
            # Inlined fast path of :meth:`transmit` (its fault/trace
            # branches are dead here) — this is the hottest send edge.
            if dest not in self.nodes:
                raise SimulationError(
                    f"message to unknown node {dest}: {msg!r}"
                )
            self._outbox.append(msg)
            inflight = self._inflight_by_dest
            inflight[dest] = inflight.get(dest, 0) + 1
        else:
            self.transmit(msg)

    @property
    def batching_enabled(self) -> bool:
        """Whether rounds execute under the batched kernel right now.

        Batched execution is trace-equivalent only when nothing observes
        per-message identity or ordering within a round: fault injection
        consumes per-message ``seq`` and channel ordinals, detail metrics
        want the per-action breakdown recorded per message, and the tracer
        stamps causal context on individual deliveries.  Any of those
        forces the per-message kernel — the same auto-disable pattern as
        the routing fast path (:meth:`flights_enabled`).
        """
        return (
            self.batched_dispatch
            and self.faults is None
            and self.tracer is None
            and not self.metrics.detail
        )

    @property
    def flights_enabled(self) -> bool:
        """Whether hop-compressed routing flights may be used right now.

        Flights are trace-equivalent only when no fault injector can
        perturb the schedule, the caller did not force ``exact_transport``,
        and the metrics collector does not need the per-action breakdowns
        only real messages carry.
        """
        return (
            self.faults is None
            and not self.exact_transport
            and not self.metrics.detail
        )

    def launch_flight(self, flight: Flight) -> None:
        """Put a precomputed routing flight in transit (first hop next round)."""
        dest = flight.dests[-1]
        if dest not in self.nodes:
            raise SimulationError(f"flight to unknown node {dest}: {flight!r}")
        self.flights_launched += 1
        tr = self.tracer
        if tr is not None:
            flight.trace_ctx = tr.ctx
            tr.emit_ctx(
                FLIGHT, tr.ctx,
                src=flight.src, dst=dest, act=flight.faction,
                hops=len(flight.dests), bits=sum(flight.sizes),
            )
        # Only the terminal destination is tracked for the deregister
        # guard; intermediate hops never touch their node.  Membership only
        # deregisters at quiescent points, where no flights exist at all.
        inflight = self._inflight_by_dest
        inflight[dest] = inflight.get(dest, 0) + 1
        self._outbox.append(flight)

    def wake(self, node_id: int) -> None:
        """Schedule ``node_id`` for activation in the next round."""
        self._wake.add(node_id)
        self._maybe_active.add(node_id)

    # -- setup -----------------------------------------------------------

    def register(self, node: ProtocolNode) -> None:
        if node.id in self.nodes:
            raise SimulationError(f"duplicate node id {node.id}")
        self.nodes[node.id] = node
        node.bind(self)
        if self.tracer is not None:
            self.tracer.emit_ctx(NODE, None, ev="register", node=node.id)
        # Every node gets one initial activation (protocol bootstrap).
        self._wake.add(node.id)
        self._maybe_active.add(node.id)

    def register_all(self, nodes: Iterable[ProtocolNode]) -> None:
        for node in nodes:
            self.register(node)

    def deregister(self, node_id: int) -> None:
        """Remove a node (membership Leave); its channel must be empty."""
        if self._inflight_by_dest.get(node_id, 0):
            raise SimulationError(f"cannot deregister node {node_id}: messages in flight")
        if self.tracer is not None:
            self.tracer.emit_ctx(NODE, None, ev="deregister", node=node_id)
        del self.nodes[node_id]
        self._inflight_by_dest.pop(node_id, None)
        self._wake.discard(node_id)
        self._maybe_active.discard(node_id)

    # -- execution ---------------------------------------------------------

    def step(self) -> None:
        """Execute one synchronous round.

        Deliver every message sent in the previous round (in deterministic
        but arbitrary — non-FIFO — order), then activate every woken node
        once, in node-id order.
        """
        if (
            self.batched_dispatch
            and self.faults is None
            and self.tracer is None
            and not self.metrics.detail
        ):
            self._step_batched()
            return
        inbox, self._outbox = self._outbox, []
        matured = self._future.pop(self._round, None)
        if matured:
            self._future_count -= len(matured)
            inbox.extend(matured)
        # Deterministic shuffle: ordering by a seeded draw exercises the
        # model's "channels are unordered" guarantee without real entropy.
        if len(inbox) > 1:
            order = self._delivery_rng.permutation(len(inbox))
            inbox = [inbox[i] for i in order]
        nodes = self.nodes
        wake = self._wake
        faults = self.faults
        if inbox:
            record = self.metrics.record_delivery
            record_hop = self.metrics.record_flight_hop
            inflight = self._inflight_by_dest
            tracer = self.tracer
            for msg in inbox:
                if msg.__class__ is Flight:
                    # Advance a hop-compressed flight by exactly one hop:
                    # charge the hop's metrics, then either keep it in
                    # transit (one outbox slot, like the route message it
                    # replaces) or perform the terminal delivery.
                    i = msg.index
                    dest = msg.dests[i]
                    record_hop(msg.owners[i], msg.sizes[i])
                    if tracer is not None:
                        tracer.emit_ctx(
                            HOP, msg.trace_ctx,
                            dst=dest, owner=msg.owners[i], bits=msg.sizes[i],
                        )
                    i += 1
                    if i < len(msg.dests):
                        msg.index = i
                        self._outbox.append(msg)
                    else:
                        inflight[dest] -= 1
                        if tracer is not None:
                            tracer.ctx = msg.trace_ctx
                            tracer.emit(LAND, dst=dest, act=msg.faction, hops=i)
                        nodes[dest].deliver_flight(
                            msg.faction, msg.origin, msg.fpayload, i
                        )
                        if tracer is not None:
                            tracer.ctx = None
                        wake.add(dest)
                    continue
                dest = msg.dest
                inflight[dest] -= 1
                if faults is not None and not faults.accept(msg):
                    continue  # duplicate copy suppressed by the transport
                record(msg)
                if tracer is not None:
                    tracer.ctx = msg.trace_ctx
                    tracer.emit(
                        DELIVER,
                        src=msg.sender, dst=dest, act=msg.action,
                        bits=msg.size_bits, seq=tracer.rel_seq(msg.seq),
                    )
                nodes[dest].handle(msg)
                if tracer is not None:
                    tracer.ctx = None
                wake.add(dest)
        self._wake = set()
        maybe_active = self._maybe_active
        for node_id in sorted(wake):
            node = nodes.get(node_id)
            if node is None:  # deregistered while woken
                continue
            node.on_activate()
            if node.wants_activation():
                self._wake.add(node_id)
            maybe_active.add(node_id)
        self.metrics.end_round()
        self._round += 1

    def _step_batched(self) -> None:
        """One round under the batched kernel (``batching_enabled`` holds).

        The round delivers the same permuted inbox as :meth:`step`, but in
        struct-of-arrays style: one linear pass advances flights and
        gathers *contiguous runs* of same-``(node class, action)`` messages,
        each dispatched through the class's ``on_<action>_batch`` handler
        or, absent one, a tight loop over the single-message handler.
        Metrics accumulate into flat owner/size lists flushed once per
        round; delivered messages are recycled into the per-action free
        list after their handlers ran.

        Grouping is restricted to contiguous runs — never the whole round
        — because byte-identity demands it.  Handler execution order
        determines outbox append order, the outbox is next round's inbox,
        and the delivery permutation maps *positions*: reordering two
        handlers this round re-labels messages under next round's shuffle
        and cascades (observably — e.g. DHT request ids are allotted in
        per-node arrival order and their widths are charged to ``bits``).
        Runs preserve execution order exactly: a run dispatches at the
        position of its first message and breaks at any action change or
        flight slot (flights append to the outbox at *their* scan
        position).  Per-round aggregates are order-free, so the bulk
        metrics flush is exact too — ``tests/test_batched.py`` holds the
        proof obligations.
        """
        self.batched_rounds += 1
        inbox, self._outbox = self._outbox, []
        # No faults => nothing ever matures from the future queue.
        if len(inbox) > 1:
            order = self._delivery_rng.permutation(len(inbox))
            inbox = list(map(inbox.__getitem__, order.tolist()))
        nodes = self.nodes
        wake = self._wake
        if inbox:
            outbox = self._outbox
            outbox_append = outbox.append
            inflight = self._inflight_by_dest
            wake_add = wake.add
            dispatch = self._dispatch_run
            owners: list[int] = []
            sizes: list[int] = []
            msg_dests: list[int] = []
            owners_append = owners.append
            sizes_append = sizes.append
            dests_append = msg_dests.append
            run: list = []
            run_append = run.append
            run_cls = run_action = None
            for msg in inbox:
                if msg.__class__ is Flight:
                    if run:
                        dispatch(run_cls, run_action, run)
                        run = []
                        run_append = run.append
                        run_cls = run_action = None
                    i = msg.index
                    owners_append(msg.owners[i])
                    sizes_append(msg.sizes[i])
                    i += 1
                    dests = msg.dests
                    if i < len(dests):
                        msg.index = i
                        outbox_append(msg)
                    else:
                        dest = dests[i - 1]
                        inflight[dest] -= 1
                        nodes[dest].deliver_flight(
                            msg.faction, msg.origin, msg.fpayload, i
                        )
                        wake_add(dest)
                    continue
                dest = msg.dest
                inflight[dest] -= 1
                dests_append(dest)
                sizes_append(msg.size_bits)
                wake_add(dest)
                node = nodes[dest]
                action = msg.action
                if action is not run_action or node.__class__ is not run_cls:
                    if run:
                        dispatch(run_cls, run_action, run)
                        run = []
                        run_append = run.append
                    run_cls = node.__class__
                    run_action = action
                run_append((node, msg))
            if run:
                dispatch(run_cls, run_action, run)
            owners.extend(map(self._owner_of, msg_dests))
            self.metrics.record_round_bulk(owners, sizes)
        self._wake = set()
        maybe_active = self._maybe_active
        for node_id in sorted(wake):
            node = nodes.get(node_id)
            if node is None:  # deregistered while woken
                continue
            node.on_activate()
            if node.wants_activation():
                self._wake.add(node_id)
            maybe_active.add(node_id)
        self.metrics.end_round()
        self._round += 1

    def _dispatch_run(self, cls: type, action: str, run: list) -> None:
        """Deliver one contiguous same-``(class, action)`` run, then recycle.

        Multi-message runs with a registered ``on_<action>_batch`` handler
        go through it in one call; everything else loops the resolved
        single-message handler directly (skipping :meth:`ProtocolNode.handle`
        per-message overhead).  Messages are parked on the per-action free
        list only after their handlers ran, so a pooled message is never
        in flight.
        """
        btable = _BATCH_TABLES.get(cls)
        if btable is None:
            btable = _build_batch_table(cls)
        bfn = btable.get(action)
        if bfn is not None and len(run) > 1:
            bfn([(node, m.sender, m.payload) for node, m in run])
        else:
            table = _HANDLER_TABLES.get(cls)
            if table is None:
                table = _build_handler_table(cls)
            fn = table.get(action)
            if fn is None:
                # Instance-installed handlers / unknown-action errors keep
                # their per-message semantics.
                for node, m in run:
                    node.handle(m)
            else:
                for node, m in run:
                    fn(node, m.sender, **m.payload)
        free = self._msg_pool.get(action)
        if free is None:
            free = self._msg_pool[action] = []
        room = _POOL_CAP - len(free)
        if room > 0:
            for _, m in run if room >= len(run) else run[:room]:
                m.payload = None
                m.trace_ctx = None
                free.append(m)

    def pump(self, budget: int = 64) -> int:
        """Hand-off hook for external drivers (the live service runtime).

        Executes up to ``budget`` rounds and stops early at quiescence,
        returning the number of rounds run.  A caller that owns its own
        loop (e.g. an asyncio server pumping the simulation between socket
        reads) calls ``pump`` repeatedly and interleaves its own work when
        the budget runs out.  Purely a driver entry point: the rounds it
        runs are bit-identical to the ones :meth:`run_until` would run.
        """
        done = 0
        while done < budget and not self.is_quiescent():
            self.step()
            done += 1
        return done

    def pending_messages(self) -> int:
        """Messages in flight (sent but not yet delivered)."""
        return len(self._outbox) + self._future_count

    def is_quiescent(self) -> bool:
        """No messages in flight and no node declares outstanding work.

        Only nodes in the maybe-active superset are polled; the set is
        pruned to the nodes whose ``has_work()`` actually held, so repeated
        checks cost O(active), not O(registered).  The superset is sound
        because work only ever appears through paths that add to it
        (registration, message delivery, activation, explicit wakes).
        """
        if self._outbox or self._future_count:
            return False
        active = self._maybe_active
        if not active:
            return True
        nodes = self.nodes
        still = {
            nid for nid in active
            if (node := nodes.get(nid)) is not None and node.has_work()
        }
        self._maybe_active = still
        return not still

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_rounds: int = 1_000_000,
    ) -> int:
        """Run rounds until ``predicate()`` is true; return rounds elapsed.

        Raises :class:`SimulationError` if the bound is exhausted — a
        liveness failure is a bug, not a timeout to ignore.
        """
        start = self._round
        while not predicate():
            if self._round - start >= max_rounds:
                raise SimulationError(
                    f"predicate not reached within {max_rounds} rounds"
                )
            self.step()
        return self._round - start

    def run_until_quiescent(self, max_rounds: int = 1_000_000) -> int:
        """Run until the system is quiescent; return rounds elapsed."""
        # One initial step lets activations seed the first messages.
        if self.is_quiescent():
            return 0
        start = self._round
        self.step()
        self.run_until(self.is_quiescent, max_rounds=max_rounds)
        return self._round - start
