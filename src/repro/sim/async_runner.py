"""Asynchronous event driver — the paper's correctness model.

Arbitrary finite message delays, non-FIFO channels, and nodes activated at
unrelated speeds (Section 1.1): this driver exists to demonstrate that the
protocols' *semantic* guarantees (sequential consistency, serializability,
heap consistency) survive full asynchrony, not just the neat synchronous
schedule.  Performance metrics are measured under the synchronous driver.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, Iterable

import numpy as np

from ..errors import SimulationError
from .faults import FaultInjector
from .flight import Flight, exact_transport_default
from .message import Message
from .metrics import MetricsCollector
from .node import ProtocolNode
from .rng import RngRegistry
from .trace import DELIVER, FLIGHT, HOP, LAND, NODE, SEND, default_tracer

__all__ = ["AsyncRunner", "uniform_delay", "adversarial_delay"]


def uniform_delay(low: float = 0.1, high: float = 2.5):
    """Message delays drawn uniformly from ``[low, high)`` — non-FIFO.

    Bad ranges are rejected here, at configuration time: a negative or
    inverted range would otherwise surface much later as an opaque
    "negative message delay" (or a silently reordered heap) deep inside a
    run.
    """
    if not (math.isfinite(low) and math.isfinite(high)):
        raise SimulationError(f"uniform_delay range must be finite, got [{low}, {high})")
    if low < 0:
        raise SimulationError(f"uniform_delay low bound must be >= 0, got {low}")
    if high < low:
        raise SimulationError(
            f"uniform_delay range is inverted: low={low} > high={high}"
        )

    def sample(msg: Message, rng) -> float:
        return float(rng.uniform(low, high))

    return sample


def adversarial_delay(slow_fraction: float = 0.2, slow_factor: float = 20.0):
    """A heavier-tailed schedule: a random fraction of messages straggle.

    This exercises the reorderings that break naive (unserialized)
    distributed queues: late Puts racing their Gets, children outrunning
    parents, etc.

    ``slow_fraction`` must lie in ``[0, 1]`` and ``slow_factor`` must be
    positive — validated eagerly so a bad config fails at construction,
    not as a corrupted schedule mid-run.

    The slow-set decision (and the base delay) is a pure function of the
    message's identity — its channel ``(sender, dest)`` plus its ordinal
    on that channel — and a key drawn once from the runner's stream, not
    of how many samples happened before it.  Fault injection (retries,
    duplicate copies) adds and removes sampler calls; keying by message
    identity keeps every *other* message's delay unchanged, which is what
    makes fuzz replays schedule-stable.  The channel ordinal (rather than
    the process-global ``Message.seq``) makes the schedule independent of
    whatever ran earlier in the same process, so a replay in a fresh
    process reproduces the exact same delays.
    """

    if not 0.0 <= slow_fraction <= 1.0:
        raise SimulationError(
            f"adversarial_delay slow_fraction must be in [0, 1], got {slow_fraction}"
        )
    if not math.isfinite(slow_factor) or slow_factor <= 0:
        raise SimulationError(
            f"adversarial_delay slow_factor must be positive, got {slow_factor}"
        )

    state: dict[str, int] = {}
    channel_count: dict[tuple[int, int], int] = {}
    identity: dict[int, tuple[int, int, int]] = {}

    def sample(msg: Message, rng) -> float:
        key = state.get("key")
        if key is None:
            key = int(rng.integers(1 << 62))
            state["key"] = key
        # All copies of one logical message (dup deliveries, retries)
        # share msg.seq and therefore one identity and one base delay.
        ident = identity.get(msg.seq)
        if ident is None:
            channel = (msg.sender, msg.dest)
            nth = channel_count.get(channel, 0)
            channel_count[channel] = nth + 1
            ident = identity[msg.seq] = (msg.sender, msg.dest, nth)
        g = np.random.default_rng((key, *ident))
        base = 0.1 + 0.9 * float(g.random())
        if float(g.random()) < slow_fraction:
            return base * slow_factor
        return base

    return sample


class AsyncRunner:
    """Drives nodes with randomized delays and activation jitter."""

    _MSG, _ACTIVATE, _FLIGHT = 0, 1, 2

    def __init__(
        self,
        seed: int = 0,
        delay_fn: Callable[[Message, object], float] | None = None,
        activation_period: float = 1.0,
        owner_of: Callable[[int], int] | None = None,
        metrics_detail: bool = False,
        faults: FaultInjector | None = None,
        exact_transport: bool | None = None,
    ):
        self.rng = RngRegistry(seed)
        self.nodes: dict[int, ProtocolNode] = {}
        self.metrics = MetricsCollector(owner_of=owner_of, detail=metrics_detail)
        self.faults = faults
        #: escape hatch: force per-hop legacy transport for routed messages
        self.exact_transport = (
            exact_transport_default() if exact_transport is None
            else bool(exact_transport)
        )
        #: how many hop-compressed flights were launched (observability)
        self.flights_launched = 0
        #: superset of node ids whose ``has_work()`` may hold (see
        #: :meth:`is_quiescent`); pruned lazily on quiescence checks.
        self._maybe_active: set[int] = set()
        self._delay_fn = delay_fn or uniform_delay()
        self._activation_period = float(activation_period)
        self._events: list[tuple[float, int, int, object]] = []
        self._tick = itertools.count()
        self._time = 0.0
        self._in_flight = 0
        #: parked nodes: id -> the activation-grid time their chain resumes
        #: at when a message (or an explicit wake) arrives.  A node parks
        #: when an activation fires while ``wants_activation()`` is false,
        #: keeping idle nodes out of the event heap entirely.
        self._parked: dict[int, float] = {}
        #: event bus (None = tracing disabled; every emission is guarded).
        self.tracer = default_tracer()
        if self.tracer is not None:
            self.tracer.bind_clock(lambda: self._time)
            if faults is not None:
                faults.tracer = self.tracer

    # -- SimContext interface --------------------------------------------

    @property
    def now(self) -> float:
        return self._time

    def transmit(self, msg: Message) -> None:
        if msg.dest not in self.nodes:
            raise SimulationError(f"message to unknown node {msg.dest}: {msg!r}")
        tr = self.tracer
        if tr is not None:
            if msg.trace_ctx is None:
                msg.trace_ctx = tr.ctx
            tr.emit_ctx(
                SEND, msg.trace_ctx,
                src=msg.sender, dst=msg.dest, act=msg.action,
                bits=msg.size_bits, seq=tr.rel_seq(msg.seq),
            )
        stream = self.rng.stream("async", "delays")
        if self.faults is None:
            deliveries = [(0.0, msg)]
        else:
            deliveries = self.faults.deliveries(msg, self._time)
        for extra, m in deliveries:
            delay = self._delay_fn(m, stream)
            if delay < 0:
                raise SimulationError("negative message delay")
            self._in_flight += 1
            heapq.heappush(
                self._events,
                (self._time + extra + delay, next(self._tick), self._MSG, m),
            )

    def transmit_action(
        self,
        sender: int,
        dest: int,
        action: str,
        payload: dict,
        size_bits: int = 0,
    ) -> None:
        """Construct-and-transmit (no pooling under the async driver)."""
        self.transmit(
            Message(
                sender=sender, dest=dest, action=action,
                payload=payload, size_bits=size_bits,
            )
        )

    @property
    def flights_enabled(self) -> bool:
        """Whether hop-compressed routing flights may be used right now."""
        return (
            self.faults is None
            and not self.exact_transport
            and not self.metrics.detail
        )

    def launch_flight(self, flight: Flight) -> None:
        """Put a precomputed routing flight in transit (schedule hop 0)."""
        if flight.dests[-1] not in self.nodes:
            raise SimulationError(
                f"flight to unknown node {flight.dests[-1]}: {flight!r}"
            )
        self.flights_launched += 1
        tr = self.tracer
        if tr is not None:
            flight.trace_ctx = tr.ctx
            tr.emit_ctx(
                FLIGHT, tr.ctx,
                src=flight.src, dst=flight.dests[-1], act=flight.faction,
                hops=len(flight.dests), bits=sum(flight.sizes),
            )
        self._push_flight_hop(flight)

    def _push_flight_hop(self, flight: Flight) -> None:
        """Schedule the flight's next hop, exactly as transmit() would.

        A minimal stand-in :class:`Message` keeps the legacy path's
        observable bookkeeping bit-for-bit: it advances the global
        ``Message.seq`` counter once per hop and feeds the delay sampler
        the same (sender, dest, size) identity, so keyed delay schedules
        (``adversarial_delay``) and every later seed draw are unchanged.
        """
        i = flight.index
        probe = Message(
            sender=flight.sender_of(i), dest=flight.dests[i],
            action="route", size_bits=flight.sizes[i],
        )
        delay = self._delay_fn(probe, self.rng.stream("async", "delays"))
        if delay < 0:
            raise SimulationError("negative message delay")
        self._in_flight += 1
        heapq.heappush(
            self._events,
            (self._time + delay, next(self._tick), self._FLIGHT, flight),
        )

    # -- setup --------------------------------------------------------------

    def register(self, node: ProtocolNode) -> None:
        if node.id in self.nodes:
            raise SimulationError(f"duplicate node id {node.id}")
        self.nodes[node.id] = node
        node.bind(self)
        if self.tracer is not None:
            self.tracer.emit_ctx(NODE, None, ev="register", node=node.id)
        self._maybe_active.add(node.id)
        jitter = float(
            self.rng.stream("async", "jitter").uniform(0, self._activation_period)
        )
        heapq.heappush(
            self._events, (jitter, next(self._tick), self._ACTIVATE, node.id)
        )

    def register_all(self, nodes: Iterable[ProtocolNode]) -> None:
        for node in nodes:
            self.register(node)

    def deregister(self, node_id: int) -> None:
        """Remove a node (membership Leave); pending activations are dropped."""
        if self.tracer is not None:
            self.tracer.emit_ctx(NODE, None, ev="deregister", node=node_id)
        del self.nodes[node_id]
        self._parked.pop(node_id, None)
        self._maybe_active.discard(node_id)

    def wake(self, node_id: int) -> None:
        """Resume a parked node's activation chain (next grid slot)."""
        self._maybe_active.add(node_id)
        due = self._parked.pop(node_id, None)
        if due is not None:
            self._schedule_activation(node_id, due)

    def _schedule_activation(self, node_id: int, due: float) -> None:
        """Push the node's next activation at its first grid slot >= now."""
        period = self._activation_period
        while due < self._time:
            due += period
        heapq.heappush(self._events, (due, next(self._tick), self._ACTIVATE, node_id))

    # -- execution ------------------------------------------------------------

    def _process_one(self) -> None:
        when, _, kind, item = heapq.heappop(self._events)
        self._time = when
        if kind == self._MSG:
            msg: Message = item  # type: ignore[assignment]
            self._in_flight -= 1
            if self.faults is not None and not self.faults.accept(msg):
                return  # duplicate copy suppressed by the transport
            self.metrics.record_delivery(msg)
            tracer = self.tracer
            if tracer is not None:
                tracer.ctx = msg.trace_ctx
                tracer.emit(
                    DELIVER,
                    src=msg.sender, dst=msg.dest, act=msg.action,
                    bits=msg.size_bits, seq=tracer.rel_seq(msg.seq),
                )
            self.nodes[msg.dest].handle(msg)
            if tracer is not None:
                tracer.ctx = None
            # A delivery may give a parked node activation work again.
            self.wake(msg.dest)
        elif kind == self._FLIGHT:
            flight: Flight = item  # type: ignore[assignment]
            self._in_flight -= 1
            i = flight.index
            dest = flight.dests[i]
            self.metrics.record_flight_hop(flight.owners[i], flight.sizes[i])
            tracer = self.tracer
            if tracer is not None:
                tracer.emit_ctx(
                    HOP, flight.trace_ctx,
                    dst=dest, owner=flight.owners[i], bits=flight.sizes[i],
                )
            flight.index = i + 1
            if flight.index < len(flight.dests):
                # The legacy path forwards from inside handle(): the next
                # hop's send happens at this delivery, then the hop node is
                # woken.  Same order here — the intermediate node itself is
                # never touched (its forwarding would be a pure no-op).
                self._push_flight_hop(flight)
            else:
                if tracer is not None:
                    tracer.ctx = flight.trace_ctx
                    tracer.emit(
                        LAND, dst=dest, act=flight.faction, hops=flight.index
                    )
                self.nodes[dest].deliver_flight(
                    flight.faction, flight.origin, flight.fpayload,
                    flight.index,
                )
                if tracer is not None:
                    tracer.ctx = None
            self.wake(dest)
        else:
            node = self.nodes.get(item)  # type: ignore[arg-type]
            if node is None:  # deregistered: drop the activation chain
                return
            node.on_activate()
            self._maybe_active.add(node.id)
            if not node.wants_activation():
                # Park: keep the grid phase so the chain resumes on time.
                self._parked[node.id] = when + self._activation_period
                return
            heapq.heappush(
                self._events,
                (
                    when + self._activation_period,
                    next(self._tick),
                    self._ACTIVATE,
                    node.id,
                ),
            )

    def pump(self, budget: int = 256) -> int:
        """Hand-off hook for external drivers (the live service runtime).

        Processes up to ``budget`` events and stops early at quiescence,
        returning the number of events processed.  Unlike
        :meth:`run_until_quiescent` this never blocks on a predicate: a
        caller that owns its own loop (e.g. an asyncio server pumping the
        simulation between socket reads) calls ``pump`` repeatedly and
        interleaves its own work whenever the budget is exhausted.  Purely
        a driver entry point — it draws no randomness of its own, so a
        sequence of ``pump`` calls replays the exact event schedule
        ``run_until_quiescent`` would.
        """
        done = 0
        while done < budget and self._events and not self.is_quiescent():
            self._process_one()
            done += 1
        return done

    def is_quiescent(self) -> bool:
        """No messages in flight and no node declares outstanding work.

        As in :meth:`SyncRunner.is_quiescent`, only the maybe-active
        superset is polled and pruned, keeping the per-event quiescence
        checks of :meth:`run_until_quiescent` O(active).
        """
        if self._in_flight:
            return False
        active = self._maybe_active
        if not active:
            return True
        nodes = self.nodes
        still = {
            nid for nid in active
            if (node := nodes.get(nid)) is not None and node.has_work()
        }
        self._maybe_active = still
        return not still

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_time: float = 1_000_000.0,
    ) -> float:
        """Process events until ``predicate()`` holds; return elapsed time."""
        start = self._time
        while not predicate():
            if not self._events:
                raise SimulationError("event queue drained before predicate held")
            if self._time - start > max_time:
                raise SimulationError(f"predicate not reached within {max_time} time")
            self._process_one()
        return self._time - start

    def run_until_quiescent(self, max_time: float = 1_000_000.0) -> float:
        """Run until no messages are in flight and no node has work.

        Each node is guaranteed at least one activation between the call and
        the quiescence check (fair activation), so buffered work gets its
        chance to start.
        """
        start = self._time
        settle_until = self._time + 2 * self._activation_period
        while True:
            if self._time > start + max_time:
                raise SimulationError(f"not quiescent within {max_time} time")
            if self.is_quiescent() and self._time >= settle_until:
                return self._time - start
            if not self._events:  # pragma: no cover - activations recur forever
                return self._time - start
            self._process_one()
            if not self.is_quiescent():
                settle_until = self._time + 2 * self._activation_period
