"""The process abstraction of the paper's model.

A node executes *actions*: named procedures invoked locally or remotely.
Every message is a remote action call (Section 1.1).  A node may also be
*activated* periodically, upon which it may generate messages based on its
local state.

:class:`ProtocolNode` realizes this: subclasses define ``on_<action>``
methods as handlers and override :meth:`on_activate`.  The same node code
runs unchanged under the synchronous round driver and the asynchronous
event driver.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Protocol

from ..errors import ProtocolError
from .message import Message

if TYPE_CHECKING:  # pragma: no cover
    from .rng import RngRegistry

__all__ = ["ProtocolNode", "SimContext"]


#: Per-class action -> unbound handler table, built lazily on first dispatch.
#: Message delivery is the hottest call site of the simulator; resolving
#: ``"on_" + action`` with ``getattr`` on every delivery costs a string
#: concatenation plus an MRO walk, while a dict probe on an interned action
#: name is a single hash lookup.  Handlers installed as *instance*
#: attributes (a test double, membership's probe sink) are not in any
#: class table and fall back to ``getattr``; instance attributes that
#: would *shadow* a class-defined ``on_<action>`` are not supported by the
#: cached dispatch (the class handler wins — nothing in the tree does this).
_HANDLER_TABLES: dict[type, dict[str, object]] = {}


def _build_handler_table(cls: type) -> dict[str, object]:
    table: dict[str, object] = {}
    for klass in reversed(cls.__mro__):
        for name, fn in vars(klass).items():
            if name.startswith("on_") and callable(fn):
                table[name[3:]] = fn
    _HANDLER_TABLES[cls] = table
    return table


#: Per-class action -> batch handler table for the batched kernel.  A class
#: opts a handler into batched delivery by defining a *staticmethod*
#: ``on_<action>_batch(deliveries)`` where ``deliveries`` is a list of
#: ``(node, sender, payload)`` tuples — one entry per message of that
#: action delivered this round, in delivery order, possibly spanning many
#: nodes of the class.  Actions without a batch variant fall back to their
#: single-message ``on_<action>`` handler called once per delivery (the
#: auto-generated batch path), so protocol code opts in incrementally.  A
#: batch handler supplements the single handler, never replaces it: the
#: per-message driver and the exact paths still dispatch ``on_<action>``.
_BATCH_TABLES: dict[type, dict[str, object]] = {}


def _build_batch_table(cls: type) -> dict[str, object]:
    table: dict[str, object] = {}
    for klass in reversed(cls.__mro__):
        for name in vars(klass):
            if name.startswith("on_") and name.endswith("_batch") and len(name) > 9:
                fn = getattr(cls, name, None)
                if callable(fn):
                    table[name[3:-6]] = fn
    _BATCH_TABLES[cls] = table
    return table


class SimContext(Protocol):
    """What a runner provides to its nodes."""

    rng: "RngRegistry"

    def transmit(self, msg: Message) -> None: ...

    @property
    def now(self) -> float: ...


class ProtocolNode:
    """Base class for all protocol participants.

    Handlers are resolved by name: a message with ``action="foo"`` invokes
    ``self.on_foo(sender, **payload)``.  Unknown actions raise
    :class:`ProtocolError` — silent drops hide protocol bugs.
    """

    def __init__(self, node_id: int):
        self.id = int(node_id)
        self._ctx: SimContext | None = None
        #: bound ``ctx.transmit_action`` cached at bind time: the send hot
        #: path skips the ctx-property guard and lets runners that pool
        #: Message objects intercept construction (None until bound, or for
        #: contexts without the hook — those fall back to ``transmit``).
        self._transmit_action = None

    # -- wiring ----------------------------------------------------------

    def bind(self, ctx: SimContext) -> None:
        """Attach this node to a runner; called once at registration."""
        if self._ctx is not None:
            raise ProtocolError(f"node {self.id} bound twice")
        self._ctx = ctx
        self._transmit_action = getattr(ctx, "transmit_action", None)

    @property
    def ctx(self) -> SimContext:
        if self._ctx is None:
            raise ProtocolError(f"node {self.id} used before registration")
        return self._ctx

    @property
    def tracer(self):
        """The runner's event bus, or None when tracing is disabled.

        Protocol code must guard every use with ``if tracer is not None``
        so the disabled path stays a single attribute test (the overhead
        contract of :mod:`repro.sim.trace`).
        """
        ctx = self._ctx
        return None if ctx is None else getattr(ctx, "tracer", None)

    # -- the paper's primitives -------------------------------------------

    def send(self, dest: int, action: str, **payload: Any) -> None:
        """Send a remote action call to ``dest`` (puts it in dest's channel)."""
        ta = self._transmit_action
        if ta is not None:
            ta(self.id, dest, action, payload, 0)
        else:
            self.ctx.transmit(
                Message(sender=self.id, dest=dest, action=action, payload=payload)
            )

    def send_sized(
        self, dest: int, action: str, payload: dict[str, Any], size_bits: int
    ) -> None:
        """Send with a precomputed ``size_bits`` (memoized hot-path sizing).

        The caller asserts ``size_bits`` equals what
        :func:`~repro.sim.message.payload_size_bits` would charge for the
        *accountable* payload fields — used where a forwarded payload's
        size is already known and recomputing it per hop would dominate
        the simulation.
        """
        ta = self._transmit_action
        if ta is not None:
            ta(self.id, dest, action, payload, size_bits)
        else:
            self.ctx.transmit(
                Message(
                    sender=self.id, dest=dest, action=action,
                    payload=payload, size_bits=size_bits,
                )
            )

    def on_activate(self) -> None:
        """Periodic activation hook; default does nothing."""

    def has_work(self) -> bool:
        """Whether this node still intends to send messages.

        Runners use this for quiescence detection; protocols with buffered
        client requests or unfinished phases must return True.
        """
        return False

    def wants_activation(self) -> bool:
        """Whether :meth:`on_activate` would do anything right now.

        Runners activate sparsely: a node is activated in a round only if
        it received a message that round, it was explicitly woken via
        :meth:`request_activation`, or this predicate held after its last
        activation.  **Contract:** any subclass whose ``on_activate`` has
        side effects beyond draining the work ``has_work`` declares MUST
        override this to mirror its activation guard exactly — returning
        ``False`` while ``on_activate`` would act loses protocol steps;
        returning ``True`` spuriously only costs a no-op call.
        """
        return self.has_work()

    def request_activation(self) -> None:
        """Ask the runner to activate this node even without a message.

        Used when node state changes outside the message flow (client
        submission, un-pausing).  Safe to call on unbound nodes and under
        runners without sparse activation; spurious calls are harmless.
        """
        ctx = self._ctx
        if ctx is not None:
            wake = getattr(ctx, "wake", None)
            if wake is not None:
                wake(self.id)

    # -- dispatch ----------------------------------------------------------

    def handle(self, msg: Message) -> None:
        """Dispatch a message from the channel to its handler."""
        action = msg.action
        cls = self.__class__
        table = _HANDLER_TABLES.get(cls)
        if table is None:
            table = _build_handler_table(cls)
        fn = table.get(action)
        if fn is not None:
            fn(self, msg.sender, **msg.payload)
            return
        # Instance-installed handlers (not part of any class) still work.
        handler = getattr(self, "on_" + action, None)
        if handler is None:
            raise ProtocolError(
                f"node {self.id} ({type(self).__name__}) has no handler for "
                f"action {action!r}"
            )
        handler(msg.sender, **msg.payload)

    def dispatch_action(self, action: str, sender: int, payload: dict) -> bool:
        """Invoke ``on_<action>(sender, **payload)`` via the cached table.

        Returns False (without raising) when no handler exists, so callers
        with their own error semantics — routing's terminal delivery, the
        baselines' local loopback — can reuse the fast dispatch.
        """
        cls = self.__class__
        table = _HANDLER_TABLES.get(cls)
        if table is None:
            table = _build_handler_table(cls)
        fn = table.get(action)
        if fn is not None:
            fn(self, sender, **payload)
            return True
        handler = getattr(self, "on_" + action, None)
        if handler is None:
            return False
        handler(sender, **payload)
        return True
