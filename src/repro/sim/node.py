"""The process abstraction of the paper's model.

A node executes *actions*: named procedures invoked locally or remotely.
Every message is a remote action call (Section 1.1).  A node may also be
*activated* periodically, upon which it may generate messages based on its
local state.

:class:`ProtocolNode` realizes this: subclasses define ``on_<action>``
methods as handlers and override :meth:`on_activate`.  The same node code
runs unchanged under the synchronous round driver and the asynchronous
event driver.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Protocol

from ..errors import ProtocolError
from .message import Message

if TYPE_CHECKING:  # pragma: no cover
    from .rng import RngRegistry

__all__ = ["ProtocolNode", "SimContext"]


class SimContext(Protocol):
    """What a runner provides to its nodes."""

    rng: "RngRegistry"

    def transmit(self, msg: Message) -> None: ...

    @property
    def now(self) -> float: ...


class ProtocolNode:
    """Base class for all protocol participants.

    Handlers are resolved by name: a message with ``action="foo"`` invokes
    ``self.on_foo(sender, **payload)``.  Unknown actions raise
    :class:`ProtocolError` — silent drops hide protocol bugs.
    """

    def __init__(self, node_id: int):
        self.id = int(node_id)
        self._ctx: SimContext | None = None

    # -- wiring ----------------------------------------------------------

    def bind(self, ctx: SimContext) -> None:
        """Attach this node to a runner; called once at registration."""
        if self._ctx is not None:
            raise ProtocolError(f"node {self.id} bound twice")
        self._ctx = ctx

    @property
    def ctx(self) -> SimContext:
        if self._ctx is None:
            raise ProtocolError(f"node {self.id} used before registration")
        return self._ctx

    # -- the paper's primitives -------------------------------------------

    def send(self, dest: int, action: str, **payload: Any) -> None:
        """Send a remote action call to ``dest`` (puts it in dest's channel)."""
        self.ctx.transmit(Message(sender=self.id, dest=dest, action=action, payload=payload))

    def on_activate(self) -> None:
        """Periodic activation hook; default does nothing."""

    def has_work(self) -> bool:
        """Whether this node still intends to send messages.

        Runners use this for quiescence detection; protocols with buffered
        client requests or unfinished phases must return True.
        """
        return False

    # -- dispatch ----------------------------------------------------------

    def handle(self, msg: Message) -> None:
        """Dispatch a message from the channel to its handler."""
        handler = getattr(self, "on_" + msg.action, None)
        if handler is None:
            raise ProtocolError(
                f"node {self.id} ({type(self).__name__}) has no handler for "
                f"action {msg.action!r}"
            )
        handler(msg.sender, **msg.payload)
