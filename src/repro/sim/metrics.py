"""Measurement of the quantities the paper's theorems bound.

The paper's performance model (Section 1.1) measures:

* **rounds** — synchronous steps until an operation/batch completes,
* **congestion** — the maximum number of messages a *node* (a real process,
  which may emulate several virtual overlay nodes) handles in one round,
* **message size** — bits per message (Lemmas 3.8 and 5.5).

:class:`MetricsCollector` records all three plus totals, and supports
snapshot/window so the harness can attribute costs to protocol phases.

Two detail levels keep the hot path lean:

* the default (``detail=False``) records only the counters the shape
  checks read — rounds, messages, bits, maxima, and per-round congestion
  and message-size maxima kept in flat arrays;
* ``detail=True`` additionally maintains the per-action and per-owner
  ``Counter`` breakdowns behind :meth:`owner_action_total`,
  :meth:`owner_rate` and the tracing action mix.  Only the experiments
  that read those (T12, A1) pay for them.

Both modes observe the identical message stream, so every number a lean
run reports is bit-for-bit equal to the same number from a detail run.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..errors import SimulationError
from .message import Message

__all__ = ["MetricsCollector", "MetricsSnapshot"]


@dataclass(frozen=True, slots=True)
class MetricsSnapshot:
    """Immutable cumulative counters, used to delimit phase windows.

    Snapshots taken by :meth:`MetricsCollector.snapshot` keep a private
    reference to their collector, so :meth:`diff` can recover *exact*
    window maxima from the per-round history instead of the cumulative
    upper bound.  The reference never crosses a pickle boundary (it is
    dropped by ``__reduce__``) and does not participate in equality.
    """

    rounds: int
    messages: int
    bits: int
    max_message_bits: int
    congestion: int
    #: the collector this snapshot was taken from (None once pickled or
    #: when constructed by hand); lets diff() consult per-round history.
    _source: "MetricsCollector | None" = field(
        default=None, compare=False, repr=False
    )
    #: the open (not yet end_round-ed) round's peaks at snapshot time.
    _open_congestion: int = field(default=0, compare=False, repr=False)
    _open_max_bits: int = field(default=0, compare=False, repr=False)

    def diff(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """Counters accumulated since ``earlier``.

        When this snapshot still knows its collector (the normal case for
        snapshots produced by :meth:`MetricsCollector.snapshot` in the
        same process), ``max_message_bits`` and ``congestion`` are the
        *exact* window maxima, recovered from the collector's per-round
        arrays — the same numbers :meth:`MetricsCollector.window` reports
        for the same boundaries.  Only detached snapshots (hand-built, or
        round-tripped through pickle) fall back to the later cumulative
        maxima, which merely upper-bound the window.
        """
        src = self._source
        if src is not None and src is earlier._source:
            max_bits = max(
                src.max_bits_by_round[earlier.rounds : self.rounds], default=0
            )
            if self._open_max_bits > max_bits:
                max_bits = self._open_max_bits
            congestion = max(
                src.congestion_by_round[earlier.rounds : self.rounds], default=0
            )
            if self._open_congestion > congestion:
                congestion = self._open_congestion
        else:
            max_bits = self.max_message_bits
            congestion = self.congestion
        return MetricsSnapshot(
            rounds=self.rounds - earlier.rounds,
            messages=self.messages - earlier.messages,
            bits=self.bits - earlier.bits,
            max_message_bits=max_bits,
            congestion=congestion,
        )

    def __reduce__(self):
        # Detach from the collector when pickled: the per-round history
        # (and the collector's callables) must not ride along to workers.
        return (
            MetricsSnapshot,
            (
                self.rounds,
                self.messages,
                self.bits,
                self.max_message_bits,
                self.congestion,
            ),
        )


class MetricsCollector:
    """Accumulates per-round and (optionally) per-owner message statistics.

    ``owner_of`` maps a simulator node id to the real process that emulates
    it; congestion is accounted against the owner, matching the paper's
    model where one process emulates three LDB virtual nodes.

    ``detail=True`` enables the per-message ``Counter`` breakdowns
    (``action_counts``, ``owner_totals``, ``owner_action_counts``); in the
    default lean mode those attributes are ``None`` and the accessors that
    need them raise :class:`~repro.errors.SimulationError`.
    """

    def __init__(self, owner_of=None, detail: bool = False):
        self._owner_of = owner_of if owner_of is not None else (lambda i: i)
        self.detail = bool(detail)
        self.rounds = 0
        self.messages = 0
        self.bits = 0
        self.max_message_bits = 0
        self.action_counts: Counter[str] | None = Counter() if detail else None
        self.owner_totals: Counter[int] | None = Counter() if detail else None
        self.owner_action_counts: Counter[tuple[int, str]] | None = (
            Counter() if detail else None
        )
        self._round_owner_counts: dict[int, int] = {}
        self._round_peak = 0
        self._round_max_bits = 0
        self.congestion_by_round: list[int] = []
        self.max_bits_by_round: list[int] = []
        self.marks: list[tuple[str, int]] = []
        if detail:
            self.record_delivery = self._record_delivery_detail  # type: ignore[method-assign]

    # -- recording -----------------------------------------------------

    def record_delivery(self, msg: Message) -> None:
        """Record one message being handled at its destination (lean path)."""
        self.messages += 1
        bits = msg.size_bits
        self.bits += bits
        if bits > self._round_max_bits:
            self._round_max_bits = bits
            if bits > self.max_message_bits:
                self.max_message_bits = bits
        owner = self._owner_of(msg.dest)
        counts = self._round_owner_counts
        n = counts.get(owner, 0) + 1
        counts[owner] = n
        if n > self._round_peak:
            self._round_peak = n

    def record_flight_hop(self, owner: int, bits: int) -> None:
        """Charge one hop of a hop-compressed routing flight (lean path).

        Identical accounting to :meth:`record_delivery` — one message of
        ``bits`` handled by ``owner`` this round — without materializing a
        :class:`Message`.  ``owner`` is precomputed by the route planner
        (the same ``owner_of`` mapping the collector itself uses).  Flights
        never run in detail mode (the per-action breakdowns need the real
        message), so there is no detail variant of this method.
        """
        self.messages += 1
        self.bits += bits
        if bits > self._round_max_bits:
            self._round_max_bits = bits
            if bits > self.max_message_bits:
                self.max_message_bits = bits
        counts = self._round_owner_counts
        n = counts.get(owner, 0) + 1
        counts[owner] = n
        if n > self._round_peak:
            self._round_peak = n

    def record_round_bulk(self, owners: list, sizes: list) -> None:
        """Record one round's deliveries in a single pass (batched kernel).

        ``owners`` and ``sizes`` are parallel-free flat lists: one entry per
        message (or flight hop) delivered this round, in any order — every
        number this method feeds is a per-round aggregate (totals, the
        round's byte and congestion maxima), so ordering within the round
        cannot affect it, and the results are bit-for-bit what the
        per-message :meth:`record_delivery` / :meth:`record_flight_hop`
        calls would have produced.  Bulk ``sum``/``max``/``Counter`` run in
        C; measured against numpy round-array variants the plain built-ins
        win at every realistic round size (tens to low thousands), so no
        array dependency is taken.
        """
        n = len(sizes)
        if n == 0:
            return
        self.messages += n
        self.bits += sum(sizes)
        mx = max(sizes)
        if mx > self._round_max_bits:
            self._round_max_bits = mx
            if mx > self.max_message_bits:
                self.max_message_bits = mx
        counts = self._round_owner_counts
        freq = Counter(owners)
        if counts:
            get = counts.get
            for owner, c in freq.items():
                counts[owner] = get(owner, 0) + c
            peak = max(counts.values())
        else:
            counts.update(freq)
            peak = max(freq.values())
        if peak > self._round_peak:
            self._round_peak = peak

    def _record_delivery_detail(self, msg: Message) -> None:
        """Lean recording plus the per-action/per-owner breakdowns."""
        self.messages += 1
        bits = msg.size_bits
        self.bits += bits
        if bits > self._round_max_bits:
            self._round_max_bits = bits
            if bits > self.max_message_bits:
                self.max_message_bits = bits
        owner = self._owner_of(msg.dest)
        counts = self._round_owner_counts
        n = counts.get(owner, 0) + 1
        counts[owner] = n
        if n > self._round_peak:
            self._round_peak = n
        self.action_counts[msg.action] += 1
        self.owner_totals[owner] += 1
        self.owner_action_counts[(owner, msg.action)] += 1

    def end_round(self) -> None:
        """Close the current round's congestion and message-size buckets."""
        self.congestion_by_round.append(self._round_peak)
        self.max_bits_by_round.append(self._round_max_bits)
        if self._round_owner_counts:
            self._round_owner_counts.clear()
            self._round_peak = 0
        self._round_max_bits = 0
        self.rounds += 1

    def mark(self, name: str) -> None:
        """Label the current round, e.g. at a phase boundary."""
        self.marks.append((name, self.rounds))

    # -- reading -------------------------------------------------------

    @property
    def congestion(self) -> int:
        """Max messages handled by any owner in any single round."""
        current = self._round_peak
        closed = max(self.congestion_by_round, default=0)
        return closed if closed > current else current

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            rounds=self.rounds,
            messages=self.messages,
            bits=self.bits,
            max_message_bits=self.max_message_bits,
            congestion=self.congestion,
            _source=self,
            _open_congestion=self._round_peak,
            _open_max_bits=self._round_max_bits,
        )

    def window(self, earlier: MetricsSnapshot) -> MetricsSnapshot:
        """Exact counters accumulated since ``earlier`` was snapshotted.

        Unlike :meth:`MetricsSnapshot.diff`, the maxima are the *true*
        window maxima, recovered from the per-round flat arrays — the
        phase attribution the harness reports is exact, not an upper
        bound.
        """
        congestion = max(self.congestion_by_round[earlier.rounds :], default=0)
        if self._round_peak > congestion:
            congestion = self._round_peak
        max_bits = max(self.max_bits_by_round[earlier.rounds :], default=0)
        if self._round_max_bits > max_bits:
            max_bits = self._round_max_bits
        return MetricsSnapshot(
            rounds=self.rounds - earlier.rounds,
            messages=self.messages - earlier.messages,
            bits=self.bits - earlier.bits,
            max_message_bits=max_bits,
            congestion=congestion,
        )

    def congestion_between(self, start_round: int, end_round: int) -> int:
        """Max per-owner messages/round within ``[start_round, end_round)``."""
        window = self.congestion_by_round[start_round:end_round]
        return max(window, default=0)

    def _require_detail(self, what: str) -> None:
        if not self.detail:
            raise SimulationError(
                f"{what} needs per-owner breakdowns: construct the collector "
                "(or the cluster) with detail metrics enabled "
                "(MetricsCollector(detail=True) / metrics_detail=True)"
            )

    def owner_action_total(self, owner: int, actions) -> int:
        """Messages of the given action names handled by ``owner``.

        Used to isolate *coordination* load (batch aggregation vs per-op
        forwarding) from the DHT routing traffic every node shares.
        Requires ``detail=True``.
        """
        self._require_detail("owner_action_total")
        return sum(self.owner_action_counts.get((owner, a), 0) for a in actions)

    def owner_rate(self, owner: int) -> float:
        """Messages handled by ``owner`` per round, over the whole run.

        The sustained-load metric behind the batching argument: Skeap's
        anchor handles O(1) (large) messages per iteration, while an
        unbatched anchor or a central coordinator handles Θ(n·Λ) per round.
        Requires ``detail=True``.
        """
        self._require_detail("owner_rate")
        return self.owner_totals.get(owner, 0) / max(self.rounds, 1)
