"""Measurement of the quantities the paper's theorems bound.

The paper's performance model (Section 1.1) measures:

* **rounds** — synchronous steps until an operation/batch completes,
* **congestion** — the maximum number of messages a *node* (a real process,
  which may emulate several virtual overlay nodes) handles in one round,
* **message size** — bits per message (Lemmas 3.8 and 5.5).

:class:`MetricsCollector` records all three plus totals, and supports
snapshot/diff so the harness can attribute costs to protocol phases.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from .message import Message

__all__ = ["MetricsCollector", "MetricsSnapshot"]


@dataclass(frozen=True, slots=True)
class MetricsSnapshot:
    """Immutable cumulative counters, used to diff phase windows."""

    rounds: int
    messages: int
    bits: int
    max_message_bits: int
    congestion: int

    def diff(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """Counters accumulated since ``earlier``.

        ``max_message_bits`` and ``congestion`` are window maxima only if
        the window grew them; we report the later cumulative maximum, which
        upper-bounds the window maximum (sufficient for the shape checks).
        """
        return MetricsSnapshot(
            rounds=self.rounds - earlier.rounds,
            messages=self.messages - earlier.messages,
            bits=self.bits - earlier.bits,
            max_message_bits=self.max_message_bits,
            congestion=self.congestion,
        )


class MetricsCollector:
    """Accumulates per-round and per-owner message statistics.

    ``owner_of`` maps a simulator node id to the real process that emulates
    it; congestion is accounted against the owner, matching the paper's
    model where one process emulates three LDB virtual nodes.
    """

    def __init__(self, owner_of=None):
        self._owner_of = owner_of if owner_of is not None else (lambda i: i)
        self.rounds = 0
        self.messages = 0
        self.bits = 0
        self.max_message_bits = 0
        self.action_counts: Counter[str] = Counter()
        self.owner_totals: Counter[int] = Counter()
        self.owner_action_counts: Counter[tuple[int, str]] = Counter()
        self._round_owner_counts: Counter[int] = Counter()
        self.congestion_by_round: list[int] = []
        self.marks: list[tuple[str, int]] = []

    # -- recording -----------------------------------------------------

    def record_delivery(self, msg: Message) -> None:
        """Record one message being handled at its destination."""
        owner = self._owner_of(msg.dest)
        self.messages += 1
        self.bits += msg.size_bits
        if msg.size_bits > self.max_message_bits:
            self.max_message_bits = msg.size_bits
        self.action_counts[msg.action] += 1
        self.owner_totals[owner] += 1
        self.owner_action_counts[(owner, msg.action)] += 1
        self._round_owner_counts[owner] += 1

    def end_round(self) -> None:
        """Close the current round's congestion bucket."""
        peak = max(self._round_owner_counts.values(), default=0)
        self.congestion_by_round.append(peak)
        self._round_owner_counts.clear()
        self.rounds += 1

    def mark(self, name: str) -> None:
        """Label the current round, e.g. at a phase boundary."""
        self.marks.append((name, self.rounds))

    # -- reading -------------------------------------------------------

    @property
    def congestion(self) -> int:
        """Max messages handled by any owner in any single round."""
        current = max(self._round_owner_counts.values(), default=0)
        return max(max(self.congestion_by_round, default=0), current)

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            rounds=self.rounds,
            messages=self.messages,
            bits=self.bits,
            max_message_bits=self.max_message_bits,
            congestion=self.congestion,
        )

    def congestion_between(self, start_round: int, end_round: int) -> int:
        """Max per-owner messages/round within ``[start_round, end_round)``."""
        window = self.congestion_by_round[start_round:end_round]
        return max(window, default=0)

    def owner_action_total(self, owner: int, actions) -> int:
        """Messages of the given action names handled by ``owner``.

        Used to isolate *coordination* load (batch aggregation vs per-op
        forwarding) from the DHT routing traffic every node shares.
        """
        return sum(self.owner_action_counts.get((owner, a), 0) for a in actions)

    def owner_rate(self, owner: int) -> float:
        """Messages handled by ``owner`` per round, over the whole run.

        The sustained-load metric behind the batching argument: Skeap's
        anchor handles O(1) (large) messages per iteration, while an
        unbatched anchor or a central coordinator handles Θ(n·Λ) per round.
        """
        return self.owner_totals.get(owner, 0) / max(self.rounds, 1)
