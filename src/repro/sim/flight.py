"""Hop-compressed transport for deterministically routed messages.

A routed message's entire journey is a pure function of the static overlay
view: every intermediate node only forwards it (updating the envelope in a
closed-form way) until the responsible node performs the terminal action.
When nothing can perturb that journey — no fault injector rewriting the
schedule, no membership churn changing views mid-flight — the simulator
does not need to materialize the intermediate :class:`~repro.sim.message.
Message` objects at all.  A :class:`Flight` carries the precomputed hop
sequence instead: per hop it charges the *exact* metrics the legacy path
would have charged (same destination owner, same closed-form ``size_bits``,
same round/event timing) and only the terminal hop touches a node.

The runners schedule flights so the observable trace is bit-for-bit
identical to exact transport:

* under :class:`~repro.sim.sync_runner.SyncRunner` a flight occupies one
  outbox slot per in-transit hop — the same slot its legacy route message
  would occupy — so the seeded delivery permutation consumes randomness
  identically and every other message keeps its delivery order;
* under :class:`~repro.sim.async_runner.AsyncRunner` each hop is a separate
  heap event carrying a minimal stand-in :class:`Message`, so the global
  sequence counter, the per-channel delay draws and the event-tick order
  all match the legacy path exactly.

This module is deliberately overlay-agnostic: the hop sequence is computed
by :class:`repro.overlay.routing.RoutePlanner`, which owns the
view-stability (epoch) story.
"""

from __future__ import annotations

import os
from typing import Any

__all__ = ["Flight", "exact_transport_default"]


def exact_transport_default() -> bool:
    """Process-wide default for the ``exact_transport`` escape hatch.

    Set ``REPRO_EXACT_TRANSPORT=1`` to force legacy per-hop transport in
    every runner that is not explicitly constructed with
    ``exact_transport=...``.  The harness ``--exact-transport`` flag sets
    this variable so process-pool workers inherit the mode.
    """
    return os.environ.get("REPRO_EXACT_TRANSPORT", "") not in ("", "0")


class Flight:
    """One routed message in transit, with its full hop sequence precomputed.

    ``dests[i]`` / ``owners[i]`` / ``sizes[i]`` describe hop ``i`` exactly as
    the legacy path would have charged it: the virtual destination, the real
    process accounted for congestion, and the closed-form envelope size in
    bits.  ``index`` is the next hop to charge; the final hop performs the
    terminal delivery of ``faction(origin, **fpayload)`` at ``dests[-1]``.
    """

    __slots__ = ("src", "dests", "owners", "sizes", "faction", "origin",
                 "fpayload", "index", "trace_ctx")

    def __init__(
        self,
        src: int,
        dests: tuple[int, ...],
        owners: tuple[int, ...],
        sizes: tuple[int, ...],
        faction: str,
        origin: int,
        fpayload: dict[str, Any],
    ):
        self.src = src
        self.dests = dests
        self.owners = owners
        self.sizes = sizes
        self.faction = faction
        self.origin = origin
        self.fpayload = fpayload
        self.index = 0
        # Causal context (repro.sim.trace); stamped at launch when tracing.
        self.trace_ctx = None

    @property
    def final_dest(self) -> int:
        return self.dests[-1]

    def sender_of(self, i: int) -> int:
        """The node that (virtually) forwarded hop ``i``."""
        return self.dests[i - 1] if i else self.src

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Flight({self.src}->{self.dests[-1]} {self.faction} "
            f"hop {self.index}/{len(self.dests)})"
        )
