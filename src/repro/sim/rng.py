"""Deterministic randomness: named seeded streams and pseudorandom hashes.

All randomness in the library flows through this module so that every
simulation, test and benchmark is exactly reproducible from a single root
seed.  The paper assumes a *publicly known pseudorandom hash function*; we
realize it with SHA-256 keyed by a seed, which gives the only two properties
the protocols rely on: determinism (every node computes the same value) and
uniformity.
"""

from __future__ import annotations

import hashlib
import struct

import numpy as np

__all__ = ["RngRegistry", "PseudoRandomHash", "derive_seed"]

_MASK64 = (1 << 64) - 1


def derive_seed(root_seed: int, *names: object) -> int:
    """Derive a 64-bit child seed from a root seed and a name path.

    Stable across runs and platforms (pure SHA-256, no ``hash()``).
    """
    h = hashlib.sha256()
    # "<Q" (unsigned): masked values >= 2**63 — e.g. a seed that is itself
    # a derive_seed output — must still pack.  Byte-identical to the old
    # signed pack for every value below 2**63.
    h.update(struct.pack("<Q", root_seed & _MASK64))
    for name in names:
        h.update(repr(name).encode("utf-8"))
        h.update(b"\x00")
    return int.from_bytes(h.digest()[:8], "little")


class RngRegistry:
    """A factory of named, independent ``numpy`` generators.

    Each distinct name path yields an independent stream; asking twice for
    the same path yields the *same* generator object, so stateful consumers
    (e.g. the async delay sampler) keep advancing a single stream.
    """

    def __init__(self, root_seed: int):
        self.root_seed = int(root_seed)
        self._streams: dict[tuple[object, ...], np.random.Generator] = {}

    def stream(self, *names: object) -> np.random.Generator:
        """Return the generator for this name path, creating it on demand."""
        key = tuple(names)
        gen = self._streams.get(key)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.root_seed, *names))
            self._streams[key] = gen
        return gen

    def spawn(self, *names: object) -> "RngRegistry":
        """Return a child registry rooted at a derived seed."""
        return RngRegistry(derive_seed(self.root_seed, "spawn", *names))


class PseudoRandomHash:
    """The paper's publicly known pseudorandom hash function *h*.

    Maps arbitrary tuples of integers/strings to either the unit interval
    ``[0, 1)`` (overlay label / DHT key space) or to 64-bit integers.  All
    nodes constructed from the same seed agree on every value, which is the
    "publicly known" property the protocols need.
    """

    def __init__(self, seed: int, namespace: str = "h"):
        self.seed = int(seed)
        self.namespace = namespace

    def _digest(self, args: tuple[object, ...]) -> bytes:
        h = hashlib.sha256()
        h.update(struct.pack("<Q", self.seed & _MASK64))
        h.update(self.namespace.encode("utf-8"))
        for a in args:
            h.update(b"\x1f")
            h.update(repr(a).encode("utf-8"))
        return h.digest()

    def unit(self, *args: object) -> float:
        """Hash to a float in ``[0, 1)`` with 53 bits of precision."""
        raw = int.from_bytes(self._digest(args)[:8], "little")
        return (raw >> 11) / float(1 << 53)

    def integer(self, *args: object) -> int:
        """Hash to a 64-bit unsigned integer."""
        return int.from_bytes(self._digest(args)[:8], "little")
