"""Messages and message-size accounting.

The paper's scalability results hinge on *message size in bits*
(Lemma 3.8: Skeap uses ``O(Λ log² n)``-bit messages; Lemma 5.5: Seap uses
``O(log n)``-bit messages).  To make that contrast measurable we compute,
for every message, the number of bits needed to encode its payload: integers
cost their binary width, floats cost 64 bits, containers cost the sum of
their items plus a small per-item framing overhead.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any

from ..element import BOTTOM, Element

__all__ = ["Message", "payload_size_bits"]

#: Framing overhead charged per container item (type tag / separator).
_ITEM_OVERHEAD_BITS = 2


# Sizing runs once per message send — by far the hottest code path of the
# whole simulator (profiling: ~70% of a routing-heavy run before this
# dispatch table existed).  Exact-type dispatch avoids the isinstance
# chain, and string sizes (mostly repeated payload field names) are cached.


# Sized large enough that routing-heavy runs at the biggest sweep sizes
# (every overlay node id appears as a string key somewhere) never evict.
@lru_cache(maxsize=1 << 17)
def _str_bits(text: str) -> int:
    return 8 * len(text) + _ITEM_OVERHEAD_BITS


#: Width of every small non-negative int, precomputed: the bulk of sized
#: integers are node ids, positions, hop counts and 0/1 route bits, all far
#: below this bound, and a tuple index beats abs().bit_length() per call.
_INT_BITS_TABLE = tuple(max(i.bit_length(), 1) + 1 for i in range(4096))


def _int_bits(obj: int) -> int:
    if 0 <= obj < 4096:
        return _INT_BITS_TABLE[obj]
    return max(abs(obj).bit_length(), 1) + 1  # +1 sign/flag bit


#: Payload dict keys are keyword-argument names — a small, closed set — so
#: an unbounded plain dict stays tiny while skipping the lru_cache wrapper.
_KEY_BITS: dict[str, int] = {}


def _dict_bits(obj: dict) -> int:
    total = 0
    for k, v in obj.items():
        kb = _KEY_BITS.get(k)
        if kb is None:
            kb = _KEY_BITS[k] = (
                8 * len(k) + _ITEM_OVERHEAD_BITS
                if type(k) is str
                else payload_size_bits(k)
            )
        t = type(v)
        if t is int:
            vb = (
                _INT_BITS_TABLE[v]
                if 0 <= v < 4096
                else max(abs(v).bit_length(), 1) + 1
            )
        elif t is float:
            vb = 64
        else:
            sizer = _SIZERS.get(t)
            vb = sizer(v) if sizer is not None else payload_size_bits(v)
        total += kb + vb + _ITEM_OVERHEAD_BITS
    return total


def _seq_bits(obj) -> int:
    total = 0
    for v in obj:
        t = type(v)
        if t is int:
            total += (
                _INT_BITS_TABLE[v]
                if 0 <= v < 4096
                else max(abs(v).bit_length(), 1) + 1
            ) + _ITEM_OVERHEAD_BITS
        elif t is float:
            total += 64 + _ITEM_OVERHEAD_BITS
        else:
            sizer = _SIZERS.get(t)
            total += (
                sizer(v) if sizer is not None else payload_size_bits(v)
            ) + _ITEM_OVERHEAD_BITS
    return total


_SIZERS = {
    type(None): lambda obj: 1,
    bool: lambda obj: 1,
    int: _int_bits,
    float: lambda obj: 64,
    str: _str_bits,
    Element: lambda obj: obj.size_bits(),
    dict: _dict_bits,
    list: _seq_bits,
    tuple: _seq_bits,
    set: _seq_bits,
    frozenset: _seq_bits,
    # BOTTOM is a singleton, so dispatching on its type is exact.
    type(BOTTOM): lambda obj: 1,
}

#: Frozen view of the registered bases for the subclass-fallback scan;
#: resolved subclasses are memoized into ``_SIZERS`` so the scan runs at
#: most once per novel payload type, not once per message.
_SIZER_BASES = tuple(_SIZERS.items())


def payload_size_bits(obj: Any) -> int:
    """Return the encoded size of ``obj`` in bits.

    The encoding model is deliberately simple and consistent: what matters
    for reproducing the paper's claims is the *growth* of message sizes with
    ``n`` and ``Λ``, not a particular wire format.
    """
    t = type(obj)
    if t is dict:
        return _dict_bits(obj)
    if t is int:
        return (
            _INT_BITS_TABLE[obj]
            if 0 <= obj < 4096
            else max(abs(obj).bit_length(), 1) + 1
        )
    sizer = _SIZERS.get(t)
    if sizer is not None:
        return sizer(obj)
    if obj is BOTTOM:
        return 1
    size_bits = getattr(obj, "size_bits", None)
    if size_bits is not None:
        if hasattr(type(obj), "size_bits"):
            _SIZERS[type(obj)] = lambda o: int(o.size_bits())
        return int(size_bits())
    # subclasses of the registered types fall through to here (once per type)
    for base, fn in _SIZER_BASES:
        if isinstance(obj, base):
            _SIZERS[type(obj)] = fn
            return fn(obj)
    raise TypeError(f"cannot size payload of type {type(obj).__name__}")


_seq = itertools.count()


@dataclass(slots=True)
class Message:
    """A remote action call, the only kind of message in the model.

    ``action`` names the handler invoked at the destination; ``payload``
    carries its keyword arguments.  ``size_bits`` is computed on
    construction so metrics always see the size of what was actually sent.
    """

    sender: int
    dest: int
    action: str
    payload: dict[str, Any] = field(default_factory=dict)
    size_bits: int = 0
    #: Monotone id used to make delivery order deterministic.
    seq: int = field(default_factory=lambda: next(_seq))
    #: Causal-context tuple stamped by the runner when tracing is enabled
    #: (see :mod:`repro.sim.trace`).  Rides outside the sized payload, so
    #: it never affects ``size_bits`` or any metric.
    trace_ctx: Any = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.size_bits == 0:
            self.size_bits = 8 + payload_size_bits(self.payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message({self.sender}->{self.dest} {self.action} "
            f"{self.size_bits}b)"
        )
