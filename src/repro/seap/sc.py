"""Seap-SC: the sequentially consistent Seap variant sketched in Section 6.

The conclusion asks: *"can we modify Seap in order to also guarantee
sequential consistency?  A first idea would be to maintain the same
batches as in Skeap, but only aggregate the first amount of Insert() or
DeleteMin() operations to the anchor."*  This module implements that
sketch:

* every node keeps **one** request buffer in local issue order; an epoch's
  insert phase only takes the buffer's *leading run of inserts* and its
  delete phase only the (new) *leading run of deletes* — so a request is
  never overtaken by a locally later one;
* the DeleteMin phase additionally sorts the k selected elements
  **globally** (reusing KSelect's distributed sorting machinery with every
  element as its own representative): the element of exact rank ``r`` is
  stored under position key ``h(epoch, r)``, so consecutive positions
  served to one node return ascending elements — the last piece local
  consistency needs.

As the paper warns, this "comes at the cost of scalability and message
size": a node's buffer drains one alternation run per phase (requests can
wait Θ(alternations) epochs), and the full sort costs Θ(k²) comparison
messages per delete phase.  Experiment A2 measures that cost against
plain Seap.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from ..element import Element
from ..errors import ProtocolError
from ..overlay.ldb import LocalView
from ..semantics.history import DELETE, INSERT, History
from ..skeap.protocol import OpHandle
from ..cluster import OverlayCluster
from ..overlay.membership import MembershipReport  # noqa: F401 (re-export parity)
from .heap import SeapHeap
from .protocol import SeapNode

__all__ = ["SeapSCNode", "SeapSCHeap"]


class SeapSCNode(SeapNode):
    """Seap node with prefix-only batching and exact-rank positions."""

    def __init__(self, view: LocalView, keyspace, history: History | None = None, delta_scale: float = 1.0):
        super().__init__(view, keyspace, history=history, delta_scale=delta_scale)
        #: single buffer preserving local issue order (the §6 sketch)
        self.buffered_ops: deque[OpHandle] = deque()
        #: holder-side pending rank-position puts of the current epoch
        self._sc_rank_puts: set[int] = set()

    # -- client API: one ordered buffer --------------------------------------

    def submit_insert(self, priority: int, value: Any = None, uid: int | None = None) -> OpHandle:
        handle = super().submit_insert(priority, value, uid)
        # The base class buffered it by kind; rebuffer in issue order.
        self.buffered_inserts.clear()
        self.buffered_ops.append(handle)
        return handle

    def submit_delete_min(self) -> OpHandle:
        handle = super().submit_delete_min()
        self.buffered_deletes.clear()
        self.buffered_ops.append(handle)
        return handle

    def _take_prefix(self, kind: str) -> list[OpHandle]:
        """Pop the buffer's leading run of requests of ``kind``."""
        taken: list[OpHandle] = []
        while self.buffered_ops and self.buffered_ops[0].kind == kind:
            taken.append(self.buffered_ops.popleft())
        return taken

    def has_work(self) -> bool:
        return bool(
            self.buffered_ops
            or self._pending_put_acks
            or self._pending_gets
            or self._pending_move_acks
            or self._sc_rank_puts
        )

    # -- phase snapshots: prefixes only ----------------------------------------

    def _bc_insert_phase(self, tag, payload) -> None:
        epoch = tag[1]
        if epoch <= self.epoch:  # pragma: no cover - structural
            raise ProtocolError("insert phase for a stale epoch")
        self.epoch = epoch
        self._delete_interval_done = False
        self._move_interval_done = False
        self._insert_snapshot = self._take_prefix(INSERT)
        self.agg_contribute(("spIc", epoch), len(self._insert_snapshot))

    def _bc_delete_phase(self, tag, payload) -> None:
        epoch = tag[1]
        self._delete_snapshot = self._take_prefix(DELETE)
        self.agg_contribute(("spDc", epoch), len(self._delete_snapshot))

    # -- exact-rank movement: sort the k selected elements globally --------------

    def _dv_move_interval(self, tag, part) -> None:
        epoch = tag[1]
        start, limit = part
        moved = self._move_buffer
        self._move_buffer = []
        token = ("sc", epoch)
        for offset, element in enumerate(moved):
            i = start + offset
            if i > limit:  # pragma: no cover - counts were validated
                raise ProtocolError("move interval overflow")
            self.route_to_point(
                self.keyspace.sort_position_key(token, i),
                "ks_hold",
                {
                    "token": token,
                    "i": i,
                    "candidate": element.key,
                    "n_prime": limit,
                    "want_l": 0,
                    "want_r": 0,
                    "want_ans": 0,
                    "want_all": True,
                    "element": element,
                },
            )
        # This node's movement duty ends once its elements are dispatched;
        # the epoch barrier is carried by the delete-side Gets, which only
        # complete after every rank put has landed.
        self._move_interval_done = True
        self._maybe_delete_done(epoch)

    def ks_order_resolved_hook(self, token, i, holding, order: int) -> None:
        """Holder role: the element's exact global rank is its position."""
        if token[0] != "sc":  # pragma: no cover - structural
            raise ProtocolError(f"unexpected want_all sort session {token}")
        epoch = token[1]
        element: Element = holding["element"]
        request_id = self.dht_put(
            self.keyspace.seap_position_key(epoch, order), element
        )
        self._sc_rank_puts.add(request_id)

    def dht_put_confirmed(self, request_id: int) -> None:
        if request_id in self._sc_rank_puts:
            self._sc_rank_puts.discard(request_id)
            return
        super().dht_put_confirmed(request_id)

    # -- serialization keys witnessing sequential consistency ----------------------

    def _dv_delete_interval(self, tag, part) -> None:
        epoch = tag[1]
        start, limit, expect_moves = part
        if not expect_moves:
            self._move_interval_done = True
        for offset, handle in enumerate(self._delete_snapshot):
            pos = start + offset
            if pos <= limit:
                request_id = self.dht_get(self.keyspace.seap_position_key(epoch, pos))
                self._pending_gets[request_id] = handle
                if self.history is not None:
                    # Position == exact rank, so (epoch, 1, pos) is both the
                    # serial pop order and consistent with local order
                    # (a node's positions are consecutive in seq order).
                    self.history.record_order(
                        handle.op_id, (epoch, 1, pos) + handle.op_id
                    )
            else:
                handle.done = True
                from ..element import BOTTOM

                handle.result = BOTTOM
                if self.history is not None:
                    self.history.record_order(
                        handle.op_id, (epoch, 1, limit + 1 + offset) + handle.op_id
                    )
                    self.history.record_bot(handle.op_id)
        self._delete_snapshot = []
        self._delete_interval_done = True
        self._maybe_delete_done(epoch)

    def dht_get_returned(self, request_id: int, key: float, element: Element) -> None:
        handle = self._pending_gets.pop(request_id)
        handle.done = True
        handle.result = element
        if self.history is not None:
            # Order was already recorded at position-assignment time.
            self.history.record_return(handle.op_id, element.uid)
        self._maybe_delete_done(self.epoch)


class SeapSCHeap(SeapHeap):
    """User-facing heap for the sequentially consistent Seap variant."""

    def make_node(self, view: LocalView) -> SeapSCNode:
        return SeapSCNode(
            view, self.keyspace, history=self.history, delta_scale=self.delta_scale
        )
