"""Seap (Section 5): serializable distributed heap, arbitrary priorities."""

from .heap import SeapHeap
from .protocol import SeapNode
from .sc import SeapSCHeap, SeapSCNode

__all__ = ["SeapHeap", "SeapNode", "SeapSCHeap", "SeapSCNode"]
