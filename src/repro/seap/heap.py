"""User-facing Seap heap: serializable, arbitrary priorities.

:class:`SeapHeap` mirrors :class:`~repro.skeap.heap.SkeapHeap`'s API but
accepts priorities from an arbitrary integer range and trades local
consistency for O(log n)-bit messages::

    heap = SeapHeap(n_nodes=16, seed=7)
    heap.insert(priority=123456, value="job-a", at=0)
    handle = heap.delete_min(at=5)
    heap.settle()
"""

from __future__ import annotations

from typing import Any

from ..cluster import OverlayCluster
from ..overlay.ldb import LocalView
from ..overlay.membership import MembershipReport, join_node, leave_node
from ..semantics.history import History
from ..skeap.protocol import OpHandle
from .protocol import SeapNode

__all__ = ["SeapHeap"]


class SeapHeap(OverlayCluster):
    """A serializable distributed heap for arbitrary priorities."""

    def __init__(
        self,
        n_nodes: int,
        seed: int = 0,
        runner: str = "sync",
        record_history: bool = True,
        delta_scale: float = 1.0,
        **cluster_kwargs,
    ):
        self.history = History() if record_history else None
        self.delta_scale = float(delta_scale)
        self._outstanding: list[OpHandle] = []
        self._submit_cursor = 0
        super().__init__(n_nodes, seed=seed, runner=runner, **cluster_kwargs)

    def make_node(self, view: LocalView) -> SeapNode:
        """Instantiate this protocol's node for one virtual overlay slot."""
        return SeapNode(
            view, self.keyspace, history=self.history, delta_scale=self.delta_scale
        )

    # -- request submission ------------------------------------------------

    def _client(self, at: int | None) -> SeapNode:
        if at is None:
            at = self._submit_cursor % self.n_nodes
            self._submit_cursor += 1
        return self.middle_node(at)  # type: ignore[return-value]

    def insert(
        self,
        priority: int,
        value: Any = None,
        at: int | None = None,
        uid: int | None = None,
    ) -> OpHandle:
        """Issue Insert(e) at real node ``at`` (round-robin if omitted).

        ``uid`` pins the element's identity (crash recovery re-inserts
        survivors under their original uids).
        """
        handle = self._client(at).submit_insert(priority, value, uid=uid)
        self._outstanding.append(handle)
        return handle

    def delete_min(self, at: int | None = None) -> OpHandle:
        """Issue DeleteMin() at real node ``at`` (round-robin if omitted)."""
        handle = self._client(at).submit_delete_min()
        self._outstanding.append(handle)
        return handle

    def insert_many(self, items, at: int | None = None) -> list[OpHandle]:
        """Issue many inserts: ``items`` yields ``(priority, value)`` pairs."""
        return [self.insert(priority=p, value=v, at=at) for p, v in items]

    def delete_min_many(self, count: int, at: int | None = None) -> list[OpHandle]:
        """Issue ``count`` DeleteMin requests."""
        return [self.delete_min(at=at) for _ in range(count)]

    # -- progress ----------------------------------------------------------

    def outstanding(self) -> int:
        """How many submitted requests have not resolved yet."""
        self._outstanding = [h for h in self._outstanding if not h.done]
        return len(self._outstanding)

    def settle(self, limit: float = 1_000_000) -> float:
        """Run until every submitted request resolved; returns rounds/time."""
        done = lambda: self.outstanding() == 0  # noqa: E731
        if hasattr(self.runner, "step"):
            return self.runner.run_until(done, max_rounds=int(limit))
        return self.runner.run_until(done, max_time=float(limit))

    # -- introspection -------------------------------------------------------

    @property
    def anchor_node(self) -> SeapNode:
        return self.anchor  # type: ignore[return-value]

    def heap_size(self) -> int:
        """The anchor's live element count ``m``."""
        return self.anchor_node.m_total

    # -- membership (lazy processing at epoch boundaries) ----------------------

    def pause(self, max_rounds: int = 200_000) -> None:
        """Finish the running epoch and hold before the next one.

        After this returns, requests submitted before :meth:`resume` are
        guaranteed to be snapshotted together in the next epoch — the
        epoch-aligned submission the integration tests and the sorting
        example rely on.
        """
        anchor = self.anchor_node
        anchor.pause_epochs()
        self.runner.run_until(
            lambda: anchor._held_epoch is not None
            and self.runner.pending_messages() == 0,
            max_rounds=max_rounds,
        )

    def resume(self) -> None:
        """Release the held epoch after :meth:`pause`."""
        self.anchor_node.resume_epochs()

    def _transfer_anchor(self, old_anchor: SeapNode) -> None:
        new_anchor = self.anchor_node
        if new_anchor is old_anchor:
            return
        new_anchor.m_total = old_anchor.m_total
        new_anchor._started = old_anchor._started
        new_anchor._paused = old_anchor._paused
        new_anchor._held_epoch = old_anchor._held_epoch
        old_anchor._paused = False
        old_anchor._held_epoch = None
        old_anchor._started = True  # never bootstrap a second epoch stream

    def add_node(self, real_id: int) -> MembershipReport:
        """Join a new process, preserving heap contents and bookkeeping."""
        self.pause()
        old_anchor = self.anchor_node
        report = join_node(self, real_id)
        # The newcomer's epoch counter starts at -1 and adopts the next
        # broadcast epoch naturally; mark it started so a second anchor
        # bootstrap can never happen.
        for kind in range(3):
            self.nodes[real_id * 3 + kind]._started = True
        self._transfer_anchor(old_anchor)
        self.resume()
        return report

    def remove_node(self, real_id: int) -> MembershipReport:
        """Leave: hand off stored elements, then depart."""
        if real_id not in self.topology.real_ids:
            from ..errors import MembershipError

            raise MembershipError(f"node {real_id} not present")
        self.pause()
        old_anchor = self.anchor_node
        departing = [self.nodes[real_id * 3 + k] for k in range(3)]
        if any(n.has_work() for n in departing):
            from ..errors import MembershipError

            raise MembershipError(
                f"node {real_id} still has buffered or unresolved requests"
            )
        held = old_anchor._held_epoch
        m = old_anchor.m_total
        started = old_anchor._started
        report = leave_node(self, real_id)
        new_anchor = self.anchor_node
        if new_anchor is not old_anchor and old_anchor.id not in self.nodes:
            new_anchor.m_total = m
            new_anchor._started = started
            new_anchor._paused = True
            new_anchor._held_epoch = held
        elif old_anchor.id in self.nodes:
            self._transfer_anchor(old_anchor)
        self.resume()
        return report
