"""Protocol Seap (Section 5): a serializable distributed heap for
arbitrary priorities, with O(log n)-bit messages.

Epochs alternate two global phases, driven by the anchor:

**Insert phase** — the number of buffered Insert requests is aggregated to
the anchor (updating its element count ``m``); the anchor broadcasts the
go-signal; every node stores its elements under fresh uniformly random DHT
keys and reports completion once all its Puts are acknowledged.

**DeleteMin phase** — the number ``D`` of buffered DeleteMin requests is
aggregated; the anchor runs KSelect for ``k = min(D, m)`` to find the
rank-k element; every node then (a) moves its locally stored elements with
key ≤ threshold to the DHT position keys ``h(epoch, pos)`` for the unique
positions it was assigned out of ``[1, k]``, and (b) issues Gets for the
position sub-interval covering its own DeleteMin requests.  Requests
beyond ``k`` resolve to ⊥.  A completion barrier then opens the next
epoch's insert phase.

Unlike Skeap, no batch vectors ever travel: every message carries O(1)
counters, intervals or element keys — O(log n) bits (Lemma 5.5).
"""

from __future__ import annotations

from collections import deque
from typing import Any

from ..dht.hashing import KeySpace
from ..element import BOTTOM, Element, PrioKey
from ..errors import ProtocolError
from ..overlay.aggregation import AggSpec, sum_combine
from ..overlay.base import OverlayNode
from ..overlay.ldb import LocalView
from ..semantics.history import DELETE, INSERT, History
from ..sim.trace import OP, PHASE, op_ctx
from ..skeap.protocol import OpHandle
from ..kselect.protocol import KSelectMixin

__all__ = ["SeapNode"]

#: order-key sentinel placing ⊥ deletes after every real element
_BOT_KEY: PrioKey = (1 << 62, 1 << 62)


class SeapNode(OverlayNode, KSelectMixin):
    """One virtual node running Seap (and KSelect as a sub-protocol)."""

    def __init__(
        self,
        view: LocalView,
        keyspace: KeySpace,
        history: History | None = None,
        delta_scale: float = 1.0,
    ):
        super().__init__(view, keyspace)
        self._init_kselect(delta_scale=delta_scale)
        self.history = history
        self.epoch = -1  # last epoch whose insert phase this node entered
        self.buffered_inserts: deque[OpHandle] = deque()
        self.buffered_deletes: deque[OpHandle] = deque()
        self._insert_snapshot: list[OpHandle] = []
        self._delete_snapshot: list[OpHandle] = []
        self._next_seq = 0
        self._pending_put_acks: dict[int, OpHandle] = {}
        self._pending_gets: dict[int, OpHandle] = {}
        self._pending_move_acks: set[int] = set()
        self._delete_interval_done = False
        self._move_interval_done = False
        self._move_threshold: PrioKey | None = None
        self._move_buffer: list[Element] = []
        self._started = False
        # anchor-only epoch state
        self._paused = False
        self._held_epoch: int | None = None
        self.m_total = 0
        self._epoch_deletes = 0
        self._epoch_k = 0

        self.register_bcast("spI", type(self)._bc_insert_phase)
        self.register_bcast("spIg", type(self)._bc_insert_go)
        self.register_bcast("spD", type(self)._bc_delete_phase)
        self.register_agg("spIc", AggSpec(combine=lambda s, t, o, c: sum_combine(o, c), at_root=type(self)._rt_insert_count))
        self.register_agg("spId", AggSpec(combine=lambda s, t, o, c: sum_combine(o, c), at_root=type(self)._rt_insert_done))
        self.register_agg(
            "spDc",
            AggSpec(
                combine=lambda s, t, o, c: sum_combine(o, c),
                at_root=type(self)._rt_delete_count,
                decompose=type(self)._dc_interval,
                deliver=type(self)._dv_delete_interval,
            ),
        )
        self.register_agg(
            "spTc",
            AggSpec(
                combine=lambda s, t, o, c: sum_combine(o, c),
                at_root=type(self)._rt_move_count,
                decompose=type(self)._dc_interval,
                deliver=type(self)._dv_move_interval,
            ),
        )
        self.register_agg("spDd", AggSpec(combine=lambda s, t, o, c: sum_combine(o, c), at_root=type(self)._rt_delete_done))

    # -- client API -----------------------------------------------------

    def submit_insert(self, priority: int, value: Any = None, uid: int | None = None) -> OpHandle:
        if priority < 0:
            raise ProtocolError("priorities must be non-negative integers")
        handle = OpHandle(
            op_id=(self.view.owner, self._take_seq()),
            kind=INSERT,
            priority=priority,
            uid=uid if uid is not None else self._default_uid(),
            value=value,
        )
        self.buffered_inserts.append(handle)
        if self.history is not None:
            self.history.record_submit(handle.op_id, INSERT, priority, handle.uid)
        tr = self.tracer
        if tr is not None:
            tr.emit_ctx(
                OP, op_ctx(handle.op_id), ev="submit", kind=INSERT,
                node=self.id, priority=priority,
            )
        return handle

    def submit_delete_min(self) -> OpHandle:
        handle = OpHandle(op_id=(self.view.owner, self._take_seq()), kind=DELETE)
        self.buffered_deletes.append(handle)
        if self.history is not None:
            self.history.record_submit(handle.op_id, DELETE)
        tr = self.tracer
        if tr is not None:
            tr.emit_ctx(OP, op_ctx(handle.op_id), ev="submit", kind=DELETE, node=self.id)
        return handle

    def _take_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def _default_uid(self) -> int:
        return (self.view.owner << 32) | self._next_seq

    def has_work(self) -> bool:
        return bool(
            self.buffered_inserts
            or self.buffered_deletes
            or self._pending_put_acks
            or self._pending_gets
            or self._pending_move_acks
        )

    # -- bootstrap ----------------------------------------------------------

    def on_activate(self) -> None:
        if self.view.is_anchor and not self._started:
            self._started = True
            self._next_epoch(0)

    def wants_activation(self) -> bool:
        # on_activate only bootstraps the anchor's epoch machinery; all
        # other progress is message-driven (broadcast/aggregation waves).
        return self.view.is_anchor and not self._started

    # -- insert phase -----------------------------------------------------------

    def _bc_insert_phase(self, tag, payload) -> None:
        epoch = tag[1]
        if epoch <= self.epoch:  # pragma: no cover - structural
            raise ProtocolError("insert phase for a stale epoch")
        self.epoch = epoch
        self._delete_interval_done = False
        self._move_interval_done = False
        self._insert_snapshot = list(self.buffered_inserts)
        self.buffered_inserts.clear()
        tr = self.tracer
        if tr is not None:
            for h in self._insert_snapshot:
                tr.emit_ctx(OP, op_ctx(h.op_id), ev="batched", ep=epoch)
        self.agg_contribute(("spIc", epoch), len(self._insert_snapshot))

    def _rt_insert_count(self, tag, total: int) -> None:
        self.m_total += total
        self.bcast(("spIg", tag[1]), None)

    def _bc_insert_go(self, tag, payload) -> None:
        epoch = tag[1]
        tr = self.tracer
        prev_ctx = tr.ctx if tr is not None else None
        for handle in self._insert_snapshot:
            element = Element(handle.priority, handle.uid, handle.value)
            key = self.keyspace.uniform_key(epoch, self.id, handle.op_id[1])
            if tr is not None:
                # Causality boundary: the go-signal turns into this op's
                # exclusive DHT Put (and the routing it spawns).
                tr.ctx = op_ctx(handle.op_id)
                tr.emit(OP, ev="dht", op_kind="put", ep=epoch)
            request_id = self.dht_put(key, element)
            self._pending_put_acks[request_id] = handle
            if self.history is not None:
                self.history.record_order(
                    handle.op_id, (epoch, 0, handle.op_id[0], handle.op_id[1])
                )
        if tr is not None:
            tr.ctx = prev_ctx
        self._insert_snapshot = []
        self._maybe_insert_done(epoch)

    def _maybe_insert_done(self, epoch: int) -> None:
        if not self._pending_put_acks:
            self.agg_contribute(("spId", epoch), 1)

    def _rt_insert_done(self, tag, _count) -> None:
        self.bcast(("spD", tag[1]), None)

    # -- delete phase: counting ----------------------------------------------------

    def _bc_delete_phase(self, tag, payload) -> None:
        epoch = tag[1]
        self._delete_snapshot = list(self.buffered_deletes)
        self.buffered_deletes.clear()
        tr = self.tracer
        if tr is not None:
            for h in self._delete_snapshot:
                tr.emit_ctx(OP, op_ctx(h.op_id), ev="batched", ep=epoch)
        self.agg_contribute(("spDc", epoch), len(self._delete_snapshot))

    def _rt_delete_count(self, tag, total: int) -> None:
        epoch = tag[1]
        self._epoch_deletes = total
        self._epoch_k = min(total, self.m_total)
        tr = self.tracer
        if tr is not None:
            tr.emit(
                PHASE, proto="seap", name="delete_phase", ep=epoch,
                deletes=total, k=self._epoch_k,
            )
        if total == 0:
            # Nothing to delete anywhere: straight to the next insert phase.
            self._next_epoch(epoch + 1)
            return
        if self._epoch_k == 0:
            # Heap empty: every request resolves to ⊥ and no elements move.
            self.agg_distribute(("spDc", epoch), (1, 0, False))
            return
        self.kselect_begin(self._epoch_k, epoch, self._kselect_complete)

    # -- delete phase: selection and movement ------------------------------------------

    def _kselect_complete(self, session: int, threshold: PrioKey) -> None:
        """Anchor hook: the rank-k key is known; wait for spTc contributions."""
        # Contributions arrive via kselect_finished at every node.

    def kselect_finished(self, session: int, threshold: PrioKey) -> None:
        """Every node: extract local elements ≤ threshold toward positions.

        Extraction happens *now* — before any node starts moving — so an
        element moved here by a peer (stored under a position key) can
        never be extracted and moved a second time.
        """
        self._move_threshold = tuple(threshold)
        extracted = self.store.extract_leq(self._move_threshold)
        self._move_buffer = sorted((e for _, e in extracted), key=lambda e: e.key)
        self.agg_contribute(("spTc", session), len(self._move_buffer))

    def _rt_move_count(self, tag, total: int) -> None:
        epoch = tag[1]
        if total != self._epoch_k:  # pragma: no cover - uid-unique keys
            raise ProtocolError(
                f"epoch {epoch}: {total} elements ≤ threshold, expected {self._epoch_k}"
            )
        self.m_total -= self._epoch_k
        tr = self.tracer
        if tr is not None:
            tr.emit(PHASE, proto="seap", name="move", ep=epoch, k=self._epoch_k)
        # Positions [1, k] for moved elements, and the same interval carved
        # up over the DeleteMin requesters (excess requests resolve ⊥).
        self.agg_distribute(("spTc", epoch), (1, self._epoch_k))
        self.agg_distribute(("spDc", epoch), (1, self._epoch_k, True))

    def _dc_interval(self, tag, payload):
        """Split ``(start, limit, *rest)`` by the memorized per-subtree counts."""
        start, limit, *rest = payload
        own_count, child_counts = self.agg_memory(tag)
        own_part = (start, limit, *rest)
        cursor = start + own_count
        child_parts = {}
        for child, count in child_counts:
            child_parts[child] = (cursor, limit, *rest)
            cursor += count
        return own_part, child_parts

    def _dv_move_interval(self, tag, part) -> None:
        epoch = tag[1]
        start, limit = part
        moved = self._move_buffer
        self._move_buffer = []
        for offset, element in enumerate(moved):
            pos = start + offset
            if pos > limit:  # pragma: no cover - counts were validated
                raise ProtocolError("move interval overflow")
            request_id = self.dht_put(
                self.keyspace.seap_position_key(epoch, pos), element
            )
            self._pending_move_acks.add(request_id)
        self._move_interval_done = True
        self._maybe_delete_done(epoch)

    def _dv_delete_interval(self, tag, part) -> None:
        epoch = tag[1]
        start, limit, expect_moves = part
        if not expect_moves:
            self._move_interval_done = True
        tr = self.tracer
        prev_ctx = tr.ctx if tr is not None else None
        for offset, handle in enumerate(self._delete_snapshot):
            pos = start + offset
            if pos <= limit:
                if tr is not None:
                    tr.ctx = op_ctx(handle.op_id)
                    tr.emit(OP, ev="dht", op_kind="get", ep=epoch, pos=pos)
                request_id = self.dht_get(self.keyspace.seap_position_key(epoch, pos))
                self._pending_gets[request_id] = handle
            else:
                handle.done = True
                handle.result = BOTTOM
                if self.history is not None:
                    self.history.record_order(
                        handle.op_id, (epoch, 1) + _BOT_KEY + handle.op_id
                    )
                    self.history.record_bot(handle.op_id)
                if tr is not None:
                    tr.emit_ctx(OP, op_ctx(handle.op_id), ev="done", result="bot")
        if tr is not None:
            tr.ctx = prev_ctx
        self._delete_snapshot = []
        self._delete_interval_done = True
        self._maybe_delete_done(epoch)

    # -- completions and the epoch barrier ---------------------------------------------

    def dht_put_confirmed(self, request_id: int) -> None:
        handle = self._pending_put_acks.pop(request_id, None)
        if handle is not None:
            handle.done = True
            handle.result = True
            if self.history is not None:
                self.history.record_insert_done(handle.op_id)
            tr = self.tracer
            if tr is not None:
                tr.emit_ctx(OP, op_ctx(handle.op_id), ev="done", result="stored")
            self._maybe_insert_done(self.epoch)
            return
        if request_id in self._pending_move_acks:
            self._pending_move_acks.discard(request_id)
            self._maybe_delete_done(self.epoch)
            return
        raise ProtocolError(f"unexpected put ack {request_id}")

    def dht_get_returned(self, request_id: int, key: float, element: Element) -> None:
        handle = self._pending_gets.pop(request_id)
        handle.done = True
        handle.result = element
        if self.history is not None:
            # Deletes serialize in the order of the elements they return,
            # which makes the epoch's serial execution pop minima in order.
            self.history.record_order(
                handle.op_id, (self.epoch, 1) + element.key + handle.op_id
            )
            self.history.record_return(handle.op_id, element.uid)
        tr = self.tracer
        if tr is not None:
            tr.emit_ctx(OP, op_ctx(handle.op_id), ev="done", result=element.uid)
        self._maybe_delete_done(self.epoch)

    def _maybe_delete_done(self, epoch: int) -> None:
        if (
            self._delete_interval_done
            and self._move_interval_done
            and not self._pending_gets
            and not self._pending_move_acks
        ):
            self._delete_interval_done = False
            self._move_interval_done = False
            self.agg_contribute(("spDd", epoch), 1)

    def _rt_delete_done(self, tag, _count) -> None:
        self._next_epoch(tag[1] + 1)

    # -- pausing at epoch boundaries (membership's lazy processing points) ------

    def _next_epoch(self, epoch: int) -> None:
        if self._paused:
            self._held_epoch = epoch
            return
        self._open_epoch(epoch)

    def _open_epoch(self, epoch: int) -> None:
        """Broadcast the insert-phase signal under the epoch's trace ctx.

        Causality boundary: every message the epoch's shared machinery
        sends from here on (broadcast waves, count aggregations, KSelect)
        inherits the ``("seap-ep", epoch)`` context ambiently.
        """
        tr = self.tracer
        if tr is None:
            self.bcast(("spI", epoch), None)
            return
        tr.emit(PHASE, proto="seap", name="insert_phase", ep=epoch)
        prev = tr.ctx
        tr.ctx = ("seap-ep", epoch)
        self.bcast(("spI", epoch), None)
        tr.ctx = prev

    def pause_epochs(self) -> None:
        """Anchor: finish the running epoch, then hold (membership point)."""
        self._paused = True

    def resume_epochs(self) -> None:
        self._paused = False
        if self._held_epoch is not None:
            epoch, self._held_epoch = self._held_epoch, None
            self._open_epoch(epoch)
