"""Cluster construction: topology + nodes + runner, wired together.

:class:`OverlayCluster` is the base harness both heap protocols and the
standalone KSelect build on.  It constructs the LDB topology for ``n``
real nodes, instantiates one protocol node per *virtual* node (the paper's
emulation model), registers them with the chosen driver and exposes
convenience accessors used by examples, tests and benchmarks.
"""

from __future__ import annotations

from typing import Callable

from .dht.hashing import KeySpace
from .errors import SimulationError
from .overlay.base import OverlayNode
from .overlay.ldb import LDBTopology, LocalView, VirtualKind, owner_of, vid_for
from .overlay.routing import RoutePlanner
from .sim.async_runner import AsyncRunner
from .sim.faults import FaultInjector, FaultPlan
from .sim.sync_runner import SyncRunner

__all__ = ["OverlayCluster"]


class OverlayCluster:
    """A running overlay of ``n_nodes`` real processes.

    Subclasses override :meth:`make_node` to instantiate their protocol's
    node class.  ``runner`` selects the execution model: ``"sync"`` (the
    paper's round-based performance model) or ``"async"`` (arbitrary
    delays, used for correctness-under-asynchrony tests).
    """

    def __init__(
        self,
        n_nodes: int,
        seed: int = 0,
        runner: str = "sync",
        delay_fn: Callable | None = None,
        metrics_detail: bool = False,
        faults: FaultInjector | FaultPlan | None = None,
        exact_transport: bool | None = None,
        batched_dispatch: bool | None = None,
    ):
        if n_nodes < 1:
            raise SimulationError("cluster needs at least one node")
        self.seed = int(seed)
        self.n_nodes = int(n_nodes)
        self.topology = LDBTopology(list(range(n_nodes)), seed=seed)
        self.keyspace = KeySpace(seed)
        if isinstance(faults, FaultPlan):
            faults = FaultInjector(faults)
        if runner == "sync":
            self.runner = SyncRunner(
                seed=seed, owner_of=owner_of, metrics_detail=metrics_detail,
                faults=faults, exact_transport=exact_transport,
                batched_dispatch=batched_dispatch,
            )
        elif runner == "async":
            kwargs = {"delay_fn": delay_fn} if delay_fn is not None else {}
            self.runner = AsyncRunner(
                seed=seed, owner_of=owner_of, metrics_detail=metrics_detail,
                faults=faults, exact_transport=exact_transport, **kwargs
            )
        else:
            raise SimulationError(f"unknown runner kind {runner!r}")
        #: shared hop-sequence oracle for the routing fast path; membership
        #: churn invalidates/refreshes it (see RoutePlanner's epoch story)
        self.route_planner = RoutePlanner(self.topology)
        self.nodes: dict[int, OverlayNode] = {}
        for vid, view in self.topology.all_views().items():
            node = self.make_node(view)
            self.nodes[vid] = node
            self.runner.register(node)
            node.route_planner = self.route_planner
            node._route_epoch = self.route_planner.version

    # -- subclass hook ---------------------------------------------------

    def make_node(self, view: LocalView) -> OverlayNode:
        """Instantiate the node for one virtual slot (subclass hook)."""
        return OverlayNode(view, self.keyspace)

    # -- accessors ---------------------------------------------------------

    @property
    def metrics(self):
        """The runner's metrics collector (rounds, congestion, bits)."""
        return self.runner.metrics

    @property
    def anchor(self) -> OverlayNode:
        """The aggregation-tree root node."""
        return self.nodes[self.topology.anchor]

    def middle_node(self, real_id: int) -> OverlayNode:
        """The middle virtual node of a real process — its 'client' face."""
        return self.nodes[vid_for(real_id, VirtualKind.MIDDLE)]

    def middles(self) -> list[OverlayNode]:
        return [self.middle_node(r) for r in self.topology.real_ids]

    def owner_store_sizes(self) -> dict[int, int]:
        """Stored elements per real process (fairness experiment T9)."""
        sizes: dict[int, int] = {r: 0 for r in self.topology.real_ids}
        for vid, node in self.nodes.items():
            sizes[owner_of(vid)] += len(node.store)
        return sizes

    def total_stored(self) -> int:
        return sum(len(node.store) for node in self.nodes.values())

    @property
    def fault_stats(self):
        """Transport statistics of the installed fault injector (or None)."""
        injector = self.runner.faults
        return injector.stats if injector is not None else None

    def stored_uids(self) -> list[int]:
        """The uids of every element currently stored in the DHT.

        The raw material of the element-conservation check (T13's "no
        elements lost"): after quiescence these, plus the returned uids,
        must account for exactly the inserted uids.
        """
        return [
            element.uid
            for node in self.nodes.values()
            for _, element in node.store.items()
        ]

    def all_route_hops(self) -> list[int]:
        hops: list[int] = []
        for node in self.nodes.values():
            hops.extend(node.route_hops)
        return hops

    # -- execution ------------------------------------------------------------

    def run_until(self, predicate, **kwargs):
        """Drive the runner until ``predicate()`` holds."""
        return self.runner.run_until(predicate, **kwargs)

    def run_until_quiescent(self, **kwargs):
        """Drive the runner until no messages/work remain."""
        return self.runner.run_until_quiescent(**kwargs)
