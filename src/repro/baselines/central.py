"""Centralized-coordinator heap — the scalability strawman.

Every client forwards each request as an individual message to a single
coordinator process holding a sequential binary heap; the coordinator
replies per request.  Latency per op is a constant two hops, but the
coordinator's congestion equals the *total* injection rate ``n·Λ`` — the
bottleneck the paper's aggregation-tree batching exists to avoid
(experiment T12 measures the contrast).
"""

from __future__ import annotations

from collections import deque
from typing import Any

from ..element import BOTTOM, Element
from ..errors import ProtocolError
from ..sim.node import ProtocolNode
from ..sim.sync_runner import SyncRunner
from ..skeap.protocol import OpHandle
from .seqheap import BinaryHeap

__all__ = ["CentralHeapCluster"]


class _Coordinator(ProtocolNode):
    """Holds the one heap; serves every request itself."""

    def __init__(self, node_id: int):
        super().__init__(node_id)
        self.heap = BinaryHeap()
        self.elements: dict[tuple, Element] = {}

    def on_central_insert(self, sender: int, priority: int, uid: int, value: Any, req: int) -> None:
        element = Element(priority, uid, value)
        self.heap.insert(element.key)
        self.elements[element.key] = element
        self.send(sender, "central_ins_ack", req=req)

    def on_central_delete(self, sender: int, req: int) -> None:
        if len(self.heap) == 0:
            self.send(sender, "central_del_reply", req=req, element=None)
            return
        key = self.heap.delete_min()
        element = self.elements.pop(key)
        self.send(sender, "central_del_reply", req=req, element=element)


class _Client(ProtocolNode):
    """Buffers client requests; ships one message per request per round."""

    def __init__(self, node_id: int, coordinator_id: int):
        super().__init__(node_id)
        self.coordinator_id = coordinator_id
        self.buffered: deque[tuple[str, OpHandle]] = deque()
        self.pending: dict[int, OpHandle] = {}
        self._req = 0

    def has_work(self) -> bool:
        return bool(self.buffered) or bool(self.pending)

    def wants_activation(self) -> bool:
        # Mirrors on_activate: only buffered requests trigger sends;
        # ``pending`` just awaits coordinator replies (messages re-wake us).
        return bool(self.buffered)

    def on_activate(self) -> None:
        while self.buffered:
            kind, handle = self.buffered.popleft()
            self._req += 1
            self.pending[self._req] = handle
            if kind == "ins":
                self.send(
                    self.coordinator_id,
                    "central_insert",
                    priority=handle.priority,
                    uid=handle.uid,
                    value=handle.value,
                    req=self._req,
                )
            else:
                self.send(self.coordinator_id, "central_delete", req=self._req)

    def on_central_ins_ack(self, sender: int, req: int) -> None:
        handle = self.pending.pop(req)
        handle.done = True
        handle.result = True

    def on_central_del_reply(self, sender: int, req: int, element: Element | None) -> None:
        handle = self.pending.pop(req)
        handle.done = True
        handle.result = element if element is not None else BOTTOM


class CentralHeapCluster:
    """n clients, one coordinator, a synchronous driver (experiment T12)."""

    def __init__(self, n_nodes: int, seed: int = 0, metrics_detail: bool = False):
        if n_nodes < 1:
            raise ProtocolError("need at least one client")
        self.n_nodes = n_nodes
        self.runner = SyncRunner(seed=seed, metrics_detail=metrics_detail)
        self.coordinator = _Coordinator(node_id=n_nodes)  # ids 0..n-1 are clients
        self.clients = [_Client(i, self.coordinator.id) for i in range(n_nodes)]
        self.runner.register(self.coordinator)
        self.runner.register_all(self.clients)
        self._outstanding: list[OpHandle] = []
        self._uid = 0

    @property
    def metrics(self):
        return self.runner.metrics

    def insert(self, priority: int, value: Any = None, at: int = 0) -> OpHandle:
        self._uid += 1
        handle = OpHandle(
            op_id=(at, self._uid), kind="ins", priority=priority,
            uid=self._uid, value=value,
        )
        client = self.clients[at]
        client.buffered.append(("ins", handle))
        client.request_activation()
        self._outstanding.append(handle)
        return handle

    def delete_min(self, at: int = 0) -> OpHandle:
        self._uid += 1
        handle = OpHandle(op_id=(at, self._uid), kind="del")
        client = self.clients[at]
        client.buffered.append(("del", handle))
        client.request_activation()
        self._outstanding.append(handle)
        return handle

    def outstanding(self) -> int:
        self._outstanding = [h for h in self._outstanding if not h.done]
        return len(self._outstanding)

    def settle(self, max_rounds: int = 100_000) -> int:
        return self.runner.run_until(lambda: self.outstanding() == 0, max_rounds)
