"""Naive distributed selection: gather everything at the root.

The obvious alternative to KSelect: aggregate the full (sorted) candidate
lists up the tree and index the k-th element at the anchor.  The hop count
is a single aggregation phase — but the messages near the root carry
Θ(m log m) bits and the root handles Θ(m)-sized payloads, which is exactly
what Theorem 4.2's O(log n)-bit-message claim is measured against
(experiment T6).
"""

from __future__ import annotations

from typing import Iterable

from ..cluster import OverlayCluster
from ..dht.hashing import KeySpace
from ..element import PrioKey
from ..errors import ProtocolError
from ..overlay.aggregation import AggSpec
from ..overlay.base import OverlayNode
from ..overlay.ldb import LocalView

__all__ = ["GatherSelectCluster"]


class _GatherNode(OverlayNode):
    def __init__(self, view: LocalView, keyspace: KeySpace):
        super().__init__(view, keyspace)
        self.local_elements: list[PrioKey] = []
        self.results: dict[int, PrioKey] = {}
        self._pending_k: dict[int, int] = {}
        self.register_bcast("gatherB", _GatherNode._bc_begin)
        self.register_agg(
            "gatherV",
            AggSpec(combine=_GatherNode._combine, at_root=_GatherNode._at_root),
        )

    def begin(self, session: int, k: int) -> None:
        if not self.view.is_anchor:
            raise ProtocolError("gather-select starts at the anchor")
        self._pending_k[session] = k
        self.bcast(("gatherB", session), None)

    def _bc_begin(self, tag, payload) -> None:
        self.agg_contribute(("gatherV", tag[1]), sorted(self.local_elements))

    def _combine(self, tag, own, children):
        merged = list(own)
        for _, keys in children:
            merged.extend(tuple(k) for k in keys)
        merged.sort()
        return merged

    def _at_root(self, tag, merged) -> None:
        session = tag[1]
        k = self._pending_k.pop(session)
        if not 1 <= k <= len(merged):
            raise ProtocolError(f"k={k} outside 1..{len(merged)}")
        self.results[session] = tuple(merged[k - 1])


class GatherSelectCluster(OverlayCluster):
    """Baseline comparator for KSelect (same overlay, naive algorithm)."""

    def __init__(self, n_nodes: int, seed: int = 0, **kwargs):
        self._next_session = 0
        super().__init__(n_nodes, seed=seed, **kwargs)

    def make_node(self, view: LocalView) -> _GatherNode:
        return _GatherNode(view, self.keyspace)

    def scatter(self, keys: Iterable[PrioKey]) -> None:
        rng = self.runner.rng.stream("gather-scatter")
        for key in keys:
            target = int(rng.integers(0, self.n_nodes))
            self.middle_node(target).local_elements.append(tuple(key))

    def select(self, k: int, max_rounds: int = 100_000) -> PrioKey:
        session = self._next_session
        self._next_session += 1
        anchor = self.anchor
        anchor.begin(session, k)
        self.runner.run_until(
            lambda: session in anchor.results, max_rounds=max_rounds
        )
        return anchor.results[session]
