"""Sequential binary min-heap — the classical single-machine reference.

Implemented from scratch (array-based sift-up/sift-down) rather than via
``heapq`` so that the reference the distributed protocols are measured
against is itself a first-class, tested implementation.  Ordered by the
element total order ``(priority, uid)``.
"""

from __future__ import annotations

from ..element import PrioKey
from ..errors import ProtocolError

__all__ = ["BinaryHeap"]


class BinaryHeap:
    """Array-based binary min-heap over ``(priority, uid)`` keys."""

    def __init__(self) -> None:
        self._a: list[PrioKey] = []

    def __len__(self) -> int:
        return len(self._a)

    def __bool__(self) -> bool:
        return bool(self._a)

    def insert(self, key: PrioKey) -> None:
        self._a.append(tuple(key))
        self._sift_up(len(self._a) - 1)

    def peek(self) -> PrioKey:
        if not self._a:
            raise ProtocolError("peek on empty heap")
        return self._a[0]

    def delete_min(self) -> PrioKey:
        if not self._a:
            raise ProtocolError("delete_min on empty heap")
        top = self._a[0]
        last = self._a.pop()
        if self._a:
            self._a[0] = last
            self._sift_down(0)
        return top

    def _sift_up(self, i: int) -> None:
        item = self._a[i]
        while i > 0:
            parent = (i - 1) >> 1
            if self._a[parent] <= item:
                break
            self._a[i] = self._a[parent]
            i = parent
        self._a[i] = item

    def _sift_down(self, i: int) -> None:
        n = len(self._a)
        item = self._a[i]
        while True:
            left = 2 * i + 1
            if left >= n:
                break
            child = left
            right = left + 1
            if right < n and self._a[right] < self._a[left]:
                child = right
            if item <= self._a[child]:
                break
            self._a[i] = self._a[child]
            i = child
        self._a[i] = item

    def check_invariant(self) -> None:
        """Every parent ≤ both children (used by property tests)."""
        for i in range(1, len(self._a)):
            parent = (i - 1) >> 1
            if self._a[parent] > self._a[i]:
                raise ProtocolError(f"heap property violated at index {i}")
