"""Baselines and ablations the experiments compare against."""

from .central import CentralHeapCluster
from .gather_select import GatherSelectCluster
from .seqheap import BinaryHeap
from .unbatched import UnbatchedHeapCluster

__all__ = [
    "BinaryHeap",
    "CentralHeapCluster",
    "GatherSelectCluster",
    "UnbatchedHeapCluster",
]
