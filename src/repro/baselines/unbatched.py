"""Skeap without batching — the ablation for aggregation-tree combining.

Identical overlay, identical anchor position logic, but every request
travels to the anchor as its *own* message (no combining at inner nodes)
and receives its own reply.  The anchor's congestion becomes Θ(total
injected ops) instead of Skeap's O~(Λ); experiment A1 measures the gap,
which is the paper's core scalability argument for batching.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from ..dht.hashing import KeySpace
from ..element import BOTTOM, Element
from ..errors import ProtocolError
from ..overlay.base import OverlayNode
from ..overlay.ldb import LocalView
from ..cluster import OverlayCluster
from ..skeap.intervals import AnchorState
from ..skeap.protocol import OpHandle

__all__ = ["UnbatchedHeapCluster"]


class _UnbatchedNode(OverlayNode):
    def __init__(self, view: LocalView, keyspace: KeySpace, n_priorities: int):
        super().__init__(view, keyspace)
        self.n_priorities = n_priorities
        self.buffered: deque[OpHandle] = deque()
        self.pending: dict[int, OpHandle] = {}
        self._req = 0
        self.anchor_state = AnchorState(n_priorities) if view.is_anchor else None

    def has_work(self) -> bool:
        return bool(self.buffered) or bool(self.pending)

    def wants_activation(self) -> bool:
        # Mirrors on_activate: only buffered requests trigger sends;
        # ``pending`` just awaits replies (message receipt re-wakes us).
        return bool(self.buffered)

    # -- client side ------------------------------------------------------

    def on_activate(self) -> None:
        while self.buffered:
            handle = self.buffered.popleft()
            self._req += 1
            self.pending[self._req] = handle
            if handle.kind == "ins":
                self._to_anchor(
                    "ub_insert", priority=handle.priority, req=self._req
                )
            else:
                self._to_anchor("ub_delete", req=self._req)

    def _to_anchor(self, action: str, **payload) -> None:
        payload["client"] = self.id
        if self.view.is_anchor:
            if not self.dispatch_action(action, self.id, payload):
                raise ProtocolError(
                    f"node {self.id} has no anchor handler for {action!r}"
                )
        else:
            self.send(self.view.parent, "ub_fwd", action_name=action, payload=payload)

    def on_ub_fwd(self, sender: int, action_name: str, payload: dict) -> None:
        if self.view.is_anchor:
            if not self.dispatch_action(action_name, sender, payload):
                raise ProtocolError(
                    f"node {self.id} has no anchor handler for {action_name!r}"
                )
        else:
            self.send(self.view.parent, "ub_fwd", action_name=action_name, payload=payload)

    # -- anchor side --------------------------------------------------------

    def on_ub_insert(self, sender: int, priority: int, req: int, client: int) -> None:
        state = self.anchor_state
        if state is None:
            raise ProtocolError("insert reached a non-anchor node")
        state.last[priority - 1] += 1
        pos = state.last[priority - 1]
        self.send(client, "ub_ins_pos", req=req, priority=priority, pos=pos)

    def on_ub_delete(self, sender: int, req: int, client: int) -> None:
        state = self.anchor_state
        if state is None:
            raise ProtocolError("delete reached a non-anchor node")
        for p_idx in range(self.n_priorities):
            if state.first[p_idx] <= state.last[p_idx]:
                pos = state.first[p_idx]
                state.first[p_idx] += 1
                self.send(client, "ub_del_pos", req=req, priority=p_idx + 1, pos=pos)
                return
        self.send(client, "ub_del_bot", req=req)

    # -- client completions ----------------------------------------------------

    def on_ub_ins_pos(self, sender: int, req: int, priority: int, pos: int) -> None:
        handle = self.pending.pop(req)
        element = Element(priority, handle.uid, handle.value)
        dht_req = self.dht_put(self.keyspace.skeap_key(priority, pos), element)
        # DHT request ids share the per-node counter with anchor requests;
        # offset them into a disjoint key range.
        self.pending[dht_req + (1 << 40)] = handle

    def on_ub_del_pos(self, sender: int, req: int, priority: int, pos: int) -> None:
        handle = self.pending.pop(req)
        dht_req = self.dht_get(self.keyspace.skeap_key(priority, pos))
        self.pending[dht_req + (1 << 40)] = handle

    def on_ub_del_bot(self, sender: int, req: int) -> None:
        handle = self.pending.pop(req)
        handle.done = True
        handle.result = BOTTOM

    def dht_put_confirmed(self, request_id: int) -> None:
        handle = self.pending.pop(request_id + (1 << 40))
        handle.done = True
        handle.result = True

    def dht_get_returned(self, request_id: int, key: float, element: Element) -> None:
        handle = self.pending.pop(request_id + (1 << 40))
        handle.done = True
        handle.result = element


class UnbatchedHeapCluster(OverlayCluster):
    """Skeap-minus-batching ablation (experiment A1)."""

    def __init__(self, n_nodes: int, n_priorities: int = 2, seed: int = 0, **kwargs):
        self.n_priorities = n_priorities
        self._outstanding: list[OpHandle] = []
        self._uid = 0
        super().__init__(n_nodes, seed=seed, **kwargs)

    def make_node(self, view: LocalView) -> _UnbatchedNode:
        return _UnbatchedNode(view, self.keyspace, self.n_priorities)

    def insert(self, priority: int, value: Any = None, at: int = 0) -> OpHandle:
        self._uid += 1
        handle = OpHandle(
            op_id=(at, self._uid), kind="ins", priority=priority,
            uid=self._uid, value=value,
        )
        node = self.middle_node(at)
        node.buffered.append(handle)
        node.request_activation()
        self._outstanding.append(handle)
        return handle

    def delete_min(self, at: int = 0) -> OpHandle:
        self._uid += 1
        handle = OpHandle(op_id=(at, self._uid), kind="del")
        node = self.middle_node(at)
        node.buffered.append(handle)
        node.request_activation()
        self._outstanding.append(handle)
        return handle

    def outstanding(self) -> int:
        self._outstanding = [h for h in self._outstanding if not h.done]
        return len(self._outstanding)

    def settle(self, max_rounds: int = 200_000) -> int:
        return self.runner.run_until(lambda: self.outstanding() == 0, max_rounds)
