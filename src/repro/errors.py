"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch the whole family with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The simulation kernel was driven into an invalid state."""


class TopologyError(ReproError):
    """The overlay topology is malformed (broken cycle, orphan node, ...)."""


class RoutingError(ReproError):
    """A routed message could not make progress toward its target."""


class ProtocolError(ReproError):
    """A protocol invariant was violated (bad phase transition, bad batch)."""


class ConsistencyError(ReproError):
    """A recorded history violates the consistency model it claims."""


class MembershipError(ReproError):
    """An invalid join or leave request (duplicate id, unknown node, ...)."""


class WorkloadError(ReproError):
    """A workload specification is invalid."""


class ServiceError(ReproError):
    """The live queue service was misused or hit an internal fault."""


class WireError(ServiceError):
    """A wire frame is malformed (oversized, truncated, not JSON, ...)."""


class UnavailableError(ServiceError):
    """A shard (or the whole service) is temporarily unreachable.

    Retryable by construction: the operation was *not* admitted anywhere,
    so resubmitting it cannot double-execute.  The federation router
    raises this for operations homed on a dead shard; everything else
    keeps serving.
    """


class DurabilityError(ServiceError):
    """The durability plane found unusable on-disk state.

    Raised when a journal directory exists but cannot support a certified
    recovery: no valid snapshot and missing segments, a census that
    contradicts the replayed history, or a policy knob outside its domain.
    A *torn journal tail* is never an error — it is truncated cleanly.
    """
