"""Package entry point: a one-minute tour.

``python -m repro`` builds a small Skeap cluster, runs a handful of
requests, machine-checks the history, prints the overlay structure and
where to go next.
"""

from __future__ import annotations

from . import SkeapHeap, __version__, check_skeap_history
from .harness import render_activity, render_tree


def main() -> int:
    print(f"repro {__version__} — Skeap & Seap (SPAA 2019) reproduction\n")
    heap = SkeapHeap(n_nodes=8, n_priorities=3, seed=7, metrics_detail=True)
    heap.insert(priority=2, value="medium", at=1)
    heap.insert(priority=1, value="urgent", at=5)
    first = heap.delete_min(at=3)
    rounds = heap.settle()
    check_skeap_history(heap.history)
    print(
        f"8-process Skeap heap: 2 inserts + 1 DeleteMin settled in {rounds} "
        f"rounds;\nDeleteMin returned {first.result.value!r} "
        f"(priority {first.result.priority}); history machine-checked ✓\n"
    )
    print(render_tree(heap.topology, max_nodes=30))
    print()
    print(render_activity(heap.metrics))
    print(
        "\nnext steps:\n"
        "  python examples/quickstart.py        the API tour\n"
        "  python examples/consistency_lab.py   skeap vs seap vs seap-sc\n"
        "  python -m repro.harness --quick      regenerate the experiment tables\n"
        "  pytest tests/                        the full test suite"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
