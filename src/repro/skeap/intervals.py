"""Anchor position bookkeeping and interval assignment (Skeap Phase 2).

The anchor maintains, per priority ``p``, the interval
``[first_p, last_p]`` of positions currently occupied by elements of
priority ``p`` (invariant: ``first_p ≤ last_p + 1``).  For each batch entry
it extends the tail for inserts and consumes the head for deletes, walking
priorities in order so deletes always drain the most prioritized non-empty
interval first.  A delete entry that exhausts every interval yields
:data:`~repro.element.BOTTOM` results, encoded as a ``bots`` count.

The paper notes (after Definition 1.2) that the priority order can be
inverted to obtain a MaxHeap; ``order="max"`` drains the *highest*
priority first.

``discipline="lifo"`` serves deletes *youngest first*.  Positions are
never reused (each ``(p, pos)`` pair must rendezvous exactly one Put with
one Get in the DHT), so the LIFO anchor allocates monotonically increasing
positions and tracks the *live runs* — the stack of position intervals not
yet popped.  With a single priority this realizes the distributed stack of
[FSS18b], the companion construction the paper cites alongside Skueue.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ProtocolError
from .batch import Batch

__all__ = ["DeletePiece", "EntryAssignment", "AssignmentBlock", "AnchorState"]


@dataclass(frozen=True, slots=True)
class DeletePiece:
    """A run of delete positions within one priority: ``pos ∈ [start, start+count)``.

    ``reverse=True`` means the run is *served youngest-first* (descending
    positions) — the LIFO discipline of the distributed stack.
    """

    priority: int
    start: int
    count: int
    reverse: bool = False


@dataclass(frozen=True, slots=True)
class EntryAssignment:
    """Positions assigned to one batch entry.

    ``ins[p-1] = (start, count)``: the insert interval for priority ``p``.
    ``del_pieces``: ordered delete runs (most prioritized first).
    ``bots``: trailing deletes that found the heap empty.
    """

    ins: tuple[tuple[int, int], ...]
    del_pieces: tuple[DeletePiece, ...]
    bots: int

    def size_bits(self) -> int:
        total = 0
        for start, count in self.ins:
            total += max(start.bit_length(), 1) + max(count.bit_length(), 1) + 2
        for piece in self.del_pieces:
            total += (
                max(piece.priority.bit_length(), 1)
                + max(piece.start.bit_length(), 1)
                + max(piece.count.bit_length(), 1)
                + 3
            )
        total += max(self.bots.bit_length(), 1) + 1
        return total


@dataclass(frozen=True, slots=True)
class AssignmentBlock:
    """The anchor's full answer for one combined batch: one assignment per entry."""

    entries: tuple[EntryAssignment, ...]

    def size_bits(self) -> int:
        return max(len(self.entries).bit_length(), 1) + sum(
            e.size_bits() for e in self.entries
        )


class AnchorState:
    """The anchor's ``first_p`` / ``last_p`` counters, and Phase-2 assignment."""

    def __init__(self, n_priorities: int, order: str = "min", discipline: str = "fifo"):
        if n_priorities < 1:
            raise ProtocolError("need at least one priority")
        if order not in ("min", "max"):
            raise ProtocolError(f"order must be 'min' or 'max', got {order!r}")
        if discipline not in ("fifo", "lifo"):
            raise ProtocolError(
                f"discipline must be 'fifo' or 'lifo', got {discipline!r}"
            )
        self.n_priorities = n_priorities
        self.order = order
        self.discipline = discipline
        # Positions are 1-based as in the paper: empty interval is [1, 0].
        self.first = [1] * n_priorities
        self.last = [0] * n_priorities
        # LIFO bookkeeping: monotone allocator + live (unpopped) runs per
        # priority, youngest run last.  Positions are never reused.
        self._next_pos = [1] * n_priorities
        self._live_runs: list[list[list[int]]] = [[] for _ in range(n_priorities)]

    def occupancy(self, priority: int) -> int:
        """How many positions of ``priority`` are currently live."""
        if self.discipline == "lifo":
            return sum(e - s + 1 for s, e in self._live_runs[priority - 1])
        return self.last[priority - 1] - self.first[priority - 1] + 1

    def total_occupancy(self) -> int:
        return sum(self.occupancy(p) for p in range(1, self.n_priorities + 1))

    def _check_invariant(self) -> None:
        for p in range(self.n_priorities):
            if not self.first[p] <= self.last[p] + 1:
                raise ProtocolError(
                    f"anchor invariant violated for priority {p + 1}: "
                    f"first={self.first[p]} last={self.last[p]}"
                )

    def assign(self, batch: Batch) -> AssignmentBlock:
        """Phase 2: compute position intervals for every entry of ``batch``.

        Inserts of entry ``j`` are placed *before* its deletes are served,
        matching the batch's alternating structure (entry ``j``'s inserts
        precede entry ``j``'s deletes in every node's local order).
        """
        if batch.n_priorities != self.n_priorities:
            raise ProtocolError("batch priority width mismatch")
        if self.discipline == "lifo":
            return self._assign_lifo(batch)
        out: list[EntryAssignment] = []
        for entry in batch.entries:
            ins: list[tuple[int, int]] = []
            for p_idx, count in enumerate(entry.ins):
                start = self.last[p_idx] + 1
                ins.append((start, count))
                self.last[p_idx] += count
            pieces: list[DeletePiece] = []
            remaining = entry.dels
            drain_order = (
                range(self.n_priorities)
                if self.order == "min"
                else range(self.n_priorities - 1, -1, -1)
            )
            for p_idx in drain_order:
                if remaining == 0:
                    break
                available = self.last[p_idx] - self.first[p_idx] + 1
                take = min(remaining, available)
                if take > 0:
                    pieces.append(DeletePiece(p_idx + 1, self.first[p_idx], take))
                    self.first[p_idx] += take
                    remaining -= take
            out.append(EntryAssignment(tuple(ins), tuple(pieces), remaining))
            self._check_invariant()
        return AssignmentBlock(tuple(out))

    def _assign_lifo(self, batch: Batch) -> AssignmentBlock:
        """LIFO position assignment: fresh positions, pops from live runs.

        Inserts always receive never-before-used positions (extending the
        youngest live run when contiguous); deletes consume the youngest
        live positions as ``reverse`` pieces, possibly spanning several
        runs.
        """
        out: list[EntryAssignment] = []
        drain_order = (
            list(range(self.n_priorities))
            if self.order == "min"
            else list(range(self.n_priorities - 1, -1, -1))
        )
        for entry in batch.entries:
            ins: list[tuple[int, int]] = []
            for p_idx, count in enumerate(entry.ins):
                start = self._next_pos[p_idx]
                ins.append((start, count))
                self._next_pos[p_idx] += count
                if count > 0:
                    runs = self._live_runs[p_idx]
                    if runs and runs[-1][1] == start - 1:
                        runs[-1][1] = start + count - 1
                    else:
                        runs.append([start, start + count - 1])
            pieces: list[DeletePiece] = []
            remaining = entry.dels
            for p_idx in drain_order:
                runs = self._live_runs[p_idx]
                while remaining > 0 and runs:
                    run_start, run_end = runs[-1]
                    take = min(remaining, run_end - run_start + 1)
                    pieces.append(
                        DeletePiece(
                            p_idx + 1, run_end - take + 1, take, reverse=True
                        )
                    )
                    if take == run_end - run_start + 1:
                        runs.pop()
                    else:
                        runs[-1][1] = run_end - take
                    remaining -= take
                if remaining == 0:
                    break
            out.append(EntryAssignment(tuple(ins), tuple(pieces), remaining))
        return AssignmentBlock(tuple(out))
