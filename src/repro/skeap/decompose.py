"""Phase 3: decomposing position intervals down the aggregation tree.

A node that combined its own batch with its children's sub-batches in
Phase 1 memorized those sub-batches.  When the assignment block for the
combined batch arrives from above, the node splits every interval in the
same deterministic order used for combining — own contribution first, then
children in tree order — so each request ends up with exactly the position
the anchor reserved for it.

Delete positions are consumed through a cursor over the ordered delete
pieces; when the pieces run out, the remaining consumers receive ⊥
(``bots``), which lands on the *latest* requests in the combined order,
matching the anchor's Phase-2 semantics.
"""

from __future__ import annotations

from ..errors import ProtocolError
from .batch import Batch
from .intervals import AssignmentBlock, DeletePiece, EntryAssignment

__all__ = ["decompose_block"]


class _PieceCursor:
    """Sequential consumption of an ordered run of delete positions."""

    def __init__(self, pieces: tuple[DeletePiece, ...]):
        self._pieces = list(pieces)
        self._idx = 0
        self._used = 0  # positions consumed within the current piece

    def take(self, need: int) -> tuple[list[DeletePiece], int]:
        """Take up to ``need`` positions; returns (sub-pieces, count taken).

        A ``reverse`` (LIFO) piece is consumed from its top: the first
        positions taken are the highest ones.
        """
        out: list[DeletePiece] = []
        taken = 0
        while need > 0 and self._idx < len(self._pieces):
            piece = self._pieces[self._idx]
            left = piece.count - self._used
            grab = min(left, need)
            if piece.reverse:
                sub_start = piece.start + piece.count - self._used - grab
                out.append(
                    DeletePiece(piece.priority, sub_start, grab, reverse=True)
                )
            else:
                out.append(
                    DeletePiece(piece.priority, piece.start + self._used, grab)
                )
            self._used += grab
            taken += grab
            need -= grab
            if self._used == piece.count:
                self._idx += 1
                self._used = 0
        return out, taken

    def exhausted(self) -> bool:
        return self._idx >= len(self._pieces)


class _InsertCursor:
    """Sequential slicing of one priority's insert interval."""

    def __init__(self, start: int, count: int):
        self._next = start
        self._left = count

    def take(self, need: int) -> tuple[int, int]:
        if need > self._left:
            raise ProtocolError("insert interval over-consumed during decomposition")
        start = self._next
        self._next += need
        self._left -= need
        return start, need

    def exhausted(self) -> bool:
        return self._left == 0


def decompose_block(
    block: AssignmentBlock,
    own_batch: Batch,
    child_batches: list[tuple[int, Batch]],
) -> tuple[AssignmentBlock, dict[int, AssignmentBlock]]:
    """Split ``block`` among this node's own batch and its children's.

    Consumption order per entry is own-first, then children in the order
    their batches were combined — the same order Phase 1 used, which is
    what makes positions land on the right requests.
    """
    consumers: list[tuple[int | None, Batch]] = [(None, own_batch)]
    consumers += [(vid, b) for vid, b in child_batches]
    per_consumer: list[list[EntryAssignment]] = [[] for _ in consumers]

    for j, assignment in enumerate(block.entries):
        ins_cursors = [_InsertCursor(start, count) for start, count in assignment.ins]
        del_cursor = _PieceCursor(assignment.del_pieces)
        bots_left = assignment.bots
        for c_idx, (_, batch) in enumerate(consumers):
            entry = batch.entry(j)
            ins_parts = tuple(
                ins_cursors[p_idx].take(entry.ins[p_idx])
                for p_idx in range(batch.n_priorities)
            )
            pieces, taken = del_cursor.take(entry.dels)
            bots = entry.dels - taken
            if bots > bots_left:
                raise ProtocolError("more ⊥ results than the anchor allotted")
            bots_left -= bots
            per_consumer[c_idx].append(EntryAssignment(ins_parts, tuple(pieces), bots))
        if bots_left != 0 or not del_cursor.exhausted():
            raise ProtocolError(
                f"entry {j}: delete positions/⊥ not fully distributed"
            )
        if not all(c.exhausted() for c in ins_cursors):
            raise ProtocolError(f"entry {j}: insert positions not fully distributed")

    own_block = AssignmentBlock(tuple(per_consumer[0]))
    child_blocks = {
        consumers[i][0]: AssignmentBlock(tuple(per_consumer[i]))
        for i in range(1, len(consumers))
    }
    return own_block, child_blocks  # type: ignore[return-value]
