"""Protocol Skeap (Section 3): a sequentially consistent distributed heap
for a constant number of priorities.

Each iteration runs the paper's four phases:

1. **Aggregating batches** — every node snapshots its buffered requests as
   a batch and the aggregation tree combines them up to the anchor;
2. **Assigning positions** — the anchor extends/consumes its per-priority
   ``[first_p, last_p]`` intervals (``repro.skeap.intervals``);
3. **Decomposing position intervals** — the assignment is split back down
   the tree along the memorized sub-batches (``repro.skeap.decompose``);
4. **Updating the DHT** — each request, now holding a unique ``(p, pos)``
   pair, issues ``Put(h(p, pos), e)`` or ``Get(h(p, pos), v)``; Gets that
   outrun their Puts park at the rendezvous node.

Iterations pipeline: a node re-enters Phase 1 as soon as it has generated
its DHT requests, without waiting for their completion — exactly the
paper's loop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..dht.hashing import KeySpace
from ..element import BOTTOM, Element
from ..errors import ProtocolError
from ..overlay.aggregation import AggSpec
from ..overlay.base import OverlayNode
from ..overlay.ldb import LocalView
from ..semantics.history import DELETE, INSERT, History
from ..sim.trace import OP, PHASE, op_ctx
from .batch import Batch, encode_ops
from .decompose import decompose_block
from .intervals import AnchorState, AssignmentBlock

__all__ = ["OpHandle", "SkeapNode"]

_AGG = "skb"


@dataclass(slots=True)
class OpHandle:
    """Client-side future for one Insert or DeleteMin request."""

    op_id: tuple[int, int]
    kind: str
    priority: int | None = None
    uid: int | None = None
    value: Any = None
    done: bool = False
    result: Any = None  # Element | BOTTOM for deletes; True for inserts

    @property
    def is_bottom(self) -> bool:
        return self.done and self.result is BOTTOM


class SkeapNode(OverlayNode):
    """One virtual node running Skeap.

    Client requests are submitted to middle virtual nodes (the 'real node'
    face); left/right virtual nodes participate in aggregation and the DHT
    with perpetually empty batches.
    """

    def __init__(
        self,
        view: LocalView,
        keyspace: KeySpace,
        n_priorities: int,
        history: History | None = None,
        order: str = "min",
        discipline: str = "fifo",
    ):
        super().__init__(view, keyspace)
        if n_priorities < 1:
            raise ProtocolError("Skeap needs at least one priority")
        self.n_priorities = n_priorities
        self.order = order
        self.discipline = discipline
        self.history = history
        self.iteration = 0
        self._contributed_iteration = -1
        #: when set, do not start iterations beyond this one (membership
        #: changes apply at the resulting quiescent boundary)
        self.pause_after: int | None = None
        self.buffered: deque[OpHandle] = deque()
        self._snapshot: list[OpHandle] = []
        self._snapshot_entry_of: list[int] = []
        self._next_seq = 0
        self._requests: dict[int, OpHandle] = {}
        self.anchor_state = (
            AnchorState(n_priorities, order=order, discipline=discipline)
            if view.is_anchor
            else None
        )
        #: anchor-side log of combined batches (figure-1 reproduction)
        self.anchor_log: list[tuple[Batch, AssignmentBlock]] = []
        self.register_agg(
            _AGG,
            AggSpec(
                combine=type(self)._agg_combine,
                at_root=type(self)._agg_at_root,
                decompose=type(self)._agg_decompose,
                deliver=type(self)._agg_deliver,
            ),
        )

    # -- client API -----------------------------------------------------

    def submit_insert(self, priority: int, value: Any = None, uid: int | None = None) -> OpHandle:
        """Buffer an Insert request (resolved once the element is stored)."""
        if not 1 <= priority <= self.n_priorities:
            raise ProtocolError(f"priority {priority} outside 1..{self.n_priorities}")
        handle = OpHandle(
            op_id=(self.view.owner, self._take_seq()),
            kind=INSERT,
            priority=priority,
            uid=uid if uid is not None else self._default_uid(),
        )
        handle.value = value
        self.buffered.append(handle)
        if self.history is not None:
            self.history.record_submit(handle.op_id, INSERT, priority, handle.uid)
        tr = self.tracer
        if tr is not None:
            tr.emit_ctx(
                OP, op_ctx(handle.op_id), ev="submit", kind=INSERT,
                node=self.id, priority=priority,
            )
        self.request_activation()
        return handle

    def submit_delete_min(self) -> OpHandle:
        """Buffer a DeleteMin request (resolved with an Element or ⊥)."""
        handle = OpHandle(op_id=(self.view.owner, self._take_seq()), kind=DELETE)
        self.buffered.append(handle)
        if self.history is not None:
            self.history.record_submit(handle.op_id, DELETE)
        tr = self.tracer
        if tr is not None:
            tr.emit_ctx(OP, op_ctx(handle.op_id), ev="submit", kind=DELETE, node=self.id)
        self.request_activation()
        return handle

    def _take_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def _default_uid(self) -> int:
        # Globally unique and deterministic: owner in the high bits.
        return (self.view.owner << 32) | self._next_seq

    # -- Phase 1: batch aggregation ------------------------------------------

    def on_activate(self) -> None:
        if self._contributed_iteration >= self.iteration:
            return
        if self.pause_after is not None and self.iteration > self.pause_after:
            return
        self._snapshot = list(self.buffered)
        self.buffered.clear()
        ops = [
            (h.kind, h.priority if h.kind == INSERT else None) for h in self._snapshot
        ]
        batch, entry_of = encode_ops(ops, self.n_priorities)
        self._snapshot_entry_of = entry_of
        self._contributed_iteration = self.iteration
        tr = self.tracer
        if tr is None:
            self.agg_contribute((_AGG, self.iteration), batch)
        else:
            # Causality boundary: buffered ops join iteration `i`'s shared
            # batch machinery here; everything the contribution spawns
            # (aggregation, assignment, decomposition) inherits this ctx.
            for h in self._snapshot:
                tr.emit_ctx(
                    OP, op_ctx(h.op_id), ev="batched", it=self.iteration
                )
            prev = tr.ctx
            tr.ctx = ("skeap-it", self.iteration)
            self.agg_contribute((_AGG, self.iteration), batch)
            tr.ctx = prev

    def has_work(self) -> bool:
        return bool(self.buffered) or bool(self._requests) or bool(self._snapshot)

    def wants_activation(self) -> bool:
        # Mirrors on_activate's guards exactly: a contribution is owed for
        # the current iteration unless the pause gate is closed.  Iterations
        # only advance on message receipt, which re-wakes the node.
        if self._contributed_iteration >= self.iteration:
            return False
        return self.pause_after is None or self.iteration <= self.pause_after

    def _agg_combine(self, tag, own: Batch, children) -> Batch:
        return Batch.combine_all([own] + [b for _, b in children], self.n_priorities)

    # -- Phase 2: anchor position assignment ---------------------------------

    def _agg_at_root(self, tag, combined: Batch) -> None:
        if self.anchor_state is None:  # pragma: no cover - structural
            raise ProtocolError("non-anchor node received a combined batch")
        block = self.anchor_state.assign(combined)
        self.anchor_log.append((combined, block))
        tr = self.tracer
        if tr is not None:
            tr.emit(PHASE, proto="skeap", name="assign", it=tag[1], ops=combined.total_ops())
        self.agg_distribute(tag, block)

    # -- Phase 3: interval decomposition ----------------------------------------

    def _agg_decompose(self, tag, block: AssignmentBlock):
        own_batch, child_batches = self.agg_memory(tag)
        return decompose_block(block, own_batch, child_batches)

    # -- Phase 4: DHT updates -----------------------------------------------------

    def _agg_deliver(self, tag, own_block: AssignmentBlock) -> None:
        iteration = tag[1]
        if iteration != self.iteration:  # pragma: no cover - structural
            raise ProtocolError("assignment for a different iteration")
        self._issue_dht_ops(own_block, iteration)
        self._snapshot = []
        self._snapshot_entry_of = []
        self.iteration += 1

    def _issue_dht_ops(self, block: AssignmentBlock, iteration: int) -> None:
        # Per-entry consumption cursors over the assigned intervals.
        ins_next = [list(start for start, _ in e.ins) for e in block.entries]
        del_cursors = [
            _DeliveryCursor(e.del_pieces, e.bots) for e in block.entries
        ]
        tr = self.tracer
        prev_ctx = tr.ctx if tr is not None else None
        for handle, j in zip(self._snapshot, self._snapshot_entry_of):
            if handle.kind == INSERT:
                p = handle.priority
                pos = ins_next[j][p - 1]
                ins_next[j][p - 1] += 1
                if self.history is not None:
                    # Serialization key: within an entry, positions are
                    # consumed in the tree's pre-order DFS, so the witness
                    # order must use the DFS rank, not node ids.
                    self.history.record_order(
                        handle.op_id,
                        (iteration, j, 0, self.view.dfs_rank, handle.op_id[1]),
                    )
                element = Element(priority=p, uid=handle.uid, value=handle.value)
                if tr is not None:
                    # Causality boundary back: the shared assignment turns
                    # into this op's exclusive DHT work.
                    tr.ctx = op_ctx(handle.op_id)
                    tr.emit(OP, ev="dht", op_kind="put", it=iteration, pos=[p, pos])
                request_id = self.dht_put(self.keyspace.skeap_key(p, pos), element)
                self._requests[request_id] = handle
            else:
                slot = del_cursors[j].next()
                if self.history is not None:
                    self.history.record_order(
                        handle.op_id,
                        (iteration, j, 1, self.view.dfs_rank, handle.op_id[1]),
                    )
                if slot is None:
                    handle.done = True
                    handle.result = BOTTOM
                    if self.history is not None:
                        self.history.record_bot(handle.op_id)
                    if tr is not None:
                        tr.emit_ctx(
                            OP, op_ctx(handle.op_id), ev="done", result="bot",
                        )
                else:
                    p, pos = slot
                    if tr is not None:
                        tr.ctx = op_ctx(handle.op_id)
                        tr.emit(OP, ev="dht", op_kind="get", it=iteration, pos=[p, pos])
                    request_id = self.dht_get(self.keyspace.skeap_key(p, pos))
                    self._requests[request_id] = handle
        if tr is not None:
            tr.ctx = prev_ctx

    # -- DHT completions ----------------------------------------------------------

    def dht_put_confirmed(self, request_id: int) -> None:
        handle = self._requests.pop(request_id)
        handle.done = True
        handle.result = True
        if self.history is not None:
            self.history.record_insert_done(handle.op_id)
        tr = self.tracer
        if tr is not None:
            tr.emit_ctx(OP, op_ctx(handle.op_id), ev="done", result="stored")

    def dht_get_returned(self, request_id: int, key: float, element: Element) -> None:
        handle = self._requests.pop(request_id)
        handle.done = True
        handle.result = element
        if self.history is not None:
            self.history.record_return(handle.op_id, element.uid)
        tr = self.tracer
        if tr is not None:
            tr.emit_ctx(OP, op_ctx(handle.op_id), ev="done", result=element.uid)


class _DeliveryCursor:
    """Yields (priority, position) slots for an entry's deletes, then ⊥.

    Reverse (LIFO) pieces yield their positions youngest-first.
    """

    def __init__(self, pieces, bots: int):
        self._slots: list[tuple[int, int]] = [
            (piece.priority, pos)
            for piece in pieces
            for pos in (
                range(piece.start + piece.count - 1, piece.start - 1, -1)
                if piece.reverse
                else range(piece.start, piece.start + piece.count)
            )
        ]
        self._idx = 0
        self._bots = bots

    def next(self) -> tuple[int, int] | None:
        if self._idx < len(self._slots):
            slot = self._slots[self._idx]
            self._idx += 1
            return slot
        if self._bots <= 0:
            raise ProtocolError("delete request without an assigned slot or ⊥")
        self._bots -= 1
        return None
