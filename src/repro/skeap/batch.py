"""Operation batches (Definition 3.1).

A batch is a sequence ``(i_1, d_1, ..., i_k, d_k)`` where ``i_j`` is a
vector counting, per priority, the elements inserted at position ``j`` of
the sequence and ``d_j`` counts DeleteMin operations.  A node's snapshot of
its buffered requests is encoded as a batch that *respects the local order*
in which the requests were issued — the property sequential consistency
rests on.

Batches combine entry-wise (shorter batches padded with zeros), and the
encoded size in bits is what Lemma 3.8 bounds by ``O(Λ log² n)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import ProtocolError

__all__ = ["BatchEntry", "Batch", "encode_ops"]


@dataclass(frozen=True, slots=True)
class BatchEntry:
    """One ``(i_j, d_j)`` pair: insert counts per priority, then a delete count."""

    ins: tuple[int, ...]
    dels: int

    def total_ops(self) -> int:
        return sum(self.ins) + self.dels

    def is_zero(self) -> bool:
        return self.dels == 0 and not any(self.ins)


class Batch:
    """An alternating insert/delete count sequence over ``c`` priorities."""

    __slots__ = ("n_priorities", "entries")

    def __init__(self, n_priorities: int, entries: Sequence[BatchEntry] = ()):
        if n_priorities < 1:
            raise ProtocolError("a batch needs at least one priority class")
        self.n_priorities = int(n_priorities)
        for e in entries:
            if len(e.ins) != n_priorities:
                raise ProtocolError("entry vector width does not match priorities")
        self.entries: list[BatchEntry] = list(entries)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_ops(cls, ops: Iterable[tuple[str, int | None]], n_priorities: int) -> "Batch":
        """Encode a node's local op sequence as a minimal alternating batch.

        ``ops`` yields ``("ins", priority)`` or ``("del", None)`` in local
        issue order.  Priorities are 1-based (the paper's
        ``𝒫 = {1, ..., c}``).  An insert arriving after a delete in the
        current entry opens a new entry, preserving local order.
        """
        batch, _ = encode_ops(ops, n_priorities)
        return batch

    # -- combination (Definition 3.1) ------------------------------------


    def combine(self, other: "Batch") -> "Batch":
        """Entry-wise sum; the shorter batch is padded with zeros."""
        if other.n_priorities != self.n_priorities:
            raise ProtocolError("cannot combine batches over different priority sets")
        k = max(len(self.entries), len(other.entries))
        zero = BatchEntry(tuple([0] * self.n_priorities), 0)
        out = []
        for j in range(k):
            a = self.entries[j] if j < len(self.entries) else zero
            b = other.entries[j] if j < len(other.entries) else zero
            out.append(
                BatchEntry(
                    tuple(x + y for x, y in zip(a.ins, b.ins)),
                    a.dels + b.dels,
                )
            )
        return Batch(self.n_priorities, out)

    @classmethod
    def combine_all(cls, batches: Sequence["Batch"], n_priorities: int) -> "Batch":
        acc = cls(n_priorities)
        for b in batches:
            acc = acc.combine(b)
        return acc

    # -- inspection --------------------------------------------------------

    def entry(self, j: int) -> BatchEntry:
        """Entry ``j`` with implicit zero padding beyond the end."""
        if j < len(self.entries):
            return self.entries[j]
        return BatchEntry(tuple([0] * self.n_priorities), 0)

    def total_inserts(self) -> int:
        return sum(sum(e.ins) for e in self.entries)

    def total_deletes(self) -> int:
        return sum(e.dels for e in self.entries)

    def total_ops(self) -> int:
        return self.total_inserts() + self.total_deletes()

    def is_empty(self) -> bool:
        return all(e.is_zero() for e in self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Batch):
            return NotImplemented
        return (
            self.n_priorities == other.n_priorities
            and self.entries == other.entries
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"({e.ins}, {e.dels})" for e in self.entries)
        return f"Batch[{inner}]"

    # -- wire size (Lemma 3.8) ---------------------------------------------

    def size_bits(self) -> int:
        """Encoded bits: each count in its binary width plus a flag bit."""
        total = max(len(self.entries).bit_length(), 1)
        for e in self.entries:
            for c in e.ins:
                total += max(c.bit_length(), 1) + 1
            total += max(e.dels.bit_length(), 1) + 1
        return total


def encode_ops(
    ops: Iterable[tuple[str, int | None]], n_priorities: int
) -> tuple[Batch, list[int]]:
    """Encode a local op sequence and report which entry each op landed in.

    Returns ``(batch, entry_of)`` where ``entry_of[i]`` is the batch entry
    index of the ``i``-th op.  Phase 4 uses this map to pair each buffered
    request with the positions assigned to its entry.
    """
    batch = Batch(n_priorities)
    entry_of: list[int] = []
    cur_ins = [0] * n_priorities
    cur_dels = 0
    started = False
    for kind, priority in ops:
        if kind == "ins":
            if priority is None or not 1 <= priority <= n_priorities:
                raise ProtocolError(f"priority {priority} outside 1..{n_priorities}")
            if cur_dels > 0:
                batch.entries.append(BatchEntry(tuple(cur_ins), cur_dels))
                cur_ins = [0] * n_priorities
                cur_dels = 0
            cur_ins[priority - 1] += 1
        elif kind == "del":
            cur_dels += 1
        else:
            raise ProtocolError(f"unknown op kind {kind!r}")
        started = True
        entry_of.append(len(batch.entries))
    if started:
        batch.entries.append(BatchEntry(tuple(cur_ins), cur_dels))
    return batch, entry_of
