"""Skeap (Section 3): sequentially consistent distributed heap, constant priorities."""

from .batch import Batch, BatchEntry, encode_ops
from .decompose import decompose_block
from .heap import SkeapHeap
from .intervals import AnchorState, AssignmentBlock, DeletePiece, EntryAssignment
from .protocol import OpHandle, SkeapNode

__all__ = [
    "AnchorState",
    "AssignmentBlock",
    "Batch",
    "BatchEntry",
    "DeletePiece",
    "EntryAssignment",
    "OpHandle",
    "SkeapHeap",
    "SkeapNode",
    "decompose_block",
    "encode_ops",
]
