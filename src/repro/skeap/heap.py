"""User-facing Skeap heap: a cluster of processes running the protocol.

:class:`SkeapHeap` is the public API used by the examples and benchmarks::

    heap = SkeapHeap(n_nodes=16, n_priorities=3, seed=7)
    heap.insert(priority=2, value="job-a", at=0)
    handle = heap.delete_min(at=5)
    heap.settle()
    assert handle.result.value == "job-a"

Requests may be submitted at any real node; ``settle()`` drives the
simulation until every outstanding request has resolved.
"""

from __future__ import annotations

from typing import Any

from ..cluster import OverlayCluster
from ..overlay.ldb import LocalView, VirtualKind
from ..overlay.membership import MembershipReport, join_node, leave_node
from ..semantics.history import History
from .protocol import OpHandle, SkeapNode

__all__ = ["SkeapHeap"]


class SkeapHeap(OverlayCluster):
    """A distributed heap with priorities ``{1, ..., n_priorities}``.

    ``order="max"`` inverts the service order (the paper's MaxHeap remark):
    DeleteMin — read "DeleteExtremal" — returns the *highest* priority.
    """

    def __init__(
        self,
        n_nodes: int,
        n_priorities: int = 2,
        seed: int = 0,
        runner: str = "sync",
        record_history: bool = True,
        order: str = "min",
        discipline: str = "fifo",
        **cluster_kwargs,
    ):
        self.n_priorities = int(n_priorities)
        self.order = order
        self.discipline = discipline
        self.history = History() if record_history else None
        self._outstanding: list[OpHandle] = []
        self._submit_cursor = 0
        super().__init__(n_nodes, seed=seed, runner=runner, **cluster_kwargs)

    def make_node(self, view: LocalView) -> SkeapNode:
        """Instantiate this protocol's node for one virtual overlay slot."""
        return SkeapNode(
            view,
            self.keyspace,
            self.n_priorities,
            history=self.history,
            order=self.order,
            discipline=self.discipline,
        )

    # -- request submission ------------------------------------------------

    def _client(self, at: int | None) -> SkeapNode:
        if at is None:
            at = self._submit_cursor % self.n_nodes
            self._submit_cursor += 1
        return self.middle_node(at)

    def insert(
        self,
        priority: int,
        value: Any = None,
        at: int | None = None,
        uid: int | None = None,
    ) -> OpHandle:
        """Issue Insert(e) at real node ``at`` (round-robin if omitted).

        ``uid`` pins the element's identity instead of minting a fresh
        one — how crash recovery re-inserts survivors under their
        original uids so the spliced history stays checkable.
        """
        handle = self._client(at).submit_insert(priority, value, uid=uid)
        self._outstanding.append(handle)
        return handle

    def delete_min(self, at: int | None = None) -> OpHandle:
        """Issue DeleteMin() at real node ``at`` (round-robin if omitted)."""
        handle = self._client(at).submit_delete_min()
        self._outstanding.append(handle)
        return handle

    def insert_many(self, items, at: int | None = None) -> list[OpHandle]:
        """Issue many inserts: ``items`` yields ``(priority, value)`` pairs."""
        return [self.insert(priority=p, value=v, at=at) for p, v in items]

    def delete_min_many(self, count: int, at: int | None = None) -> list[OpHandle]:
        """Issue ``count`` DeleteMin requests."""
        return [self.delete_min(at=at) for _ in range(count)]

    # -- progress ----------------------------------------------------------

    def outstanding(self) -> int:
        """How many submitted requests have not resolved yet."""
        self._outstanding = [h for h in self._outstanding if not h.done]
        return len(self._outstanding)

    def settle(self, limit: float = 1_000_000) -> float:
        """Run until every submitted request resolved; returns rounds/time used.

        ``limit`` is rounds under the synchronous driver, simulated time
        under the asynchronous one.
        """
        done = lambda: self.outstanding() == 0  # noqa: E731
        if hasattr(self.runner, "step"):  # synchronous rounds
            return self.runner.run_until(done, max_rounds=int(limit))
        return self.runner.run_until(done, max_time=float(limit))

    # -- introspection -------------------------------------------------------

    @property
    def anchor_node(self) -> SkeapNode:
        return self.anchor  # type: ignore[return-value]

    def live_elements(self) -> int:
        """Occupied positions according to the anchor (heap size upper bound)."""
        state = self.anchor_node.anchor_state
        assert state is not None
        return state.total_occupancy()

    # -- membership (lazy processing at iteration boundaries) ---------------

    def pause(self, max_rounds: int = 100_000) -> int:
        """Finish the in-flight iteration and stop starting new ones.

        Returns the boundary iteration: every node has processed exactly the
        iterations up to and including it, and no messages are in flight.
        """
        boundary = max(n._contributed_iteration for n in self.nodes.values())
        for node in self.nodes.values():
            node.pause_after = boundary

        def at_boundary() -> bool:
            return (
                self.runner.pending_messages() == 0
                and all(n.iteration == boundary + 1 for n in self.nodes.values())
                and all(not n._requests for n in self.nodes.values())
            )

        self.runner.run_until(at_boundary, max_rounds=max_rounds)
        return boundary

    def resume(self) -> None:
        """Allow nodes to start new iterations again after :meth:`pause`."""
        for node in self.nodes.values():
            node.pause_after = None
            # While paused the runner parked every idle node; the gate
            # opened outside the message flow, so ask for activation.
            node.request_activation()

    def _sync_new_node(self, real_id: int) -> None:
        current = max(n.iteration for n in self.nodes.values())
        for kind in VirtualKind:
            node = self.nodes[real_id * 3 + int(kind)]
            node.iteration = current
            node._contributed_iteration = current - 1

    def _transfer_anchor(self, old_anchor: SkeapNode) -> None:
        new_anchor = self.anchor_node
        if new_anchor is old_anchor:
            return
        new_anchor.anchor_state = old_anchor.anchor_state
        new_anchor.anchor_log = old_anchor.anchor_log
        old_anchor.anchor_state = None
        old_anchor.anchor_log = []

    def add_node(self, real_id: int) -> MembershipReport:
        """Join a new process (Contribution 4), preserving all heap state."""
        self.pause()
        old_anchor = self.anchor_node
        report = join_node(self, real_id)
        self._sync_new_node(real_id)
        self._transfer_anchor(old_anchor)
        self.resume()
        return report

    def remove_node(self, real_id: int) -> MembershipReport:
        """Leave: hand off stored elements, then depart."""
        if real_id not in self.topology.real_ids:
            from ..errors import MembershipError

            raise MembershipError(f"node {real_id} not present")
        self.pause()
        old_anchor = self.anchor_node
        departing = [self.nodes[real_id * 3 + int(k)] for k in VirtualKind]
        if any(n.buffered or n._requests for n in departing):
            from ..errors import MembershipError

            raise MembershipError(
                f"node {real_id} still has buffered or unresolved requests"
            )
        state = old_anchor.anchor_state
        log = old_anchor.anchor_log
        report = leave_node(self, real_id)
        new_anchor = self.anchor_node
        if new_anchor.anchor_state is None:
            new_anchor.anchor_state = state
            new_anchor.anchor_log = log
        self.resume()
        return report
