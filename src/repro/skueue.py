"""Skueue: the sequentially consistent distributed queue (FSS18a).

The paper builds Skeap as an extension of Skueue — "technically
maintaining one distributed queue for each priority".  Running Skeap with
a single priority therefore *is* Skueue: batches degenerate to
(enqueue-count, dequeue-count) pairs, the anchor's one interval is the
queue's [head, tail], and FIFO order is exactly the positions' order.

:class:`SkueueQueue` packages that as a queue API::

    q = SkueueQueue(n_nodes=16, seed=1)
    q.enqueue("a", at=3)
    handle = q.dequeue(at=7)
    q.settle()
    assert handle.result.value == "a"

This also doubles as the lineage test bed: every Skueue guarantee the
paper inherits (sequential consistency, O(log n) rounds, batching) is
exercised through the same machinery Skeap uses.
"""

from __future__ import annotations

from typing import Any

from .skeap.heap import SkeapHeap
from .skeap.protocol import OpHandle

__all__ = ["SkueueQueue"]


class SkueueQueue(SkeapHeap):
    """A distributed FIFO queue: Skeap restricted to one priority."""

    def __init__(self, n_nodes: int, seed: int = 0, **kwargs):
        kwargs.pop("n_priorities", None)
        super().__init__(n_nodes, n_priorities=1, seed=seed, **kwargs)

    def enqueue(self, value: Any = None, at: int | None = None) -> OpHandle:
        """Append ``value`` to the queue (Skueue's Enqueue)."""
        return self.insert(priority=1, value=value, at=at)

    def dequeue(self, at: int | None = None) -> OpHandle:
        """Remove the oldest element, or ⊥ when empty (Skueue's Dequeue)."""
        return self.delete_min(at=at)

    def queue_length(self) -> int:
        """Live elements according to the anchor's interval."""
        return self.live_elements()
