"""repro — Skeap & Seap: scalable distributed priority queues (SPAA 2019).

A complete executable reproduction of Feldmann & Scheideler's protocols:

* :class:`SkeapHeap` — sequentially consistent distributed heap for a
  constant number of priorities (Section 3);
* :class:`SeapHeap` — serializable distributed heap for arbitrary
  priorities with O(log n)-bit messages (Section 5);
* :class:`KSelectCluster` / :func:`distributed_select` — distributed
  k-selection in O(log n) rounds w.h.p. (Section 4);

plus every substrate they stand on (LDB overlay, aggregation tree, DHT,
simulation kernel), machine-checked consistency semantics, baselines, and
the experiment harness that regenerates every quantitative claim::

    from repro import SkeapHeap

    heap = SkeapHeap(n_nodes=16, n_priorities=3, seed=7)
    heap.insert(priority=2, value="job-a", at=0)
    handle = heap.delete_min(at=5)
    heap.settle()
    print(handle.result)
"""

from .baselines import (
    BinaryHeap,
    CentralHeapCluster,
    GatherSelectCluster,
    UnbatchedHeapCluster,
)
from .cluster import OverlayCluster
from .element import BOTTOM, Element
from .errors import (
    ConsistencyError,
    MembershipError,
    ProtocolError,
    ReproError,
    RoutingError,
    SimulationError,
    TopologyError,
    WorkloadError,
)
from .kselect import KSelectCluster, distributed_select
from .overlay.membership import MembershipReport, join_node, leave_node
from .seap import SeapHeap, SeapNode, SeapSCHeap, SeapSCNode
from .semantics import (
    History,
    check_element_conservation,
    check_heap_consistency,
    check_local_consistency,
    check_seap_history,
    check_seap_sc_history,
    check_skack_history,
    check_skeap_history,
)
from .sim import FaultEvent, FaultInjector, FaultPlan
from .skeap import OpHandle, SkeapHeap, SkeapNode
from .skack import SkackStack
from .skueue import SkueueQueue

__version__ = "1.0.0"

#: Live-service classes resolve lazily: ``from repro import QueueService``
#: works, but a simulator-only run never imports asyncio machinery it
#: doesn't use (and stays byte-identical with repro.service absent).
_SERVICE_EXPORTS = {
    "QueueService": "server",
    "QueueClient": "client",
    "QueueRouter": "router",
    "ShardController": "controller",
    "PartitionMap": "partition",
    "even_partition": "partition",
    "AdmissionController": "admission",
    "LoadSpec": "loadgen",
    "run_loadtest": "loadgen",
}


def __getattr__(name: str):
    if name in _SERVICE_EXPORTS:
        import importlib

        module = importlib.import_module(
            f".service.{_SERVICE_EXPORTS[name]}", __name__
        )
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AdmissionController",
    "BOTTOM",
    "BinaryHeap",
    "CentralHeapCluster",
    "ConsistencyError",
    "Element",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "GatherSelectCluster",
    "History",
    "KSelectCluster",
    "LoadSpec",
    "MembershipError",
    "MembershipReport",
    "OpHandle",
    "OverlayCluster",
    "PartitionMap",
    "ProtocolError",
    "QueueClient",
    "QueueRouter",
    "QueueService",
    "ReproError",
    "RoutingError",
    "SeapHeap",
    "SeapNode",
    "SeapSCHeap",
    "SeapSCNode",
    "ShardController",
    "SimulationError",
    "SkackStack",
    "SkeapHeap",
    "SkeapNode",
    "SkueueQueue",
    "TopologyError",
    "UnbatchedHeapCluster",
    "WorkloadError",
    "check_element_conservation",
    "check_heap_consistency",
    "check_local_consistency",
    "check_seap_history",
    "check_seap_sc_history",
    "check_skack_history",
    "check_skeap_history",
    "distributed_select",
    "even_partition",
    "join_node",
    "leave_node",
    "run_loadtest",
]
