"""Shape checks for asymptotic claims.

The paper's results are w.h.p. asymptotics; the reproducible content of
"O(log n) rounds" is the *growth shape*: measured values should be well
explained by ``a·log₂(n) + b`` and grow far slower than linearly.  This
module provides the least-squares fits and the shape predicates the
benchmarks assert.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError

__all__ = ["FitResult", "fit_log2", "fit_linear", "is_sublinear", "is_logarithmic"]


@dataclass(frozen=True, slots=True)
class FitResult:
    """Least-squares fit ``y ≈ a·f(x) + b`` with coefficient of determination."""

    a: float
    b: float
    r2: float

    def predict_log2(self, x: float) -> float:
        return self.a * float(np.log2(x)) + self.b

    def predict_linear(self, x: float) -> float:
        return self.a * x + self.b


def _fit(basis: np.ndarray, ys: np.ndarray) -> FitResult:
    A = np.vstack([basis, np.ones_like(basis)]).T
    coef, *_ = np.linalg.lstsq(A, ys, rcond=None)
    pred = A @ coef
    ss_res = float(np.sum((ys - pred) ** 2))
    ss_tot = float(np.sum((ys - ys.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return FitResult(a=float(coef[0]), b=float(coef[1]), r2=r2)


def fit_log2(xs, ys) -> FitResult:
    """Fit ``y = a·log₂(x) + b``."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if len(xs) < 2 or np.any(xs <= 0):
        raise WorkloadError("log fit needs >= 2 positive x values")
    return _fit(np.log2(xs), ys)


def fit_linear(xs, ys) -> FitResult:
    """Fit ``y = a·x + b``."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if len(xs) < 2:
        raise WorkloadError("linear fit needs >= 2 x values")
    return _fit(xs, ys)


def is_sublinear(xs, ys, factor: float = 0.5) -> bool:
    """Does y grow at most ``factor`` times as fast as x, end to end?

    The workhorse assertion for "O(log n), not Ω(n)": across the measured
    range, the total growth of y must be well below the growth of x.
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    y_lo = max(float(ys[0]), 1e-9)
    return float(ys[-1]) / y_lo <= factor * float(xs[-1]) / float(xs[0])


def is_logarithmic(xs, ys, min_r2: float = 0.85, sublinear_factor: float = 0.5) -> bool:
    """Is the series consistent with Θ(log n) growth?

    Requires both a good ``a·log₂(x)+b`` fit and end-to-end sublinearity
    (a constant series fits log perfectly and passes, which is fine — the
    claims are upper bounds).
    """
    return fit_log2(xs, ys).r2 >= min_r2 or is_sublinear(xs, ys, sublinear_factor)
