"""Trace exporters: op-span reconstruction, JSONL and Chrome trace-event.

Consumes the event log a :class:`repro.sim.trace.Tracer` collected and
produces the three artifacts of the tracing CLI:

* **JSONL** — one sorted-key JSON object per event, in emission order.
  The stable, diff-able ground truth: two identical runs produce
  byte-identical files (``Message.seq`` is normalized per run).
* **Chrome trace-event JSON** — loadable in Perfetto (ui.perfetto.dev)
  or ``chrome://tracing``.  The clock is the simulation clock: under the
  synchronous driver one round maps to 1 ms of trace time, so the round
  structure is directly readable off the timeline.  Heap operations
  appear as complete ("X") slices on one track per submitting node,
  iteration/epoch machinery as slices on per-protocol tracks, and
  network faults plus protocol-phase transitions as instant events.
* **Span summary** — a :class:`~repro.harness.tables.Table` aggregating
  the reconstructed spans per operation kind (count, completion,
  per-phase round means/maxima, exclusive message/bit attribution).

The **span model**: each heap operation's lifecycle events (``submit`` →
``batched`` → ``dht`` → ``done``) bound three phases —

* *buffered*: submitted, waiting for the node's next batch snapshot;
* *batch*: riding the shared iteration/epoch machinery (aggregation,
  assignment, decomposition — cost collective, attributed to the
  ``("skeap-it", i)`` / ``("seap-ep", e)`` group context);
* *dht*: the op's exclusive DHT request and the routing it spawns
  (messages and flight hops carrying the op's own context).

⊥-resolved DeleteMins have an empty dht phase: they complete at interval
decomposition, so ``done`` coincides with the end of the batch phase.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable

from ..sim.trace import (
    DELIVER,
    FAULT,
    FLIGHT,
    HOP,
    LAND,
    NODE,
    OP,
    OP_CTX,
    PHASE,
    SEND,
    TraceEvent,
    Tracer,
)
from .tables import Table

__all__ = [
    "OpSpan",
    "GroupSpan",
    "build_spans",
    "build_group_spans",
    "events_to_jsonl",
    "to_chrome_trace",
    "span_summary_table",
    "validate_chrome_trace",
]

#: trace-time units per simulation time unit (1 round -> 1 ms shown).
_US_PER_UNIT = 1000.0


@dataclass(slots=True)
class OpSpan:
    """One heap operation reconstructed end to end from its trace events."""

    op: tuple[int, int]  # (owner, seq)
    kind: str  # "ins" | "del"
    node: int | None = None  # submitting virtual node
    priority: int | None = None
    group: tuple | None = None  # ("skeap-it", i) / ("seap-ep", e)
    submit_ts: float | None = None
    batched_ts: float | None = None
    dht_ts: float | None = None
    done_ts: float | None = None
    result: object = None
    #: exclusive cost: messages/flight hops carrying this op's context
    msgs: int = 0
    bits: int = 0
    hops: int = 0

    @property
    def complete(self) -> bool:
        return self.submit_ts is not None and self.done_ts is not None

    @property
    def rounds(self) -> float | None:
        """End-to-end duration in simulation time units."""
        if not self.complete:
            return None
        return self.done_ts - self.submit_ts

    def phase_durations(self) -> dict[str, float]:
        """Per-phase durations; missing boundaries collapse to zero."""
        if not self.complete:
            return {}
        batched = self.batched_ts if self.batched_ts is not None else self.submit_ts
        dht = self.dht_ts if self.dht_ts is not None else self.done_ts
        return {
            "buffered": max(batched - self.submit_ts, 0.0),
            "batch": max(dht - batched, 0.0),
            "dht": max(self.done_ts - dht, 0.0),
        }

    def to_dict(self) -> dict:
        d = {
            "op": list(self.op),
            "kind": self.kind,
            "node": self.node,
            "priority": self.priority,
            "group": list(self.group) if self.group else None,
            "submit_ts": self.submit_ts,
            "batched_ts": self.batched_ts,
            "dht_ts": self.dht_ts,
            "done_ts": self.done_ts,
            "result": self.result,
            "msgs": self.msgs,
            "bits": self.bits,
            "hops": self.hops,
            "complete": self.complete,
        }
        d["phases"] = self.phase_durations()
        return d


@dataclass(slots=True)
class GroupSpan:
    """The shared batch machinery of one iteration/epoch."""

    group: tuple  # ("skeap-it", i) / ("seap-ep", e)
    first_ts: float | None = None
    last_ts: float | None = None
    msgs: int = 0
    bits: int = 0
    hops: int = 0
    ops: int = 0  # operations batched into this group
    phases: list[tuple[float, str]] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "group": list(self.group),
            "first_ts": self.first_ts,
            "last_ts": self.last_ts,
            "msgs": self.msgs,
            "bits": self.bits,
            "hops": self.hops,
            "ops": self.ops,
            "phases": [[ts, name] for ts, name in self.phases],
        }


def _is_op_ctx(ctx) -> bool:
    return ctx is not None and len(ctx) == 3 and ctx[0] == OP_CTX


def build_spans(events: Iterable[TraceEvent]) -> list[OpSpan]:
    """Reconstruct one :class:`OpSpan` per heap operation.

    Lifecycle boundaries come from ``op`` events; exclusive costs from
    the network events stamped with the op's own causal context.
    """
    spans: dict[tuple[int, int], OpSpan] = {}

    def span_of(op: tuple[int, int]) -> OpSpan:
        sp = spans.get(op)
        if sp is None:
            sp = spans[op] = OpSpan(op=op, kind="?")
        return sp

    for e in events:
        if e.kind == OP:
            op = (e.ctx[1], e.ctx[2])
            sp = span_of(op)
            ev = e.data.get("ev")
            if ev == "submit":
                sp.submit_ts = e.ts
                sp.kind = e.data.get("kind", sp.kind)
                sp.node = e.data.get("node")
                sp.priority = e.data.get("priority")
            elif ev == "batched":
                sp.batched_ts = e.ts
                if "it" in e.data:
                    sp.group = ("skeap-it", e.data["it"])
                elif "ep" in e.data:
                    sp.group = ("seap-ep", e.data["ep"])
            elif ev == "dht":
                if sp.dht_ts is None:
                    sp.dht_ts = e.ts
            elif ev == "done":
                sp.done_ts = e.ts
                sp.result = e.data.get("result")
        elif e.kind in (SEND, HOP) and _is_op_ctx(e.ctx):
            sp = span_of((e.ctx[1], e.ctx[2]))
            sp.msgs += 1
            sp.bits += e.data.get("bits", 0)
            if e.kind == HOP:
                sp.hops += 1
    return sorted(spans.values(), key=lambda s: s.op)


def build_group_spans(events: Iterable[TraceEvent]) -> list[GroupSpan]:
    """Aggregate the shared iteration/epoch machinery per group context."""
    groups: dict[tuple, GroupSpan] = {}

    def group_of(ctx: tuple) -> GroupSpan:
        g = groups.get(ctx)
        if g is None:
            g = groups[ctx] = GroupSpan(group=ctx)
        return g

    for e in events:
        ctx = e.ctx
        if ctx is not None and len(ctx) == 2 and ctx[0] in ("skeap-it", "seap-ep"):
            g = group_of(tuple(ctx))
            if e.kind in (SEND, HOP):
                g.msgs += 1
                g.bits += e.data.get("bits", 0)
                if e.kind == HOP:
                    g.hops += 1
            if e.kind == OP and e.data.get("ev") == "batched":
                g.ops += 1
            if g.first_ts is None or e.ts < g.first_ts:
                g.first_ts = e.ts
            if g.last_ts is None or e.ts > g.last_ts:
                g.last_ts = e.ts
        elif e.kind == PHASE:
            proto = e.data.get("proto")
            if proto == "skeap" and "it" in e.data:
                g = group_of(("skeap-it", e.data["it"]))
            elif proto in ("seap", "kselect") and "ep" in e.data:
                g = group_of(("seap-ep", e.data["ep"]))
            else:
                continue
            g.phases.append((e.ts, e.data.get("name", "?")))
            if g.first_ts is None or e.ts < g.first_ts:
                g.first_ts = e.ts
            if g.last_ts is None or e.ts > g.last_ts:
                g.last_ts = e.ts
    return sorted(groups.values(), key=lambda g: (g.group[0], g.group[1]))


# -- JSONL ---------------------------------------------------------------------


def events_to_jsonl(tracer: Tracer) -> str:
    """One sorted-key JSON object per event, in emission order."""
    lines = [
        json.dumps(e.to_dict(), sort_keys=True, separators=(",", ":"))
        for e in tracer.events
    ]
    return "\n".join(lines) + ("\n" if lines else "")


# -- Chrome trace-event format -------------------------------------------------

#: synthetic process ids for the trace's top-level tracks
_PID_OPS = 1
_PID_PROTO = 2
_PID_NET = 3


def to_chrome_trace(tracer: Tracer) -> dict:
    """The Chrome trace-event representation of one traced run.

    Loadable in Perfetto / ``chrome://tracing``: operations are complete
    ("X") slices grouped by submitting node, iteration/epoch machinery
    complete slices on the protocol track, faults and phase transitions
    instant ("i") events on the network/protocol tracks.  1 simulation
    time unit (one synchronous round) = 1 ms of trace time.
    """
    events = tracer.events
    spans = build_spans(events)
    groups = build_group_spans(events)
    out: list[dict] = [
        _meta(_PID_OPS, "process_name", name="heap operations"),
        _meta(_PID_PROTO, "process_name", name="protocol phases"),
        _meta(_PID_NET, "process_name", name="network"),
    ]
    tids: set[int] = set()
    for sp in spans:
        if not sp.complete:
            continue
        tid = sp.node if sp.node is not None else sp.op[0]
        tids.add(tid)
        args = sp.to_dict()
        out.append({
            "name": f"{sp.kind} ({sp.op[0]},{sp.op[1]})",
            "cat": "op",
            "ph": "X",
            "pid": _PID_OPS,
            "tid": tid,
            "ts": sp.submit_ts * _US_PER_UNIT,
            "dur": max((sp.done_ts - sp.submit_ts) * _US_PER_UNIT, 1.0),
            "args": args,
        })
    for tid in tids:
        out.append(_meta(_PID_OPS, "thread_name", tid, name=f"node {tid}"))
    for g in groups:
        if g.first_ts is None:
            continue
        out.append({
            "name": f"{g.group[0]} {g.group[1]}",
            "cat": "batch",
            "ph": "X",
            "pid": _PID_PROTO,
            "tid": 0,
            "ts": g.first_ts * _US_PER_UNIT,
            "dur": max((g.last_ts - g.first_ts) * _US_PER_UNIT, 1.0),
            "args": g.to_dict(),
        })
    out.append(_meta(_PID_PROTO, "thread_name", 0, name="iterations/epochs"))
    out.append(_meta(_PID_PROTO, "thread_name", 1, name="phase marks"))
    out.append(_meta(_PID_NET, "thread_name", 0, name="faults"))
    out.append(_meta(_PID_NET, "thread_name", 1, name="membership"))
    for e in events:
        if e.kind == PHASE:
            out.append({
                "name": f"{e.data.get('proto', '?')}:{e.data.get('name', '?')}",
                "cat": "phase",
                "ph": "i",
                "s": "g",
                "pid": _PID_PROTO,
                "tid": 1,
                "ts": e.ts * _US_PER_UNIT,
                "args": dict(e.data),
            })
        elif e.kind == FAULT:
            out.append({
                "name": f"fault:{e.data.get('fault', '?')}",
                "cat": "fault",
                "ph": "i",
                "s": "g",
                "pid": _PID_NET,
                "tid": 0,
                "ts": e.ts * _US_PER_UNIT,
                "args": dict(e.data),
            })
        elif e.kind == NODE:
            out.append({
                "name": f"node:{e.data.get('ev', '?')} {e.data.get('node')}",
                "cat": "lifecycle",
                "ph": "i",
                "s": "g",
                "pid": _PID_NET,
                "tid": 1,
                "ts": e.ts * _US_PER_UNIT,
                "args": dict(e.data),
            })
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def _meta(pid: int, name: str, tid: int = 0, /, **args) -> dict:
    return {"name": name, "ph": "M", "pid": pid, "tid": tid, "args": args}


def validate_chrome_trace(trace: dict) -> list[str]:
    """Schema check for the exporter's output; returns a list of problems.

    Checks the trace-event contract Perfetto/about:tracing rely on:
    the ``traceEvents`` envelope, per-event required keys by phase type,
    numeric non-negative timestamps/durations, and JSON-serializability.
    An empty list means the trace is valid.
    """
    problems: list[str] = []
    if not isinstance(trace, dict):
        return ["trace is not an object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    try:
        json.dumps(trace)
    except (TypeError, ValueError) as exc:
        problems.append(f"not JSON-serializable: {exc}")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "i", "M"):
            problems.append(f"{where}: unsupported ph {ph!r}")
            continue
        for key in ("name", "pid", "tid"):
            if key not in ev:
                problems.append(f"{where}: missing {key}")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur <= 0:
                problems.append(f"{where}: bad dur {dur!r}")
        if ph == "i" and ev.get("s") not in ("g", "p", "t", None):
            problems.append(f"{where}: bad instant scope {ev.get('s')!r}")
    return problems


# -- span summary --------------------------------------------------------------


def span_summary_table(tracer: Tracer, title: str = "traced run") -> Table:
    """Aggregate the reconstructed spans into a printable summary."""
    spans = build_spans(tracer.events)
    groups = build_group_spans(tracer.events)
    table = Table(
        exp_id="TRACE",
        title=f"op-span summary — {title}",
        claim="each Insert/DeleteMin is one end-to-end span "
        "(buffered -> batch -> dht phases; exclusive msgs/bits/hops)",
        headers=[
            "kind", "ops", "complete", "mean rounds", "max rounds",
            "mean buffered", "mean batch", "mean dht",
            "mean msgs", "mean bits", "mean hops",
        ],
    )
    by_kind: dict[str, list[OpSpan]] = {}
    for sp in spans:
        by_kind.setdefault(sp.kind, []).append(sp)
    for kind in sorted(by_kind):
        ss = by_kind[kind]
        done = [s for s in ss if s.complete]
        if done:
            phases = [s.phase_durations() for s in done]
            mean = lambda vals: sum(vals) / len(vals)  # noqa: E731
            table.add_row(
                kind, len(ss), len(done),
                mean([s.rounds for s in done]),
                max(s.rounds for s in done),
                mean([p["buffered"] for p in phases]),
                mean([p["batch"] for p in phases]),
                mean([p["dht"] for p in phases]),
                mean([s.msgs for s in done]),
                mean([s.bits for s in done]),
                mean([s.hops for s in done]),
            )
        else:
            table.add_row(kind, len(ss), 0, "-", "-", "-", "-", "-", "-", "-", "-")
    n_groups = len(groups)
    shared_msgs = sum(g.msgs for g in groups)
    shared_bits = sum(g.bits for g in groups)
    table.add_note(
        f"{n_groups} iteration/epoch group(s) carry the shared batch "
        f"machinery: {shared_msgs} msgs / {shared_bits} bits total"
    )
    incomplete = sum(1 for s in spans if not s.complete)
    if incomplete:
        table.add_note(f"{incomplete} span(s) incomplete at end of trace")
    return table
