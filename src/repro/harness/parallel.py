"""Parallel sweep execution: fan independent grid points across processes.

Every experiment grid point — one (experiment, n, Λ, seed) combination —
is a self-contained deterministic simulation: it builds its own cluster
from an explicit seed and shares no state with any other point.  That
makes the sweep embarrassingly parallel: points fan out over a
:class:`~concurrent.futures.ProcessPoolExecutor` and merge back **in grid
order**, so the assembled tables are byte-identical to a serial run.

The unit of decomposition is :class:`ExperimentPlan`: an ordered list of
picklable ``(fn, kwargs)`` point tasks plus an ``assemble`` callback that
turns the ordered point results into the final
:class:`~repro.harness.tables.Table`.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable

from .tables import Table

__all__ = ["ExperimentPlan", "execute_plans", "default_jobs"]


@dataclass(slots=True)
class ExperimentPlan:
    """An experiment decomposed into independent deterministic grid points.

    ``tasks`` holds ``(fn, kwargs)`` pairs; each ``fn`` must be a picklable
    module-level function whose kwargs and result are picklable too.
    ``assemble`` receives the point results *in task order* and builds the
    table — serial and parallel execution are therefore byte-identical by
    construction.
    """

    exp_id: str
    tasks: list[tuple[Callable[..., Any], dict[str, Any]]]
    assemble: Callable[[list[Any]], Table]

    def run_serial(self) -> Table:
        """Run every point inline, in order, and assemble the table."""
        return self.assemble([fn(**kwargs) for fn, kwargs in self.tasks])


def default_jobs() -> int:
    """Worker count when ``--jobs`` is not given: one per CPU."""
    return max(os.cpu_count() or 1, 1)


def _run_task(task: tuple[Callable[..., Any], dict[str, Any]]) -> Any:
    fn, kwargs = task
    return fn(**kwargs)


def execute_plans(
    plans: list[ExperimentPlan], jobs: int | None = None
) -> list[Table]:
    """Run all plans' grid points across one process pool.

    Tasks from every plan share the pool (long sweeps overlap with short
    ones), and ``pool.map`` preserves submission order, so each plan's
    results come back in grid order regardless of completion order.
    """
    jobs = default_jobs() if jobs is None else max(int(jobs), 1)
    flat = [task for plan in plans for task in plan.tasks]
    if jobs == 1 or len(flat) <= 1:
        results = [_run_task(task) for task in flat]
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(_run_task, flat, chunksize=1))
    tables: list[Table] = []
    cursor = 0
    for plan in plans:
        chunk = results[cursor : cursor + len(plan.tasks)]
        cursor += len(plan.tasks)
        tables.append(plan.assemble(chunk))
    return tables
