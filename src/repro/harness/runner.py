"""Workload executors: run a protocol on a workload, collect the metrics.

These helpers isolate the measurement plumbing — phase windows, congestion
snapshots, injection-rate driving — so the experiment definitions in
``experiments.py`` read like the paper's claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import SimulationError
from ..seap import SeapHeap
from ..skeap import SkeapHeap
from ..workloads.generators import WorkloadSpec, generate_ops

__all__ = ["RunResult", "run_workload", "run_injection", "drive_rounds"]


@dataclass(slots=True)
class RunResult:
    """Metrics of one measured run."""

    rounds: int
    messages: int
    bits: int
    max_message_bits: int
    congestion: int
    completed_ops: int
    extra: dict = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Completed operations per round."""
        return self.completed_ops / max(self.rounds, 1)


def run_workload(heap, spec: WorkloadSpec, settle_limit: int = 500_000) -> RunResult:
    """Submit all ops of ``spec`` at once, settle, report the metrics."""
    before = heap.metrics.snapshot()
    count = 0
    for kind, priority, node in generate_ops(spec):
        if kind == "ins":
            heap.insert(priority=priority, value=None, at=node)
        else:
            heap.delete_min(at=node)
        count += 1
    heap.settle(settle_limit)
    window = heap.metrics.window(before)
    return RunResult(
        rounds=window.rounds,
        messages=window.messages,
        bits=window.bits,
        max_message_bits=window.max_message_bits,
        congestion=window.congestion,
        completed_ops=count,
    )


def run_injection(
    heap,
    rate_per_node: int,
    n_rounds: int,
    insert_fraction: float = 0.6,
    priority_of: Callable[[int], int] | None = None,
    settle_limit: int = 500_000,
) -> RunResult:
    """Drive the paper's injection model: λ new requests per node per round.

    Runs ``n_rounds`` rounds injecting at every real node each round, then
    settles.  Congestion is measured over the injection window — this is
    the quantity Theorem 3.2(4)/5.1(4) bounds by O~(Λ).
    """
    runner = heap.runner
    if not hasattr(runner, "step"):
        raise SimulationError("injection experiments run under the synchronous driver")
    rng = runner.rng.stream("injection")
    if priority_of is None:
        priority_of = lambda draw: 1 + draw % 3  # noqa: E731
    before = heap.metrics.snapshot()
    start_round = heap.metrics.rounds
    count = 0
    seeded = False
    for _ in range(n_rounds):
        for node in heap.topology.real_ids:
            for _ in range(rate_per_node):
                if not seeded or rng.random() < insert_fraction:
                    heap.insert(
                        priority=priority_of(int(rng.integers(0, 1 << 30))),
                        at=node,
                    )
                    seeded = True
                else:
                    heap.delete_min(at=node)
                count += 1
        runner.step()
    injection_congestion = heap.metrics.congestion_between(
        start_round, heap.metrics.rounds
    )
    heap.settle(settle_limit)
    window = heap.metrics.window(before)
    return RunResult(
        rounds=window.rounds,
        messages=window.messages,
        bits=window.bits,
        max_message_bits=window.max_message_bits,
        congestion=heap.metrics.congestion_between(start_round, heap.metrics.rounds),
        completed_ops=count,
        extra={"injection_congestion": injection_congestion},
    )


def drive_rounds(heap, n_rounds: int) -> None:
    """Advance the synchronous driver ``n_rounds`` rounds."""
    for _ in range(n_rounds):
        heap.runner.step()


def make_skeap(
    n_nodes: int, n_priorities: int = 3, seed: int = 0, detail: bool = False
) -> SkeapHeap:
    return SkeapHeap(
        n_nodes,
        n_priorities=n_priorities,
        seed=seed,
        record_history=False,
        metrics_detail=detail,
    )


def make_seap(n_nodes: int, seed: int = 0, detail: bool = False) -> SeapHeap:
    return SeapHeap(n_nodes, seed=seed, record_history=False, metrics_detail=detail)
