"""Experiment harness: runners, shape fits, tables, per-claim experiments."""

from .experiments import ALL_EXPERIMENTS, ALL_PLAN_FACTORIES, all_plans, run_all
from .fitting import FitResult, fit_linear, fit_log2, is_logarithmic, is_sublinear
from .manifest import build_manifest, table_hashes, write_manifest
from .parallel import ExperimentPlan, default_jobs, execute_plans
from .runner import RunResult, drive_rounds, run_injection, run_workload
from .sweep import SweepResult, sweep
from .tables import Table
from .trace_export import (
    GroupSpan,
    OpSpan,
    build_group_spans,
    build_spans,
    events_to_jsonl,
    span_summary_table,
    to_chrome_trace,
    validate_chrome_trace,
)
from .tracing import render_activity, render_cycle, render_store_loads, render_tree

__all__ = [
    "ALL_EXPERIMENTS",
    "ALL_PLAN_FACTORIES",
    "ExperimentPlan",
    "FitResult",
    "GroupSpan",
    "OpSpan",
    "RunResult",
    "SweepResult",
    "Table",
    "build_group_spans",
    "build_manifest",
    "build_spans",
    "events_to_jsonl",
    "span_summary_table",
    "table_hashes",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_manifest",
    "all_plans",
    "default_jobs",
    "drive_rounds",
    "execute_plans",
    "fit_linear",
    "fit_log2",
    "is_logarithmic",
    "is_sublinear",
    "run_all",
    "run_injection",
    "run_workload",
    "render_activity",
    "render_cycle",
    "render_store_loads",
    "render_tree",
    "sweep",
]
