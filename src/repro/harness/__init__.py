"""Experiment harness: runners, shape fits, tables, per-claim experiments."""

from .experiments import ALL_EXPERIMENTS, run_all
from .fitting import FitResult, fit_linear, fit_log2, is_logarithmic, is_sublinear
from .runner import RunResult, drive_rounds, run_injection, run_workload
from .sweep import SweepResult, sweep
from .tables import Table
from .tracing import render_activity, render_cycle, render_store_loads, render_tree

__all__ = [
    "ALL_EXPERIMENTS",
    "FitResult",
    "RunResult",
    "SweepResult",
    "Table",
    "drive_rounds",
    "fit_linear",
    "fit_log2",
    "is_logarithmic",
    "is_sublinear",
    "run_all",
    "run_injection",
    "run_workload",
    "render_activity",
    "render_cycle",
    "render_store_loads",
    "render_tree",
    "sweep",
]
