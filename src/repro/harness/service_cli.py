"""``python -m repro.harness serve`` and ``... loadtest``.

``serve`` runs a :class:`~repro.service.QueueService` in the foreground
until interrupted — the daemon half of the CI service-smoke job and of
any by-hand poking with a real client.  With ``--shards N`` (N > 1) it
instead spawns N shard serve subprocesses via
:class:`~repro.service.ShardController`, partitions the priority space
with :func:`~repro.service.even_partition` (cut points from
``--band-range LO:HI`` or a proto-appropriate default), and runs the
:class:`~repro.service.QueueRouter` in the foreground — one logical
queue over N OS processes, same wire protocol, same ready-line contract.

``loadtest`` drives a service with the seeded open/closed-loop generator
from :mod:`repro.service.loadgen` and renders the latency/throughput
table.  Without ``--connect`` it self-hosts: a service on an ephemeral
port is started in-process, loaded, verified, and torn down — one
command, no orchestration.  With ``--connect HOST:PORT`` it drives an
already-running server (started by ``serve``), which is how the CI smoke
job exercises the real socket boundary across processes.  With
``--shards N`` it self-hosts a federation (controller + shard processes
+ in-process router) and drives that; the merged cross-shard history
goes through the same checker stack as a single shard's.

Both compose with the rest of the harness: ``--manifest PATH`` writes a
run manifest (command, config, table hashes), and ``--trace DIR`` on a
self-hosted loadtest exports the server-side causal trace as JSONL +
Chrome-trace artifacts, exactly like ``harness trace`` does.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from pathlib import Path

from .fuzz import _flag_value

__all__ = ["serve_main", "loadtest_main", "recover_main"]


def _durability_config(journal, fsync, snapshot_every):
    """``--journal/--fsync/--snapshot-every`` → DurabilityConfig (or None)."""
    if journal is None:
        return None
    from ..service.durability import DurabilityConfig

    return DurabilityConfig(
        dir=journal, fsync=fsync, snapshot_every=snapshot_every
    )


def _recovery_line(recovery: dict) -> str:
    """The greppable one-line recovery certificate (CI contract)."""
    return (
        f"RECOVERY CERTIFIED gen={recovery['generation']} "
        f"ops_replayed={recovery['ops_replayed']} "
        f"elements={recovery['elements_restored']} "
        f"checks={','.join(recovery['checks'])}"
    )


def _parse_mix(mix: str):
    """``fixed:K`` | ``uniform:LO:HI`` | ``zipf:LO:HI[:S]`` → distribution."""
    from ..errors import ServiceError
    from ..workloads.generators import (
        fixed_priorities,
        uniform_priorities,
        zipf_priorities,
    )

    kind, _, rest = mix.partition(":")
    parts = rest.split(":") if rest else []
    try:
        if kind == "fixed":
            return fixed_priorities(int(parts[0]))
        if kind == "uniform":
            return uniform_priorities(int(parts[0]), int(parts[1]))
        if kind == "zipf":
            s = float(parts[2]) if len(parts) > 2 else 1.5
            return zipf_priorities(int(parts[0]), int(parts[1]), s)
    except (IndexError, ValueError) as exc:
        raise ServiceError(f"bad --mix {mix!r}: {exc}") from exc
    raise ServiceError(
        f"unknown --mix kind {kind!r}; use fixed:K, uniform:LO:HI, zipf:LO:HI[:S]"
    )


def _default_mix(proto: str, n_priorities: int) -> str:
    # Skeap accepts only the constant range [0, n_priorities); Seap takes
    # arbitrary integers, so stress it with a wide uniform range.
    return f"fixed:{n_priorities}" if proto == "skeap" else "uniform:0:1000000"


def _parse_band_range(band: str | None, proto: str, n_priorities: int):
    """``LO:HI`` → cut-point interval; default derives from the proto."""
    from ..errors import ServiceError
    from ..service.router import default_band_range

    if band is None:
        return default_band_range(proto, n_priorities)
    lo_s, sep, hi_s = band.partition(":")
    try:
        if not sep:
            raise ValueError("expected LO:HI")
        return int(lo_s), int(hi_s)
    except ValueError as exc:
        raise ServiceError(f"bad --band-range {band!r}: {exc}") from exc


def serve_main(argv: list[str]) -> int:
    """``python -m repro.harness serve [--proto P] [--nodes N] [--shards K] ...``"""
    from ..service import QueueService

    args = list(argv)
    proto = _flag_value(args, "--proto", "skeap")
    n_nodes = int(_flag_value(args, "--nodes", 16))
    seed = int(_flag_value(args, "--seed", 0))
    host = _flag_value(args, "--host", "127.0.0.1")
    port = int(_flag_value(args, "--port", 7341))
    window = int(_flag_value(args, "--window", 64))
    n_priorities = int(_flag_value(args, "--priorities", 3))
    runner = _flag_value(args, "--runner", "sync")
    shards = int(_flag_value(args, "--shards", 1))
    band = _flag_value(args, "--band-range", None)
    metrics_interval = float(_flag_value(args, "--metrics-interval", 1.0))
    journal = _flag_value(args, "--journal", None)
    fsync = _flag_value(args, "--fsync", "interval")
    snapshot_every = int(_flag_value(args, "--snapshot-every", 500))
    telemetry = "--no-telemetry" not in args
    args = [a for a in args if a != "--no-telemetry"]
    if args:
        print(f"unknown serve arguments: {args}", file=sys.stderr)
        return 2
    if shards > 1:
        return _serve_federation(
            proto=proto, n_nodes=n_nodes, seed=seed, host=host, port=port,
            window=window, n_priorities=n_priorities, runner=runner,
            shards=shards, band=band,
            telemetry=telemetry, metrics_interval=metrics_interval,
            journal=journal, fsync=fsync, snapshot_every=snapshot_every,
        )

    async def run() -> None:
        from ..errors import ReproError

        try:
            service = QueueService(
                proto, n_nodes=n_nodes, seed=seed, host=host, port=port,
                runner=runner, n_priorities=n_priorities, window=window,
                telemetry=telemetry, metrics_interval=metrics_interval,
                durability=_durability_config(journal, fsync, snapshot_every),
            )
        except ReproError as exc:
            print(f"serve failed: {type(exc).__name__}: {exc}", file=sys.stderr)
            raise SystemExit(1) from exc
        await service.start()
        # Recovery is certified *before* the ready line: a consumer that
        # waits for "serving ..." knows the journal replay already passed
        # the full checker stack.
        if service.recovery is not None:
            print(_recovery_line(service.recovery), flush=True)
        # The ready line is a contract: CI greps for it before connecting.
        print(
            f"serving {proto} n={n_nodes} seed={seed} "
            f"on {service.host}:{service.port}",
            flush=True,
        )
        await service.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=sys.stderr)
    except SystemExit as exc:
        return int(exc.code or 0)
    return 0


def _serve_federation(
    *, proto, n_nodes, seed, host, port, window, n_priorities, runner,
    shards, band, telemetry=True, metrics_interval=1.0,
    journal=None, fsync="interval", snapshot_every=500,
) -> int:
    """Spawn ``shards`` serve subprocesses and route them in the foreground.

    ``--nodes`` is per shard: a 4-shard federation over ``--nodes 8`` runs
    32 simulated nodes in 4 OS processes.
    """
    from ..errors import ReproError
    from ..service import QueueRouter, ShardController, even_partition

    try:
        lo, hi = _parse_band_range(band, proto, n_priorities)
        pmap = even_partition(shards, lo, hi)
    except ReproError as exc:
        print(f"serve failed: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    controller = ShardController(
        proto=proto, n_nodes=n_nodes, seed=seed, n_priorities=n_priorities,
        window=window, runner=runner,
        journal_root=journal, fsync=fsync, snapshot_every=snapshot_every,
    )

    async def run() -> None:
        router = QueueRouter(
            controller.endpoints(), pmap, host=host, port=port,
            window_per_shard=window, seed=seed,
            telemetry=telemetry, metrics_interval=metrics_interval,
            controller=controller,
        )
        await router.start()
        # Same ready-line contract as the single-process serve, with the
        # federation shape appended.
        print(
            f"serving {proto} n={router.n_nodes} seed={seed} "
            f"on {router.host}:{router.port} "
            f"(federation: {shards} shards, epoch {pmap.epoch})",
            flush=True,
        )
        await router.serve_forever()

    try:
        controller.spawn_many(range(shards))
        # Relay the children's recovery certificates (captured during the
        # ready-line handshake) so one log shows the whole federation.
        for shard in controller.shards.values():
            for line in shard.ready_output:
                if line.startswith("RECOVERY CERTIFIED"):
                    print(f"{line} shard={shard.shard_id}", flush=True)
        asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted; shutting down federation", file=sys.stderr)
    except ReproError as exc:
        print(f"serve failed: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    finally:
        controller.shutdown()
    return 0


async def _chaos_loadtest(router, controller, spec, *, shard_id, kill_after):
    """SIGKILL one shard mid-burst, restart it from its journal, revive it.

    The load itself runs with ``check=False``: the merged history must be
    fetched *after* the revive, otherwise the dead shard's band would be
    missing from the drained-point view.  The closing
    ``verify_observed_history`` is the acceptance assertion — every
    client-acked op appears exactly once in the spliced durable history
    (no acked op lost, no unacked op double-applied; a client retry after
    an ``unavailable`` is a *new* causal op id, so it can never collide
    with the journaled original).
    """
    from ..service.client import QueueClient
    from ..service.loadgen import run_loadtest, verify_observed_history

    load = asyncio.create_task(
        run_loadtest(router.host, router.port, spec, check=False)
    )
    try:
        await asyncio.sleep(kill_after)
        await asyncio.to_thread(controller.kill, shard_id)
        print(f"CHAOS KILL shard={shard_id} signal=SIGKILL", flush=True)
        shard = await asyncio.to_thread(controller.restart, shard_id)
        for line in shard.ready_output:
            if line.startswith("RECOVERY CERTIFIED"):
                print(f"{line} shard={shard_id}", flush=True)
        info = await router.revive(shard_id, endpoint=(shard.host, shard.port))
        print(
            f"REVIVED shard={shard_id} census={info['census']} "
            f"endpoint={shard.host}:{shard.port}",
            flush=True,
        )
    except BaseException:
        load.cancel()
        raise
    report = await load
    # A fresh probe fetches the post-revive merged history at a drained
    # point; the report then goes through the ordinary checker stack.
    probe = await QueueClient.connect(
        router.host, router.port, client="chaos-probe", timeout=spec.timeout
    )
    try:
        report.history_payload = await probe.history()
    finally:
        await probe.aclose()
    report.checks_passed = verify_observed_history(report)
    return report


def recover_main(argv: list[str]) -> int:
    """``python -m repro.harness recover DIR [--json]``.

    Offline crash-recovery certification: load the newest valid snapshot
    under ``DIR``, replay the journal tail, and run the recovered history
    through the full semantics-checker stack — without starting a
    service.  Exit 0 iff the on-disk state recovers and certifies.
    """
    from ..errors import ReproError
    from ..service.durability import certify_recovery, recover

    args = list(argv)
    as_json = "--json" in args
    args = [a for a in args if a != "--json"]
    if len(args) != 1 or args[0].startswith("--"):
        print("usage: recover JOURNAL_DIR [--json]", file=sys.stderr)
        return 2
    directory = Path(args[0])
    try:
        result = recover(directory)
        if result is None:
            print(
                f"recover failed: {directory} holds no snapshot and no "
                f"journal records", file=sys.stderr,
            )
            return 1
        checks = certify_recovery(result)
    except ReproError as exc:
        print(f"recover failed: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    if as_json:
        print(json.dumps(
            {
                "generation": result.generation,
                "ops_replayed": result.replayed_ops,
                "settled_ops": len(result.records),
                "elements": len(result.survivors),
                "seq_base": result.seq_base,
                "snapshot_index": result.snapshot_index,
                "segments": result.segments,
                "meta": result.meta,
                "checks": checks,
            },
            sort_keys=True, indent=2,
        ))
    print(_recovery_line({
        "generation": result.generation,
        "ops_replayed": result.replayed_ops,
        "elements_restored": len(result.survivors),
        "checks": checks,
    }) + f" settled_ops={len(result.records)} segments={result.segments}")
    return 0


def loadtest_main(argv: list[str]) -> int:
    """``python -m repro.harness loadtest [--connect H:P | --proto P] ...``"""
    from ..errors import ReproError
    from ..service import LoadSpec, QueueService
    from ..service.loadgen import run_loadtest

    args = list(argv)
    started = time.time()
    proto = _flag_value(args, "--proto", "skeap")
    n_nodes = int(_flag_value(args, "--nodes", 16))
    seed = int(_flag_value(args, "--seed", 0))
    n_clients = int(_flag_value(args, "--clients", 4))
    ops = int(_flag_value(args, "--ops", 50))
    insert_frac = float(_flag_value(args, "--insert-frac", 0.6))
    n_priorities = int(_flag_value(args, "--priorities", 3))
    mix = _flag_value(args, "--mix", None)
    window = int(_flag_value(args, "--window", 64))
    concurrency = int(_flag_value(args, "--concurrency", 2))
    mode = _flag_value(args, "--mode", "closed")
    rate = float(_flag_value(args, "--rate", 200.0))
    runner = _flag_value(args, "--runner", "sync")
    connect = _flag_value(args, "--connect", None)
    manifest_path = _flag_value(args, "--manifest", None)
    trace_dir = _flag_value(args, "--trace", None)
    shards = int(_flag_value(args, "--shards", 1))
    band = _flag_value(args, "--band-range", None)
    journal = _flag_value(args, "--journal", None)
    fsync = _flag_value(args, "--fsync", "interval")
    snapshot_every = int(_flag_value(args, "--snapshot-every", 500))
    chaos_kill = _flag_value(args, "--chaos-kill", None)
    kill_after = float(_flag_value(args, "--kill-after", 0.75))
    client_faults = _flag_value(args, "--client-faults", None)
    fault_scale = float(_flag_value(args, "--fault-scale", 0.01))
    retry_unavailable = int(_flag_value(args, "--retry-unavailable", 0))
    slo_text = _flag_value(args, "--slo", None)
    slo_out = _flag_value(args, "--slo-out", None)
    slo_strict = "--slo-strict" in args
    markdown = "--markdown" in args
    args = [a for a in args if a not in ("--markdown", "--slo-strict")]
    if args:
        print(f"unknown loadtest arguments: {args}", file=sys.stderr)
        return 2
    if (slo_out is not None or slo_strict) and slo_text is None:
        print("--slo-out/--slo-strict need --slo OBJECTIVES", file=sys.stderr)
        return 2
    slo_specs = None
    if slo_text is not None:
        from ..service.loadgen import parse_slo

        try:
            slo_specs = parse_slo(slo_text)
        except ReproError as exc:
            print(f"bad --slo: {exc}", file=sys.stderr)
            return 2
    if trace_dir is not None and connect is not None:
        print("--trace needs the self-hosted mode (drop --connect): the "
              "trace lives in the server process", file=sys.stderr)
        return 2
    if shards > 1 and connect is not None:
        print("--shards self-hosts a federation; to drive a running one, "
              "point --connect at its router port", file=sys.stderr)
        return 2
    if shards > 1 and trace_dir is not None:
        print("--trace is per-process; a federation's shards run in child "
              "processes, so their traces are not collectable here",
              file=sys.stderr)
        return 2
    if chaos_kill is not None:
        chaos_kill = int(chaos_kill)
        if shards <= 1 or connect is not None:
            print("--chaos-kill needs a self-hosted federation "
                  "(--shards N, no --connect)", file=sys.stderr)
            return 2
        if journal is None:
            print("--chaos-kill without --journal would lose the shard's "
                  "acked ops; give the federation a journal directory",
                  file=sys.stderr)
            return 2
        if not 0 <= chaos_kill < shards:
            print(f"--chaos-kill {chaos_kill} is not a shard id of "
                  f"--shards {shards}", file=sys.stderr)
            return 2
        if retry_unavailable == 0:
            # The killed shard answers `unavailable` until revived; without
            # a retry budget every op routed there during the outage fails.
            retry_unavailable = 64
    fault_plan = None
    if client_faults is not None:
        from ..sim.faults import FaultPlan

        try:
            fault_plan = FaultPlan.from_json(Path(client_faults).read_text())
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"bad --client-faults {client_faults!r}: {exc}",
                  file=sys.stderr)
            return 2

    spec = LoadSpec(
        n_clients=n_clients,
        ops_per_client=ops,
        mode=mode,
        concurrency=concurrency,
        rate=rate,
        insert_fraction=insert_frac,
        priorities=_parse_mix(mix or _default_mix(proto, n_priorities)),
        seed=seed,
        retry_unavailable=retry_unavailable,
        fault_plan=fault_plan,
        fault_scale=fault_scale,
    )

    async def run():
        if connect is not None:
            host, _, port_s = connect.rpartition(":")
            report = await run_loadtest(host or "127.0.0.1", int(port_s), spec)
            return report, None
        if shards > 1:
            from ..service import QueueRouter, even_partition

            lo, hi = _parse_band_range(band, proto, n_priorities)
            pmap = even_partition(shards, lo, hi)
            router = QueueRouter(
                controller.endpoints(), pmap,
                window_per_shard=window, seed=seed,
                controller=controller,
            )
            async with router:
                if chaos_kill is not None:
                    report = await _chaos_loadtest(
                        router, controller, spec,
                        shard_id=chaos_kill, kill_after=kill_after,
                    )
                else:
                    report = await run_loadtest(router.host, router.port, spec)
            return report, None
        service = QueueService(
            proto, n_nodes=n_nodes, seed=seed, runner=runner,
            n_priorities=n_priorities, window=window,
            durability=_durability_config(journal, fsync, snapshot_every),
        )
        if service.recovery is not None:
            print(_recovery_line(service.recovery), flush=True)
        tracer = None
        if trace_dir is not None:
            from ..sim.trace import Tracer, tracing

            tracer = Tracer()
            with tracing(tracer):
                async with service:
                    report = await run_loadtest(service.host, service.port, spec)
        else:
            async with service:
                report = await run_loadtest(service.host, service.port, spec)
        return report, tracer

    controller = None
    if shards > 1:
        from ..service import ShardController

        controller = ShardController(
            proto=proto, n_nodes=n_nodes, seed=seed,
            n_priorities=n_priorities, window=window, runner=runner,
            journal_root=journal, fsync=fsync, snapshot_every=snapshot_every,
        )
    try:
        if controller is not None:
            controller.spawn_many(range(shards))
        report, tracer = asyncio.run(run())
    except ReproError as exc:
        print(f"loadtest failed: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    finally:
        if controller is not None:
            controller.shutdown()

    table = report.table()
    print(table.to_markdown() if markdown else table.render())

    slo_failed = False
    if slo_specs is not None:
        from ..service.loadgen import evaluate_slo

        slo_report = evaluate_slo(report, slo_specs)
        slo_table = slo_report.table()
        print(slo_table.to_markdown() if markdown else slo_table.render())
        slo_failed = not slo_report.passed
        if slo_out is not None:
            out = Path(slo_out)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(
                json.dumps(
                    {
                        "slo": slo_report.to_jsonable(),
                        "spec": slo_text,
                        "proto": report.proto,
                        "n_nodes": report.n_nodes,
                        "completed": report.completed,
                        "throughput": report.throughput,
                        "shed": report.shed_total,
                        "retries": report.retry_total,
                        "seed": seed,
                    },
                    sort_keys=True,
                    indent=2,
                )
                + "\n"
            )
            print(f"# slo report: {out}", file=sys.stderr)

    if tracer is not None:
        from .trace_export import (
            events_to_jsonl,
            to_chrome_trace,
            validate_chrome_trace,
        )

        chrome = to_chrome_trace(tracer)
        problems = validate_chrome_trace(chrome)
        if problems:
            for p in problems[:10]:
                print(f"trace validation: {p}", file=sys.stderr)
            return 1
        out = Path(trace_dir)
        out.mkdir(parents=True, exist_ok=True)
        (out / "events.jsonl").write_text(events_to_jsonl(tracer))
        (out / "trace.json").write_text(
            json.dumps(chrome, sort_keys=True, separators=(",", ":")) + "\n"
        )
        print(f"# trace: {out}", file=sys.stderr)

    if manifest_path is not None:
        from .manifest import build_manifest, write_manifest

        manifest = build_manifest(
            command=["loadtest"] + list(argv),
            config={
                "proto": report.proto,
                "n_nodes": report.n_nodes,
                "clients": n_clients,
                "ops_per_client": ops,
                "mode": mode,
                "concurrency": concurrency,
                "rate": rate,
                "window": window,
                "connect": connect,
                "shards": shards,
            },
            seed=seed,
            tables=[table],
            markdown=markdown,
            started=started,
            extra={
                "completed": report.completed,
                "throughput": report.throughput,
                "shed": report.shed_total,
                "retries": report.retry_total,
                "checks_passed": report.checks_passed,
            },
        )
        write_manifest(manifest_path, manifest)
        print(f"# manifest: {manifest_path}", file=sys.stderr)
    if slo_failed and slo_strict:
        print("loadtest failed: SLO objectives not met", file=sys.stderr)
        return 1
    return 0
