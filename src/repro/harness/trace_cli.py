"""The ``harness trace`` subcommand: run one scenario with tracing on.

Usage::

    python -m repro.harness trace <target> [--nodes N] [--ops K] [--seed S]
                                           [--out DIR] [--faults] [--markdown]

``<target>`` is any fuzz-harness target (``skeap``, ``seap``, ``skack``,
``kselect``, ``linearize``, ``skeap-async``, ``seap-async``) — the same
deterministic drivers the fuzzer uses, here with a clean transport by
default (``--faults`` runs the target's seeded fault plan instead, so
fault events show up on the network track).

Artifacts written to ``--out`` (default ``trace-out/<target>-s<seed>``):

* ``events.jsonl`` — the raw event log, one JSON object per line;
* ``trace.json`` — Chrome trace-event format, loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``;
* ``manifest.json`` — run manifest (command, seeds, fault plan, git SHA,
  wall-clock, sha256 of the printed span table).

The span summary table is printed to stdout.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from ..sim.faults import FaultPlan
from ..sim.trace import OP, Tracer, tracing
from .fuzz import FuzzCase, TARGET_NAMES, _flag_value, generate_plan, run_case
from .manifest import build_manifest, write_manifest
from .trace_export import (
    events_to_jsonl,
    span_summary_table,
    to_chrome_trace,
    validate_chrome_trace,
)

__all__ = ["trace_scenario", "trace_main"]


def trace_scenario(
    target: str,
    n_nodes: int = 8,
    n_ops: int = 32,
    seed: int = 0,
    with_faults: bool = False,
):
    """Run one target under a fresh tracer; returns ``(tracer, result)``."""
    plan = (
        generate_plan(seed, n_nodes, churn=not target.endswith("-async"))
        if with_faults
        else FaultPlan(seed=seed)
    )
    case = FuzzCase(
        target=target, n_nodes=n_nodes, n_ops=n_ops, seed=seed, plan=plan
    )
    tracer = Tracer()
    with tracing(tracer):
        result = run_case(case)
    return tracer, result, case


def trace_main(argv: list[str]) -> int:
    """``python -m repro.harness trace <target> [...]``"""
    args = list(argv)
    n_nodes = int(_flag_value(args, "--nodes", 8))
    n_ops = int(_flag_value(args, "--ops", 32))
    seed = int(_flag_value(args, "--seed", 0))
    out_dir = _flag_value(args, "--out", None)
    markdown = "--markdown" in args
    with_faults = "--faults" in args
    args = [a for a in args if a not in ("--markdown", "--faults")]
    targets = [a for a in args if not a.startswith("-")]
    flags = [a for a in args if a.startswith("-")]
    if flags:
        print(f"unknown trace arguments: {flags}", file=sys.stderr)
        return 2
    if len(targets) != 1 or targets[0] not in TARGET_NAMES:
        print(
            "usage: python -m repro.harness trace <target> "
            "[--nodes N] [--ops K] [--seed S] [--out DIR] [--faults] "
            f"[--markdown]\n  targets: {', '.join(TARGET_NAMES)}",
            file=sys.stderr,
        )
        return 2
    target = targets[0]
    started = time.time()
    tracer, result, case = trace_scenario(
        target, n_nodes=n_nodes, n_ops=n_ops, seed=seed, with_faults=with_faults
    )
    if result.failed:
        print(
            f"scenario failed ({result.signature}): {result.message}",
            file=sys.stderr,
        )
        # Still export what was traced — a failing run is when the trace
        # is most valuable — but exit non-zero.

    title = f"{target} n={n_nodes} ops={n_ops} seed={seed}"
    table = span_summary_table(tracer, title=title)
    rendered = table.to_markdown() if markdown else table.render()

    chrome = to_chrome_trace(tracer)
    problems = validate_chrome_trace(chrome)
    if problems:
        for p in problems[:10]:
            print(f"trace validation: {p}", file=sys.stderr)
        return 1

    out = Path(out_dir) if out_dir else Path("trace-out") / f"{target}-s{seed}"
    out.mkdir(parents=True, exist_ok=True)
    (out / "events.jsonl").write_text(events_to_jsonl(tracer))
    (out / "trace.json").write_text(
        json.dumps(chrome, sort_keys=True, separators=(",", ":")) + "\n"
    )
    submits = sum(1 for e in tracer.of_kind(OP) if e.data.get("ev") == "submit")
    manifest = build_manifest(
        command=["trace"] + list(argv),
        config={
            "target": target,
            "n_nodes": n_nodes,
            "n_ops": n_ops,
            "faults": with_faults,
        },
        seed=seed,
        fault_plan=case.plan.to_dict(),
        tables=[table],
        markdown=markdown,
        started=started,
        extra={
            "events": len(tracer),
            "submitted_ops": submits,
            "outcome": result.signature or "pass",
        },
    )
    write_manifest(out / "manifest.json", manifest)

    print(rendered)
    print()
    print(
        f"# wrote {out / 'events.jsonl'} ({len(tracer)} events), "
        f"{out / 'trace.json'} ({len(chrome['traceEvents'])} trace events), "
        f"{out / 'manifest.json'}",
        file=sys.stderr,
    )
    return 1 if result.failed else 0
