"""``harness bench-kernel`` — sync-kernel micro-benchmark, both dispatch modes.

Runs one fixed, deterministic Skeap workload twice — per-message dispatch
and the batched kernel (``batched_dispatch=True``) — and reports the
numbers the batched-kernel work is judged by: wall-clock, delivered
messages/sec, Message allocations per round, and the pool's reuse share.
The two runs must agree on every core metric (rounds, messages, bits,
congestion); the subcommand hard-fails otherwise, so every invocation is
also a byte-identity check.

``--json PATH`` writes the timings in pytest-benchmark's JSON shape
(``benchmarks[].fullname`` + ``stats.median``), which is exactly what
``scripts/compare_bench.py`` consumes — the committed
``benchmarks/BENCH_PR6.json`` gate is produced from these numbers plus
the pytest micro-benchmarks.
"""

from __future__ import annotations

import json
import sys
import time

__all__ = ["bench_kernel_main", "drive_kernel_workload"]


def drive_kernel_workload(
    n_nodes: int = 48,
    ops: int = 300,
    seed: int = 7,
    batched: bool = False,
):
    """The fixed workload both dispatch modes run: inserts, settle, deletes.

    Sized so batch epochs, aggregation waves and DHT traffic all appear —
    the three message populations whose dispatch the batched kernel
    changes.  Deterministic end-to-end, so a single shot is the meaningful
    measurement (same reasoning as ``benchmarks/bench_util.py``).
    """
    from repro import SkeapHeap

    heap = SkeapHeap(
        n_nodes=n_nodes, n_priorities=4, seed=seed, batched_dispatch=batched
    )
    for i in range(ops):
        heap.insert(priority=1 + i % 4, at=i % n_nodes)
    heap.settle()
    for i in range(ops // 2):
        heap.delete_min(at=i % n_nodes)
    heap.settle()
    return heap


def _core_numbers(metrics):
    return (
        metrics.rounds,
        metrics.messages,
        metrics.bits,
        metrics.max_message_bits,
        metrics.congestion,
        list(metrics.congestion_by_round),
        list(metrics.max_bits_by_round),
    )


def _stats_entry(fullname: str, elapsed: float, extra: dict) -> dict:
    return {
        "group": "bench-kernel",
        "name": fullname.rsplit("::", 1)[-1],
        "fullname": fullname,
        "params": None,
        "param": None,
        "extra_info": extra,
        "stats": {
            "min": elapsed,
            "max": elapsed,
            "mean": elapsed,
            "stddev": 0,
            "rounds": 1,
            "median": elapsed,
            "iqr": 0.0,
            "q1": elapsed,
            "q3": elapsed,
            "ops": 1.0 / elapsed if elapsed else 0.0,
        },
    }


def bench_kernel_main(argv: list[str]) -> int:
    n_nodes, ops, seed = 48, 300, 7
    json_path: str | None = None
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg == "--nodes":
            n_nodes = int(args.pop(0))
        elif arg == "--ops":
            ops = int(args.pop(0))
        elif arg == "--seed":
            seed = int(args.pop(0))
        elif arg == "--json":
            json_path = args.pop(0)
        else:
            print(f"bench-kernel: unknown argument {arg!r}", file=sys.stderr)
            return 2

    results = {}
    for label, batched in (("per-message", False), ("batched", True)):
        started = time.perf_counter()
        heap = drive_kernel_workload(
            n_nodes=n_nodes, ops=ops, seed=seed, batched=batched
        )
        elapsed = time.perf_counter() - started
        runner = heap.runner
        rounds = heap.metrics.rounds or 1
        results[label] = {
            "elapsed": elapsed,
            "core": _core_numbers(heap.metrics),
            "messages": heap.metrics.messages,
            "rounds": heap.metrics.rounds,
            "msgs_per_sec": heap.metrics.messages / elapsed,
            "allocated": runner.msgs_allocated,
            "reused": runner.msgs_reused,
            "allocations_per_round": runner.msgs_allocated / rounds,
            "batched_rounds": runner.batched_rounds,
        }

    per, bat = results["per-message"], results["batched"]
    if per["core"] != bat["core"]:
        print("bench-kernel: FATAL — batched run diverged from per-message run",
              file=sys.stderr)
        print(f"  per-message: {per['core'][:4]}", file=sys.stderr)
        print(f"  batched:     {bat['core'][:4]}", file=sys.stderr)
        return 1
    if bat["batched_rounds"] == 0:
        print("bench-kernel: FATAL — batched kernel never engaged", file=sys.stderr)
        return 1

    print(f"# bench-kernel: nodes={n_nodes} ops={ops} seed={seed}")
    print(f"# rounds={per['rounds']} messages={per['messages']} "
          "(identical across modes)")
    header = (f"{'mode':>12}  {'wall':>8}  {'msgs/sec':>10}  "
              f"{'alloc/round':>11}  {'reused':>8}")
    print(header)
    for label in ("per-message", "batched"):
        r = results[label]
        print(f"{label:>12}  {r['elapsed']:>7.3f}s  {r['msgs_per_sec']:>10.0f}  "
              f"{r['allocations_per_round']:>11.2f}  {r['reused']:>8}")
    speedup = per["elapsed"] / bat["elapsed"] if bat["elapsed"] else 0.0
    alloc_cut = (1 - bat["allocated"] / per["allocated"]) * 100 if per["allocated"] else 0.0
    print(f"# batched speedup: {speedup:.2f}x, allocations cut: {alloc_cut:.0f}%")

    if json_path is not None:
        doc = {
            "machine_info": {},
            "commit_info": {},
            "datetime": "",
            "version": "bench-kernel",
            "benchmarks": [
                _stats_entry(
                    f"harness/bench-kernel::kernel[{label}]",
                    results[label]["elapsed"],
                    {
                        "messages_per_sec": round(results[label]["msgs_per_sec"]),
                        "allocations_per_round": round(
                            results[label]["allocations_per_round"], 2
                        ),
                        "messages_reused": results[label]["reused"],
                    },
                )
                for label in ("per-message", "batched")
            ],
        }
        with open(json_path, "w") as fh:
            json.dump(doc, fh, indent=1)
        print(f"# wrote {json_path}")
    return 0
