"""One function per experiment row of DESIGN.md (T1–T13, F1–F2, A1).

Each function runs its measurement, checks the paper's claim as a shape
assertion, and returns a printable :class:`~repro.harness.tables.Table`
whose ``verdict`` states whether the claim's shape held.  ``run_all``
regenerates every table, which is how ``EXPERIMENTS.md`` was produced.

Each sweep experiment is decomposed into module-level **point functions**
(one independent deterministic simulation per grid point, picklable for
``ProcessPoolExecutor`` fan-out) plus an assembler that builds the table
from the ordered point results.  ``plan_*`` factories expose this as
:class:`~repro.harness.parallel.ExperimentPlan`; the classic ``t*_``
functions are thin serial wrappers over the same plans, so serial and
parallel runs share one code path and produce byte-identical tables.
"""

from __future__ import annotations

import math
import statistics

import numpy as np

from ..baselines import CentralHeapCluster, GatherSelectCluster, UnbatchedHeapCluster
from ..kselect import KSelectCluster
from ..overlay.ldb import LDBTopology, VirtualKind, kind_of
from ..seap import SeapHeap
from ..skeap import AnchorState, Batch, BatchEntry, SkeapHeap, decompose_block
from ..workloads.generators import WorkloadSpec, fixed_priorities, uniform_priorities
from .fitting import fit_log2, is_logarithmic, is_sublinear
from .parallel import ExperimentPlan
from .runner import make_seap, make_skeap, run_injection, run_workload
from .tables import Table

__all__ = [
    "t1_skeap_rounds", "t2_skeap_congestion", "t3_skeap_msgsize",
    "t4_kselect_rounds", "t5_kselect_reduction", "t6_kselect_vs_gather",
    "t7_seap_rounds", "t8_seap_vs_skeap_msgsize", "t9_dht_fairness",
    "t10_routing_hops", "t11_tree_height", "t12_scalability_baselines",
    "t13_membership", "t14_linearization", "f1_figure1_trace", "f2_figure2_ldb",
    "a1_ablations", "a2_seap_sc_cost", "a3_fuzz_campaign", "run_all",
    "ALL_EXPERIMENTS", "ALL_PLAN_FACTORIES", "all_plans",
]

_DEFAULT_NS = (8, 16, 32, 64, 128)


def _verdict(ok: bool) -> str:
    return "SHAPE HOLDS" if ok else "SHAPE VIOLATED"


# -- T1 -----------------------------------------------------------------------


def _pt_t1(n: int, ops_per_node: int, seed: int) -> tuple[int, int]:
    heap = make_skeap(n, seed=seed)
    spec = WorkloadSpec(
        n_ops=ops_per_node * n, n_nodes=n, insert_fraction=0.6,
        priorities=fixed_priorities(3), seed=seed,
    )
    result = run_workload(heap, spec)
    return result.completed_ops, result.rounds


def _asm_t1(ns, results) -> Table:
    table = Table(
        "T1", "Skeap rounds per batch vs n",
        "O(log n) rounds w.h.p. (Theorem 3.2(3) / Corollary 3.6)",
        ["n", "ops", "rounds", "rounds/log2(n)"],
    )
    rounds = []
    for n, (ops, r) in zip(ns, results):
        rounds.append(r)
        table.add_row(n, ops, r, r / math.log2(n))
    fit = fit_log2(ns, rounds)
    ok = is_logarithmic(ns, rounds)
    table.add_note(f"fit rounds ≈ {fit.a:.2f}·log2(n) + {fit.b:.2f} (r²={fit.r2:.3f})")
    table.verdict = _verdict(ok)
    return table


def plan_t1(ns=_DEFAULT_NS, ops_per_node: int = 2, seed: int = 0) -> ExperimentPlan:
    return ExperimentPlan(
        "T1",
        [(_pt_t1, {"n": n, "ops_per_node": ops_per_node, "seed": seed}) for n in ns],
        lambda results: _asm_t1(ns, results),
    )


def t1_skeap_rounds(ns=_DEFAULT_NS, ops_per_node: int = 2, seed: int = 0) -> Table:
    """Cor. 3.6: a batch of buffered requests settles in O(log n) rounds."""
    return plan_t1(ns=ns, ops_per_node=ops_per_node, seed=seed).run_serial()


# -- T2 --------------------------------------------------------------------------


def _pt_t2(lam: int, n: int, n_rounds: int, seed: int) -> int:
    heap = make_skeap(n, seed=seed)
    result = run_injection(heap, rate_per_node=lam, n_rounds=n_rounds)
    return result.congestion


def _asm_t2(lams, congestions) -> Table:
    table = Table(
        "T2", "Skeap congestion vs injection rate Λ",
        "congestion O~(Λ) (Theorem 3.2(4))",
        ["Λ", "congestion", "congestion/Λ"],
    )
    for lam, congestion in zip(lams, congestions):
        table.add_row(lam, congestion, congestion / lam)
    # Linear in Λ means congestion/Λ stays within a constant band.
    ratios = [c / l for c, l in zip(congestions, lams)]
    ok = max(ratios) <= 4.0 * max(min(ratios), 1e-9)
    table.add_note(f"congestion/Λ spread: {min(ratios):.1f} .. {max(ratios):.1f}")
    table.verdict = _verdict(ok)
    return table


def plan_t2(lams=(1, 2, 4, 8), n: int = 32, n_rounds: int = 40, seed: int = 0) -> ExperimentPlan:
    return ExperimentPlan(
        "T2",
        [(_pt_t2, {"lam": lam, "n": n, "n_rounds": n_rounds, "seed": seed}) for lam in lams],
        lambda results: _asm_t2(lams, results),
    )


def t2_skeap_congestion(lams=(1, 2, 4, 8), n: int = 32, n_rounds: int = 40, seed: int = 0) -> Table:
    """Thm 3.2(4): congestion O~(Λ) — linear in the injection rate."""
    return plan_t2(lams=lams, n=n, n_rounds=n_rounds, seed=seed).run_serial()


# -- T3 ----------------------------------------------------------------------------


def _pt_t3(lam: int, n: int, n_rounds: int, seed: int) -> int:
    heap = make_skeap(n, seed=seed)
    result = run_injection(heap, rate_per_node=lam, n_rounds=n_rounds)
    return result.max_message_bits


def _asm_t3(lams, bits) -> Table:
    table = Table(
        "T3", "Skeap max message bits vs Λ",
        "message size O(Λ·log²n) bits — grows with the injection rate (Lemma 3.8)",
        ["Λ", "max message bits"],
    )
    for lam, b in zip(lams, bits):
        table.add_row(lam, b)
    ok = bits[-1] > bits[0] * 1.5  # the Λ-dependence is the claim's content
    table.add_note("contrast with T8: Seap's max message bits stay flat in Λ")
    table.verdict = _verdict(ok)
    return table


def plan_t3(lams=(1, 2, 4, 8), n: int = 32, n_rounds: int = 30, seed: int = 0) -> ExperimentPlan:
    return ExperimentPlan(
        "T3",
        [(_pt_t3, {"lam": lam, "n": n, "n_rounds": n_rounds, "seed": seed}) for lam in lams],
        lambda results: _asm_t3(lams, results),
    )


def t3_skeap_msgsize(lams=(1, 2, 4, 8), n: int = 32, n_rounds: int = 30, seed: int = 0) -> Table:
    """Lemma 3.8: Skeap's max message size grows with Λ (O(Λ log² n) bits)."""
    return plan_t3(lams=lams, n=n, n_rounds=n_rounds, seed=seed).run_serial()


# -- T4 --------------------------------------------------------------------------------


def _pt_t4(n: int, elements_per_node: int, seed: int) -> tuple[int, int, int]:
    m = elements_per_node * n
    cluster = KSelectCluster(n, seed=seed)
    rng = np.random.default_rng(seed + n)
    keys = [(int(p), uid) for uid, p in enumerate(rng.integers(1, 1 << 20, size=m))]
    cluster.scatter(keys)
    k = m // 2
    before = cluster.metrics.rounds
    got = cluster.select(k)
    elapsed = cluster.metrics.rounds - before
    assert got == sorted(keys)[k - 1]
    return m, k, elapsed


def _asm_t4(ns, results) -> Table:
    table = Table(
        "T4", "KSelect rounds vs n",
        "O(log n) rounds w.h.p. (Theorem 4.2)",
        ["n", "m", "k", "rounds", "rounds/log2(n)"],
    )
    rounds = []
    for n, (m, k, elapsed) in zip(ns, results):
        rounds.append(elapsed)
        table.add_row(n, m, k, elapsed, elapsed / math.log2(n))
    ok = is_logarithmic(ns, rounds)
    fit = fit_log2(ns, rounds)
    table.add_note(f"fit rounds ≈ {fit.a:.2f}·log2(n) + {fit.b:.2f} (r²={fit.r2:.3f})")
    table.verdict = _verdict(ok)
    return table


def plan_t4(ns=_DEFAULT_NS, elements_per_node: int = 8, seed: int = 0) -> ExperimentPlan:
    return ExperimentPlan(
        "T4",
        [(_pt_t4, {"n": n, "elements_per_node": elements_per_node, "seed": seed}) for n in ns],
        lambda results: _asm_t4(ns, results),
    )


def t4_kselect_rounds(ns=_DEFAULT_NS, elements_per_node: int = 8, seed: int = 0) -> Table:
    """Theorem 4.2: KSelect finishes in O(log n) rounds w.h.p."""
    return plan_t4(ns=ns, elements_per_node=elements_per_node, seed=seed).run_serial()


# -- T5 ------------------------------------------------------------------------------------


def t5_kselect_reduction(n: int = 64, elements_per_node: int = 64, seed: int = 0) -> Table:
    """Lemmas 4.4/4.7: survivor counts after phase 1 and phase 2."""
    table = Table(
        "T5", "KSelect candidate reduction per phase",
        "after phase 1: N = O(n^1.5·log n); after phase 2: N = O(√n)·polylog (Lemmas 4.4, 4.7)",
        ["n", "m", "after phase 1", "n^1.5·log2 n", "final N", "phase-2 iters"],
    )
    m = elements_per_node * n
    cluster = KSelectCluster(n, seed=seed)
    rng = np.random.default_rng(seed)
    keys = [(int(p), uid) for uid, p in enumerate(rng.integers(1, 1 << 24, size=m))]
    cluster.scatter(keys)
    k = m // 2
    got = cluster.select(k)
    assert got == sorted(keys)[k - 1]
    stats = cluster.last_run_stats()
    bound1 = n**1.5 * math.log2(n)
    after1 = stats.get("after_phase1", stats["initial_N"])
    final = stats["final_N"]
    iters = len(stats.get("phase2_N", []))
    table.add_row(n, m, after1, bound1, final, iters)
    ok = after1 <= bound1 and final <= max(64, 4 * math.sqrt(n)) * 4
    table.add_note(f"per-iteration survivor counts: {stats}")
    table.verdict = _verdict(ok)
    return table


# -- T6 ---------------------------------------------------------------------------------


def _pt_t6(n: int, elements_per_node: int, seed: int) -> tuple[int, int, int]:
    m = elements_per_node * n
    rng = np.random.default_rng(seed + n)
    keys = [(int(p), uid) for uid, p in enumerate(rng.integers(1, 1 << 20, size=m))]
    expected = sorted(keys)[m // 2 - 1]

    ks = KSelectCluster(n, seed=seed)
    ks.scatter(keys)
    assert ks.select(m // 2) == expected

    ga = GatherSelectCluster(n, seed=seed)
    ga.scatter(keys)
    assert ga.select(m // 2) == expected
    return m, ks.metrics.max_message_bits, ga.metrics.max_message_bits


def _asm_t6(ns, results) -> Table:
    table = Table(
        "T6", "KSelect vs gather-to-root selection",
        "KSelect uses O(log n)-bit messages; gathering needs Θ(m)-sized messages (Theorem 4.2)",
        ["n", "m", "kselect max bits", "gather max bits", "gather/kselect"],
    )
    ks_bits, ga_bits = [], []
    for n, (m, ks, ga) in zip(ns, results):
        ks_bits.append(ks)
        ga_bits.append(ga)
        table.add_row(n, m, ks, ga, ga / ks)
    ok = all(g > k for g, k in zip(ga_bits, ks_bits)) and is_sublinear(
        ns, ks_bits, factor=1.0
    )
    table.add_note("gather message size grows linearly in m; KSelect's stays near-constant")
    table.verdict = _verdict(ok)
    return table


def plan_t6(ns=(8, 16, 32, 64), elements_per_node: int = 8, seed: int = 0) -> ExperimentPlan:
    return ExperimentPlan(
        "T6",
        [(_pt_t6, {"n": n, "elements_per_node": elements_per_node, "seed": seed}) for n in ns],
        lambda results: _asm_t6(ns, results),
    )


def t6_kselect_vs_gather(ns=(8, 16, 32, 64), elements_per_node: int = 8, seed: int = 0) -> Table:
    """Theorem 4.2 vs the naive baseline: message size O(log n) vs Θ(m log m)."""
    return plan_t6(ns=ns, elements_per_node=elements_per_node, seed=seed).run_serial()


# -- T7 ----------------------------------------------------------------------------


def _pt_t7(n: int, ops_per_node: int, seed: int) -> tuple[int, int]:
    heap = make_seap(n, seed=seed)
    spec = WorkloadSpec(
        n_ops=ops_per_node * n, n_nodes=n, insert_fraction=0.6,
        priorities=uniform_priorities(1, 1 << 20), seed=seed,
    )
    result = run_workload(heap, spec)
    return result.completed_ops, result.rounds


def _asm_t7(ns, results) -> Table:
    table = Table(
        "T7", "Seap rounds per insert+delete cycle vs n",
        "O(log n) rounds w.h.p. per phase (Theorem 5.1(3))",
        ["n", "ops", "rounds", "rounds/log2(n)"],
    )
    rounds = []
    for n, (ops, r) in zip(ns, results):
        rounds.append(r)
        table.add_row(n, ops, r, r / math.log2(n))
    ok = is_logarithmic(ns, rounds)
    fit = fit_log2(ns, rounds)
    table.add_note(f"fit rounds ≈ {fit.a:.2f}·log2(n) + {fit.b:.2f} (r²={fit.r2:.3f})")
    table.verdict = _verdict(ok)
    return table


def plan_t7(ns=_DEFAULT_NS, ops_per_node: int = 2, seed: int = 0) -> ExperimentPlan:
    return ExperimentPlan(
        "T7",
        [(_pt_t7, {"n": n, "ops_per_node": ops_per_node, "seed": seed}) for n in ns],
        lambda results: _asm_t7(ns, results),
    )


def t7_seap_rounds(ns=_DEFAULT_NS, ops_per_node: int = 2, seed: int = 0) -> Table:
    """Lemma 5.3 / Thm 5.1(3): Seap's phases finish in O(log n) rounds."""
    return plan_t7(ns=ns, ops_per_node=ops_per_node, seed=seed).run_serial()


# -- T8 -------------------------------------------------------------------------------


def _pt_t8(lam: int, n: int, n_rounds: int, seed: int) -> tuple[int, int]:
    sk = make_skeap(n, seed=seed)
    sk_res = run_injection(sk, rate_per_node=lam, n_rounds=n_rounds)
    se = make_seap(n, seed=seed)
    se_res = run_injection(se, rate_per_node=lam, n_rounds=n_rounds)
    return sk_res.max_message_bits, se_res.max_message_bits


def _asm_t8(lams, results) -> Table:
    table = Table(
        "T8", "Max message bits vs Λ: Seap (flat) vs Skeap (growing)",
        "Seap messages are O(log n) bits independent of Λ; Skeap's grow with Λ (Lemmas 3.8 vs 5.5)",
        ["Λ", "Skeap max bits", "Seap max bits", "Skeap/Seap"],
    )
    skeap_bits, seap_bits = [], []
    for lam, (sk_bits, se_bits) in zip(lams, results):
        skeap_bits.append(sk_bits)
        seap_bits.append(se_bits)
        table.add_row(lam, sk_bits, se_bits, sk_bits / se_bits)
    seap_flat = seap_bits[-1] <= seap_bits[0] * 1.3
    skeap_grows = skeap_bits[-1] >= skeap_bits[0] * 1.5
    wins_at_high = skeap_bits[-1] > seap_bits[-1]
    ok = seap_flat and skeap_grows and wins_at_high
    table.add_note(
        f"Seap spread {min(seap_bits)}..{max(seap_bits)} bits (flat); "
        f"Skeap spread {min(skeap_bits)}..{max(skeap_bits)} bits (grows with Λ)"
    )
    table.verdict = _verdict(ok)
    return table


def plan_t8(lams=(1, 2, 4, 8), n: int = 16, n_rounds: int = 25, seed: int = 0) -> ExperimentPlan:
    return ExperimentPlan(
        "T8",
        [(_pt_t8, {"lam": lam, "n": n, "n_rounds": n_rounds, "seed": seed}) for lam in lams],
        lambda results: _asm_t8(lams, results),
    )


def t8_seap_vs_skeap_msgsize(lams=(1, 2, 4, 8), n: int = 16, n_rounds: int = 25, seed: int = 0) -> Table:
    """§1.4: Seap's O(log n)-bit messages vs Skeap's Λ-dependent batches."""
    return plan_t8(lams=lams, n=n, n_rounds=n_rounds, seed=seed).run_serial()


# -- T9 -------------------------------------------------------------------------------------


def _pt_t9(n: int, elements_per_node: int, seed: int) -> tuple[int, float, int, float]:
    heap = make_seap(n, seed=seed)
    m = elements_per_node * n
    rng = np.random.default_rng(seed + n)
    for i in range(m):
        heap.insert(priority=int(rng.integers(1, 1 << 20)), at=i % n)
    heap.settle(500_000)
    loads = list(heap.owner_store_sizes().values())
    mean = statistics.mean(loads)
    peak = max(loads)
    cv = statistics.pstdev(loads) / mean if mean else 0.0
    return m, mean, peak, cv


def _asm_t9(ns, results) -> Table:
    table = Table(
        "T9", "DHT storage fairness",
        "each node stores m/n elements in expectation (Lemma 2.2(iv) / fairness)",
        ["n", "m", "mean load", "max load", "max/mean", "CV"],
    )
    ratios = []
    for n, (m, mean, peak, cv) in zip(ns, results):
        ratios.append(peak / mean)
        table.add_row(n, m, mean, peak, peak / mean, cv)
    # Random (balls-into-bins over 3n ranges) balance: peak within a small
    # multiple of the mean, not Θ(n) skew.
    ok = all(r <= 6.0 for r in ratios)
    table.verdict = _verdict(ok)
    return table


def plan_t9(ns=(16, 32, 64), elements_per_node: int = 32, seed: int = 0) -> ExperimentPlan:
    return ExperimentPlan(
        "T9",
        [(_pt_t9, {"n": n, "elements_per_node": elements_per_node, "seed": seed}) for n in ns],
        lambda results: _asm_t9(ns, results),
    )


def t9_dht_fairness(ns=(16, 32, 64), elements_per_node: int = 32, seed: int = 0) -> Table:
    """Lemma 2.2(iv): elements are stored uniformly (m/n per node expected)."""
    return plan_t9(ns=ns, elements_per_node=elements_per_node, seed=seed).run_serial()


# -- T10 --------------------------------------------------------------------------------


def _pt_t10(n: int, probes: int, seed: int) -> tuple[float, int]:
    from ..cluster import OverlayCluster
    from ..element import Element

    cluster = OverlayCluster(n, seed=seed)
    rng = np.random.default_rng(seed + n)
    done = []
    for i in range(probes):
        src = cluster.middle_node(int(rng.integers(0, n)))
        key = float(rng.random())
        src.dht_put(key, Element(priority=i, uid=i))
    for node in cluster.nodes.values():
        node.dht_put_confirmed = lambda rid, _d=done: _d.append(rid)
    cluster.runner.run_until(lambda: len(done) >= probes, max_rounds=50_000)
    hops = cluster.all_route_hops()
    mean = statistics.mean(hops)
    p95 = sorted(hops)[int(0.95 * (len(hops) - 1))]
    return mean, p95


def _asm_t10(ns, results) -> Table:
    table = Table(
        "T10", "Routing hops vs n",
        "routing to a point takes O(log n) hops w.h.p. (Lemma A.2)",
        ["n", "mean hops", "p95 hops", "mean/log2(n)"],
    )
    means = []
    for n, (mean, p95) in zip(ns, results):
        means.append(mean)
        table.add_row(n, mean, p95, mean / math.log2(n))
    ok = is_logarithmic(ns, means)
    fit = fit_log2(ns, means)
    table.add_note(f"fit hops ≈ {fit.a:.2f}·log2(n) + {fit.b:.2f} (r²={fit.r2:.3f})")
    table.verdict = _verdict(ok)
    return table


def plan_t10(ns=_DEFAULT_NS, probes: int = 40, seed: int = 0) -> ExperimentPlan:
    return ExperimentPlan(
        "T10",
        [(_pt_t10, {"n": n, "probes": probes, "seed": seed}) for n in ns],
        lambda results: _asm_t10(ns, results),
    )


def t10_routing_hops(ns=_DEFAULT_NS, probes: int = 40, seed: int = 0) -> Table:
    """Lemma A.2 / 2.2(iii): LDB routing and DHT ops take O(log n) hops."""
    return plan_t10(ns=ns, probes=probes, seed=seed).run_serial()


# -- T15 --------------------------------------------------------------------------------
#
# T10 at scale: the same routing-hops measurement pushed to n = 10^4 (and,
# on request, 10^5 — `plan_t15(ns=(..., 100_000))` works but costs ~40s of
# topology construction, so the default grid stops at 10^4).  Only viable
# under the hop-compressed flight transport plus the batched kernel; the
# grid points reuse `_pt_t10` verbatim so T15 measures exactly what T10
# measures, at two orders of magnitude more nodes.


def _asm_t15(ns, results) -> Table:
    table = Table(
        "T15", "Routing hops at scale (n to 10^4+)",
        "routing stays O(log n) hops w.h.p. at 10^4+ nodes (Lemma A.2 at scale)",
        ["n", "mean hops", "p95 hops", "mean/log2(n)"],
    )
    means = []
    for n, (mean, p95) in zip(ns, results):
        means.append(mean)
        table.add_row(n, mean, p95, mean / math.log2(n))
    ok = is_logarithmic(ns, means)
    fit = fit_log2(ns, means)
    table.add_note(f"fit hops ≈ {fit.a:.2f}·log2(n) + {fit.b:.2f} (r²={fit.r2:.3f})")
    table.verdict = _verdict(ok)
    return table


def plan_t15(ns=(1024, 4096, 10_000), probes: int = 30, seed: int = 0) -> ExperimentPlan:
    return ExperimentPlan(
        "T15",
        [(_pt_t10, {"n": n, "probes": probes, "seed": seed}) for n in ns],
        lambda results: _asm_t15(ns, results),
    )


def t15_routing_hops_at_scale(ns=(1024, 4096, 10_000), probes: int = 30, seed: int = 0) -> Table:
    """Lemma A.2 re-validated at 10^4-node scale (PR6's batched-kernel reach)."""
    return plan_t15(ns=ns, probes=probes, seed=seed).run_serial()


# -- T11 -------------------------------------------------------------------------------


def _pt_t11(n: int, n_seeds: int, seed: int) -> list[int]:
    return [
        LDBTopology(list(range(n)), seed=seed + s).tree_height()
        for s in range(n_seeds)
    ]


def _asm_t11(ns, results) -> Table:
    table = Table(
        "T11", "Aggregation tree height vs n",
        "height O(log n) w.h.p. (Corollary A.4)",
        ["n", "mean height", "max height", "mean/log2(n)"],
    )
    means = []
    for n, heights in zip(ns, results):
        means.append(statistics.mean(heights))
        table.add_row(n, statistics.mean(heights), max(heights),
                      statistics.mean(heights) / math.log2(n))
    ok = is_logarithmic(ns, means)
    fit = fit_log2(ns, means)
    table.add_note(f"fit height ≈ {fit.a:.2f}·log2(n) + {fit.b:.2f} (r²={fit.r2:.3f})")
    table.verdict = _verdict(ok)
    return table


def plan_t11(ns=(8, 16, 32, 64, 128, 256), n_seeds: int = 8, seed: int = 0) -> ExperimentPlan:
    return ExperimentPlan(
        "T11",
        [(_pt_t11, {"n": n, "n_seeds": n_seeds, "seed": seed}) for n in ns],
        lambda results: _asm_t11(ns, results),
    )


def t11_tree_height(ns=(8, 16, 32, 64, 128, 256), n_seeds: int = 8, seed: int = 0) -> Table:
    """Cor. A.4 / Lemma 2.2(i): aggregation tree height O(log n) w.h.p."""
    return plan_t11(ns=ns, n_seeds=n_seeds, seed=seed).run_serial()


# -- T12 -----------------------------------------------------------------------------------


def _pt_t12(lam: int, n: int, n_rounds: int, seed: int) -> tuple[int, int, int]:
    from ..overlay.ldb import owner_of

    sk = make_skeap(n, seed=seed, detail=True)
    run_injection(sk, rate_per_node=lam, n_rounds=n_rounds)
    anchor_load = sk.metrics.owner_action_total(
        owner_of(sk.topology.anchor), ["agg_up"]
    )

    central = CentralHeapCluster(n, seed=seed, metrics_detail=True)
    rng = np.random.default_rng(seed)
    ops = 0
    for _ in range(n_rounds):
        for node in range(n):
            for _ in range(lam):
                if rng.random() < 0.6:
                    central.insert(priority=1 + int(rng.integers(0, 3)), at=node)
                else:
                    central.delete_min(at=node)
                ops += 1
        central.runner.step()
    central.settle()
    c_load = central.metrics.owner_action_total(
        central.coordinator.id, ["central_insert", "central_delete"]
    )
    return ops, anchor_load, c_load


def _asm_t12(lams, results) -> Table:
    table = Table(
        "T12", "Coordinator hot-spot load: Skeap anchor vs central coordinator",
        "Skeap's anchor handles O(1) batch messages per iteration; a coordinator handles Θ(n·Λ) per round",
        ["Λ", "ops", "anchor coord msgs", "coordinator msgs", "coordinator/anchor"],
    )
    ok_rows = []
    for lam, (ops, anchor_load, c_load) in zip(lams, results):
        table.add_row(lam, ops, anchor_load, c_load, c_load / max(anchor_load, 1))
        ok_rows.append(c_load == ops and anchor_load < c_load / 5)
    table.add_note("the coordinator must touch every single op; the anchor only touches batches")
    table.verdict = _verdict(all(ok_rows))
    return table


def plan_t12(n: int = 32, lams=(1, 2, 4), n_rounds: int = 30, seed: int = 0) -> ExperimentPlan:
    return ExperimentPlan(
        "T12",
        [(_pt_t12, {"lam": lam, "n": n, "n_rounds": n_rounds, "seed": seed}) for lam in lams],
        lambda results: _asm_t12(lams, results),
    )


def t12_scalability_baselines(n: int = 32, lams=(1, 2, 4), n_rounds: int = 30, seed: int = 0) -> Table:
    """§1 headline: batching bounds the coordination hot spot a per-op
    coordinator cannot avoid.

    Metric: request-coordination messages handled by the hot node (Skeap's
    anchor vs the central coordinator) per submitted operation.  Skeap's
    anchor sees two (large) aggregation messages per iteration regardless
    of Λ; the coordinator sees one message per op, i.e. n·Λ per round.
    """
    return plan_t12(n=n, lams=lams, n_rounds=n_rounds, seed=seed).run_serial()


# -- T13 ------------------------------------------------------------------------------


def _pt_t13(n: int, seed: int) -> tuple[int, int, int, int]:
    heap = make_skeap(n, seed=seed)
    rng = np.random.default_rng(seed + n)
    for i in range(3 * n):
        heap.insert(priority=1 + int(rng.integers(0, 3)), at=i % n)
    heap.settle(200_000)
    before = heap.total_stored()
    join = heap.add_node(n)
    leave = heap.remove_node(0)
    after = heap.total_stored()
    assert before == after
    return join.probe_hops, leave.probe_hops, before, after


def _asm_t13(ns, results) -> Table:
    table = Table(
        "T13", "Membership: probe hops and data conservation",
        "join/leave restoration O(log n) w.h.p.; no elements lost (Contribution 4)",
        ["n", "join hops", "leave hops", "elements before", "elements after"],
    )
    hops_series = []
    for n, (join_hops, leave_hops, before, after) in zip(ns, results):
        hops_series.append((join_hops + leave_hops) / 2)
        table.add_row(n, join_hops, leave_hops, before, after)
    ok = is_logarithmic(ns, hops_series)
    table.verdict = _verdict(ok)
    return table


def plan_t13(ns=(8, 16, 32, 64), seed: int = 0) -> ExperimentPlan:
    return ExperimentPlan(
        "T13",
        [(_pt_t13, {"n": n, "seed": seed}) for n in ns],
        lambda results: _asm_t13(ns, results),
    )


def t13_membership(ns=(8, 16, 32, 64), seed: int = 0) -> Table:
    """Contribution 4: joins/leaves cost O(log n) routing and lose nothing."""
    return plan_t13(ns=ns, seed=seed).run_serial()


# -- T14 ------------------------------------------------------------------------------


_T14_SHAPES = ("line", "random", "star")


def _pt_t14(n: int, initial: str, seed: int) -> int:
    from ..overlay.selfstab import LinearizationCluster

    cluster = LinearizationCluster(n, seed=seed, initial=initial)
    rounds = cluster.run_to_convergence()
    assert cluster.is_linearized()
    return rounds


def _asm_t14(ns, results) -> Table:
    table = Table(
        "T14", "Self-stabilizing linearization: convergence vs n",
        "the sorted overlay list converges from arbitrary weakly connected knowledge (Appendix A via [RSS11])",
        ["n", "from line", "from random", "from star"],
    )
    by_shape = {shape: [] for shape in _T14_SHAPES}
    it = iter(results)
    for n in ns:
        row = [n]
        for initial in _T14_SHAPES:
            rounds = next(it)
            by_shape[initial].append(rounds)
            row.append(rounds)
        table.add_row(*row)
    # Sparse initial graphs converge sublinearly; the star is the known
    # Θ(n) worst case (the hub drains two delegations per activation).
    ok = (
        is_sublinear(ns, by_shape["line"], factor=1.0)
        and is_sublinear(ns, by_shape["random"], factor=1.0)
        and by_shape["star"][-1] <= 2.0 * ns[-1]
    )
    table.add_note(
        "line/random converge sublinearly; the star hub is the Θ(n) worst case"
    )
    table.verdict = _verdict(ok)
    return table


def plan_t14(ns=(8, 16, 32, 64, 128), seed: int = 0) -> ExperimentPlan:
    return ExperimentPlan(
        "T14",
        [
            (_pt_t14, {"n": n, "initial": initial, "seed": seed})
            for n in ns
            for initial in _T14_SHAPES
        ],
        lambda results: _asm_t14(ns, results),
    )


def t14_linearization(ns=(8, 16, 32, 64, 128), seed: int = 0) -> Table:
    """Appendix A's substrate: the sorted cycle is self-constructible.

    The LDB's sorted list is maintained by self-stabilizing linearization
    [RSS11]/[NW07]; this experiment measures convergence rounds from three
    adversarial initial knowledge graphs.
    """
    return plan_t14(ns=ns, seed=seed).run_serial()


# -- F1 ---------------------------------------------------------------------------------


def f1_figure1_trace(seed: int = 0) -> Table:
    """Reproduce Figure 1 exactly: 3 nodes, 𝒫={1,2}, the paper's batches."""
    table = Table(
        "F1", "Figure 1: Skeap phase trace (n=3, 𝒫={1,2})",
        "phases (a)-(d) of Figure 1 reproduce exactly",
        ["stage", "value"],
    )
    # (a) the three per-node batches of the figure, in combination order.
    b_own = Batch(2, [BatchEntry((1, 0), 0)])
    b_child1 = Batch(2, [BatchEntry((1, 0), 2)])
    b_child2 = Batch(2, [BatchEntry((2, 1), 1)])
    combined = b_own.combine(b_child1).combine(b_child2)
    table.add_row("(b) combined batch", f"(({combined.entries[0].ins}), {combined.entries[0].dels})")
    assert combined.entries[0].ins == (4, 1) and combined.entries[0].dels == 3

    # (c) anchor interval assignment from first_p=1, last_p=0.
    anchor = AnchorState(2)
    block = anchor.assign(combined)
    entry = block.entries[0]
    table.add_row("(c) insert intervals", f"p1={entry.ins[0]}, p2={entry.ins[1]}")
    table.add_row("(c) delete pieces", str([(p.priority, p.start, p.count) for p in entry.del_pieces]))
    table.add_row("(c) anchor state", f"first={anchor.first}, last={anchor.last}")
    assert entry.ins == ((1, 4), (5, 1)) or entry.ins == ((1, 4), (1, 1))
    assert anchor.last == [4, 1] and anchor.first == [4, 1]

    # (d) decomposition over [own, child1, child2].
    own_block, child_blocks = decompose_block(block, b_own, [(1, b_child1), (2, b_child2)])
    own_e = own_block.entries[0]
    c1_e = child_blocks[1].entries[0]
    c2_e = child_blocks[2].entries[0]
    table.add_row("(d) own ((1,0),0)", f"ins p1 {own_e.ins[0]}, dels {[(p.priority, p.start, p.count) for p in own_e.del_pieces]}")
    table.add_row("(d) child ((1,0),2)", f"ins p1 {c1_e.ins[0]}, dels {[(p.priority, p.start, p.count) for p in c1_e.del_pieces]}")
    table.add_row("(d) child ((2,1),1)", f"ins p1 {c2_e.ins[0]} p2 {c2_e.ins[1]}, dels {[(p.priority, p.start, p.count) for p in c2_e.del_pieces]}")
    # Figure values: [1,1] / [2,2]+[1,2] / [3,4]+[1,1]+[3,3]
    assert own_e.ins[0] == (1, 1) and not own_e.del_pieces
    assert c1_e.ins[0] == (2, 1) and [(p.priority, p.start, p.count) for p in c1_e.del_pieces] == [(1, 1, 2)]
    assert c2_e.ins[0] == (3, 2) and c2_e.ins[1][1] == 1
    assert [(p.priority, p.start, p.count) for p in c2_e.del_pieces] == [(1, 3, 1)]
    table.verdict = "SHAPE HOLDS"
    table.add_note("interval values match Figure 1 (a)-(d) exactly")
    return table


# -- F2 ----------------------------------------------------------------------------------


def f2_figure2_ldb(seed: int = 0) -> Table:
    """Reproduce Figure 2: the 6-virtual-node LDB of 2 real nodes."""
    table = Table(
        "F2", "Figure 2: LDB and aggregation tree for 2 real nodes",
        "6 virtual nodes on the sorted cycle; tree edges follow Appendix A",
        ["virtual node", "label", "parent"],
    )
    topo = LDBTopology([0, 1], seed=seed)
    # Map u to the real node with the smaller middle label, as in the figure.
    u = min((0, 1), key=lambda r: topo.label(3 * r + 1))
    v = 1 - u
    names = {}
    for real, sym in ((u, "u"), (v, "v")):
        for kind, prefix in ((VirtualKind.LEFT, "l"), (VirtualKind.MIDDLE, "m"), (VirtualKind.RIGHT, "r")):
            names[3 * real + int(kind)] = f"{prefix}({sym})"
    for vid in topo.cycle:
        parent = topo.parent[vid]
        table.add_row(names[vid], round(topo.label(vid), 4), names[parent] if parent is not None else "— (anchor)")
    # Structural assertions from the figure / Appendix A rules:
    assert topo.anchor == 3 * u + 0                      # anchor is l(u)
    assert topo.parent[3 * u + 1] == 3 * u + 0           # p(m(u)) = l(u)
    assert topo.parent[3 * v + 1] == 3 * v + 0           # p(m(v)) = l(v)
    assert topo.parent[3 * u + 2] == 3 * u + 1           # p(r(u)) = m(u)
    assert topo.parent[3 * v + 2] == 3 * v + 1           # p(r(v)) = m(v)
    for vid in topo.cycle:
        if kind_of(vid) is VirtualKind.RIGHT:
            assert not topo.children[vid]                # rights are leaves
    table.verdict = "SHAPE HOLDS"
    return table


# -- A1 -----------------------------------------------------------------------------------


def a1_ablations(n: int = 16, total_ops: int = 96, seed: int = 0) -> Table:
    """Ablations: batching vs unbatched anchor congestion; δ-scale in KSelect."""
    table = Table(
        "A1", "Ablations: batching and the δ window",
        "batching bounds anchor congestion; larger δ means fewer phase-2 iterations but more survivors",
        ["variant", "parameter", "metric", "value"],
    )
    # (a) aggregation-tree batching vs per-op forwarding: coordination
    # messages concentrated at the anchor.
    from ..overlay.ldb import owner_of

    heap = make_skeap(n, seed=seed, detail=True)
    rng = np.random.default_rng(seed)
    for i in range(total_ops):
        heap.insert(priority=1 + int(rng.integers(0, 3)), at=i % n)
    heap.settle(200_000)
    batched_load = heap.metrics.owner_action_total(
        owner_of(heap.topology.anchor), ["agg_up"]
    )

    ub = UnbatchedHeapCluster(n, n_priorities=3, seed=seed, metrics_detail=True)
    for i in range(total_ops):
        ub.insert(priority=1 + int(rng.integers(0, 3)), at=i % n)
    ub.settle(200_000)
    unbatched_load = ub.metrics.owner_action_total(
        owner_of(ub.topology.anchor), ["ub_fwd", "ub_insert", "ub_delete"]
    )
    table.add_row("skeap (batched)", f"{total_ops} ops", "anchor coord msgs", batched_load)
    table.add_row("unbatched ablation", f"{total_ops} ops", "anchor coord msgs", unbatched_load)

    # (b) KSelect δ-scale sweep.
    m = 64 * n
    keys = [(int(p), uid) for uid, p in enumerate(np.random.default_rng(seed).integers(1, 1 << 24, size=m))]
    expected = sorted(keys)[m // 2 - 1]
    for scale in (0.5, 1.0, 2.0):
        cluster = KSelectCluster(n, seed=seed, delta_scale=scale)
        cluster.scatter(keys)
        assert cluster.select(m // 2) == expected
        stats = cluster.last_run_stats()
        table.add_row("kselect", f"δ-scale {scale}", "phase-2 iterations",
                      len(stats.get("phase2_N", [])))
        table.add_row("kselect", f"δ-scale {scale}", "final N", stats["final_N"])
    ok = unbatched_load > 2 * batched_load
    table.add_note("unbatched forwarding concentrates every op at the anchor")
    table.verdict = _verdict(ok)
    return table


# -- A2 -----------------------------------------------------------------------------------


def a2_seap_sc_cost(n: int = 8, n_elements: int = 48, seed: int = 0) -> Table:
    """Section 6: the price of upgrading Seap to sequential consistency.

    Seap-SC sorts all k selected elements per delete phase (Θ(k²)
    comparison messages) and drains only prefix runs per phase.  The paper
    predicts exactly this trade: stronger semantics, worse scalability.
    """
    from ..seap import SeapSCHeap

    table = Table(
        "A2", "Seap vs Seap-SC: the cost of sequential consistency",
        "the §6 SC variant costs extra messages/rounds per delete phase but gains local consistency",
        ["variant", "rounds", "messages", "local consistency"],
    )
    rng = np.random.default_rng(seed)
    prios = [int(p) for p in rng.integers(1, 1 << 20, size=n_elements)]

    def run(heap):
        for i, p in enumerate(prios):
            heap.insert(priority=p, at=i % n)
        heap.settle(800_000)
        dels = [heap.delete_min(at=i % n) for i in range(n_elements)]
        heap.settle(800_000)
        got = sorted(d.result.priority for d in dels)
        assert got == sorted(prios)
        return heap.metrics.rounds, heap.metrics.messages

    se_rounds, se_msgs = run(make_seap(n, seed=seed))
    sc = SeapSCHeap(n, seed=seed, record_history=True)
    sc_rounds, sc_msgs = run(sc)
    from ..semantics import check_seap_sc_history

    check_seap_sc_history(sc.history)
    table.add_row("seap", se_rounds, se_msgs, "no (serializable only)")
    table.add_row("seap-sc", sc_rounds, sc_msgs, "yes (checked)")
    ok = sc_msgs > se_msgs  # the predicted extra cost
    table.add_note(
        f"SC overhead: {sc_msgs / se_msgs:.1f}x messages, "
        f"{sc_rounds / se_rounds:.1f}x rounds for the same workload"
    )
    table.verdict = _verdict(ok)
    return table


# -- A3 -----------------------------------------------------------------------------------


def a3_fuzz_campaign(n_plans: int = 140, seed: int = 0) -> Table:
    """Fault-injection fuzzing: the consistency theorems under hostile networks.

    Runs seeded random fault plans (drops, duplicates, adversarial delays,
    partitions, crash/restart churn) against every protocol target and
    checks each history with the ``repro.semantics`` checkers, plus the T13
    conservation census.  As a positive control, repeats a small campaign
    with retransmission deliberately disabled and demands the fuzzer
    catch, shrink, and deterministically replay the seeded bug.
    """
    from .fuzz import fuzz_campaign, run_case

    table = Table(
        "A3", "Fault-injection fuzz campaign",
        "semantic checks hold under faults; a seeded transport bug is caught and shrunk",
        ["campaign", "plans", "failures", "transport activity"],
    )
    totals: dict[str, int] = {}

    def progress(_i, _case, result):
        for key, val in result.transport.items():
            totals[key] = totals.get(key, 0) + int(val)

    clean = fuzz_campaign(n_plans, root_seed=seed, n_ops=12, progress=progress)
    activity = (
        f"sent {totals.get('sent', 0)}, dropped {totals.get('dropped', 0)}, "
        f"retransmitted {totals.get('retransmitted', 0)}, "
        f"deduped {totals.get('deduped', 0)}, lost {totals.get('lost', 0)}"
    )
    table.add_row("clean transport", clean.cases_run, len(clean.failures), activity)

    buggy = fuzz_campaign(
        12, root_seed=seed, targets=("skeap", "seap"), n_ops=10,
        inject_bug="no-retry", max_failures=2,
    )
    caught = [
        rec for rec in buggy.failures
        if len(rec.minimized.plan.events) <= 10
        and run_case(rec.minimized).signature == rec.signature
    ]
    table.add_row(
        "no-retry bug seeded", buggy.cases_run, len(buggy.failures),
        f"{len(caught)} caught+shrunk (≤10 events) and replayed",
    )
    per_target = ", ".join(f"{t}×{c}" for t, c in sorted(clean.by_target.items()))
    table.add_note(f"clean campaign coverage: {per_target}")
    if buggy.failures:
        sizes = [
            f"{len(r.case.plan.events)}->{len(r.minimized.plan.events)}"
            for r in buggy.failures
        ]
        table.add_note(f"shrink (events before -> after): {', '.join(sizes)}")
    ok = clean.ok and bool(buggy.failures) and len(caught) == len(buggy.failures)
    table.verdict = _verdict(ok)
    return table


# -- single-point plans ---------------------------------------------------------------------
#
# T5/F1/F2/A1/A2 are single simulations (or, for A1, two arms threaded
# through one shared numpy RNG whose state must carry between arms), so
# each stays one whole task: the plan has exactly one grid point.


def _first(results: list[Table]) -> Table:
    return results[0]


def plan_t5(n: int = 64, elements_per_node: int = 64, seed: int = 0) -> ExperimentPlan:
    task = {"n": n, "elements_per_node": elements_per_node, "seed": seed}
    return ExperimentPlan("T5", [(t5_kselect_reduction, task)], _first)


def plan_f1(seed: int = 0) -> ExperimentPlan:
    return ExperimentPlan("F1", [(f1_figure1_trace, {"seed": seed})], _first)


def plan_f2(seed: int = 0) -> ExperimentPlan:
    return ExperimentPlan("F2", [(f2_figure2_ldb, {"seed": seed})], _first)


def plan_a1(n: int = 16, total_ops: int = 96, seed: int = 0) -> ExperimentPlan:
    task = {"n": n, "total_ops": total_ops, "seed": seed}
    return ExperimentPlan("A1", [(a1_ablations, task)], _first)


def plan_a2(n: int = 8, n_elements: int = 48, seed: int = 0) -> ExperimentPlan:
    task = {"n": n, "n_elements": n_elements, "seed": seed}
    return ExperimentPlan("A2", [(a2_seap_sc_cost, task)], _first)


def plan_a3(n_plans: int = 140, seed: int = 0) -> ExperimentPlan:
    task = {"n_plans": n_plans, "seed": seed}
    return ExperimentPlan("A3", [(a3_fuzz_campaign, task)], _first)


# -- driver ----------------------------------------------------------------------------------

ALL_EXPERIMENTS = {
    "T1": t1_skeap_rounds,
    "T2": t2_skeap_congestion,
    "T3": t3_skeap_msgsize,
    "T4": t4_kselect_rounds,
    "T5": t5_kselect_reduction,
    "T6": t6_kselect_vs_gather,
    "T7": t7_seap_rounds,
    "T8": t8_seap_vs_skeap_msgsize,
    "T9": t9_dht_fairness,
    "T10": t10_routing_hops,
    "T11": t11_tree_height,
    "T12": t12_scalability_baselines,
    "T13": t13_membership,
    "T14": t14_linearization,
    "T15": t15_routing_hops_at_scale,
    "F1": f1_figure1_trace,
    "F2": f2_figure2_ldb,
    "A1": a1_ablations,
    "A2": a2_seap_sc_cost,
    "A3": a3_fuzz_campaign,
}


ALL_PLAN_FACTORIES = {
    "T1": plan_t1,
    "T2": plan_t2,
    "T3": plan_t3,
    "T4": plan_t4,
    "T5": plan_t5,
    "T6": plan_t6,
    "T7": plan_t7,
    "T8": plan_t8,
    "T9": plan_t9,
    "T10": plan_t10,
    "T11": plan_t11,
    "T12": plan_t12,
    "T13": plan_t13,
    "T14": plan_t14,
    "T15": plan_t15,
    "F1": plan_f1,
    "F2": plan_f2,
    "A1": plan_a1,
    "A2": plan_a2,
    "A3": plan_a3,
}


def all_plans(quick: bool = False, ids=None) -> list[ExperimentPlan]:
    """Build the plans for the requested experiments, in the given order.

    ``quick`` trims the largest sweeps to the same reduced grids the
    classic serial driver used, so quick serial and quick parallel runs
    stay comparable.
    """
    ids = list(ALL_PLAN_FACTORIES) if ids is None else list(ids)
    plans = []
    for exp_id in ids:
        factory = ALL_PLAN_FACTORIES[exp_id]
        if quick and exp_id in ("T1", "T4", "T7", "T10"):
            plans.append(factory(ns=(8, 16, 32)))
        elif quick and exp_id == "T15":
            plans.append(factory(ns=(512, 1024), probes=10))
        elif quick and exp_id == "T11":
            plans.append(factory(ns=(8, 16, 32, 64), n_seeds=4))
        else:
            plans.append(factory())
    return plans


def run_all(quick: bool = False) -> list[Table]:
    """Regenerate every experiment table serially (EXPERIMENTS.md's source)."""
    return [plan.run_serial() for plan in all_plans(quick=quick)]
