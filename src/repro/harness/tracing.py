"""Protocol introspection: ASCII renderings of topology and activity.

Distributed protocols are hard to debug from raw logs; these renderers
turn a cluster's structure and a run's metrics into terminal-friendly
pictures:

* :func:`render_tree` — the aggregation tree with virtual-node roles and
  labels (the structure behind Figure 2);
* :func:`render_cycle` — the sorted LDB cycle with owner/kind markers;
* :func:`render_activity` — a per-round message sparkline plus the action
  mix of a run (where the rounds went);
* :func:`render_store_loads` — a bar chart of per-process element loads
  (the fairness picture behind experiment T9).

All output is plain text so it can live in docstrings, test failures and
CI logs.
"""

from __future__ import annotations

from ..overlay.ldb import LDBTopology, VirtualKind, kind_of, owner_of

__all__ = [
    "render_tree",
    "render_cycle",
    "render_activity",
    "render_store_loads",
]

_KIND_GLYPH = {VirtualKind.LEFT: "l", VirtualKind.MIDDLE: "m", VirtualKind.RIGHT: "r"}
_BLOCKS = " ▁▂▃▄▅▆▇█"


def _name(vid: int) -> str:
    return f"{_KIND_GLYPH[kind_of(vid)]}({owner_of(vid)})"


def render_tree(topology: LDBTopology, max_nodes: int = 200) -> str:
    """ASCII pre-order rendering of the aggregation tree."""
    lines = [f"aggregation tree: {topology.n_real} processes, "
             f"{topology.n_virtual} virtual nodes, height {topology.tree_height()}"]
    count = 0

    def visit(vid: int, prefix: str, is_last: bool, is_root: bool) -> None:
        nonlocal count
        if count >= max_nodes:
            return
        count += 1
        connector = "" if is_root else ("└─ " if is_last else "├─ ")
        label = f"{_name(vid)} @{topology.label(vid):.4f}"
        if vid == topology.anchor:
            label += "  ← anchor"
        lines.append(prefix + connector + label)
        children = topology.children[vid]
        child_prefix = prefix if is_root else prefix + ("   " if is_last else "│  ")
        for i, child in enumerate(children):
            visit(child, child_prefix, i == len(children) - 1, False)

    visit(topology.anchor, "", True, True)
    if count >= max_nodes:
        lines.append(f"... truncated at {max_nodes} nodes")
    return "\n".join(lines)


def render_cycle(topology: LDBTopology, width: int = 64) -> str:
    """The sorted label cycle as a strip: where every virtual node sits."""
    strip = ["·"] * width
    for vid in topology.cycle:
        slot = min(width - 1, int(topology.label(vid) * width))
        glyph = _KIND_GLYPH[kind_of(vid)]
        strip[slot] = glyph if strip[slot] == "·" else "*"
    lines = [
        "label space [0,1): l=left m=middle r=right *=crowded",
        "".join(strip),
        "0" + " " * (width - 2) + "1",
    ]
    return "\n".join(lines)


def _sparkline(values: list[int], width: int = 60) -> str:
    if not values:
        return "(no rounds)"
    if len(values) > width:
        # bucket-max preserves the peaks that matter for congestion
        size = -(-len(values) // width)
        values = [
            max(values[i : i + size]) for i in range(0, len(values), size)
        ]
    peak = max(max(values), 1)
    return "".join(_BLOCKS[min(8, round(8 * v / peak))] for v in values)


def render_activity(metrics, top_actions: int = 6) -> str:
    """Per-round congestion sparkline and the run's action mix.

    Accepts any metrics-shaped object and degrades gracefully: a
    :class:`~repro.sim.metrics.MetricsSnapshot` (no per-round history, no
    action counters) and a lean-mode :class:`~repro.sim.metrics.
    MetricsCollector` (``detail=False``) each render their scalar summary
    plus an informative note about what is missing and how to enable it —
    they never raise from inside the renderer.
    """
    lines = [
        f"rounds={metrics.rounds}  messages={metrics.messages}  "
        f"peak congestion={metrics.congestion}  max message={metrics.max_message_bits}b",
    ]
    by_round = getattr(metrics, "congestion_by_round", None)
    if by_round is None:
        lines.append(
            "congestion/round: (per-round history unavailable: "
            "snapshot — render the live MetricsCollector instead)"
        )
    else:
        lines.append("congestion/round: " + _sparkline(by_round))
    actions = getattr(metrics, "action_counts", None)
    if actions is None:
        lines.append(
            "  (action mix unavailable: lean metrics; "
            "enable with metrics_detail=True)"
        )
        return "\n".join(lines)
    total = sum(actions.values()) or 1
    for action, count in actions.most_common(top_actions):
        share = 100.0 * count / total
        bar = "#" * max(1, int(share / 2))
        lines.append(f"  {action:<14} {count:>8}  {share:5.1f}% {bar}")
    return "\n".join(lines)


def render_store_loads(cluster, width: int = 40) -> str:
    """Per-process stored-element loads as horizontal bars (fairness)."""
    loads = cluster.owner_store_sizes()
    peak = max(max(loads.values()), 1)
    total = sum(loads.values())
    mean = total / max(len(loads), 1)
    lines = [f"stored elements: total={total}  mean={mean:.1f}  max={max(loads.values())}"]
    for owner in sorted(loads):
        n = loads[owner]
        bar = "█" * int(width * n / peak)
        lines.append(f"  p{owner:<4} {n:>6} {bar}")
    return "\n".join(lines)
