"""``python -m repro.harness top`` — live telemetry view over ``watch``.

Connects to a running service (or federation router — same wire
protocol) and tails its telemetry: one line per ``--interval`` with
completed-op rate, latency quantiles read from the mergeable histogram
wire form, shed counts, pending depth, and — against a router — live and
dead shard counts.  ``--once`` takes a single ``metrics`` scrape instead
of subscribing; ``--raw`` prints the raw snapshot JSON for piping.

``--prom PATH`` writes the last snapshot in Prometheus text exposition
format and ``--jsonl PATH`` writes every observed point as JSONL — the
same exporters the service's CI schema checks validate, so ``top`` can
double as a scrape-to-file bridge.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from pathlib import Path

from .fuzz import _flag_value

__all__ = ["top_main"]


def _merged_hist(snapshot: dict, name: str):
    """Merge every histogram whose base name is ``name`` (labels vary)."""
    from ..service.telemetry import Histogram, parse_metric_key

    merged = None
    for key, payload in snapshot.get("hists", {}).items():
        if parse_metric_key(key)[0] != name:
            continue
        hist = Histogram.from_jsonable(payload)
        if merged is None:
            merged = hist
        else:
            merged.merge(hist)
    return merged


def _sum_metrics(snapshot: dict, section: str, name: str) -> float:
    from ..service.telemetry import parse_metric_key

    return sum(
        value
        for key, value in snapshot.get(section, {}).items()
        if parse_metric_key(key)[0] == name
    )


def _has_metric(snapshot: dict, section: str, name: str) -> bool:
    """True if any key in ``section`` has base name ``name`` (labels vary)."""
    from ..service.telemetry import parse_metric_key

    return any(
        parse_metric_key(key)[0] == name
        for key in snapshot.get(section, {})
    )


def _render_line(snapshot: dict, prev: tuple[float, dict] | None, now: float) -> str:
    ops = _sum_metrics(snapshot, "counters", "service_ops_total") or _sum_metrics(
        snapshot, "counters", "router_ops_total"
    )
    rate = ""
    if prev is not None:
        prev_t, prev_snap = prev
        prev_ops = _sum_metrics(
            prev_snap, "counters", "service_ops_total"
        ) or _sum_metrics(prev_snap, "counters", "router_ops_total")
        dt = now - prev_t
        if dt > 0:
            rate = f" ({(ops - prev_ops) / dt:+.0f}/s)"
    lat = _merged_hist(snapshot, "router_op_latency_seconds") or _merged_hist(
        snapshot, "service_op_latency_seconds"
    )
    lat_s = (
        f"p50 {lat.quantile(0.5) * 1e3:.2f}ms p99 {lat.quantile(0.99) * 1e3:.2f}ms"
        if lat is not None and lat.count
        else "p50 -- p99 --"
    )
    shed = _sum_metrics(snapshot, "counters", "service_sheds_total") + _sum_metrics(
        snapshot, "counters", "router_upstream_sheds_total"
    )
    pending = _sum_metrics(snapshot, "gauges", "service_pending_ops") + _sum_metrics(
        snapshot, "gauges", "router_active_ops"
    )
    parts = [
        time.strftime("%H:%M:%S", time.localtime(now)),
        f"ops {ops:.0f}{rate}",
        lat_s,
        f"shed {shed:.0f}",
        f"pending {pending:.0f}",
    ]
    live = _sum_metrics(snapshot, "gauges", "router_shards_live")
    dead = _sum_metrics(snapshot, "gauges", "router_shards_dead")
    if live or dead:
        parts.append(f"shards {live:.0f} live/{dead:.0f} dead")
    # Durability plane, when journaling is on: recovery state + journal
    # freshness.  Gauges are absent entirely on a non-durable service.
    if _has_metric(snapshot, "gauges", "service_recovery_state"):
        recovering = _sum_metrics(snapshot, "gauges", "service_recovery_state")
        state = "recovering" if recovering else "durable"
        replayed = _sum_metrics(snapshot, "counters", "service_ops_replayed_total")
        age = _sum_metrics(snapshot, "gauges", "service_snapshot_age_seconds")
        detail = f" replayed {replayed:.0f}" if replayed else ""
        parts.append(f"{state}{detail} snap-age {age:.0f}s")
    frames = _sum_metrics(snapshot, "counters", "service_frames_in_total") + _sum_metrics(
        snapshot, "counters", "router_frames_in_total"
    )
    errors = _sum_metrics(
        snapshot, "counters", "service_framing_errors_total"
    ) + _sum_metrics(snapshot, "counters", "router_framing_errors_total")
    parts.append(f"frames {frames:.0f}" + (f" (!{errors:.0f} bad)" if errors else ""))
    return "  ".join(parts)


def _write_exports(
    points: list[dict], prom_path: str | None, jsonl_path: str | None
) -> None:
    from ..service.export import series_to_jsonl, to_prometheus

    if prom_path is not None and points:
        last = {k: v for k, v in points[-1].items() if k != "t"}
        out = Path(prom_path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(to_prometheus(last))
        print(f"# prometheus: {out}", file=sys.stderr)
    if jsonl_path is not None and points:
        out = Path(jsonl_path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(series_to_jsonl(points))
        print(f"# jsonl: {out}", file=sys.stderr)


def top_main(argv: list[str]) -> int:
    """``python -m repro.harness top --connect H:P [--interval S] ...``"""
    from ..errors import ReproError
    from ..service import QueueClient

    args = list(argv)
    connect = _flag_value(args, "--connect", None)
    interval = float(_flag_value(args, "--interval", 1.0))
    count_s = _flag_value(args, "--count", None)
    prom_path = _flag_value(args, "--prom", None)
    jsonl_path = _flag_value(args, "--jsonl", None)
    once = "--once" in args
    raw = "--raw" in args
    args = [a for a in args if a not in ("--once", "--raw")]
    if args:
        print(f"unknown top arguments: {args}", file=sys.stderr)
        return 2
    if connect is None:
        print("top needs --connect HOST:PORT (a running serve)", file=sys.stderr)
        return 2
    host, _, port_s = connect.rpartition(":")
    try:
        port = int(port_s)
    except ValueError:
        print(f"bad --connect {connect!r}: expected HOST:PORT", file=sys.stderr)
        return 2
    count = int(count_s) if count_s is not None else (1 if once else None)

    points: list[dict] = []

    async def run() -> None:
        client = await QueueClient.connect(host or "127.0.0.1", port, client="top")
        try:
            if once:
                response = await client.metrics()
                snapshot = response["metrics"]
                points.append(dict(snapshot, t=time.time()))
                if raw:
                    print(json.dumps(snapshot, sort_keys=True))
                else:
                    print(_render_line(snapshot, None, time.time()))
                return
            prev: tuple[float, dict] | None = None
            async for frame in client.watch(interval=interval, count=count):
                snapshot = frame["metrics"]
                t = float(frame.get("t", time.time()))
                points.append(dict(snapshot, t=t))
                if raw:
                    print(json.dumps(frame, sort_keys=True), flush=True)
                else:
                    print(_render_line(snapshot, prev, t), flush=True)
                prev = (t, snapshot)
        finally:
            await client.aclose()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    except (ReproError, ConnectionError, OSError) as exc:
        print(f"top failed: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    _write_exports(points, prom_path, jsonl_path)
    return 0
