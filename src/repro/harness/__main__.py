"""Regenerate experiment tables; fuzz and replay fault schedules.

Usage::

    python -m repro.harness [--quick] [--markdown] [--serial] [--jobs N]
                            [--exact-transport] [--batched]
                            [--manifest PATH] [IDS...]
    python -m repro.harness bench-kernel [--nodes N] [--ops K] [--seed S]
                                         [--json PATH]
    python -m repro.harness fuzz [--plans N] [--seed S] [--targets a,b]
                                 [--inject-bug no-retry|no-dedup]
                                 [--expect-caught] [--out DIR]
    python -m repro.harness replay [--trace [--out DIR]] <reproducer.json>
    python -m repro.harness trace <target> [--nodes N] [--ops K] [--seed S]
                                           [--out DIR] [--faults]
    python -m repro.harness targets
    python -m repro.harness serve [--proto P] [--nodes N] [--seed S]
                                  [--host H] [--port P] [--window W]
                                  [--shards K] [--band-range LO:HI]
                                  [--journal DIR] [--fsync POLICY]
                                  [--snapshot-every N]
    python -m repro.harness loadtest [--proto P] [--clients C] [--ops K]
                                     [--mode closed|open] [--connect H:P]
                                     [--shards K] [--band-range LO:HI]
                                     [--manifest PATH] [--trace DIR]
                                     [--slo p99=S,shed_rate=F,...]
                                     [--slo-out PATH] [--slo-strict]
                                     [--journal DIR] [--fsync POLICY]
                                     [--snapshot-every N]
                                     [--chaos-kill SID] [--kill-after S]
                                     [--client-faults PLAN.json]
                                     [--fault-scale F]
                                     [--retry-unavailable N]
    python -m repro.harness recover JOURNAL_DIR [--json]
    python -m repro.harness top --connect H:P [--interval S] [--count N]
                                [--once] [--raw] [--prom PATH]
                                [--jsonl PATH]

``--quick`` shrinks the parameter grids; ``--markdown`` emits GitHub
tables (how EXPERIMENTS.md's body is produced); ``IDS`` selects specific
experiments (T1..T14, F1, F2, A1..A3).

By default the independent grid points of every selected experiment fan
out across a process pool (one worker per CPU; override with
``--jobs N``).  ``--serial`` (or ``--jobs 1``) runs everything inline.
Results merge back in grid order, so serial and parallel output is
byte-identical.

``--exact-transport`` disables the hop-compressed routing fast path
(every routed message travels hop by hop, as before PR 3).  The tables
are byte-identical either way — the flag exists to prove exactly that,
and as an escape hatch.  It works by setting ``REPRO_EXACT_TRANSPORT=1``
in the environment, which process-pool workers inherit.

``--batched`` opts the sync driver into the batched kernel: grouped
``(node class, action)`` dispatch, Message pooling and once-per-round
metrics flushes (``REPRO_BATCHED=1``; auto-disabled under faults, detail
metrics and tracing).  Tables are byte-identical with or without it —
the differential suite and CI prove that — it is purely a speedup.
``bench-kernel`` measures it: messages/sec and allocations/round for
batched vs. per-message dispatch on a fixed Skeap workload
(``repro.harness.bench_kernel``).

``fuzz`` runs seeded fault-plan campaigns against the protocol targets
and shrinks any failure to a minimal JSON reproducer; ``replay`` re-runs
one reproducer byte-for-byte (see ``repro.harness.fuzz``), optionally
with ``--trace`` to export the replay's event log.  ``trace`` runs one
scenario with structured tracing on and writes JSONL + Perfetto-loadable
Chrome-trace artifacts plus a run manifest (``repro.harness.trace_cli``).

``targets`` lists every runnable target (experiment ids, fuzz/trace
targets, service protocols and topologies) with one-line descriptions.
``serve`` runs a live Skeap/Seap queue service over TCP — with
``--shards K`` it spawns K shard processes and fronts them with the
federation router (one logical queue, priority space partitioned into
per-shard bands).  ``loadtest`` drives one with the seeded
open/closed-loop generator and feeds the observed history (for a
federation: the merged, witness-serialized cross-shard history) through
the semantics checkers (``repro.harness.service_cli``) — self-hosting on
an ephemeral port unless ``--connect`` points at a running server.
``loadtest --slo`` declares service-level objectives (p99 latency, shed
rate, throughput, ...) evaluated after the run: a pass/fail table plus a
machine-readable ``--slo-out`` JSON report, with ``--slo-strict`` turning
a miss into a non-zero exit.  ``top`` tails a running service's (or
federation router's) telemetry over the streaming ``watch`` subscription
— a live terminal view of throughput, latency quantiles, shedding and
shard health — or, with ``--once``, takes a single ``metrics`` scrape;
``--prom``/``--jsonl`` export what it saw in Prometheus text / JSONL
form (``repro.harness.top_cli``).

``serve --journal DIR`` turns on the durability plane: every acked op is
written to a checksummed write-ahead journal (fsync per ``--fsync
always|interval|off``) and compacted into heap snapshots every
``--snapshot-every`` acked ops; a restart replays the journal and prints
a ``RECOVERY CERTIFIED`` line before the ready line.  ``loadtest
--chaos-kill SID`` (federation only, needs ``--journal``) SIGKILLs shard
SID mid-burst, restarts it from its journal, revives the router upstream
and verifies that no acked op was lost and no unacked op double-applied.
``recover`` certifies a journal directory offline — snapshot + replay +
the full checker stack, no service required.

``--manifest PATH`` additionally writes a run manifest for the table run:
the exact command, seeds/grid config, git SHA, wall-clock, and a sha256
over each rendered table — without changing stdout by a single byte.
"""

from __future__ import annotations

import os
import sys
import time

from .experiments import ALL_PLAN_FACTORIES, all_plans
from .parallel import default_jobs, execute_plans


def main(argv: list[str]) -> int:
    if argv and argv[0] == "fuzz":
        from .fuzz import fuzz_main

        return fuzz_main(argv[1:])
    if argv and argv[0] == "replay":
        from .fuzz import replay_main

        return replay_main(argv[1:])
    if argv and argv[0] == "trace":
        from .trace_cli import trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "targets":
        from .targets_cli import targets_main

        return targets_main(argv[1:])
    if argv and argv[0] == "serve":
        from .service_cli import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "loadtest":
        from .service_cli import loadtest_main

        return loadtest_main(argv[1:])
    if argv and argv[0] == "recover":
        from .service_cli import recover_main

        return recover_main(argv[1:])
    if argv and argv[0] == "top":
        from .top_cli import top_main

        return top_main(argv[1:])
    if argv and argv[0] == "bench-kernel":
        from .bench_kernel import bench_kernel_main

        return bench_kernel_main(argv[1:])
    started = time.time()
    quick = "--quick" in argv
    markdown = "--markdown" in argv
    serial = "--serial" in argv
    if "--exact-transport" in argv:
        os.environ["REPRO_EXACT_TRANSPORT"] = "1"
    if "--batched" in argv:
        os.environ["REPRO_BATCHED"] = "1"
    jobs: int | None = None
    args = [
        a for a in argv
        if a not in ("--quick", "--markdown", "--serial", "--exact-transport", "--batched")
    ]
    if "--jobs" in args:
        at = args.index("--jobs")
        try:
            jobs = int(args[at + 1])
        except (IndexError, ValueError):
            print("--jobs requires an integer argument", file=sys.stderr)
            return 2
        del args[at : at + 2]
    manifest_path: str | None = None
    if "--manifest" in args:
        at = args.index("--manifest")
        try:
            manifest_path = args[at + 1]
        except IndexError:
            print("--manifest requires a path argument", file=sys.stderr)
            return 2
        del args[at : at + 2]
    if serial:
        jobs = 1
    ids = [a for a in args if not a.startswith("-")]
    if ids:
        unknown = [i for i in ids if i not in ALL_PLAN_FACTORIES]
        if unknown:
            print(f"unknown experiment ids: {unknown}", file=sys.stderr)
            print(f"available: {', '.join(ALL_PLAN_FACTORIES)}", file=sys.stderr)
            return 2
    plans = all_plans(quick=quick, ids=ids or None)
    n_jobs = default_jobs() if jobs is None else max(jobs, 1)
    print(
        f"# {len(plans)} experiments, "
        f"{sum(len(p.tasks) for p in plans)} grid points, jobs={n_jobs}",
        file=sys.stderr,
    )
    tables = execute_plans(plans, jobs=n_jobs)
    for table in tables:
        print(table.to_markdown() if markdown else table.render())
        print()
    if manifest_path is not None:
        from .manifest import build_manifest, write_manifest

        manifest = build_manifest(
            command=list(argv),
            config={
                "quick": quick,
                "markdown": markdown,
                "jobs": n_jobs,
                "ids": ids,
                "exact_transport": "--exact-transport" in argv,
                "batched": "--batched" in argv,
            },
            tables=tables,
            markdown=markdown,
            started=started,
        )
        write_manifest(manifest_path, manifest)
        print(f"# manifest: {manifest_path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
