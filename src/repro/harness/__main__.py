"""Regenerate experiment tables.

Usage::

    python -m repro.harness [--quick] [--markdown] [IDS...]

``--quick`` shrinks the parameter grids; ``--markdown`` emits GitHub
tables (how EXPERIMENTS.md's body is produced); ``IDS`` selects specific
experiments (T1..T13, F1, F2, A1, A2).
"""

from __future__ import annotations

import sys

from .experiments import ALL_EXPERIMENTS, run_all


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    markdown = "--markdown" in argv
    ids = [a for a in argv if not a.startswith("-")]
    if ids:
        unknown = [i for i in ids if i not in ALL_EXPERIMENTS]
        if unknown:
            print(f"unknown experiment ids: {unknown}", file=sys.stderr)
            print(f"available: {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
            return 2
        tables = [ALL_EXPERIMENTS[i]() for i in ids]
    else:
        tables = run_all(quick=quick)
    for table in tables:
        print(table.to_markdown() if markdown else table.render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
