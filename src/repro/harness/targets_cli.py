"""``python -m repro.harness targets`` — enumerate every runnable target.

One registry, asserted complete by the test suite: every experiment id
the table driver accepts, every fuzz/trace target, and every protocol
the live service can front appears here with a one-line description, so
``targets`` is the discoverability entry point for the whole harness
(the answer to "what can I actually run?").
"""

from __future__ import annotations

import sys

__all__ = ["targets_main", "EXPERIMENT_DESCRIPTIONS", "FUZZ_TARGET_DESCRIPTIONS",
           "SERVICE_PROTO_DESCRIPTIONS", "SERVICE_TOPOLOGY_DESCRIPTIONS"]

#: ``python -m repro.harness [IDS...]`` — one line per experiment table.
EXPERIMENT_DESCRIPTIONS = {
    "T1": "Skeap rounds per batch vs n — O(log n) w.h.p. (Thm 3.2(3))",
    "T2": "Skeap congestion vs injection rate Λ — O~(Λ) (Thm 3.2(4))",
    "T3": "Skeap max message bits vs Λ — O(Λ·log²n) bits (Lemma 3.8)",
    "T4": "KSelect rounds vs n — O(log n) w.h.p. (Thm 4.2)",
    "T5": "KSelect candidate reduction per phase (Lemmas 4.4, 4.7)",
    "T6": "KSelect vs gather-to-root message sizes (Thm 4.2)",
    "T7": "Seap rounds per insert+delete cycle vs n (Thm 5.1(3))",
    "T8": "Max message bits vs Λ: Seap flat vs Skeap growing (Lemmas 3.8/5.5)",
    "T9": "DHT storage fairness — m/n per node in expectation (Lemma 2.2)",
    "T10": "Routing hops vs n — O(log n) w.h.p. (Lemma A.2)",
    "T11": "Aggregation tree height vs n — O(log n) w.h.p. (Cor A.4)",
    "T12": "Coordinator hot-spot load: Skeap anchor vs central coordinator",
    "T13": "Membership: join/leave probe hops and data conservation",
    "T14": "Self-stabilizing linearization: convergence vs n (Appendix A)",
    "T15": "Routing hops at scale — O(log n) w.h.p. at 10^4+ nodes (Lemma A.2)",
    "F1": "Figure 1: Skeap phase trace (n=3, 𝒫={1,2}) reproduced exactly",
    "F2": "Figure 2: LDB and aggregation tree for 2 real nodes",
    "A1": "Ablations: batching and the δ window",
    "A2": "Seap vs Seap-SC: the cost of sequential consistency (§6)",
    "A3": "Fault-injection fuzz campaign (checks hold; seeded bug caught)",
}

#: ``fuzz --targets a,b`` / ``trace <target>`` — protocol stacks under test.
FUZZ_TARGET_DESCRIPTIONS = {
    "skeap": "Skeap on the lockstep runner: constant priorities, seq. consistency",
    "seap": "Seap on the lockstep runner: arbitrary priorities, serializability",
    "skack": "Skeap-SC §6 variant with per-op acknowledgements",
    "kselect": "Section-4 KSelect over a scattered key population",
    "linearize": "Self-stabilizing sorted-list linearization (Appendix A)",
    "skeap-async": "Skeap on the asynchronous event-driven runner",
    "seap-async": "Seap on the asynchronous event-driven runner",
}

#: ``serve --proto P`` / ``loadtest --proto P`` — live service back-ends.
SERVICE_PROTO_DESCRIPTIONS = {
    "skeap": "live Skeap queue service: constant priority range [0, P)",
    "seap": "live Seap queue service: arbitrary integer priorities",
}

#: ``serve [--shards K]`` — how the live service is laid out over processes.
SERVICE_TOPOLOGY_DESCRIPTIONS = {
    "single": "one QueueService process (the default; --shards 1)",
    "federation": "N shard processes behind a priority-band router (--shards N)",
}


def _check_complete() -> list[str]:
    """Registry drift vs the real drivers; returns a list of problems."""
    from ..service.router import TOPOLOGIES
    from ..service.server import PROTOS
    from .experiments import ALL_PLAN_FACTORIES
    from .fuzz import TARGET_NAMES

    problems = []
    for label, have, want in (
        ("experiment", set(EXPERIMENT_DESCRIPTIONS), set(ALL_PLAN_FACTORIES)),
        ("fuzz/trace", set(FUZZ_TARGET_DESCRIPTIONS), set(TARGET_NAMES)),
        ("service", set(SERVICE_PROTO_DESCRIPTIONS), set(PROTOS)),
        ("topology", set(SERVICE_TOPOLOGY_DESCRIPTIONS), set(TOPOLOGIES)),
    ):
        if missing := want - have:
            problems.append(f"{label} targets missing a description: {sorted(missing)}")
        if stale := have - want:
            problems.append(f"{label} descriptions for unknown targets: {sorted(stale)}")
    return problems


def targets_main(argv: list[str]) -> int:
    """``python -m repro.harness targets``"""
    if argv:
        print(f"targets takes no arguments, got: {argv}", file=sys.stderr)
        return 2
    problems = _check_complete()
    if problems:
        for p in problems:
            print(f"registry drift: {p}", file=sys.stderr)
        return 1
    sections = (
        ("experiments  (python -m repro.harness [--quick] IDS...)",
         EXPERIMENT_DESCRIPTIONS),
        ("fuzz/trace targets  (... fuzz --targets a,b | ... trace <target>)",
         FUZZ_TARGET_DESCRIPTIONS),
        ("service protocols  (... serve|loadtest --proto P)",
         SERVICE_PROTO_DESCRIPTIONS),
        ("service topologies  (... serve|loadtest [--shards K])",
         SERVICE_TOPOLOGY_DESCRIPTIONS),
    )
    for heading, registry in sections:
        print(heading)
        width = max(len(name) for name in registry)
        for name, description in registry.items():
            print(f"  {name:<{width}}  {description}")
        print()
    return 0
