"""Run manifests: what ran, from which tree, producing which tables.

Every harness artifact (experiment tables, fuzz campaigns, traced runs,
reproducer replays) can be accompanied by a small JSON manifest capturing
the five things needed to trust — or re-run — the output later:

* the exact **command/config** (argv, seeds, grid knobs, fault plan),
* the **git SHA** of the working tree (plus a dirty flag),
* **wall-clock** timing,
* **table hashes** — sha256 over the exact rendered text of every table
  the run printed/wrote, so "did anything change?" is one hash compare,
* environment basics (python version, platform).

Manifests are additive observability: nothing reads them back at runtime
and the primary outputs (stdout tables, reproducer JSON schema) are
byte-identical with and without them.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

__all__ = [
    "MANIFEST_SCHEMA",
    "git_describe",
    "sha256_text",
    "table_hashes",
    "build_manifest",
    "write_manifest",
]

MANIFEST_SCHEMA = 1


def sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def git_describe(cwd: str | None = None) -> dict:
    """The working tree's commit SHA and dirty flag; graceful off-git.

    Returns ``{"sha": None, "dirty": None}`` when git (or a repository)
    is unavailable — manifests must never fail a run.
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, cwd=cwd,
        )
        if sha.returncode != 0:
            return {"sha": None, "dirty": None}
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, timeout=10, cwd=cwd,
        )
        dirty = bool(status.stdout.strip()) if status.returncode == 0 else None
        return {"sha": sha.stdout.strip(), "dirty": dirty}
    except (OSError, subprocess.SubprocessError):
        return {"sha": None, "dirty": None}


def table_hashes(tables, markdown: bool = False) -> dict[str, dict]:
    """sha256 of each table's exact rendered text, keyed by experiment id.

    ``markdown`` must match how the run actually printed/wrote the
    tables, so the hash verifies the bytes the user has.
    """
    out: dict[str, dict] = {}
    for table in tables:
        text = table.to_markdown() if markdown else table.render()
        out[table.exp_id] = {
            "sha256": sha256_text(text),
            "rows": len(table.rows),
            "format": "markdown" if markdown else "text",
        }
    return out


def build_manifest(
    *,
    command: list[str] | str,
    config: dict | None = None,
    seed: int | None = None,
    fault_plan: dict | None = None,
    tables=None,
    markdown: bool = False,
    started: float | None = None,
    extra: dict | None = None,
) -> dict:
    """Assemble a manifest dict; ``started`` is a ``time.time()`` stamp."""
    now = time.time()
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "command": command,
        "config": config or {},
        "seed": seed,
        "fault_plan": fault_plan,
        "git": git_describe(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "finished_unix": now,
        "wall_clock_s": (now - started) if started is not None else None,
    }
    if tables is not None:
        manifest["tables"] = table_hashes(tables, markdown=markdown)
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(path: str | Path, manifest: dict) -> Path:
    """Write a manifest as stable (sorted-key) JSON, creating parent dirs."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path
