"""Schedule fuzzing: seeded fault plans versus the semantic checkers.

The consistency theorems (3.2(2), 5.1(2)) and the churn claim (T13) are
*for all* statements over asynchronous schedules; a handful of
hand-picked test schedules cannot witness them.  This module generates
thousands of seeded :class:`~repro.sim.faults.FaultPlan` schedules —
drops, duplicates, adversarial reorderings, bounded partitions, crash/
restart churn — runs each against a protocol target, and feeds every
resulting history through the ``repro.semantics`` checkers plus the
element-conservation census.

When a case fails, the fault plan is **shrunk** by delta-debugging over
its event list (ddmin) to a minimal reproducer that still triggers the
*same* failure signature, then serialized to JSON.  Because every input
(workload, plan, delays) derives from explicit seeds, a reproducer file
replays byte-for-byte::

    python -m repro.harness fuzz --plans 500 --seed 0
    python -m repro.harness fuzz --plans 40 --inject-bug no-retry --expect-caught
    python -m repro.harness replay fuzz-failures/repro-skeap-....json

``--inject-bug`` disables a transport guarantee on purpose (``no-retry``:
dropped messages are never retransmitted; ``no-dedup``: duplicate copies
reach the handlers) — the demonstration that the harness *would* catch a
real transport bug, which is what makes the green runs evidence.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from ..errors import ReproError
from ..kselect import KSelectCluster
from ..overlay.selfstab import LinearizationCluster
from ..seap import SeapHeap
from ..semantics.checkers import (
    check_element_conservation,
    check_heap_consistency,
    check_local_consistency,
    check_settled,
    replay_fifo,
    replay_lifo,
    replay_ordered,
)
from ..sim.async_runner import adversarial_delay
from ..sim.faults import CRASH, DELAY, DROP, DUP, PARTITION, FaultEvent, FaultPlan
from ..sim.rng import derive_seed
from ..skack import SkackStack
from ..skeap import SkeapHeap

__all__ = [
    "FuzzCase",
    "CaseResult",
    "CampaignResult",
    "FailureRecord",
    "TARGETS",
    "generate_plan",
    "make_case",
    "run_case",
    "shrink_case",
    "save_reproducer",
    "load_reproducer",
    "replay_reproducer",
    "fuzz_campaign",
    "fuzz_main",
    "replay_main",
]

#: Round/time budget for one fuzz case.  Generous against the worst legal
#: schedule (bounded delays, bounded partitions, retry timeouts) yet small
#: enough that a livelocked run fails in milliseconds, not minutes.
SETTLE_LIMIT = 8_000

#: Sync-driver protocol targets support churn; async arms check the same
#: semantics under continuous-time adversarial delays (no churn there —
#: membership applies at synchronous quiescent points).
TARGET_NAMES = (
    "skeap", "seap", "skack", "kselect", "linearize", "skeap-async", "seap-async",
)


@dataclass(slots=True)
class FuzzCase:
    """One fully seeded fuzz input: target + size + workload seed + plan."""

    target: str
    n_nodes: int
    n_ops: int
    seed: int
    plan: FaultPlan

    def with_events(self, events) -> "FuzzCase":
        return replace(self, plan=self.plan.with_events(events))

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "n_nodes": self.n_nodes,
            "n_ops": self.n_ops,
            "seed": self.seed,
            "plan": self.plan.to_dict(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FuzzCase":
        return cls(
            target=str(d["target"]),
            n_nodes=int(d["n_nodes"]),
            n_ops=int(d["n_ops"]),
            seed=int(d["seed"]),
            plan=FaultPlan.from_dict(d["plan"]),
        )


@dataclass(slots=True)
class CaseResult:
    """What one case execution produced."""

    signature: str | None  # None on success; "stage:ErrorType" on failure
    message: str = ""
    transport: dict = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return self.signature is not None


@dataclass(slots=True)
class FailureRecord:
    """A caught failure plus its minimized reproducer."""

    case: FuzzCase
    signature: str
    message: str
    minimized: FuzzCase
    shrink_runs: int


@dataclass(slots=True)
class CampaignResult:
    """Aggregate outcome of one fuzz campaign."""

    cases_run: int
    by_target: dict[str, int]
    failures: list[FailureRecord]

    @property
    def ok(self) -> bool:
        return not self.failures


# -- plan generation ----------------------------------------------------------


def generate_plan(
    seed: int,
    n_nodes: int,
    reliable: bool = True,
    dedup: bool = True,
    churn: bool = True,
) -> FaultPlan:
    """A seeded random fault plan sized for an ``n_nodes`` cluster.

    Message events target virtual-node channels (3 virtual ids per real
    node); partitions cut along random real-node bipartitions; crash
    events churn real nodes at quiescent slots.
    """
    rng = np.random.default_rng(derive_seed(seed, "fuzz", "plan"))
    nv = 3 * n_nodes
    events: list[FaultEvent] = []
    for _ in range(int(rng.integers(4, 28))):
        roll = rng.random()
        kind = DROP if roll < 0.5 else (DUP if roll < 0.75 else DELAY)
        events.append(
            FaultEvent(
                kind=kind,
                src=int(rng.integers(0, nv)),
                dst=int(rng.integers(0, nv)),
                nth=int(rng.integers(0, 80)),
                hold=float(rng.integers(1, 12)),
            )
        )
    if rng.random() < 0.5:
        side = [int(r) for r in range(n_nodes) if rng.random() < 0.5]
        if side and len(side) < n_nodes:
            group = tuple(v for r in side for v in (3 * r, 3 * r + 1, 3 * r + 2))
            events.append(
                FaultEvent(
                    kind=PARTITION,
                    start=float(rng.integers(0, 50)),
                    duration=float(rng.integers(5, 40)),
                    group=group,
                )
            )
    if churn and rng.random() < 0.45:
        events.append(
            FaultEvent(
                kind=CRASH,
                slot=int(rng.integers(0, 3)),
                node=int(rng.integers(0, n_nodes)),
                down_for=1,
            )
        )
    return FaultPlan(seed=seed, events=events, reliable=reliable, dedup=dedup)


def make_case(
    index: int,
    root_seed: int,
    targets=TARGET_NAMES,
    n_nodes: int = 4,
    n_ops: int = 24,
    inject_bug: str | None = None,
) -> FuzzCase:
    """Derive the ``index``-th case of a campaign rooted at ``root_seed``."""
    target = targets[index % len(targets)]
    seed = derive_seed(root_seed, "fuzz", "case", index) % (1 << 31)
    plan = generate_plan(
        seed,
        n_nodes,
        reliable=inject_bug != "no-retry",
        dedup=inject_bug != "no-dedup",
        churn=not target.endswith("-async"),
    )
    return FuzzCase(
        target=target, n_nodes=n_nodes, n_ops=n_ops, seed=seed, plan=plan
    )


# -- target drivers ------------------------------------------------------------


def _op_stream(case: FuzzCase, arbitrary_priorities: bool):
    """The deterministic op mix of a case: (is_insert, priority, node_idx)."""
    rng = np.random.default_rng(derive_seed(case.seed, "fuzz", "ops"))
    ops = []
    for _ in range(case.n_ops):
        is_insert = bool(rng.random() < 0.6)
        if arbitrary_priorities:
            priority = int(rng.integers(1, 1 << 20))
        else:
            priority = int(rng.integers(1, 4))
        ops.append((is_insert, priority, int(rng.integers(0, 1 << 30))))
    return ops


def _apply_churn(heap, slot: int, crash_events, downed: dict[int, tuple[int, int]]) -> None:
    """Crash (leave) due nodes and restart (re-join) recovered ones.

    Runs at a quiescent slot boundary — the paper's lazy processing
    points.  Churn that the membership layer legally refuses (last node,
    node already gone) is skipped; everything it *accepts* is covered by
    the conservation check afterwards.

    A restarted node recovers its client sequence counter (crash-recovery
    with a persisted client log); without it the fresh protocol node would
    reissue op ids already in the history.
    """
    from ..errors import MembershipError

    for node, (due, seq) in list(downed.items()):
        if due <= slot:
            del downed[node]
            try:
                heap.add_node(node)
            except MembershipError:
                continue
            heap.middle_node(node)._next_seq = seq
    for ev in crash_events:
        if ev.slot == slot:
            if ev.node in downed or len(heap.topology.real_ids) <= 2:
                continue
            seq = heap.middle_node(ev.node)._next_seq
            try:
                heap.remove_node(ev.node)
            except MembershipError:
                continue
            downed[ev.node] = (slot + max(ev.down_for, 1), seq)


def _drive_heap(case: FuzzCase, heap, submit, arbitrary: bool) -> None:
    """Shared driver for the heap-shaped targets: bursts + churn + settle."""
    sync = hasattr(heap.runner, "step")
    crash_events = case.plan.crash_events() if sync else []
    downed: dict[int, tuple[int, int]] = {}
    ops = _op_stream(case, arbitrary)
    n_bursts = 3
    per = max(1, (len(ops) + n_bursts - 1) // n_bursts)
    for burst in range(n_bursts):
        if sync:
            _apply_churn(heap, burst, crash_events, downed)
        live = heap.topology.real_ids
        for is_insert, priority, node_pick in ops[burst * per : (burst + 1) * per]:
            submit(is_insert, priority, live[node_pick % len(live)])
        heap.settle(SETTLE_LIMIT)
    if sync:
        # Restart everything still down, then one final quiescent point.
        _apply_churn(heap, max((d for d, _ in downed.values()), default=0), [], downed)
        heap.settle(SETTLE_LIMIT)


def _run_skeap(case: FuzzCase, runner_kind: str) -> tuple:
    kwargs = {"runner": runner_kind}
    if runner_kind == "async":
        kwargs["delay_fn"] = adversarial_delay()
    heap = SkeapHeap(
        case.n_nodes, n_priorities=3, seed=case.seed, faults=case.plan, **kwargs
    )

    def submit(is_insert, priority, node):
        if is_insert:
            heap.insert(priority=priority, at=node)
        else:
            heap.delete_min(at=node)

    _drive_heap(case, heap, submit, arbitrary=False)
    checks = [
        ("settled", lambda h: check_settled(h)),
        ("local", lambda h: check_local_consistency(h)),
        ("heap", lambda h: check_heap_consistency(h)),
        ("serial", lambda h: replay_fifo(h)),
    ]
    return heap, checks


def _run_seap(case: FuzzCase, runner_kind: str) -> tuple:
    kwargs = {"runner": runner_kind}
    if runner_kind == "async":
        kwargs["delay_fn"] = adversarial_delay()
    heap = SeapHeap(case.n_nodes, seed=case.seed, faults=case.plan, **kwargs)

    def submit(is_insert, priority, node):
        if is_insert:
            heap.insert(priority=priority, at=node)
        else:
            heap.delete_min(at=node)

    _drive_heap(case, heap, submit, arbitrary=True)
    checks = [
        ("settled", lambda h: check_settled(h)),
        ("heap", lambda h: check_heap_consistency(h)),
        ("serial", lambda h: replay_ordered(h)),
    ]
    return heap, checks


def _run_skack(case: FuzzCase) -> tuple:
    stack = SkackStack(case.n_nodes, seed=case.seed, faults=case.plan)

    def submit(is_insert, priority, node):
        if is_insert:
            stack.push(value=priority, at=node)
        else:
            stack.pop(at=node)

    _drive_heap(case, stack, submit, arbitrary=False)
    checks = [
        ("settled", lambda h: check_settled(h)),
        ("local", lambda h: check_local_consistency(h)),
        ("serial", lambda h: replay_lifo(h)),
    ]
    return stack, checks


def _run_kselect(case: FuzzCase) -> None:
    """KSelect session under faults: the result must be the exact k-th key."""
    rng = np.random.default_rng(derive_seed(case.seed, "fuzz", "kselect"))
    cluster = KSelectCluster(case.n_nodes, seed=case.seed, faults=case.plan)
    m = max(case.n_ops, 8) * case.n_nodes
    keys = [(int(p), uid) for uid, p in enumerate(rng.integers(1, 1 << 24, size=m))]
    cluster.scatter(keys)
    ranked = sorted(keys)
    for _ in range(2):
        k = int(rng.integers(1, m + 1))
        got = cluster.select(k, max_rounds=SETTLE_LIMIT)
        if got != ranked[k - 1]:
            raise ReproError(
                f"KSelect returned {got} for k={k}, expected {ranked[k - 1]}"
            )


def _run_linearize(case: FuzzCase) -> None:
    """Self-stabilizing linearization must converge despite the faults."""
    rng = np.random.default_rng(derive_seed(case.seed, "fuzz", "linearize"))
    initial = ("line", "random", "star")[int(rng.integers(0, 3))]
    cluster = LinearizationCluster(
        max(case.n_nodes * 3, 4), seed=case.seed, initial=initial, faults=case.plan
    )
    cluster.run_to_convergence(max_rounds=SETTLE_LIMIT)
    if not cluster.is_linearized():
        raise ReproError("linearization predicate flipped back")


TARGETS = {
    "skeap": lambda case: _run_skeap(case, "sync"),
    "skeap-async": lambda case: _run_skeap(case, "async"),
    "seap": lambda case: _run_seap(case, "sync"),
    "seap-async": lambda case: _run_seap(case, "async"),
    "skack": _run_skack,
    "kselect": _run_kselect,
    "linearize": _run_linearize,
}


# -- execution -----------------------------------------------------------------


def run_case(case: FuzzCase) -> CaseResult:
    """Execute one case; never raises — failures become signatures.

    The signature is ``stage:ErrorType``: the stage that failed (``run``
    for liveness/protocol errors while driving, else the checker stage)
    plus the exception class.  Shrinking preserves the signature so a
    minimized plan reproduces the *same* failure, not just any failure.
    """
    driver = TARGETS.get(case.target)
    if driver is None:
        raise ReproError(f"unknown fuzz target {case.target!r}")
    transport: dict = {}
    try:
        out = driver(case)
    except Exception as exc:  # noqa: BLE001 - any failure is a finding
        return CaseResult(f"run:{type(exc).__name__}", str(exc), transport)
    if out is None:  # kselect / linearize verify inline
        return CaseResult(None)
    cluster, checks = out
    stats = cluster.fault_stats
    if stats is not None:
        transport = stats.as_dict()
    history = cluster.history
    for stage, check in checks:
        try:
            check(history)
        except Exception as exc:  # noqa: BLE001
            return CaseResult(f"{stage}:{type(exc).__name__}", str(exc), transport)
    try:
        check_element_conservation(history, cluster.stored_uids())
    except Exception as exc:  # noqa: BLE001
        return CaseResult(f"conservation:{type(exc).__name__}", str(exc), transport)
    return CaseResult(None, transport=transport)


# -- shrinking (delta debugging over fault events) -----------------------------


def shrink_case(
    case: FuzzCase, signature: str, max_runs: int = 300
) -> tuple[FuzzCase, int]:
    """ddmin over ``case.plan.events``: smallest sublist with the failure.

    Every candidate is a fresh full run of the simulator — events are
    identified by concrete channel coordinates, so removing one never
    re-targets another, which is what makes the reduction sound.
    Returns the minimized case and how many candidate runs were spent.
    """
    runs = 0

    def still_fails(events) -> bool:
        nonlocal runs
        if runs >= max_runs:
            return False
        runs += 1
        return run_case(case.with_events(events)).signature == signature

    events = list(case.plan.events)
    granularity = 2
    while len(events) >= 2 and runs < max_runs:
        size = max(1, len(events) // granularity)
        reduced = False
        for start in range(0, len(events), size):
            complement = events[:start] + events[start + size :]
            if complement and still_fails(complement):
                events = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(events):
                break
            granularity = min(len(events), granularity * 2)
    if len(events) == 1 and still_fails([]):
        events = []
    return case.with_events(events), runs


# -- reproducer files ----------------------------------------------------------

REPRO_VERSION = 1


def save_reproducer(path, record: FailureRecord) -> None:
    """Serialize a minimized failure so ``replay`` can re-run it exactly."""
    doc = {
        "version": REPRO_VERSION,
        "case": record.minimized.to_dict(),
        "expect": {"signature": record.signature, "message": record.message},
        "original_events": len(record.case.plan.events),
        "shrink_runs": record.shrink_runs,
    }
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def load_reproducer(path) -> tuple[FuzzCase, str, str]:
    doc = json.loads(Path(path).read_text())
    if doc.get("version") != REPRO_VERSION:
        raise ReproError(f"unknown reproducer version in {path}")
    expect = doc.get("expect", {})
    return (
        FuzzCase.from_dict(doc["case"]),
        str(expect.get("signature", "")),
        str(expect.get("message", "")),
    )


def replay_reproducer(path) -> tuple[bool, CaseResult, str]:
    """Re-run a reproducer; True iff the recorded failure signature recurs."""
    case, signature, _message = load_reproducer(path)
    result = run_case(case)
    return result.signature == signature, result, signature


# -- campaign ------------------------------------------------------------------


def fuzz_campaign(
    n_plans: int,
    root_seed: int = 0,
    targets=TARGET_NAMES,
    n_nodes: int = 4,
    n_ops: int = 24,
    inject_bug: str | None = None,
    shrink: bool = True,
    max_failures: int = 5,
    out_dir=None,
    progress=None,
) -> CampaignResult:
    """Run ``n_plans`` seeded cases; shrink and record every failure.

    Stops collecting (but keeps counting) after ``max_failures`` distinct
    failures — a systematically broken transport fails every case and
    shrinking each one would be pure repetition.
    """
    by_target: dict[str, int] = {}
    failures: list[FailureRecord] = []
    seen_signatures: set[str] = set()
    for i in range(n_plans):
        case = make_case(
            i, root_seed, targets=targets, n_nodes=n_nodes, n_ops=n_ops,
            inject_bug=inject_bug,
        )
        by_target[case.target] = by_target.get(case.target, 0) + 1
        result = run_case(case)
        if progress is not None:
            progress(i, case, result)
        if not result.failed:
            continue
        key = f"{case.target}/{result.signature}"
        if len(failures) >= max_failures or key in seen_signatures:
            continue
        seen_signatures.add(key)
        if shrink:
            minimized, runs = shrink_case(case, result.signature)
        else:
            minimized, runs = case, 0
        record = FailureRecord(
            case=case,
            signature=result.signature,
            message=result.message,
            minimized=minimized,
            shrink_runs=runs,
        )
        failures.append(record)
        if out_dir is not None:
            out = Path(out_dir)
            out.mkdir(parents=True, exist_ok=True)
            save_reproducer(out / f"repro-{case.target}-{case.seed}.json", record)
    return CampaignResult(
        cases_run=n_plans, by_target=by_target, failures=failures
    )


# -- CLI -----------------------------------------------------------------------


def _flag_value(args: list[str], name: str, default):
    if name not in args:
        return default
    at = args.index(name)
    try:
        value = args[at + 1]
    except IndexError:
        raise SystemExit(f"{name} requires an argument")
    del args[at : at + 2]
    return value


def fuzz_main(argv: list[str]) -> int:
    """``python -m repro.harness fuzz [--plans N] [--seed S] ...``"""
    args = list(argv)
    n_plans = int(_flag_value(args, "--plans", 200))
    root_seed = int(_flag_value(args, "--seed", 0))
    n_nodes = int(_flag_value(args, "--nodes", 4))
    n_ops = int(_flag_value(args, "--ops", 24))
    out_dir = _flag_value(args, "--out", "fuzz-failures")
    inject_bug = _flag_value(args, "--inject-bug", None)
    targets = _flag_value(args, "--targets", None)
    targets = tuple(targets.split(",")) if targets else TARGET_NAMES
    shrink = "--no-shrink" not in args
    expect_caught = "--expect-caught" in args
    args = [a for a in args if a not in ("--no-shrink", "--expect-caught")]
    if args:
        print(f"unknown fuzz arguments: {args}", file=sys.stderr)
        return 2
    unknown = [t for t in targets if t not in TARGETS]
    if unknown:
        print(f"unknown targets {unknown}; available: {list(TARGETS)}", file=sys.stderr)
        return 2
    if inject_bug not in (None, "no-retry", "no-dedup"):
        print("--inject-bug takes no-retry or no-dedup", file=sys.stderr)
        return 2

    def progress(i, case, result):
        if (i + 1) % 50 == 0 or result.failed:
            mark = f"FAIL {result.signature}" if result.failed else "ok"
            print(f"[{i + 1}/{n_plans}] {case.target} seed={case.seed}: {mark}",
                  file=sys.stderr)

    import time as _time

    started = _time.time()
    campaign = fuzz_campaign(
        n_plans, root_seed, targets=targets, n_nodes=n_nodes, n_ops=n_ops,
        inject_bug=inject_bug, shrink=shrink, out_dir=out_dir, progress=progress,
    )
    if campaign.failures and out_dir is not None:
        # The reproducer directory exists (failures were saved into it);
        # attach a campaign manifest describing the run that produced them.
        from .manifest import build_manifest, write_manifest

        manifest = build_manifest(
            command=["fuzz"] + list(argv),
            config={
                "plans": n_plans, "nodes": n_nodes, "ops": n_ops,
                "targets": list(targets), "inject_bug": inject_bug,
                "shrink": shrink,
            },
            seed=root_seed,
            started=started,
            extra={
                "cases_run": campaign.cases_run,
                "by_target": campaign.by_target,
                "failures": [
                    {
                        "target": rec.case.target,
                        "seed": rec.case.seed,
                        "signature": rec.signature,
                        "events_before": len(rec.case.plan.events),
                        "events_after": len(rec.minimized.plan.events),
                        "shrink_runs": rec.shrink_runs,
                    }
                    for rec in campaign.failures
                ],
            },
        )
        write_manifest(Path(out_dir) / "campaign-manifest.json", manifest)
    counts = ", ".join(f"{t}={c}" for t, c in sorted(campaign.by_target.items()))
    print(f"# fuzz: {campaign.cases_run} plans ({counts}), "
          f"{len(campaign.failures)} distinct failure(s)")
    for rec in campaign.failures:
        print(
            f"  {rec.case.target} seed={rec.case.seed}: {rec.signature} — "
            f"shrunk {len(rec.case.plan.events)} -> "
            f"{len(rec.minimized.plan.events)} events "
            f"({rec.shrink_runs} shrink runs)"
        )
    if expect_caught:
        if not campaign.failures:
            print("expected the injected bug to be caught; it was not",
                  file=sys.stderr)
            return 1
        for rec in campaign.failures:
            again = run_case(rec.minimized)
            if again.signature != rec.signature:
                print(f"minimized case did not replay: {again.signature} != "
                      f"{rec.signature}", file=sys.stderr)
                return 1
        print("# injected bug caught, minimized, and replayed deterministically")
        return 0
    return 0 if campaign.ok else 1


def replay_main(argv: list[str]) -> int:
    """``python -m repro.harness replay [--trace [--out DIR]] <file>``.

    ``--trace`` re-runs the reproducer with the structured tracer
    installed and exports the replay's event log (JSONL + Chrome trace +
    manifest) next to a span summary on stderr — the forensic view of
    *what the minimized schedule actually did*.  Tracing is observation
    only, so the replay verdict is identical with and without it.
    """
    args = list(argv)
    trace = "--trace" in args
    args = [a for a in args if a != "--trace"]
    out_dir = _flag_value(args, "--out", None)
    paths = [a for a in args if not a.startswith("-")]
    if len(paths) != 1:
        print("usage: python -m repro.harness replay [--trace [--out DIR]] "
              "<reproducer.json>", file=sys.stderr)
        return 2
    import time as _time

    started = _time.time()
    try:
        if trace:
            from ..sim.trace import Tracer, tracing

            case, expected, _message = load_reproducer(paths[0])
            tracer = Tracer()
            with tracing(tracer):
                result = run_case(case)
            reproduced = result.signature == expected
        else:
            reproduced, result, expected = replay_reproducer(paths[0])
    except (OSError, ValueError, ReproError) as exc:
        print(f"cannot replay {paths[0]}: {exc}", file=sys.stderr)
        return 2
    if trace:
        _export_replay_trace(
            tracer, case, result, paths[0], out_dir, started, list(argv)
        )
    if reproduced:
        print(f"reproduced: {expected}\n  {result.message}")
        return 0
    print(f"did NOT reproduce: expected {expected}, got {result.signature or 'PASS'}")
    return 1


def _export_replay_trace(
    tracer, case: FuzzCase, result: CaseResult, repro_path, out_dir, started,
    argv,
) -> None:
    """Write the traced replay's artifacts; failures here never mask the verdict."""
    import json as _json

    from .manifest import build_manifest, write_manifest
    from .trace_export import (
        events_to_jsonl,
        span_summary_table,
        to_chrome_trace,
    )

    stem = Path(repro_path).stem
    out = Path(out_dir) if out_dir else Path("trace-out") / stem
    out.mkdir(parents=True, exist_ok=True)
    (out / "events.jsonl").write_text(events_to_jsonl(tracer))
    chrome = to_chrome_trace(tracer)
    (out / "trace.json").write_text(
        _json.dumps(chrome, sort_keys=True, separators=(",", ":")) + "\n"
    )
    table = span_summary_table(tracer, title=f"replay {stem}")
    manifest = build_manifest(
        command=["replay"] + argv,
        config={"reproducer": str(repro_path), "target": case.target},
        seed=case.seed,
        fault_plan=case.plan.to_dict(),
        tables=[table],
        started=started,
        extra={
            "events": len(tracer),
            "outcome": result.signature or "pass",
        },
    )
    write_manifest(out / "manifest.json", manifest)
    print(table.render(), file=sys.stderr)
    print(f"# traced replay: {len(tracer)} events -> {out}", file=sys.stderr)
