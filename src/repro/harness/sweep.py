"""Generic parameter sweeps: run your own scaling studies in three lines.

The built-in experiments (T1–T13) cover the paper's claims; ``sweep``
exposes the same measure-fit-render pipeline for arbitrary user studies::

    from repro import SkeapHeap
    from repro.harness.sweep import sweep

    result = sweep(
        "my-study", "settle rounds vs cluster size",
        xs=[8, 16, 32, 64],
        measure=lambda n: run_my_workload(SkeapHeap(n, seed=1)),
    )
    print(result.table.render())
    assert result.log_fit.r2 > 0.8
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from ..errors import WorkloadError
from .fitting import FitResult, fit_linear, fit_log2, is_logarithmic, is_sublinear
from .tables import Table

__all__ = ["SweepResult", "sweep"]


@dataclass(frozen=True)
class SweepResult:
    """Measurements plus both fits and shape predicates, ready to assert."""

    xs: tuple[float, ...]
    ys: tuple[float, ...]
    log_fit: FitResult
    linear_fit: FitResult
    table: Table

    @property
    def looks_logarithmic(self) -> bool:
        return is_logarithmic(self.xs, self.ys)

    @property
    def looks_sublinear(self) -> bool:
        return is_sublinear(self.xs, self.ys)

    def ratio_end_to_end(self) -> float:
        """Total growth of y across the sweep (``y_last / y_first``)."""
        first = self.ys[0] if self.ys[0] != 0 else 1e-9
        return self.ys[-1] / first


def sweep(
    name: str,
    title: str,
    xs: Sequence[float],
    measure: Callable[[float], float],
    x_label: str = "x",
    y_label: str = "y",
    claim: str = "",
) -> SweepResult:
    """Measure ``measure(x)`` for each x, fit both shapes, build a table.

    ``measure`` should construct fresh state per call (sweeps must not
    leak warm caches between points); failures propagate — a sweep with a
    broken point is not a result.
    """
    if len(xs) < 2:
        raise WorkloadError("a sweep needs at least two x values")
    ys = [float(measure(x)) for x in xs]
    log_fit = fit_log2(xs, ys)
    linear_fit = fit_linear(xs, ys)
    table = Table(
        name, title, claim or f"{y_label} vs {x_label}",
        [x_label, y_label, f"{y_label}/log2({x_label})"],
    )
    for x, y in zip(xs, ys):
        denom = math.log2(x) if x > 1 else 1.0
        table.add_row(x, y, y / denom)
    table.add_note(
        f"log fit: {log_fit.a:.3g}·log2(x)+{log_fit.b:.3g} (r²={log_fit.r2:.3f}); "
        f"linear fit: {linear_fit.a:.3g}·x+{linear_fit.b:.3g} (r²={linear_fit.r2:.3f})"
    )
    return SweepResult(
        xs=tuple(float(x) for x in xs),
        ys=tuple(ys),
        log_fit=log_fit,
        linear_fit=linear_fit,
        table=table,
    )
