"""Plain-text result tables: what the harness prints for each experiment.

One :class:`Table` per experiment row in DESIGN.md, with the paper's claim
in the header so the printed output is self-describing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["Table"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


@dataclass
class Table:
    """An experiment's printable result."""

    exp_id: str
    title: str
    claim: str
    headers: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    verdict: str = ""

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"{self.exp_id}: row width {len(cells)} != header width {len(self.headers)}"
            )
        self.rows.append(cells)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        cells = [[_fmt(c) for c in row] for row in self.rows]
        widths = [
            max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
            for i, h in enumerate(self.headers)
        ]
        lines = [
            f"== {self.exp_id}: {self.title} ==",
            f"   claim: {self.claim}",
            "  ".join(h.ljust(w) for h, w in zip(self.headers, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"   note: {note}")
        if self.verdict:
            lines.append(f"   verdict: {self.verdict}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        lines = [
            f"### {self.exp_id}: {self.title}",
            "",
            f"*Claim:* {self.claim}",
            "",
            "| " + " | ".join(self.headers) + " |",
            "| " + " | ".join("---" for _ in self.headers) + " |",
        ]
        for row in self.rows:
            lines.append("| " + " | ".join(_fmt(c) for c in row) + " |")
        for note in self.notes:
            lines.append(f"\n*Note:* {note}")
        if self.verdict:
            lines.append(f"\n**Verdict:** {self.verdict}")
        return "\n".join(lines)
