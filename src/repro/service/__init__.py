"""Live service runtime: Skeap/Seap as a real asyncio queue service.

This package puts a network boundary in front of the simulated overlay
cluster without touching the protocol packages: :class:`QueueService`
owns a cluster, pumps its runner from a background task, and maps
client requests onto protocol operations via their causal op ids;
:class:`QueueClient` speaks the length-prefixed JSON wire protocol with
pipelining and retry-with-jitter; :class:`AdmissionController` bounds
in-flight work and sheds overload with explicit ``RETRY_AFTER`` hints;
:mod:`~repro.service.loadgen` drives it all with seeded open/closed-loop
workloads and verifies the observed history post hoc.

The telemetry plane (:mod:`~repro.service.telemetry`) threads a
process-local :class:`MetricsRegistry` — counters, gauges, exactly
mergeable log-bucketed histograms — through every layer above, exposes
it over the wire as the ``metrics`` op and the streaming ``watch``
subscription (federated through the router with counters summed and
histograms merged bucket-wise), and exports it as Prometheus text or
JSONL (:mod:`~repro.service.export`).  Loadtests can declare service
level objectives (:func:`parse_slo` / :func:`evaluate_slo`) evaluated
against the client-observed run.

The durability plane (:mod:`~repro.service.durability`) makes the acked
history crash-safe: a length-prefixed, checksummed write-ahead op
journal (``--fsync always|interval|off``), periodic heap snapshots with
journal truncation at snapshot boundaries, and a recovery path that
replays the tail into a fresh cluster and re-certifies the spliced
history with the *unmodified* semantics checkers before serving again.

The simulator core never imports this package — ``import repro.service``
is strictly additive, so simulator-only runs are byte-identical with it
present or absent.
"""

from .admission import AdmissionController, AdmissionDecision, ShardedAdmission
from .client import ClientResult, QueueClient
from .controller import ShardController, ShardProcess, ShardSpec
from .durability import (
    DurabilityConfig,
    DurabilityPlane,
    Journal,
    RecoveryResult,
    certify_recovery,
    decode_records,
    encode_record,
    recover,
)
from .export import (
    series_to_jsonl,
    to_prometheus,
    validate_jsonl,
    validate_prometheus_text,
)
from .federation import merge_shard_histories
from .loadgen import (
    LoadReport,
    LoadSpec,
    SLOReport,
    SLOResult,
    SLOSpec,
    evaluate_slo,
    parse_slo,
    run_loadtest,
    verify_observed_history,
)
from .partition import Band, PartitionMap, even_partition
from .router import QueueRouter, default_band_range
from .server import QueueService
from .telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    TelemetrySampler,
    merge_snapshots,
    validate_snapshot,
)
from .wire import (
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    WireStats,
    encode_frame,
    read_frame,
    write_frame,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "ShardedAdmission",
    "ClientResult",
    "QueueClient",
    "QueueService",
    "QueueRouter",
    "ShardController",
    "ShardProcess",
    "ShardSpec",
    "DurabilityConfig",
    "DurabilityPlane",
    "Journal",
    "RecoveryResult",
    "certify_recovery",
    "decode_records",
    "encode_record",
    "recover",
    "Band",
    "PartitionMap",
    "even_partition",
    "default_band_range",
    "merge_shard_histories",
    "LoadReport",
    "LoadSpec",
    "SLOReport",
    "SLOResult",
    "SLOSpec",
    "parse_slo",
    "evaluate_slo",
    "run_loadtest",
    "verify_observed_history",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "TelemetrySampler",
    "merge_snapshots",
    "validate_snapshot",
    "to_prometheus",
    "series_to_jsonl",
    "validate_prometheus_text",
    "validate_jsonl",
    "DEFAULT_MAX_FRAME",
    "FrameDecoder",
    "WireStats",
    "encode_frame",
    "read_frame",
    "write_frame",
]
