"""Admission control: bounded in-flight window with per-client fairness.

The live service must degrade gracefully, never silently: when offered
load exceeds what the simulated cluster can absorb, excess requests are
*shed* with an explicit ``RETRY_AFTER`` hint instead of being queued
without bound (head-of-line latency collapse) or dropped (lost ops).

Policy, in order:

1. **Global window** — at most ``window`` operations may be admitted and
   unresolved across all clients; this bounds both the simulator's
   per-iteration batch size and the server's memory.
2. **Per-client fair share** — each registered client may hold at most
   ``ceil(window / n_clients)`` of those slots, so one greedy client
   cannot starve the others (max-min fairness over equal demands).
3. **Load shedding** — a request denied by either bound gets a
   ``retry_after`` delay scaled by how saturated the window is; clients
   retry with jitter, which spreads the herd.

The controller is deliberately synchronous and deterministic: decisions
depend only on the current occupancy, never on time or randomness, so
admission behavior is exactly reproducible in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ServiceError

__all__ = ["AdmissionDecision", "AdmissionController", "ShardedAdmission"]


@dataclass(frozen=True, slots=True)
class AdmissionDecision:
    """The outcome of one admission attempt."""

    admitted: bool
    retry_after: float = 0.0
    reason: str = ""


@dataclass
class AdmissionController:
    """Bounded in-flight window with per-client max-min fair shares."""

    window: int = 64
    base_retry_after: float = 0.05

    #: in-flight (admitted, unresolved) ops per registered client
    _in_flight: dict[object, int] = field(default_factory=dict, repr=False)
    _total: int = field(default=0, repr=False)
    #: observability counters (rendered by ``stats`` requests and tests)
    admitted_total: int = 0
    shed_total: int = 0
    released_total: int = 0

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ServiceError(f"admission window must be >= 1, got {self.window}")
        if self.base_retry_after <= 0:
            raise ServiceError("base_retry_after must be positive")

    # -- client registry ---------------------------------------------------

    def register(self, client: object) -> None:
        """A client session opened; it now counts toward fair shares."""
        if client in self._in_flight:
            raise ServiceError(f"client {client!r} registered twice")
        self._in_flight[client] = 0

    def unregister(self, client: object) -> None:
        """A client session closed; its unresolved slots are returned."""
        held = self._in_flight.pop(client, 0)
        self._total -= held

    @property
    def n_clients(self) -> int:
        return len(self._in_flight)

    @property
    def in_flight(self) -> int:
        return self._total

    def client_in_flight(self, client: object) -> int:
        return self._in_flight.get(client, 0)

    def fair_share(self) -> int:
        """Per-client slot cap: ``ceil(window / n_clients)``, at least 1."""
        n = max(1, len(self._in_flight))
        return max(1, -(-self.window // n))

    # -- admission ---------------------------------------------------------

    def try_admit(self, client: object) -> AdmissionDecision:
        """Admit one op for ``client``, or return a retry-after hint."""
        held = self._in_flight.get(client)
        if held is None:
            raise ServiceError(f"client {client!r} not registered")
        if self._total >= self.window:
            self.shed_total += 1
            return AdmissionDecision(
                False, self._retry_delay(), "window full"
            )
        if held >= self.fair_share():
            self.shed_total += 1
            return AdmissionDecision(
                False, self._retry_delay(), "client over fair share"
            )
        self._in_flight[client] = held + 1
        self._total += 1
        self.admitted_total += 1
        return AdmissionDecision(True)

    def release(self, client: object) -> None:
        """One admitted op for ``client`` resolved; free its slot."""
        held = self._in_flight.get(client)
        if held is None:
            return  # session already closed; unregister returned the slots
        if held <= 0:
            raise ServiceError(f"release without admit for client {client!r}")
        self._in_flight[client] = held - 1
        self._total -= 1
        self.released_total += 1

    def _retry_delay(self) -> float:
        """Back off harder the fuller the window is (deterministic)."""
        saturation = self._total / self.window
        return self.base_retry_after * (1.0 + saturation)

    def snapshot(self) -> dict:
        """Counters for ``stats`` requests and the load generator."""
        return {
            "window": self.window,
            "in_flight": self._total,
            "clients": len(self._in_flight),
            "fair_share": self.fair_share(),
            "admitted": self.admitted_total,
            "shed": self.shed_total,
            "released": self.released_total,
        }


class ShardedAdmission:
    """Per-shard admission windows for the federation router.

    One :class:`AdmissionController` per shard: a saturated shard sheds
    *its* traffic while the other bands keep admitting, so a hot priority
    band cannot collapse the whole federation's window (the failure mode
    a single shared window would have).  Shards can be added and removed
    at runtime — the rebalance path grows/shrinks the set in lockstep
    with the partition map.
    """

    def __init__(
        self,
        shard_ids,
        *,
        window_per_shard: int = 64,
        base_retry_after: float = 0.02,
    ):
        self.window_per_shard = int(window_per_shard)
        self.base_retry_after = float(base_retry_after)
        self._controllers: dict[int, AdmissionController] = {}
        self._clients: set = set()
        for sid in shard_ids:
            self.add_shard(sid)

    # -- shard set ---------------------------------------------------------

    def add_shard(self, shard_id: int) -> None:
        if shard_id in self._controllers:
            raise ServiceError(f"shard {shard_id} already has a window")
        controller = AdmissionController(
            window=self.window_per_shard, base_retry_after=self.base_retry_after
        )
        for client in self._clients:
            controller.register(client)
        self._controllers[shard_id] = controller

    def remove_shard(self, shard_id: int) -> None:
        self._controllers.pop(shard_id, None)

    @property
    def shard_ids(self) -> tuple[int, ...]:
        return tuple(self._controllers)

    @property
    def window(self) -> int:
        """The federation-wide window: the sum of the per-shard windows."""
        return self.window_per_shard * max(1, len(self._controllers))

    # -- client registry ---------------------------------------------------

    def register(self, client: object) -> None:
        if client in self._clients:
            raise ServiceError(f"client {client!r} registered twice")
        self._clients.add(client)
        for controller in self._controllers.values():
            controller.register(client)

    def unregister(self, client: object) -> None:
        self._clients.discard(client)
        for controller in self._controllers.values():
            controller.unregister(client)

    # -- admission ---------------------------------------------------------

    def try_admit(self, client: object, shard_id: int) -> AdmissionDecision:
        controller = self._controllers.get(shard_id)
        if controller is None:
            raise ServiceError(f"no admission window for shard {shard_id}")
        return controller.try_admit(client)

    def release(self, client: object, shard_id: int) -> None:
        controller = self._controllers.get(shard_id)
        if controller is not None:
            controller.release(client)

    def snapshot(self) -> dict:
        """An aggregate shaped like one controller's, plus per-shard detail."""
        shards = {sid: c.snapshot() for sid, c in self._controllers.items()}
        return {
            "window": self.window,
            "in_flight": sum(s["in_flight"] for s in shards.values()),
            "clients": len(self._clients),
            "fair_share": min(
                (s["fair_share"] for s in shards.values()), default=1
            ),
            "admitted": sum(s["admitted"] for s in shards.values()),
            "shed": sum(s["shed"] for s in shards.values()),
            "released": sum(s["released"] for s in shards.values()),
            "per_shard": shards,
        }
