"""Durability plane: write-ahead op journal, snapshots, certified recovery.

A :class:`~repro.service.server.QueueService` with a journal directory
survives ``kill -9``.  The design has three parts:

* **Write-ahead op journal** — every *acknowledged* operation is appended
  to the current journal segment *before* its completion frame is queued,
  so the journal is the commit point: an op the client saw acked is on
  disk, and an op that is on disk but was never acked is simply a settled
  op whose response was lost (its client retries with a *new* causal op
  id, so nothing double-applies).  Records are length-prefixed and
  CRC32-checksummed; a torn tail (the process died mid-write) is detected
  and truncated cleanly, never half-applied.  ``flush()`` runs on every
  append batch — that is what ``kill -9`` safety needs (the OS keeps
  flushed bytes) — while ``fsync`` runs per policy (``always`` /
  ``interval`` / ``off``) to also survive OS/power loss.

* **Snapshots** — at drained points (no admitted op unresolved, so the
  history is settled and the census stable) the service writes the full
  settled external history plus the live element census to
  ``snapshot-NNNNNN.json`` (atomic: tmp + fsync + rename) and rotates to
  journal segment ``NNNNNN``; older segments and snapshots are deleted
  only after the rename, so a crash anywhere leaves a recoverable prefix.

* **Recovery** — :func:`recover` loads the newest *valid* snapshot,
  replays every journal segment at or after it (idempotent: records are
  deduplicated by causal op id ``(owner, seq)``), derives the survivors
  (inserted, never deleted) and the next generation/sequence base, and
  :func:`certify_recovery` re-runs the *unmodified* semantics-checker
  stack over the reconstructed history before the service serves a byte.

Journal records are the service's external history entries (the
``history`` frame's wire form) with the insert's ``value`` attached, and
their order keys carry a **generation prefix** ``[generation, *key]`` —
so the splice of all generations is one totally ordered, checkable
history: every gen-``g`` op serializes after every gen-``g-1`` op, and
within a generation the protocol's own witness order is preserved.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import DurabilityError
from ..semantics.checkers import (
    check_element_conservation,
    check_heap_consistency,
    check_seap_history,
    check_settled,
    check_skeap_history,
)
from ..semantics.history import DELETE, INSERT, History

__all__ = [
    "FSYNC_POLICIES",
    "RECORD_HEADER",
    "MAX_RECORD",
    "DurabilityConfig",
    "Journal",
    "RecoveryResult",
    "DurabilityPlane",
    "encode_record",
    "decode_records",
    "write_snapshot",
    "snapshot_files",
    "journal_segments",
    "recover",
    "certify_recovery",
]

#: When to fsync the journal: every commit, at most once per interval, never.
FSYNC_POLICIES = ("always", "interval", "off")

#: 4-byte big-endian body length + 4-byte big-endian CRC32 of the body.
RECORD_HEADER = 8

#: A declared record length above this is treated as tail corruption.
MAX_RECORD = 1 << 26


def _segment_name(index: int) -> str:
    return f"journal-{index:06d}.log"


def _snapshot_name(index: int) -> str:
    return f"snapshot-{index:06d}.json"


@dataclass(frozen=True)
class DurabilityConfig:
    """The durability knobs one service runs with."""

    dir: Path
    fsync: str = "interval"
    fsync_interval: float = 0.05
    snapshot_every: int = 500

    def __post_init__(self):
        object.__setattr__(self, "dir", Path(self.dir))
        if self.fsync not in FSYNC_POLICIES:
            raise DurabilityError(
                f"unknown fsync policy {self.fsync!r}; available: {FSYNC_POLICIES}"
            )
        if self.fsync_interval <= 0:
            raise DurabilityError("fsync_interval must be positive")
        if self.snapshot_every < 1:
            raise DurabilityError("snapshot_every must be >= 1")


# -- record codec -----------------------------------------------------------


def encode_record(entry: dict) -> bytes:
    """One journal record: length + CRC32 + compact sorted JSON body."""
    body = json.dumps(entry, separators=(",", ":"), sort_keys=True).encode("utf-8")
    if len(body) > MAX_RECORD:
        raise DurabilityError(f"journal record of {len(body)} bytes is oversized")
    return (
        len(body).to_bytes(4, "big")
        + (zlib.crc32(body) & 0xFFFFFFFF).to_bytes(4, "big")
        + body
    )


def decode_records(data: bytes) -> tuple[list[dict], int]:
    """Decode a segment's bytes into ``(records, clean_length)``.

    Stops *cleanly* at the first sign of a torn tail — a short header, a
    declared length beyond the buffer or :data:`MAX_RECORD`, a CRC
    mismatch, or an unparsable body — and reports how many bytes formed
    whole, verified records.  Never raises on corruption: a torn write is
    an expected crash artifact, and recovery's contract is "replay the
    record fully or drop it cleanly".
    """
    records: list[dict] = []
    offset = 0
    total = len(data)
    while total - offset >= RECORD_HEADER:
        length = int.from_bytes(data[offset : offset + 4], "big")
        if length > MAX_RECORD or offset + RECORD_HEADER + length > total:
            break
        crc = int.from_bytes(data[offset + 4 : offset + 8], "big")
        body = data[offset + RECORD_HEADER : offset + RECORD_HEADER + length]
        if (zlib.crc32(body) & 0xFFFFFFFF) != crc:
            break
        try:
            entry = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        if not isinstance(entry, dict):
            break
        records.append(entry)
        offset += RECORD_HEADER + length
    return records, offset


class Journal:
    """An append-only segment file with checksummed records.

    ``commit()`` is the durability boundary: it flushes the Python buffer
    to the OS on every call (enough to survive ``kill -9`` of this
    process) and fsyncs per policy (enough to survive the OS too).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fsync: str = "interval",
        fsync_interval: float = 0.05,
        header: dict | None = None,
    ):
        if fsync not in FSYNC_POLICIES:
            raise DurabilityError(
                f"unknown fsync policy {fsync!r}; available: {FSYNC_POLICIES}"
            )
        self.path = Path(path)
        self.fsync = fsync
        self.fsync_interval = float(fsync_interval)
        self._fh = open(self.path, "ab")
        self._last_fsync = time.monotonic()
        self.bytes_written = 0
        self.appends = 0
        self.fsyncs = 0
        if header is not None:
            self.append({"_meta": header})
            self.commit(force_fsync=self.fsync != "off")

    def append(self, entry: dict) -> int:
        """Buffer one record; returns its encoded size in bytes."""
        data = encode_record(entry)
        self._fh.write(data)
        self.bytes_written += len(data)
        self.appends += 1
        return len(data)

    def commit(self, *, force_fsync: bool = False) -> float:
        """Flush buffered records; fsync per policy.  Returns fsync seconds."""
        self._fh.flush()
        now = time.monotonic()
        due = self.fsync == "always" or (
            self.fsync == "interval" and now - self._last_fsync >= self.fsync_interval
        )
        if not (due or force_fsync):
            return 0.0
        started = time.perf_counter()
        os.fsync(self._fh.fileno())
        self.fsyncs += 1
        self._last_fsync = time.monotonic()
        return time.perf_counter() - started

    def close(self) -> None:
        if self._fh.closed:
            return
        self._fh.flush()
        if self.fsync != "off":
            try:
                os.fsync(self._fh.fileno())
            except OSError:
                pass
        self._fh.close()


# -- snapshots --------------------------------------------------------------


def write_snapshot(directory: str | Path, index: int, payload: dict) -> Path:
    """Write ``snapshot-{index}.json`` atomically (tmp + fsync + rename)."""
    directory = Path(directory)
    final = directory / _snapshot_name(index)
    tmp = directory / (_snapshot_name(index) + ".tmp")
    data = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, final)
    _fsync_dir(directory)
    return final


def _fsync_dir(directory: Path) -> None:
    """Make the rename itself durable where the platform allows it."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _indexed(directory: Path, prefix: str, suffix: str) -> list[tuple[int, Path]]:
    out: list[tuple[int, Path]] = []
    if not directory.is_dir():
        return out
    for path in directory.iterdir():
        name = path.name
        if not (name.startswith(prefix) and name.endswith(suffix)):
            continue
        digits = name[len(prefix) : len(name) - len(suffix)]
        if digits.isdigit():
            out.append((int(digits), path))
    out.sort()
    return out


def snapshot_files(directory: str | Path) -> list[tuple[int, Path]]:
    """``(index, path)`` for every snapshot, ascending by index."""
    return _indexed(Path(directory), "snapshot-", ".json")


def journal_segments(directory: str | Path) -> list[tuple[int, Path]]:
    """``(index, path)`` for every journal segment, ascending by index."""
    return _indexed(Path(directory), "journal-", ".log")


# -- recovery ---------------------------------------------------------------


@dataclass
class RecoveryResult:
    """Everything a restarting service needs to resume where it died."""

    #: the generation the *recovered* service runs as (prior + 1)
    generation: int
    #: the full settled external history across all prior generations
    records: list[dict]
    #: elements inserted but never deleted, in serialization order:
    #: ``{"uid", "priority", "value", "order"}`` each
    survivors: list[dict]
    #: per-node ``_next_seq`` floor making new op ids/uids disjoint from
    #: every prior generation's
    seq_base: int
    #: ops recovered from the journal tail beyond the snapshot
    replayed_ops: int
    #: the snapshot the replay started from (None: segments only)
    snapshot_index: int | None
    #: journal segments replayed
    segments: int
    #: proto/n_nodes/seed/order/discipline recorded by the prior incarnation
    meta: dict = field(default_factory=dict)
    #: the snapshot's live-element census (uids), for cross-checking
    census: list[int] | None = None
    #: how many of ``records`` came from the snapshot (its census refers to
    #: exactly this prefix; the journal tail extends past it)
    snapshot_ops: int = 0


def recover(directory: str | Path) -> RecoveryResult | None:
    """Reconstruct the prior state of a journal directory, or ``None``.

    Loads the newest snapshot that parses (older ones are fallbacks for a
    half-written or corrupted file), then replays every journal segment
    with an index at or after it.  Replay is idempotent: records are
    deduplicated by causal op id, so a record present in both the
    snapshot and a segment — or twice in segments — applies once, and a
    torn tail (see :func:`decode_records`) drops cleanly.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    base_records: list[dict] = []
    base_index = 0
    snapshot_index: int | None = None
    meta: dict = {}
    census: list[int] | None = None
    for index, path in reversed(snapshot_files(directory)):
        try:
            payload = json.loads(path.read_text())
            ops = payload["history"]["ops"]
            if not isinstance(ops, list):
                raise TypeError("history.ops is not a list")
        except (OSError, json.JSONDecodeError, KeyError, TypeError):
            continue  # half-written or corrupt: fall back to an older one
        base_records = ops
        base_index = index
        snapshot_index = index
        meta = dict(payload.get("meta") or {})
        raw_census = payload.get("census")
        if isinstance(raw_census, list):
            census = [int(u) for u in raw_census]
        break

    segments = [
        (i, path) for i, path in journal_segments(directory) if i >= base_index
    ]
    seen = {tuple(entry["op"]) for entry in base_records}
    records = list(base_records)
    replayed = 0
    for _, path in segments:
        try:
            data = path.read_bytes()
        except OSError:
            continue
        entries, _ = decode_records(data)
        for entry in entries:
            if "_meta" in entry:
                meta = dict(meta, **entry["_meta"])
                continue
            op_id = tuple(entry["op"])
            if op_id in seen:
                continue
            seen.add(op_id)
            records.append(entry)
            replayed += 1

    if snapshot_index is None and not segments:
        return None  # nothing on disk: a genuinely fresh start

    survivors = _derive_survivors(records)
    max_seq = max((int(entry["op"][1]) for entry in records), default=-1)
    prior_generation = int(meta.get("generation", 0))
    return RecoveryResult(
        generation=prior_generation + 1,
        records=records,
        survivors=survivors,
        seq_base=max_seq + 1,
        replayed_ops=replayed,
        snapshot_index=snapshot_index,
        segments=len(segments),
        meta=meta,
        census=census,
        snapshot_ops=len(base_records),
    )


def _derive_survivors(records: list[dict]) -> list[dict]:
    """Elements inserted but never deleted, in serialization-key order.

    Two passes on purpose: records sit in journal *append* order (ack
    order), and under concurrency a delete can be acked — and therefore
    journaled — before the insert whose element it returned.  Matching
    deletes against inserts set-wise makes the derivation independent of
    that interleaving; uids are globally unique, so no order is needed.
    """
    inserted: dict[int, dict] = {}
    deleted: set[int] = set()
    for entry in records:
        if entry["kind"] == INSERT:
            inserted[entry["uid"]] = {
                "uid": entry["uid"],
                "priority": entry["priority"],
                "value": entry.get("value"),
                "order": entry.get("order"),
            }
        elif entry["kind"] == DELETE and entry.get("ret") is not None:
            deleted.add(entry["ret"])
    return sorted(
        (s for uid, s in inserted.items() if uid not in deleted),
        key=lambda s: tuple(s["order"]) if s["order"] is not None else (),
    )


def certify_recovery(result: RecoveryResult) -> list[str]:
    """Run the unmodified semantics-checker stack over a recovery.

    The reconstructed history must pass the same bundle a live loadtest's
    history does, element conservation must hold against the derived
    survivors, and (when the snapshot recorded one) the persisted census
    must equal the replay's.  Returns the check names; raises
    :class:`~repro.errors.ConsistencyError` /
    :class:`~repro.errors.DurabilityError` on the first violation.
    """
    history = History.from_jsonable({"ops": result.records})
    passed: list[str] = []
    proto = result.meta.get("proto", "skeap")
    order = result.meta.get("order", "min")
    discipline = result.meta.get("discipline", "fifo")
    if proto == "skeap" and discipline == "fifo":
        check_skeap_history(history, order=order)
        passed.append("skeap(SC+heap+serial)")
    elif proto == "seap":
        check_seap_history(history)
        passed.append("seap(serializable+heap)")
    else:
        check_settled(history)
        check_heap_consistency(history, order=order)
        passed.append("heap-consistency")
    survivor_uids = [s["uid"] for s in result.survivors]
    check_element_conservation(history, survivor_uids)
    passed.append("conservation")
    if result.census is not None:
        # The census describes the state *at the snapshot cut* — compare it
        # against the snapshot prefix, not the tail-extended replay.
        at_snapshot = sorted(
            s["uid"] for s in _derive_survivors(result.records[: result.snapshot_ops])
        )
        if sorted(result.census) != at_snapshot:
            raise DurabilityError(
                f"snapshot census ({len(result.census)} elements) contradicts "
                f"its own history prefix ({len(at_snapshot)} survivors)"
            )
        passed.append("census")
    return passed


# -- the plane one service drives -------------------------------------------


class DurabilityPlane:
    """File lifecycle for one service: segments, snapshots, pruning.

    The :class:`~repro.service.server.QueueService` owns the policy
    decisions (what to journal, when a drained point is reached); this
    object owns the directory: which segment is current, how snapshots
    rotate, and which files are safe to delete.
    """

    def __init__(self, config: DurabilityConfig, *, meta: dict | None = None):
        self.config = config
        self.meta = dict(meta or {})
        self.config.dir.mkdir(parents=True, exist_ok=True)
        self.generation = 0
        self.segment = 0
        self.journal: Journal | None = None
        #: cumulative tallies (survive segment rotation)
        self.bytes_total = 0
        self.appends_total = 0
        self.fsyncs_total = 0
        self.snapshots_total = 0
        self._last_snapshot = time.monotonic()

    # -- startup -----------------------------------------------------------

    def recover(self) -> RecoveryResult | None:
        result = recover(self.config.dir)
        if result is not None:
            self.generation = result.generation
        return result

    def begin(
        self,
        records: list[dict],
        census: list[int],
        *,
        state: dict | None = None,
    ) -> None:
        """Open this generation: startup snapshot + fresh journal segment.

        The startup snapshot captures the recovered (or empty) history, so
        every older segment and snapshot immediately becomes prunable —
        the recovery chain never grows past one snapshot plus the current
        generation's segments.
        """
        existing = [i for i, _ in journal_segments(self.config.dir)]
        existing += [i for i, _ in snapshot_files(self.config.dir)]
        self.segment = max(existing) + 1 if existing else 0
        self._write_snapshot(records, census, state)
        self._open_segment()
        self._prune()

    # -- the hot path --------------------------------------------------------

    def append_batch(self, entries: list[dict]) -> tuple[int, float]:
        """Journal a batch of acked-op records; returns (bytes, fsync secs).

        The caller sends completion frames only after this returns: the
        flush inside ``commit`` is the ack commit point.
        """
        if self.journal is None:
            raise DurabilityError("durability plane has no open segment")
        nbytes = 0
        for entry in entries:
            nbytes += self.journal.append(entry)
        fsync_seconds = self.journal.commit()
        self.bytes_total += nbytes
        self.appends_total += len(entries)
        if fsync_seconds:
            self.fsyncs_total += 1
        return nbytes, fsync_seconds

    def rotate(
        self,
        records: list[dict],
        census: list[int],
        *,
        state: dict | None = None,
    ) -> float:
        """Snapshot the settled state and truncate the journal behind it.

        Returns the snapshot's write duration in seconds.  Crash-ordering
        safety: the new snapshot is renamed into place *before* the old
        segment is deleted, and the old segment's records are all inside
        the snapshot (the caller rotates at drained points only), so a
        crash between any two steps recovers to the same history.
        """
        started = time.perf_counter()
        if self.journal is not None:
            self.journal.close()
            self.journal = None
        self.segment += 1
        self._write_snapshot(records, census, state)
        self._open_segment()
        self._prune()
        return time.perf_counter() - started

    def snapshot_age(self) -> float:
        return time.monotonic() - self._last_snapshot

    def telemetry(self) -> dict:
        return {
            "dir": str(self.config.dir),
            "fsync": self.config.fsync,
            "snapshot_every": self.config.snapshot_every,
            "generation": self.generation,
            "segment": self.segment,
            "journal_bytes": self.bytes_total,
            "journal_appends": self.appends_total,
            "journal_fsyncs": self.fsyncs_total,
            "snapshots": self.snapshots_total,
            "snapshot_age": self.snapshot_age(),
        }

    def close(self) -> None:
        if self.journal is not None:
            self.journal.close()
            self.journal = None

    # -- internals -----------------------------------------------------------

    def _header(self) -> dict:
        return dict(self.meta, generation=self.generation, segment=self.segment)

    def _write_snapshot(
        self, records: list[dict], census: list[int], state: dict | None
    ) -> None:
        payload = {
            "version": 1,
            "meta": self._header(),
            "history": {"ops": records},
            "census": sorted(census),
            "state": state or {},
            "written_at": time.time(),
        }
        write_snapshot(self.config.dir, self.segment, payload)
        self.snapshots_total += 1
        self._last_snapshot = time.monotonic()

    def _open_segment(self) -> None:
        self.journal = Journal(
            self.config.dir / _segment_name(self.segment),
            fsync=self.config.fsync,
            fsync_interval=self.config.fsync_interval,
            header=self._header(),
        )

    def _prune(self) -> None:
        """Delete segments/snapshots older than the current snapshot."""
        for index, path in journal_segments(self.config.dir):
            if index < self.segment:
                path.unlink(missing_ok=True)
        for index, path in snapshot_files(self.config.dir):
            if index < self.segment:
                path.unlink(missing_ok=True)
