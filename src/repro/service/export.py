"""Exporters for telemetry snapshots: Prometheus text and JSONL series.

Two consumers, two formats:

* :func:`to_prometheus` renders one snapshot in the Prometheus text
  exposition format — counters and gauges verbatim, histograms as the
  classic cumulative ``_bucket{le="..."}`` / ``_sum`` / ``_count``
  triple, with bucket bounds taken from the log-bucket shape so a real
  Prometheus server could scrape the output unmodified;
* :func:`series_to_jsonl` renders a sampler time series (or any list of
  snapshot points) one canonical JSON object per line, the same idiom as
  the trace exporter's ``events.jsonl``.

Both directions ship with validators (:func:`validate_prometheus_text`,
:func:`validate_jsonl`) that CI's telemetry-smoke job runs over the
artifacts — the schema check that keeps the exporters honest.
"""

from __future__ import annotations

import json
import re
from typing import Iterable

from .telemetry import Histogram, parse_metric_key, validate_snapshot

__all__ = [
    "to_prometheus",
    "series_to_jsonl",
    "validate_prometheus_text",
    "validate_jsonl",
]


def _prom_key(key: str) -> str:
    """``name{a=1}`` → ``name{a="1"}`` (Prometheus quotes label values)."""
    name, labels = parse_metric_key(key)
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


def _fmt_value(value: float) -> str:
    if value != value or value in (float("inf"), float("-inf")):
        return "NaN" if value != value else ("+Inf" if value > 0 else "-Inf")
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_prometheus(snapshot: dict) -> str:
    """Render one snapshot as Prometheus text exposition format."""
    lines: list[str] = []
    typed: set[str] = set()

    def type_line(key: str, kind: str) -> None:
        name, _ = parse_metric_key(key)
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for key, value in snapshot.get("counters", {}).items():
        type_line(key, "counter")
        lines.append(f"{_prom_key(key)} {_fmt_value(value)}")
    for key, value in snapshot.get("gauges", {}).items():
        type_line(key, "gauge")
        lines.append(f"{_prom_key(key)} {_fmt_value(value)}")
    for key, payload in snapshot.get("hists", {}).items():
        type_line(key, "histogram")
        name, labels = parse_metric_key(key)
        hist = Histogram.from_jsonable(payload)

        def sample(suffix: str, extra: dict[str, str] | None = None) -> str:
            merged = {**labels, **(extra or {})}
            if not merged:
                return f"{name}{suffix}"
            inner = ",".join(f'{k}="{merged[k]}"' for k in sorted(merged))
            return f"{name}{suffix}{{{inner}}}"

        cumulative = 0
        for idx in sorted(hist.counts):
            cumulative += hist.counts[idx]
            le = _fmt_value(hist.bucket_upper(idx))
            lines.append(f"{sample('_bucket', {'le': le})} {cumulative}")
        lines.append(f"{sample('_bucket', {'le': '+Inf'})} {hist.count}")
        lines.append(f"{sample('_sum')} {_fmt_value(hist.sum)}")
        lines.append(f"{sample('_count')} {hist.count}")
    return "\n".join(lines) + "\n"


def series_to_jsonl(series: Iterable[dict]) -> str:
    """One canonical JSON object per line (sampler points or snapshots)."""
    return "".join(
        json.dumps(point, sort_keys=True, separators=(",", ":")) + "\n"
        for point in series
    )


#: One Prometheus sample line: key, optional labels, a number.
_PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
    r"(\{[^{}]*\})?"                       # optional label set
    r" ((?:[-+]?[0-9.eE+-]+)|NaN|\+Inf|-Inf)$"  # value
)


def validate_prometheus_text(text: str) -> list[str]:
    """Schema-check Prometheus text output; returns a list of problems."""
    problems: list[str] = []
    hist_parts: dict[str, set[str]] = {}
    declared: dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                problems.append(f"line {lineno}: malformed TYPE line {line!r}")
            else:
                declared[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        if not _PROM_LINE.match(line):
            problems.append(f"line {lineno}: not a valid sample line {line!r}")
            continue
        name = re.split(r"[{ ]", line, maxsplit=1)[0]
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)]
            if name.endswith(suffix) and declared.get(base) == "histogram":
                hist_parts.setdefault(base, set()).add(suffix)
                if suffix == "_bucket" and 'le="+Inf"' in line:
                    hist_parts[base].add("+Inf")
    for name, kind in declared.items():
        if kind != "histogram":
            continue
        parts = hist_parts.get(name, set())
        for required in ("_bucket", "_sum", "_count", "+Inf"):
            if required not in parts:
                problems.append(
                    f"histogram {name!r} missing {required} samples"
                )
    return problems


def validate_jsonl(text: str) -> list[str]:
    """Schema-check a JSONL metrics series; returns a list of problems."""
    problems: list[str] = []
    last_t: float | None = None
    count = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        count += 1
        try:
            point = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: not valid JSON: {exc}")
            continue
        problems += [f"line {lineno}: {p}" for p in validate_snapshot(point)]
        t = point.get("t") if isinstance(point, dict) else None
        if not isinstance(t, (int, float)):
            problems.append(f"line {lineno}: missing numeric timestamp 't'")
        else:
            if last_t is not None and t < last_t:
                problems.append(
                    f"line {lineno}: timestamp went backwards ({t} < {last_t})"
                )
            last_t = t
    if count == 0:
        problems.append("empty series: no JSONL points")
    return problems
