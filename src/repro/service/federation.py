"""Merging per-shard histories into one checkable federated history.

Each shard of a federation is a complete, independently correct queue
over its priority band, and its settled history carries its own
serialization witness (the per-op ``order_key``).  The federation claims
more: the *union* of the shard histories is the history of one logical
queue.  This module makes that claim checkable by the unmodified
``repro.semantics`` stack:

1. **Namespacing** — shard-local op ids ``(node, seq)`` and element uids
   collide across shards (every shard numbers its own nodes from 0), so
   both are lifted into disjoint per-shard namespaces.  The router applies
   the *same* mapping to the frames it returns to clients, so the
   client-vs-server cross-check still matches record for record.

2. **Witness construction** — the checkers verify a *candidate*
   serialization.  For the merged history the candidate is built here: an
   interleaving of the per-shard serializations (each kept intact as a
   subsequence, which preserves every per-shard guarantee, including
   per-node program order) such that the global heap semantics hold:

   * a matched DeleteMin at band rank ``r`` is placed only where every
     better band is empty — bands partition the priority space, so the
     shard-local minimum is then the global minimum;
   * a ⊥ DeleteMin is placed only where *every* band is empty.

   Such an interleaving always exists when every shard history is
   self-consistent, and a deterministic two-phase schedule constructs it
   in linear time (see :func:`_schedule_witness`): first each shard's
   prefix up to its last ⊥ (every other shard parks at an empty point, so
   the all-empty precondition holds at each ⊥), then the ⊥-free suffixes
   from the worst band to the best (better bands are still parked empty,
   so every matched delete's precondition holds).  The preconditions are
   re-verified during emission: a shard history too inconsistent to
   schedule fails the merge *loudly* with :class:`ConsistencyError`, and
   a federation that scheduled but misbehaved fails the downstream
   checkers — either way a loadtest cannot silently certify a bad run.

The output is a payload shaped like one shard's ``history`` frame, so
:func:`repro.service.loadgen.verify_observed_history` consumes a
federated history without knowing federations exist.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConsistencyError
from ..semantics.history import DELETE, INSERT
from .partition import PartitionMap

__all__ = [
    "NODE_NAMESPACE",
    "UID_NAMESPACE",
    "namespace_node",
    "namespace_uid",
    "merge_shard_histories",
]

#: Per-shard node-id namespace stride: merged op id = (sid·stride + node, seq).
NODE_NAMESPACE = 1 << 16

#: Per-shard uid namespace stride (shard uids are ``(owner << 32) | seq``).
UID_NAMESPACE = 1 << 48


def namespace_node(shard_id: int, node: int) -> int:
    """Lift a shard-local node id into the shard's disjoint namespace."""
    if not 0 <= node < NODE_NAMESPACE:
        raise ConsistencyError(f"node id {node} outside namespace stride")
    return shard_id * NODE_NAMESPACE + node


def namespace_uid(shard_id: int, uid: int) -> int:
    """Lift a shard-local element uid into the shard's disjoint namespace."""
    if not 0 <= uid < UID_NAMESPACE:
        raise ConsistencyError(f"uid {uid} outside namespace stride")
    return shard_id * UID_NAMESPACE + uid


@dataclass(slots=True)
class _SeqOp:
    """One shard op in shard-serialization order, fields already namespaced."""

    entry: dict  # the (remapped) jsonable record, sans order key
    kind: str
    bot: bool
    matched: bool  # a DeleteMin that returned an element


def _remap_entry(shard_id: int, entry: dict) -> dict:
    node, seq = entry["op"]
    out = dict(entry)
    out["op"] = [namespace_node(shard_id, node), seq]
    if entry.get("uid") is not None:
        out["uid"] = namespace_uid(shard_id, entry["uid"])
    if entry.get("ret") is not None:
        out["ret"] = namespace_uid(shard_id, entry["ret"])
    return out


def _shard_sequence(shard_id: int, payload: dict) -> list[_SeqOp]:
    """The shard's ops in its own serialization order, namespaced."""
    ops = payload["history"]["ops"]
    for entry in ops:
        if not entry["done"] or entry["order"] is None:
            raise ConsistencyError(
                f"shard {shard_id}: op {entry['op']} not settled; the merged "
                "history must be fetched at a drained point"
            )
    out = []
    for entry in sorted(ops, key=lambda e: tuple(e["order"])):
        remapped = _remap_entry(shard_id, entry)
        remapped["order"] = None  # the witness assigns merged order keys
        out.append(
            _SeqOp(
                entry=remapped,
                kind=entry["kind"],
                bot=bool(entry["bot"]),
                matched=entry["kind"] == DELETE and entry["ret"] is not None,
            )
        )
    return out


def _schedule_witness(sequences: list[list[_SeqOp]]) -> list[tuple[int, _SeqOp]]:
    """Interleave per-rank sequences into a heap-legal serialization.

    ``sequences`` is indexed by band rank (rank 0 = best priorities).
    Returns the witness as ``(rank, op)`` pairs.

    The schedule is deterministic and linear-time, built in two phases:

    1. For each rank in order, emit the shard's prefix up to (and
       including) its **last ⊥ delete**.  Within a self-consistent shard
       history the shard's own census is 0 at every ⊥, and every *other*
       shard is parked at a census-0 position (its start, or its own
       last-⊥ point) — so the all-empty precondition holds at each ⊥, and
       the better-bands-empty precondition holds at each matched delete
       (better ranks haven't moved past their own empty points).

    2. The remaining suffixes contain no ⊥; emit them whole, worst rank
       first.  A matched delete at rank ``r`` needs ranks ``< r`` empty —
       and those shards are still parked at their census-0 phase-1 points
       because worse ranks drain first.

    The preconditions are checked as the witness is emitted; a violation
    means some shard's *own* history was not heap-legal (so no merged
    witness can exist) and raises :class:`ConsistencyError`.
    """
    n = len(sequences)
    # counts[r] = shard r's census after its emitted prefix.
    counts = [0] * n
    witness: list[tuple[int, _SeqOp]] = []

    def emit(rank: int, op: _SeqOp) -> None:
        if op.kind == INSERT:
            counts[rank] += 1
        elif op.matched:
            if any(counts[r] != 0 for r in range(rank)):
                raise ConsistencyError(
                    f"no heap-legal serialization: shard at band rank {rank} "
                    f"deleted op {op.entry['op']} while a better band was "
                    "non-empty at every schedulable point"
                )
            counts[rank] -= 1
            if counts[rank] < 0:
                raise ConsistencyError(
                    f"band rank {rank}: more deletes than inserts at op "
                    f"{op.entry['op']} — shard history is not self-consistent"
                )
        else:  # ⊥ delete: the whole federation must be empty here
            if any(counts[r] != 0 for r in range(n)):
                raise ConsistencyError(
                    f"no heap-legal serialization: shard at band rank {rank} "
                    f"saw ⊥ at op {op.entry['op']} while the federation was "
                    "non-empty at every schedulable point"
                )
        witness.append((rank, op))

    last_bot = [
        max((k for k, op in enumerate(seq) if op.kind == DELETE and op.bot), default=-1)
        for seq in sequences
    ]
    for rank, seq in enumerate(sequences):  # phase 1: align the ⊥ prefixes
        for k in range(last_bot[rank] + 1):
            emit(rank, seq[k])
    for rank in range(n - 1, -1, -1):  # phase 2: ⊥-free suffixes, worst first
        seq = sequences[rank]
        for k in range(last_bot[rank] + 1, len(seq)):
            emit(rank, seq[k])
    return witness


def merge_shard_histories(payloads: dict[int, dict], pmap: PartitionMap) -> dict:
    """Merge per-shard ``history`` frames into one federated payload.

    ``payloads`` maps shard id → the shard's history frame (as served by
    :class:`~repro.service.server.QueueService` at a drained point).
    Shards present in ``pmap`` but absent from ``payloads`` (e.g. dead
    ones with nothing fetchable) contribute nothing.  The result carries
    merged, namespaced ops with a freshly constructed serialization
    witness, plus the merged element census.
    """
    if not payloads:
        raise ConsistencyError("no shard histories to merge")
    protos = {p["proto"] for p in payloads.values()}
    orders = {p.get("order", "min") for p in payloads.values()}
    disciplines = {p.get("discipline", "fifo") for p in payloads.values()}
    if len(protos) != 1 or len(orders) != 1 or len(disciplines) != 1:
        raise ConsistencyError(
            f"heterogeneous shards cannot merge: protos={protos}, "
            f"orders={orders}, disciplines={disciplines}"
        )
    order = orders.pop()
    if order != "min":
        raise ConsistencyError("federated merge supports order='min' only")

    ranked: list[tuple[int, int]] = sorted(
        ((pmap.rank_of(sid), sid) for sid in payloads),
        key=lambda pair: pair[0],
    )
    sequences = [_shard_sequence(sid, payloads[sid]) for _, sid in ranked]
    witness = _schedule_witness(sequences)

    merged_ops = []
    for position, (_, op) in enumerate(witness):
        entry = dict(op.entry)
        entry["order"] = [position]
        merged_ops.append(entry)
    stored: list[int] = []
    for _, sid in ranked:
        stored.extend(
            namespace_uid(sid, uid) for uid in payloads[sid]["stored_uids"]
        )
    return {
        "history": {"ops": merged_ops},
        "stored_uids": sorted(stored),
        "proto": protos.pop(),
        "order": order,
        "discipline": disciplines.pop(),
        "epoch": pmap.epoch,
        "shards": [sid for _, sid in ranked],
    }
