"""The federation front-end: one logical queue over N shard processes.

:class:`QueueRouter` listens on its own TCP socket and speaks *exactly*
the :class:`~repro.service.server.QueueService` wire protocol, so every
existing client — :class:`~repro.service.client.QueueClient`, the load
generator, ``loadtest --connect`` — works against a federation without
knowing it is one.  Behind the socket it holds one upstream
:class:`QueueClient` per shard and routes:

* **insert** — by the partition map: the priority's band names the shard;
* **deletemin** — to the best-band live shard believed non-empty, else a
  ⊥ probe at the best live band;
* **history / kselect / census** — barrier fan-outs: the router gates new
  operations, drains its in-flight ones, then reads every shard at its
  own drained point and merges (histories through the witness search in
  :mod:`repro.service.federation`, kselect by a census walk down the
  bands).

Routing correctness leans on one structural fact: all of a shard's
operations flow through a *single* upstream connection, and the router
posts frames synchronously at decision time (``request_nowait``), so
per-shard submission order equals decision order.  For Skeap that makes
the router's element counts exact at every decision point; Seap may
reorder same-session ops across epochs (surprise ⊥ / surprise match),
which the counts absorb by self-correcting — and the post-hoc witness
search certifies whatever interleaving actually happened.

Rebalancing (:meth:`QueueRouter.rebalance`) installs a higher-epoch map:
gate → drain in-flight → census the shards whose band shrank or vanished
→ pop exactly that many elements in heap order → re-insert each at its
new home (FIFO-within-priority preserved, because a priority class moves
wholly and in pop order) → refresh counts from censuses → reopen.  A
shard that dies (connection lost, process killed) is marked dead: its
keys get clean, retryable ``unavailable`` responses while every other
band keeps serving.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field
from typing import Any

from ..errors import ServiceError, UnavailableError, WireError
from ..sim.rng import derive_seed
from .admission import ShardedAdmission
from .client import QueueClient
from .federation import merge_shard_histories, namespace_node, namespace_uid
from .partition import PartitionMap
from .server import RESPONSE_MAX_FRAME
from .telemetry import (
    MetricsRegistry,
    NullRegistry,
    TelemetrySampler,
    merge_snapshots,
)
from .wire import DEFAULT_MAX_FRAME, WireStats, read_frame, write_frame

__all__ = ["QueueRouter", "TOPOLOGIES", "default_band_range"]

#: Service topologies the harness can front (the ``targets`` registry's
#: source of truth): one process, or a router over shard processes.
TOPOLOGIES = ("single", "federation")


def default_band_range(proto: str, n_priorities: int = 3) -> tuple[int, int]:
    """The priority interval a federation cuts into bands by default.

    Skeap's priorities are exactly ``{1..n_priorities}``; Seap's are
    arbitrary integers, so the default matches the loadtest's default
    uniform mix.  Only the *cut points* come from this range — the outer
    bands are unbounded, so any integer still routes somewhere.
    """
    if proto == "skeap":
        return 1, n_priorities + 1
    return 0, 1_000_000


@dataclass
class _RouterSession:
    """One downstream client connection."""

    session_id: int
    name: str
    writer: asyncio.StreamWriter
    send_lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    closed: bool = False


@dataclass
class _Upstream:
    """The router's view of one shard."""

    shard_id: int
    host: str
    port: int
    client: QueueClient | None = None


class QueueRouter:
    """Route one logical queue's traffic across federation shards."""

    def __init__(
        self,
        endpoints: dict[int, tuple[str, int]],
        pmap: PartitionMap,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        window_per_shard: int = 64,
        base_retry_after: float = 0.02,
        seed: int = 0,
        timeout: float = 30.0,
        max_frame: int = DEFAULT_MAX_FRAME,
        telemetry: bool = True,
        metrics_interval: float = 1.0,
        metrics_capacity: int = 512,
        controller=None,
    ):
        missing = set(pmap.shard_ids) - set(endpoints)
        if missing:
            raise ServiceError(f"no endpoint for shards {sorted(missing)}")
        self.pmap = pmap
        self.host = host
        self.port = port  # rewritten with the bound port after start()
        self.seed = int(seed)
        self.timeout = float(timeout)
        self.max_frame = int(max_frame)
        self.admission = ShardedAdmission(
            pmap.shard_ids,
            window_per_shard=window_per_shard,
            base_retry_after=base_retry_after,
        )
        self._upstreams: dict[int, _Upstream] = {
            sid: _Upstream(sid, *endpoints[sid]) for sid in pmap.shard_ids
        }
        self._dead: set[int] = set()
        #: decision-time net element count per shard (exact for Skeap,
        #: self-correcting for Seap; reset from censuses at every barrier)
        self._counts: dict[int, int] = {sid: 0 for sid in pmap.shard_ids}
        self._sessions: dict[int, _RouterSession] = {}
        self._session_ids = itertools.count()
        #: strong refs to per-request tasks (asyncio only keeps weak ones)
        self._request_tasks: set[asyncio.Task] = set()
        self._server: asyncio.base_events.Server | None = None
        self._started_at = 0.0
        #: op gate: barriers/rebalance close it, drain, reopen
        self._gate_open = asyncio.Event()
        self._gate_open.set()
        self._idle = asyncio.Event()
        self._idle.set()
        self._active = 0
        self._barrier_lock = asyncio.Lock()
        #: upstream facts learned from the hello exchange
        self.proto = ""
        self.n_nodes = 0
        #: observability counters
        self.ops_completed = 0
        self.ops_failed = 0
        self.ops_unavailable = 0
        self.rebalances = 0
        self.revives = 0
        #: the telemetry plane: registry + downstream wire tallies + sampler
        self.controller = controller
        self.metrics = MetricsRegistry() if telemetry else NullRegistry()
        self.wire_stats = WireStats()
        self.sampler: TelemetrySampler | None = (
            TelemetrySampler(
                self.metrics, interval=metrics_interval, capacity=metrics_capacity
            )
            if telemetry and metrics_interval > 0
            else None
        )
        self._sampler_task: asyncio.Task | None = None
        self._watches: dict[tuple[int, Any], asyncio.Task] = {}
        self._init_instruments()

    def _init_instruments(self) -> None:
        """Pre-fetch hot-path metric objects; register the scrape hook."""
        reg = self.metrics
        self._m_lat = {
            "insert": reg.histogram("router_op_latency_seconds", kind="insert"),
            "deletemin": reg.histogram("router_op_latency_seconds", kind="deletemin"),
        }
        self._m_ok = {
            kind: reg.counter("router_ops_total", kind=kind, outcome="ok")
            for kind in ("insert", "deletemin")
        }
        self._m_err = {
            kind: reg.counter("router_ops_total", kind=kind, outcome="error")
            for kind in ("insert", "deletemin")
        }
        self._m_unavailable = reg.counter("router_unavailable_total")
        self._m_shard_deaths = reg.counter("router_shard_deaths_total")
        self._m_upstream_sheds = reg.counter("router_upstream_sheds_total")
        self._m_barrier_wait = reg.histogram("router_barrier_wait_seconds")
        self._m_rebalances = reg.counter("router_rebalances_total")
        self._m_rebalance_moved = reg.counter("router_rebalance_moved_total")
        self._m_revives = reg.counter("router_shard_revives_total")
        self._m_scrapes = reg.counter("router_metrics_scrapes_total")
        #: per-shard upstream round-trip histograms, created on demand
        #: (the shard roster changes at rebalance)
        self._m_upstream: dict[int, Any] = {}
        reg.add_hook(self._refresh_gauges)

    def _upstream_hist(self, sid: int):
        hist = self._m_upstream.get(sid)
        if hist is None:
            hist = self._m_upstream[sid] = self.metrics.histogram(
                "router_upstream_latency_seconds", shard=sid
            )
        return hist

    def _refresh_gauges(self) -> None:
        reg = self.metrics
        reg.gauge("router_active_ops").set(self._active)
        reg.gauge("router_sessions").set(len(self._sessions))
        reg.gauge("router_shards_live").set(
            len(self.pmap.shard_ids) - len(self._dead)
        )
        reg.gauge("router_shards_dead").set(len(self._dead))
        reg.gauge("router_epoch").set(self.pmap.epoch)
        reg.gauge("router_uptime_seconds").set(
            time.monotonic() - self._started_at if self._started_at else 0.0
        )
        for sid, count in self._counts.items():
            reg.gauge("router_count_estimate", shard=sid).set(count)
        # Prefixed ``router_`` so federated merges never sum the router's
        # front-door admission ledger into the shards' ``admission_*`` books.
        snap = self.admission.snapshot()
        reg.gauge("router_admission_window").set(snap["window"])
        reg.gauge("router_admission_in_flight").set(snap["in_flight"])
        reg.counter("router_admission_shed_total").value = snap["shed"]
        reg.counter("router_admission_admitted_total").value = snap["admitted"]
        ws = self.wire_stats
        reg.counter("router_frames_in_total").value = ws.frames_in
        reg.counter("router_bytes_in_total").value = ws.bytes_in
        reg.counter("router_frames_out_total").value = ws.frames_out
        reg.counter("router_bytes_out_total").value = ws.bytes_out
        reg.counter("router_framing_errors_total").value = ws.framing_errors
        reg.counter("router_oversize_errors_total").value = ws.oversize_errors
        if self.controller is not None:
            for name, value in self.controller.telemetry().items():
                if name.endswith("_total"):
                    reg.counter(f"controller_{name}").value = value
                else:
                    reg.gauge(f"controller_{name}").set(value)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            raise ServiceError("router already started")
        for upstream in self._upstreams.values():
            await self._connect_upstream(upstream)
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        if self.sampler is not None:
            self._sampler_task = asyncio.create_task(
                self.sampler.run(), name="router-telemetry-sampler"
            )

    async def _connect_upstream(self, upstream: _Upstream) -> None:
        client = await QueueClient.connect(
            upstream.host,
            upstream.port,
            client=f"router-shard-{upstream.shard_id}",
            timeout=self.timeout,
            retry_jitter_seed=derive_seed(self.seed, "router", upstream.shard_id),
        )
        if self.proto and client.proto != self.proto:
            await client.aclose()
            raise ServiceError(
                f"shard {upstream.shard_id} runs {client.proto!r}, "
                f"federation runs {self.proto!r}"
            )
        self.proto = self.proto or client.proto
        self.n_nodes += client.n_nodes
        upstream.client = client

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        for task in list(self._watches.values()):
            task.cancel()
        self._watches.clear()
        if self._sampler_task is not None:
            self._sampler_task.cancel()
            try:
                await self._sampler_task
            except asyncio.CancelledError:
                pass
            self._sampler_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._request_tasks):
            task.cancel()
        if self._request_tasks:
            await asyncio.gather(*self._request_tasks, return_exceptions=True)
        for upstream in self._upstreams.values():
            if upstream.client is not None:
                try:
                    await upstream.client.aclose()
                except Exception:  # noqa: BLE001 - shard may already be dead
                    pass
                upstream.client = None
        for session in list(self._sessions.values()):
            session.writer.close()

    async def __aenter__(self) -> "QueueRouter":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    # -- shard roster ------------------------------------------------------

    @property
    def dead_shards(self) -> tuple[int, ...]:
        return tuple(sorted(self._dead))

    def _live_upstream(self, shard_id: int) -> QueueClient:
        if shard_id in self._dead:
            raise UnavailableError(f"shard {shard_id} is down")
        upstream = self._upstreams.get(shard_id)
        if upstream is None or upstream.client is None:
            raise UnavailableError(f"shard {shard_id} is not connected")
        return upstream.client

    def _mark_dead(self, shard_id: int) -> None:
        if shard_id not in self._dead:
            self._dead.add(shard_id)
            self.ops_unavailable += 1
            self._m_shard_deaths.inc()

    def _live_bands(self):
        return [b for b in self.pmap.bands if b.shard_id not in self._dead]

    # -- the op path -------------------------------------------------------

    async def _guarded(self, op_coro) -> Any:
        """Run one routed op inside the gate/drain accounting.

        No await separates the gate check from the active increment, so a
        barrier that closes the gate and then waits for idle observes
        every op that got through.
        """
        await self._gate_open.wait()
        self._active += 1
        self._idle.clear()
        try:
            return await op_coro()
        finally:
            self._active -= 1
            if self._active == 0:
                self._idle.set()

    def _post(self, sid: int, request: dict) -> asyncio.Future:
        """Put one frame on a shard's wire *now* (no await — see below)."""
        client = self._live_upstream(sid)
        try:
            return client.request_nowait(request)
        except UnavailableError:
            self._mark_dead(sid)
            raise

    def _route_delete(self) -> tuple[int, bool]:
        """Pick the deletemin target: best non-empty band, else a ⊥ probe."""
        live = self._live_bands()
        if not live:
            raise UnavailableError("no live shards")
        for band in live:
            if self._counts.get(band.shard_id, 0) > 0:
                return band.shard_id, True
        return live[0].shard_id, False

    async def _op_insert(self, session: _RouterSession, rid, request: dict) -> dict:
        priority = request.get("priority")
        if not isinstance(priority, int) or isinstance(priority, bool):
            return _error(rid, "insert needs an integer 'priority'")
        value = request.get("value")
        started = time.monotonic()
        sid = self.pmap.shard_for(priority)
        decision = self.admission.try_admit(session.session_id, sid)
        if not decision.admitted:
            return {
                "rid": rid,
                "status": "retry_after",
                "retry_after": decision.retry_after,
                "reason": decision.reason,
            }
        try:
            while True:
                # Routing decision, wire write and count update run with no
                # await between them, so per-shard submission order equals
                # decision order and the counts stay decision-exact.
                future = self._post(
                    sid, {"op": "insert", "priority": priority, "value": value}
                )
                self._counts[sid] += 1
                try:
                    response = await self._await_upstream(sid, future)
                except UnavailableError:
                    self._counts[sid] -= 1  # reported unavailable, not stored
                    raise
                if response.get("status") == "retry_after":
                    self._counts[sid] -= 1  # the shard shed it; nothing landed
                    self._m_upstream_sheds.inc()
                    await asyncio.sleep(float(response.get("retry_after", 0.02)))
                    continue
                if response.get("status") != "ok":
                    self._counts[sid] -= 1
                    self.ops_failed += 1
                    self._m_err["insert"].inc()
                    return _error(rid, response.get("error", "shard error"))
                break
        except UnavailableError as exc:
            return self._unavailable(rid, sid, exc)
        finally:
            self.admission.release(session.session_id, sid)
        self.ops_completed += 1
        self._m_ok["insert"].inc()
        self._m_lat["insert"].observe(time.monotonic() - started)
        node, seq = response["op"]
        return {
            "rid": rid,
            "status": "ok",
            "op": [namespace_node(sid, node), seq],
            "latency": time.monotonic() - started,
            "kind": "insert",
            "uid": namespace_uid(sid, response["uid"]),
            "stored": True,
            "shard": sid,
        }

    async def _op_delete(self, session: _RouterSession, rid, request: dict) -> dict:
        started = time.monotonic()
        sid = None
        try:
            while True:
                # Route, admit, post and update counts with no await in
                # between: admission must precede the post (a posted delete
                # executes at the shard — shedding its response afterwards
                # would lose a matched element), and the atomic post keeps
                # per-shard wire order equal to decision order.
                sid, predicted = self._route_delete()
                decision = self.admission.try_admit(session.session_id, sid)
                if not decision.admitted:
                    await asyncio.sleep(decision.retry_after)
                    continue
                try:
                    future = self._post(sid, {"op": "deletemin"})
                    if predicted:
                        self._counts[sid] -= 1
                    try:
                        response = await self._await_upstream(sid, future)
                    except UnavailableError:
                        if predicted:
                            self._counts[sid] += 1  # outcome unknown; keep estimate
                        raise
                finally:
                    self.admission.release(session.session_id, sid)
                if response.get("status") == "retry_after":
                    if predicted:
                        self._counts[sid] += 1  # nothing ran; restore
                    self._m_upstream_sheds.inc()
                    await asyncio.sleep(float(response.get("retry_after", 0.02)))
                    continue
                if response.get("status") != "ok":
                    if predicted:
                        self._counts[sid] += 1
                    self.ops_failed += 1
                    self._m_err["deletemin"].inc()
                    return _error(rid, response.get("error", "shard error"))
                self._settle_delete_counts(sid, predicted, response)
                break
        except UnavailableError as exc:
            return self._unavailable(rid, sid, exc)
        self.ops_completed += 1
        self._m_ok["deletemin"].inc()
        self._m_lat["deletemin"].observe(time.monotonic() - started)
        node, seq = response["op"]
        frame: dict[str, Any] = {
            "rid": rid,
            "status": "ok",
            "op": [namespace_node(sid, node), seq],
            "latency": time.monotonic() - started,
            "kind": "deletemin",
            "bot": bool(response.get("bot")),
            "shard": sid,
        }
        if not frame["bot"]:
            frame["uid"] = namespace_uid(sid, response["uid"])
            frame["priority"] = response["priority"]
            frame["value"] = response.get("value")
        return frame

    def _settle_delete_counts(self, sid: int, predicted: bool, response: dict) -> None:
        """Reconcile the optimistic count update with what really happened."""
        if response.get("status") != "ok":
            if predicted:
                self._counts[sid] += 1
            return
        got_bot = bool(response.get("bot"))
        if predicted and got_bot:
            self._counts[sid] += 1  # surprise ⊥ (Seap reordering)
        elif not predicted and not got_bot:
            self._counts[sid] -= 1  # surprise match on a ⊥ probe

    async def _await_upstream(self, sid: int, future: asyncio.Future) -> dict:
        started = time.monotonic()
        try:
            response = await asyncio.wait_for(future, self.timeout)
        except (ConnectionError, ServiceError, WireError, asyncio.TimeoutError) as exc:
            self._mark_dead(sid)
            raise UnavailableError(f"shard {sid} lost mid-operation: {exc}") from exc
        self._upstream_hist(sid).observe(time.monotonic() - started)
        return response

    def _unavailable(self, rid, sid, exc: Exception) -> dict:
        self.ops_unavailable += 1
        self._m_unavailable.inc()
        return {
            "rid": rid,
            "status": "unavailable",
            "error": str(exc),
            "shard": sid,
            "retryable": True,
        }

    # -- barrier fan-outs --------------------------------------------------

    async def _with_barrier(self, fn):
        """Close the gate, drain in-flight ops, run ``fn``, reopen."""
        async with self._barrier_lock:
            self._gate_open.clear()
            gated_at = time.monotonic()
            try:
                await self._idle.wait()
                self._m_barrier_wait.observe(time.monotonic() - gated_at)
                return await fn()
            finally:
                self._gate_open.set()

    async def _shard_barrier_call(self, call):
        """Run a per-shard coroutine, translating loss into UnavailableError."""
        try:
            return await call()
        except (ConnectionError, ServiceError, WireError, asyncio.TimeoutError) as exc:
            raise UnavailableError(str(exc)) from exc

    async def _merged_history(self, rid) -> dict:
        payloads: dict[int, dict] = {}
        for band in self._live_bands():
            sid = band.shard_id
            client = self._live_upstream(sid)
            try:
                payloads[sid] = await self._shard_barrier_call(client.history)
            except UnavailableError:
                self._mark_dead(sid)
                continue
            self._counts[sid] = len(payloads[sid]["stored_uids"])
        merged = merge_shard_histories(payloads, self.pmap)
        return {
            "rid": rid,
            "status": "ok",
            "history": merged["history"],
            "stored_uids": merged["stored_uids"],
            "proto": merged["proto"],
            "order": merged["order"],
            "discipline": merged["discipline"],
            "federation": {
                "epoch": self.pmap.epoch,
                "shards": merged["shards"],
                "dead": sorted(self._dead),
            },
        }

    async def _merged_kselect(self, rid, request: dict) -> dict:
        k = request.get("k")
        if not isinstance(k, int) or isinstance(k, bool):
            return _error(rid, "kselect needs an integer 'k'")
        censuses: list[tuple[int, int]] = []  # (shard, stored) in band order
        for band in self._live_bands():
            sid = band.shard_id
            client = self._live_upstream(sid)
            censuses.append((sid, await self._shard_barrier_call(client.census)))
            self._counts[sid] = censuses[-1][1]
        total = sum(stored for _, stored in censuses)
        if not 1 <= k <= total or total == 0:
            return _error(rid, f"k={k} out of range [1, {total}]")
        residual = k
        for sid, stored in censuses:
            if residual <= stored:
                client = self._live_upstream(sid)
                result = await self._shard_barrier_call(
                    lambda c=client, r=residual: c.kselect(r)
                )
                return {
                    "rid": rid,
                    "status": "ok",
                    "k": k,
                    "m": total,
                    "priority": result.priority,
                    "uid": namespace_uid(sid, result.uid),
                    "shard": sid,
                }
            residual -= stored
        return _error(rid, "census drifted during kselect")  # unreachable

    async def _merged_census(self, rid) -> dict:
        total = 0
        per_shard = {}
        for band in self._live_bands():
            sid = band.shard_id
            client = self._live_upstream(sid)
            stored = await self._shard_barrier_call(client.census)
            self._counts[sid] = stored
            per_shard[str(sid)] = stored
            total += stored
        return {"rid": rid, "status": "ok", "stored": total, "per_shard": per_shard}

    # -- rebalance ---------------------------------------------------------

    async def rebalance(
        self,
        new_map: PartitionMap,
        *,
        new_endpoints: dict[int, tuple[str, int]] | None = None,
    ) -> dict:
        """Install a higher-epoch partition map, re-homing elements.

        At the barrier (gate closed, in-flight drained) every shard whose
        band shrank or disappeared is censused (exact count — no ⊥ is
        ever recorded), popped exactly that many times in heap order, and
        the popped elements are re-inserted at their new homes in pop
        order, which preserves FIFO within each priority class (a class
        moves wholly, through one drain).  Retired shards' upstream
        connections are closed; added shards must appear in
        ``new_endpoints``.  Returns a summary dict.
        """
        if new_map.epoch <= self.pmap.epoch:
            raise ServiceError(
                f"rebalance must raise the epoch: {new_map.epoch} <= {self.pmap.epoch}"
            )
        added = set(new_map.shard_ids) - set(self.pmap.shard_ids)
        retired = set(self.pmap.shard_ids) - set(new_map.shard_ids)
        endpoints = dict(new_endpoints or {})
        if missing := added - set(endpoints):
            raise ServiceError(f"no endpoint for new shards {sorted(missing)}")

        async def run() -> dict:
            for sid in sorted(added):
                upstream = _Upstream(sid, *endpoints[sid])
                await self._connect_upstream(upstream)
                self._upstreams[sid] = upstream
                self._counts[sid] = 0
                self.admission.add_shard(sid)

            draining = [
                band.shard_id
                for band in self.pmap.bands
                if band.shard_id in retired
                or not _covers(new_map.band_of(band.shard_id), band)
            ]
            if dead := [sid for sid in draining if sid in self._dead]:
                raise UnavailableError(
                    f"cannot rebalance: shards {dead} are down and hold "
                    "elements that would need re-homing"
                )
            moved: list[tuple[int, Any]] = []
            for sid in draining:
                client = self._live_upstream(sid)
                stored = await self._shard_barrier_call(client.census)
                for _ in range(stored):
                    result = await self._shard_barrier_call(client.delete_min)
                    if result.bot:
                        raise ServiceError(
                            f"shard {sid}: ⊥ inside its censused {stored} elements"
                        )
                    moved.append((result.priority, result.value))
            for priority, value in moved:
                home = new_map.shard_for(priority)
                client = self._live_upstream(home)
                await self._shard_barrier_call(
                    lambda c=client, p=priority, v=value: c.insert(p, value=v)
                )

            for sid in sorted(retired):
                upstream = self._upstreams.pop(sid, None)
                if upstream is not None and upstream.client is not None:
                    self.n_nodes -= upstream.client.n_nodes
                    await upstream.client.aclose()
                self.admission.remove_shard(sid)
                self._counts.pop(sid, None)
                self._dead.discard(sid)

            self.pmap = new_map
            for band in self._live_bands():
                sid = band.shard_id
                client = self._live_upstream(sid)
                self._counts[sid] = await self._shard_barrier_call(client.census)
            self.rebalances += 1
            self._m_rebalances.inc()
            self._m_rebalance_moved.inc(len(moved))
            return {
                "epoch": new_map.epoch,
                "moved": len(moved),
                "drained": draining,
                "added": sorted(added),
                "retired": sorted(retired),
            }

        return await self._with_barrier(run)

    # -- revive (crash recovery) -------------------------------------------

    async def revive(
        self, shard_id: int, *, endpoint: tuple[str, int] | None = None
    ) -> dict:
        """Fold a restarted shard back into routing at a barrier.

        While a shard is dead its band answers retryable ``unavailable``;
        after the controller restarts it (from its journal, ideally) this
        reconnects the upstream, clears the dead mark, and — crucially —
        seeds the router's optimistic element count from the *recovered
        census*, not zero: a revived journaling shard comes back holding
        its band's elements, and assuming an empty shard would misroute
        every deletemin probe until the next barrier corrected it.
        """
        if shard_id not in self._upstreams:
            raise ServiceError(f"unknown shard {shard_id}")

        async def run() -> dict:
            upstream = self._upstreams[shard_id]
            if upstream.client is not None:
                # The stale connection's node count was folded into
                # n_nodes at connect time; take it back out before the
                # fresh hello re-adds the replacement's.
                self.n_nodes -= upstream.client.n_nodes
                try:
                    await upstream.client.aclose()
                except Exception:  # noqa: BLE001 - the old socket is dead
                    pass
                upstream.client = None
            if endpoint is not None:
                upstream.host, upstream.port = endpoint
            await self._connect_upstream(upstream)
            self._dead.discard(shard_id)
            census = await self._shard_barrier_call(upstream.client.census)
            self._counts[shard_id] = census
            self.revives += 1
            self._m_revives.inc()
            return {
                "shard": shard_id,
                "census": census,
                "endpoint": [upstream.host, upstream.port],
            }

        return await self._with_barrier(run)

    # -- connections (downstream) ------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session = _RouterSession(
            session_id=next(self._session_ids), name="", writer=writer
        )
        self.admission.register(session.session_id)
        self._sessions[session.session_id] = session
        try:
            while True:
                try:
                    request = await read_frame(
                        reader, max_frame=self.max_frame, stats=self.wire_stats
                    )
                except WireError as exc:
                    await self._send_safe(session, _error(None, str(exc)))
                    break
                if request is None:
                    break
                if not await self._dispatch(session, request):
                    break
        finally:
            session.closed = True
            self.admission.unregister(session.session_id)
            self._sessions.pop(session.session_id, None)
            for key in [k for k in self._watches if k[0] == session.session_id]:
                self._watches.pop(key).cancel()
            writer.close()

    async def _dispatch(self, session: _RouterSession, request: dict) -> bool:
        op = request.get("op")
        rid = request.get("rid")
        if op == "hello":
            session.name = str(request.get("client", ""))
            await self._send_safe(
                session,
                {
                    "rid": rid,
                    "status": "ok",
                    "proto": self.proto,
                    "n_nodes": self.n_nodes,
                    "session": session.session_id,
                    "node": -1,  # routed: no single home node
                    "window": self.admission.window,
                    "federation": self._federation_info(),
                },
            )
            return True
        if op == "ping":
            await self._send_safe(session, {"rid": rid, "status": "ok", "pong": True})
            return True
        if op == "stats":
            await self._send_safe(session, await self._stats_frame(rid))
            return True
        if op == "metrics":
            # Federated scrape: runs at a barrier (like history/census) so
            # per-shard snapshots are taken at drained points and the
            # merged counters equal the sum of the per-shard scrapes.
            task = asyncio.get_running_loop().create_task(
                self._serve_metrics(session, rid, request)
            )
            self._request_tasks.add(task)
            task.add_done_callback(self._request_tasks.discard)
            return True
        if op == "watch":
            self._start_watch(session, rid, request)
            return True
        if op == "unwatch":
            stopped = self._stop_watch(session, request.get("watch_rid", rid))
            await self._send_safe(
                session, {"rid": rid, "status": "ok", "stopped": stopped}
            )
            return True
        if op == "close":
            await self._send_safe(session, {"rid": rid, "status": "ok", "bye": True})
            return False
        if op in ("insert", "deletemin", "history", "kselect", "census"):
            # Each request gets its own task so one slow barrier cannot
            # head-of-line-block this connection's other pipelined ops.
            task = asyncio.get_running_loop().create_task(
                self._serve_request(session, op, rid, request)
            )
            self._request_tasks.add(task)
            task.add_done_callback(self._request_tasks.discard)
            return True
        await self._send_safe(session, _error(rid, f"unknown op {op!r}"))
        return True

    async def _serve_request(
        self, session: _RouterSession, op: str, rid, request: dict
    ) -> None:
        try:
            if op == "insert":
                frame = await self._guarded(
                    lambda: self._op_insert(session, rid, request)
                )
            elif op == "deletemin":
                frame = await self._guarded(
                    lambda: self._op_delete(session, rid, request)
                )
            elif op == "history":
                frame = await self._with_barrier(lambda: self._merged_history(rid))
            elif op == "kselect":
                frame = await self._with_barrier(
                    lambda: self._merged_kselect(rid, request)
                )
            else:  # census
                frame = await self._with_barrier(lambda: self._merged_census(rid))
        except UnavailableError as exc:
            frame = self._unavailable(rid, None, exc)
        except Exception as exc:  # noqa: BLE001 - reported to the client
            frame = _error(rid, f"{type(exc).__name__}: {exc}")
        await self._send_safe(session, frame)

    # -- federated telemetry -----------------------------------------------

    async def _serve_metrics(
        self, session: _RouterSession, rid, request: dict
    ) -> None:
        try:
            if request.get("barrier", True):
                frame = await self._with_barrier(lambda: self._merged_metrics(rid, request))
            else:
                frame = await self._merged_metrics(rid, request)
        except Exception as exc:  # noqa: BLE001 - a scrape must never error
            # The acceptance contract: scraping during chaos returns the
            # survivors' metrics, not an error frame.  Whatever went wrong,
            # answer with what the router itself knows.
            frame = {
                "rid": rid,
                "status": "ok",
                "metrics": self.metrics.snapshot(),
                "federation": dict(
                    self._federation_info(), scrape_error=str(exc)
                ),
            }
        await self._send_safe(session, frame)

    async def _merged_metrics(self, rid, request: dict) -> dict:
        """One federated scrape: per-shard snapshots + the router's own.

        Dead or dying shards never fail the scrape — each is marked in
        ``federation.dead`` and the merge runs over the survivors.  The
        router's own snapshot merges in under source ``"router"``, so the
        aggregate view covers both planes (shard-side op service and
        router-side federation overhead).
        """
        self._m_scrapes.inc()
        per_shard: dict[int, dict] = {}
        for band in self._live_bands():
            sid = band.shard_id
            try:
                client = self._live_upstream(sid)
                response = await self._shard_barrier_call(client.metrics)
            except UnavailableError:
                self._mark_dead(sid)
                continue
            per_shard[sid] = response["metrics"]
        sources: dict[Any, dict] = {str(s): snap for s, snap in per_shard.items()}
        sources["router"] = self.metrics.snapshot()
        frame: dict[str, Any] = {
            "rid": rid,
            "status": "ok",
            "proto": self.proto,
            "metrics": merge_snapshots(sources),
            "federation": dict(
                self._federation_info(), scraped=sorted(per_shard)
            ),
        }
        if request.get("per_shard"):
            frame["per_shard"] = {str(s): snap for s, snap in per_shard.items()}
        if request.get("series") and self.sampler is not None:
            frame["series"] = self.sampler.series()
        return frame

    def _start_watch(self, session: _RouterSession, rid, request: dict) -> None:
        key = (session.session_id, rid)
        if key in self._watches:
            self._send_task(session, _error(rid, f"watch {rid!r} already active"))
            return
        interval = request.get("interval", 1.0)
        count = request.get("count")
        if not isinstance(interval, (int, float)) or interval <= 0:
            self._send_task(session, _error(rid, "watch needs a positive 'interval'"))
            return
        if count is not None and (
            not isinstance(count, int) or isinstance(count, bool) or count < 1
        ):
            self._send_task(
                session, _error(rid, "watch 'count' must be a positive int")
            )
            return
        task = asyncio.get_running_loop().create_task(
            self._watch_loop(session, rid, float(interval), count),
            name=f"router-watch-{session.session_id}-{rid}",
        )
        self._watches[key] = task
        task.add_done_callback(lambda _t, _k=key: self._watches.pop(_k, None))

    def _stop_watch(self, session: _RouterSession, rid) -> bool:
        task = self._watches.pop((session.session_id, rid), None)
        if task is None:
            return False
        task.cancel()
        return True

    def _send_task(self, session: _RouterSession, frame: dict) -> None:
        task = asyncio.get_running_loop().create_task(
            self._send_safe(session, frame)
        )
        self._request_tasks.add(task)
        task.add_done_callback(self._request_tasks.discard)

    async def _watch_loop(
        self, session: _RouterSession, rid, interval: float, count: int | None
    ) -> None:
        """Stream federated scrapes without barriers: each tick is a
        best-effort snapshot (no gate close — a monitor must not stall the
        op path), so counters may be mid-flight by a frame's worth."""
        sent = 0
        try:
            while count is None or sent < count:
                frame = await self._merged_metrics(rid, {"barrier": False})
                frame["watch"] = sent
                frame["t"] = time.time()
                await self._send_safe(session, frame)
                sent += 1
                if session.closed:
                    return
                if count is not None and sent >= count:
                    break
                await asyncio.sleep(interval)
            await self._send_safe(
                session,
                {"rid": rid, "status": "ok", "watch_done": True, "sent": sent},
            )
        except asyncio.CancelledError:
            if not session.closed:
                self._send_task(
                    session,
                    {"rid": rid, "status": "ok", "watch_done": True, "sent": sent},
                )
            raise

    def _federation_info(self) -> dict:
        return {
            "topology": "federation",
            "epoch": self.pmap.epoch,
            "map": self.pmap.to_jsonable(),
            "shards": list(self.pmap.shard_ids),
            "dead": sorted(self._dead),
            "rebalances": self.rebalances,
            "revives": self.revives,
        }

    async def _stats_frame(self, rid) -> dict:
        """Router stats with the *full* per-shard breakdown.

        Every upstream stat the shard reports rides along per shard —
        op counters, failure counters, pending depth, simulated rounds
        and time, the shard's own admission snapshot and wire tallies —
        plus the router-side view (band, count estimate, upstream p99).
        Dead shards report ``alive: False`` with their last known band
        and count estimate rather than vanishing from the map.
        """
        per_shard: dict[str, Any] = {}
        for band in self.pmap.bands:
            sid = band.shard_id
            if sid in self._dead:
                per_shard[str(sid)] = self._dead_shard_stats(sid, band)
                continue
            try:
                client = self._live_upstream(sid)
                upstream_stats = await self._shard_barrier_call(client.stats)
            except UnavailableError:
                self._mark_dead(sid)
                per_shard[str(sid)] = self._dead_shard_stats(sid, band)
                continue
            hist = self._upstream_hist(sid) if self.metrics.enabled else None
            per_shard[str(sid)] = {
                "alive": True,
                "band": band.describe(),
                "count_estimate": self._counts.get(sid, 0),
                "ops_completed": upstream_stats.get("ops_completed"),
                "ops_failed": upstream_stats.get("ops_failed"),
                "pending": upstream_stats.get("pending"),
                "history_ops": upstream_stats.get("history_ops"),
                "rounds": upstream_stats.get("rounds"),
                "sim_time": upstream_stats.get("sim_time"),
                "uptime": upstream_stats.get("uptime"),
                "n_nodes": upstream_stats.get("n_nodes"),
                "admission": upstream_stats.get("admission"),
                "wire": upstream_stats.get("wire"),
                "upstream_latency": {
                    "count": hist.count,
                    "p50": hist.quantile(0.5),
                    "p99": hist.quantile(0.99),
                }
                if hist is not None and hist.count
                else None,
            }
        return {
            "rid": rid,
            "status": "ok",
            "proto": self.proto,
            "n_nodes": self.n_nodes,
            "uptime": time.monotonic() - self._started_at,
            "ops_completed": self.ops_completed,
            "ops_failed": self.ops_failed,
            "ops_unavailable": self.ops_unavailable,
            "rebalances": self.rebalances,
            "pending": self._active,
            "admission": self.admission.snapshot(),
            "wire": self.wire_stats.to_dict(),
            "federation": dict(self._federation_info(), per_shard=per_shard),
        }

    def _dead_shard_stats(self, sid: int, band) -> dict:
        """What the router still knows about a shard that stopped talking."""
        return {
            "alive": False,
            "band": band.describe(),
            "count_estimate": self._counts.get(sid, 0),
            "endpoint": (
                [self._upstreams[sid].host, self._upstreams[sid].port]
                if sid in self._upstreams
                else None
            ),
        }

    # -- frame output ------------------------------------------------------

    async def _send_safe(self, session: _RouterSession, frame: dict) -> None:
        if session.closed:
            return
        try:
            async with session.send_lock:
                await write_frame(
                    session.writer, frame, max_frame=RESPONSE_MAX_FRAME,
                    stats=self.wire_stats,
                )
        except (ConnectionError, WireError):
            session.closed = True


def _covers(new_band, old_band) -> bool:
    """Does the new band fully contain the old one (no element moves)?"""
    lo_ok = new_band.lo is None or (
        old_band.lo is not None and old_band.lo >= new_band.lo
    )
    hi_ok = new_band.hi is None or (
        old_band.hi is not None and old_band.hi <= new_band.hi
    )
    return lo_ok and hi_ok


def _error(rid, message: str) -> dict:
    return {"rid": rid, "status": "error", "error": message}
