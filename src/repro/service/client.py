"""Asyncio client for the live queue service.

:class:`QueueClient` speaks the length-prefixed JSON wire protocol with
full pipelining: any number of requests may be outstanding on one
connection; a background reader task routes responses back to their
callers by request id.  Shedding is handled transparently —
``RETRY_AFTER`` responses trigger a jittered, capped exponential backoff
and resubmission (safe because a shed request was *never* admitted into
the cluster, so resubmission cannot double-execute).

    client = await QueueClient.connect("127.0.0.1", 7341, client="worker-3")
    uid = (await client.insert(priority=2, value="job")).uid
    got = await client.delete_min()
    if not got.bot:
        print(got.priority, got.value)
    await client.aclose()

Every await takes an optional ``timeout``; the default comes from the
constructor.  The retry jitter derives from an explicit per-client seed,
so load tests are reproducible choice-for-choice.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import time
from dataclasses import dataclass
from typing import Any

from ..errors import ServiceError, UnavailableError, WireError
from ..sim.faults import DELAY, DROP, DUP, FaultPlan
from .server import RESPONSE_MAX_FRAME
from .wire import encode_frame, read_frame, write_frame

__all__ = ["ClientResult", "QueueClient"]


@dataclass(frozen=True, slots=True)
class ClientResult:
    """The client-observed outcome of one queue operation."""

    kind: str  # "insert" | "deletemin" | "kselect"
    op_id: tuple[int, int] | None  # the protocol's causal op id
    uid: int | None = None
    priority: int | None = None
    value: Any = None
    bot: bool = False
    retries: int = 0  # RETRY_AFTER rounds absorbed before admission
    latency: float = 0.0  # client-observed seconds, submit -> resolve


class QueueClient:
    """One pipelined connection to a :class:`~repro.service.QueueService`."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        client: str = "",
        timeout: float = 30.0,
        max_retries: int = 64,
        retry_jitter_seed: int = 0,
        faults: FaultPlan | None = None,
        fault_src: int = 0,
        fault_time_scale: float = 0.01,
        retry_unavailable: int = 0,
    ):
        self._reader = reader
        self._writer = writer
        self.name = client
        self.timeout = float(timeout)
        self.max_retries = int(max_retries)
        self._jitter = random.Random(retry_jitter_seed)
        #: frame-level chaos: the PR 2 fault plans, applied to this
        #: client's op frames (see :meth:`_send_request`)
        self._faults = faults
        self.fault_src = int(fault_src)
        self.fault_time_scale = float(fault_time_scale)
        self._fault_nth = 0
        self._fault_events: dict[int, list] = {}
        if faults is not None:
            for ev in faults.message_events():
                if ev.src == self.fault_src:
                    self._fault_events.setdefault(ev.nth, []).append(ev)
        #: how many times to resubmit after a retryable ``unavailable``
        #: (safe: an unavailable op was never acked, and the resubmission
        #: is a *new* causal op — recovery's dedup never sees it twice)
        self.retry_unavailable = int(retry_unavailable)
        self._rids = itertools.count()
        self._waiters: dict[int, asyncio.Future] = {}
        #: rid -> frame queue for streaming subscriptions (``watch``)
        self._streams: dict[int, asyncio.Queue] = {}
        self._closed = False
        self._conn_error: Exception | None = None
        self._reader_task: asyncio.Task | None = None
        #: populated by the hello exchange
        self.proto = ""
        self.n_nodes = 0
        self.session = -1
        self.node = -1
        #: client-observed totals (the load generator reads these)
        self.retry_total = 0
        self.shed_seen = 0
        self.unavailable_seen = 0
        #: what the chaos layer actually did
        self.chaos_dropped = 0
        self.chaos_retransmits = 0
        self.chaos_lost = 0
        self.chaos_delayed = 0
        self.chaos_dups_suppressed = 0

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        client: str = "",
        timeout: float = 30.0,
        max_retries: int = 64,
        retry_jitter_seed: int = 0,
        connect_retries: int = 20,
        connect_backoff: float = 0.05,
        faults: FaultPlan | None = None,
        fault_src: int = 0,
        fault_time_scale: float = 0.01,
        retry_unavailable: int = 0,
    ) -> "QueueClient":
        """Open a connection, absorbing the spawn-to-listen race.

        A freshly spawned service refuses connections for the few
        milliseconds before its socket binds; a cold loadtest that loses
        that race should wait, not die.  ``ECONNREFUSED`` is retried up
        to ``connect_retries`` times with seeded exponential backoff
        (deterministic choice-for-choice, like the RETRY_AFTER jitter);
        any other connection failure — unknown host, reset, timeout —
        propagates immediately.
        """
        backoff_rng = random.Random(retry_jitter_seed ^ 0x5EED)
        attempt = 0
        while True:
            try:
                reader, writer = await asyncio.open_connection(host, port)
                break
            except ConnectionRefusedError:
                attempt += 1
                if attempt > connect_retries:
                    raise
                base = connect_backoff * (2 ** min(attempt - 1, 6))
                await asyncio.sleep(backoff_rng.uniform(base / 2, base))
        self = cls(
            reader, writer,
            client=client, timeout=timeout, max_retries=max_retries,
            retry_jitter_seed=retry_jitter_seed,
            faults=faults, fault_src=fault_src,
            fault_time_scale=fault_time_scale,
            retry_unavailable=retry_unavailable,
        )
        self._reader_task = asyncio.create_task(
            self._read_loop(), name=f"queue-client-{client or id(self)}"
        )
        hello = await self._request({"op": "hello", "client": client})
        self.proto = hello["proto"]
        self.n_nodes = hello["n_nodes"]
        self.session = hello["session"]
        self.node = hello["node"]
        return self

    async def aclose(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            await asyncio.wait_for(
                self._request_raw({"op": "close"}), timeout=min(self.timeout, 2.0)
            )
        except Exception:  # noqa: BLE001 - closing anyway
            pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
        self._writer.close()
        self._fail_waiters(ServiceError("client closed"))

    async def __aenter__(self) -> "QueueClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    # -- response routing --------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await read_frame(self._reader, max_frame=RESPONSE_MAX_FRAME)
                if frame is None:
                    raise ServiceError("server closed the connection")
                rid = frame.get("rid")
                stream = self._streams.get(rid)
                if stream is not None:
                    stream.put_nowait(frame)
                    continue
                waiter = self._waiters.pop(rid, None)
                if waiter is not None and not waiter.done():
                    waiter.set_result(frame)
                elif rid is None and frame.get("status") == "error":
                    # A connection-level error frame: the server is about
                    # to drop us; poison every outstanding request.
                    raise WireError(frame.get("error", "connection error"))
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - delivered to the waiters
            self._conn_error = exc
            self._fail_waiters(exc)

    def _fail_waiters(self, exc: Exception) -> None:
        waiters, self._waiters = self._waiters, {}
        for waiter in waiters.values():
            if not waiter.done():
                waiter.set_exception(exc)
        streams, self._streams = self._streams, {}
        for stream in streams.values():
            stream.put_nowait(exc)

    async def _request_raw(self, request: dict) -> dict:
        if self._conn_error is not None:
            raise ServiceError(f"connection lost: {self._conn_error}")
        rid = next(self._rids)
        request = dict(request, rid=rid)
        waiter: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters[rid] = waiter
        try:
            await self._send_request(request)
            return await waiter
        finally:
            self._waiters.pop(rid, None)

    async def _send_request(self, request: dict) -> None:
        """Put one request frame on the wire, through the chaos layer.

        With a :class:`~repro.sim.faults.FaultPlan` attached, **op frames**
        (insert/deletemin) are matched against the plan's message events by
        their ordinal on this client's channel — the same nth-transmission
        targeting the simulator's :class:`~repro.sim.faults.FaultInjector`
        uses, with ``src`` being this client's ``fault_src`` and ``dst``
        ignored (one client has exactly one channel, to the server).
        Session-control frames (hello/close/...) are never faulted — losing
        those models a connection death, which :class:`QueueClient` already
        exercises elsewhere.

        * **drop** — reliable plans retransmit the frame after
          ``retry_timeout * fault_time_scale`` seconds (the ack/timeout
          discipline, with sim time units scaled to wall seconds);
          unreliable plans lose it for good and the caller's timeout is
          the symptom.
        * **delay** — the frame is held ``hold * fault_time_scale``
          seconds; pipelined siblings overtake it (adversarial
          reordering at the TCP layer).
        * **dup** — counted but *suppressed*: the live wire has no
          sequence-number dedup, so a duplicated op frame would be a
          genuine double execution, which the conservation checker
          (correctly!) rejects.  The counter keeps seeded plans honest
          about what they asked for.
        """
        if self._faults is not None and request.get("op") in ("insert", "deletemin"):
            nth = self._fault_nth
            self._fault_nth += 1
            hold = 0.0
            dropped = False
            for ev in self._fault_events.get(nth, ()):
                if ev.kind == DROP:
                    dropped = True
                elif ev.kind == DELAY:
                    hold += max(ev.hold, 0.0) * self.fault_time_scale
                    self.chaos_delayed += 1
                elif ev.kind == DUP:
                    self.chaos_dups_suppressed += 1
            if dropped:
                self.chaos_dropped += 1
                if not self._faults.reliable:
                    self.chaos_lost += 1
                    return  # never sent; the caller's timeout reports it
                hold += self._faults.retry_timeout * self.fault_time_scale
                self.chaos_retransmits += 1
            if hold > 0.0:
                await asyncio.sleep(hold)
        await write_frame(self._writer, request)

    def request_nowait(self, request: dict) -> asyncio.Future:
        """Put one frame on the wire *now*; await the returned future later.

        Unlike :meth:`_request_raw` there is no await before the bytes hit
        the stream buffer: the write happens synchronously inside this
        call, so two ``request_nowait`` calls made back-to-back from the
        same task are guaranteed to reach the server in that order.  The
        federation router leans on this — its routing decisions are only
        exact if decision order equals per-shard submission order.
        """
        if self._conn_error is not None:
            raise UnavailableError(f"connection lost: {self._conn_error}")
        rid = next(self._rids)
        request = dict(request, rid=rid)
        waiter: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters[rid] = waiter
        try:
            self._writer.write(encode_frame(request))
        except Exception as exc:  # noqa: BLE001 - surfaced via the future
            self._waiters.pop(rid, None)
            waiter.cancel()
            raise UnavailableError(f"connection lost: {exc}") from exc
        return waiter

    async def drain(self) -> None:
        """Apply write backpressure after a burst of :meth:`request_nowait`."""
        await self._writer.drain()

    async def _request(self, request: dict, timeout: float | None = None) -> dict:
        response = await asyncio.wait_for(
            self._request_raw(request),
            self.timeout if timeout is None else timeout,
        )
        if response.get("status") == "unavailable":
            raise UnavailableError(
                response.get("error", "service shard unavailable")
            )
        if response.get("status") == "error":
            raise ServiceError(response.get("error", "unknown server error"))
        return response

    async def _request_with_retry(
        self, request: dict, timeout: float | None = None
    ) -> tuple[dict, int]:
        """Send, absorbing RETRY_AFTER shedding with jittered backoff.

        With ``retry_unavailable > 0``, retryable ``unavailable`` answers
        (a federation shard down or mid-recovery) are also absorbed, with
        seeded exponential backoff.  Resubmission is safe: an unavailable
        op was never admitted anywhere, and the retry is a *new* causal
        op id, so nothing can double-apply — the worst case is a delete
        that executed at the shard but whose ack died with it, which is a
        legal settled op the client simply never observed.
        """
        retries = 0
        unavailable = 0
        while True:
            try:
                response = await self._request(request, timeout=timeout)
            except UnavailableError:
                self.unavailable_seen += 1
                if unavailable >= self.retry_unavailable:
                    raise
                unavailable += 1
                base = 0.05 * (2 ** min(unavailable - 1, 6))
                await asyncio.sleep(self._jitter.uniform(base / 2, base))
                continue
            if response.get("status") != "retry_after":
                return response, retries
            retries += 1
            self.retry_total += 1
            self.shed_seen += 1
            if retries > self.max_retries:
                raise ServiceError(
                    f"request shed {retries} times (window saturated beyond "
                    f"max_retries={self.max_retries})"
                )
            delay = float(response.get("retry_after", 0.05))
            # Full jitter: uniform in [delay/2, delay * (1 + retries/4)];
            # growth spreads a persistent herd, the floor keeps latency sane.
            await asyncio.sleep(
                self._jitter.uniform(delay / 2, delay * (1.0 + retries / 4.0))
            )

    # -- queue operations --------------------------------------------------

    async def insert(
        self, priority: int, value: Any = None, timeout: float | None = None
    ) -> ClientResult:
        """Insert an element; resolves once the cluster stored it."""
        started = time.monotonic()
        response, retries = await self._request_with_retry(
            {"op": "insert", "priority": priority, "value": value}, timeout=timeout
        )
        return ClientResult(
            kind="insert",
            op_id=tuple(response["op"]),
            uid=response["uid"],
            priority=priority,
            value=value,
            retries=retries,
            latency=time.monotonic() - started,
        )

    async def delete_min(self, timeout: float | None = None) -> ClientResult:
        """DeleteMin; resolves with the element or ⊥ (``result.bot``)."""
        started = time.monotonic()
        response, retries = await self._request_with_retry(
            {"op": "deletemin"}, timeout=timeout
        )
        return ClientResult(
            kind="deletemin",
            op_id=tuple(response["op"]),
            uid=response.get("uid"),
            priority=response.get("priority"),
            value=response.get("value"),
            bot=bool(response.get("bot")),
            retries=retries,
            latency=time.monotonic() - started,
        )

    async def kselect(self, k: int, timeout: float | None = None) -> ClientResult:
        """The k-th smallest stored element, via the Section-4 protocol."""
        started = time.monotonic()
        response = await self._request({"op": "kselect", "k": k}, timeout=timeout)
        return ClientResult(
            kind="kselect",
            op_id=None,
            uid=response["uid"],
            priority=response["priority"],
            latency=time.monotonic() - started,
        )

    # -- service introspection ---------------------------------------------

    async def stats(self, timeout: float | None = None) -> dict:
        return await self._request({"op": "stats"}, timeout=timeout)

    async def metrics(
        self, *, series: bool = False, timeout: float | None = None
    ) -> dict:
        """One telemetry scrape: the server's full snapshot wire form.

        Against a federation router this is the *aggregated* view —
        counters summed and histograms merged bucket-wise across shards,
        gauges labeled per shard (see ``merge_snapshots``).
        """
        return await self._request(
            {"op": "metrics", "series": bool(series)}, timeout=timeout
        )

    async def watch(self, *, interval: float = 1.0, count: int | None = None):
        """Stream telemetry snapshots; an async generator of frames.

        Yields one frame per ``interval`` seconds until ``count`` frames
        have arrived (forever if ``count`` is None — break out of the loop
        to stop; the generator sends a best-effort ``unwatch`` on exit).
        Each frame carries ``metrics`` (snapshot wire form) and ``watch``
        (the server's sequence number).
        """
        if self._conn_error is not None:
            raise ServiceError(f"connection lost: {self._conn_error}")
        rid = next(self._rids)
        queue: asyncio.Queue = asyncio.Queue()
        self._streams[rid] = queue
        request = {"op": "watch", "rid": rid, "interval": float(interval)}
        if count is not None:
            request["count"] = int(count)
        try:
            await write_frame(self._writer, request)
            while True:
                frame = await asyncio.wait_for(
                    queue.get(), self.timeout + float(interval)
                )
                if isinstance(frame, Exception):
                    raise ServiceError(f"connection lost: {frame}") from frame
                if frame.get("status") == "error":
                    raise ServiceError(frame.get("error", "watch failed"))
                if frame.get("watch_done"):
                    return
                yield frame
        finally:
            self._streams.pop(rid, None)
            if self._conn_error is None and not self._closed:
                try:
                    await self._request(
                        {"op": "unwatch", "watch_rid": rid},
                        timeout=min(self.timeout, 2.0),
                    )
                except Exception:  # noqa: BLE001 - best-effort cleanup
                    pass

    async def census(self, timeout: float | None = None) -> int:
        """The drained-point stored-element count (a barrier request)."""
        response = await self._request({"op": "census"}, timeout=timeout)
        return int(response["stored"])

    async def ping(self, timeout: float | None = None) -> dict:
        return await self._request({"op": "ping"}, timeout=timeout)

    async def history(self, timeout: float | None = None) -> dict:
        """The server-side settled history + element census (post-hoc checks).

        Served at a drained point: the response arrives only once every
        admitted op resolved, so the returned history is settled and the
        census stable.
        """
        return await self._request({"op": "history"}, timeout=timeout)
