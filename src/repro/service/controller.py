"""Shard orchestration: spawn, health-check and stop shard processes.

A federation shard is one ``python -m repro.harness serve`` process on an
ephemeral port — the *same* entry point CI and by-hand runs use, so a
shard under the controller is bit-for-bit the service everything else
already tests.  The controller's job is the OS-process lifecycle:

* **spawn** — launch the serve subprocess with ``--port 0``, then parse
  the ready line (``serving <proto> n=<n> seed=<s> on <host>:<port>``)
  the CLI prints as its readiness contract; the bound port comes from
  that line, so there is no bind race and no port guessing;
* **health** — ``poll()`` every child; a dead shard is reported with its
  exit code (and a ``kill -9`` shows up as ``-9``), never silently;
* **stop/shutdown** — terminate, then escalate to kill on a deadline, and
  always reap.

The controller is deliberately synchronous (plain ``subprocess``): it
runs before or beside the router's event loop, and spawning is a
blocking, bounded-time operation by nature.  Per-shard seeds derive from
the federation seed via :func:`~repro.sim.rng.derive_seed`, so a
federation is as reproducible as a single service.
"""

from __future__ import annotations

import os
import select
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ServiceError
from ..sim.rng import derive_seed

__all__ = ["ShardSpec", "ShardProcess", "ShardController"]


@dataclass(frozen=True)
class ShardSpec:
    """Everything needed to (re)spawn one shard process."""

    shard_id: int
    proto: str = "skeap"
    n_nodes: int = 8
    seed: int = 0
    n_priorities: int = 3
    window: int = 64
    runner: str = "sync"
    host: str = "127.0.0.1"
    journal_dir: str | None = None
    fsync: str = "interval"
    snapshot_every: int = 500

    def argv(self) -> list[str]:
        argv = [
            sys.executable, "-u", "-m", "repro.harness", "serve",
            "--proto", self.proto,
            "--nodes", str(self.n_nodes),
            "--seed", str(self.seed),
            "--priorities", str(self.n_priorities),
            "--window", str(self.window),
            "--runner", self.runner,
            "--host", self.host,
            "--port", "0",
        ]
        if self.journal_dir is not None:
            argv += [
                "--journal", self.journal_dir,
                "--fsync", self.fsync,
                "--snapshot-every", str(self.snapshot_every),
            ]
        return argv


@dataclass
class ShardProcess:
    """One live (or dead) shard child."""

    spec: ShardSpec
    process: subprocess.Popen
    host: str = ""
    port: int = 0
    ready_output: list[str] = field(default_factory=list)

    @property
    def shard_id(self) -> int:
        return self.spec.shard_id

    @property
    def alive(self) -> bool:
        return self.process.poll() is None


def _shard_env() -> dict[str, str]:
    """The child environment, with this repro importable via PYTHONPATH."""
    import repro

    src = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else f"{src}{os.pathsep}{existing}"
    return env


class ShardController:
    """Spawn, watch and stop the shard processes of one federation."""

    def __init__(
        self,
        *,
        proto: str = "skeap",
        n_nodes: int = 8,
        seed: int = 0,
        n_priorities: int = 3,
        window: int = 64,
        runner: str = "sync",
        host: str = "127.0.0.1",
        spawn_timeout: float = 30.0,
        journal_root: str | None = None,
        fsync: str = "interval",
        snapshot_every: int = 500,
    ):
        self.proto = proto
        self.n_nodes = int(n_nodes)
        self.seed = int(seed)
        self.n_priorities = int(n_priorities)
        self.window = int(window)
        self.runner = runner
        self.host = host
        self.spawn_timeout = float(spawn_timeout)
        #: per-shard journals live in ``<journal_root>/shard-<id>``
        self.journal_root = journal_root
        self.fsync = fsync
        self.snapshot_every = int(snapshot_every)
        self.shards: dict[int, ShardProcess] = {}
        #: lifecycle counters (the router's telemetry hook reads these)
        self.spawned_total = 0
        self.killed_total = 0
        self.stopped_total = 0
        self.restarted_total = 0

    # -- lifecycle ---------------------------------------------------------

    def spawn(self, shard_id: int) -> ShardProcess:
        """Launch one shard and block until its socket is ready."""
        if shard_id in self.shards and self.shards[shard_id].alive:
            raise ServiceError(f"shard {shard_id} is already running")
        journal_dir = None
        if self.journal_root is not None:
            journal_dir = str(Path(self.journal_root) / f"shard-{shard_id}")
        spec = ShardSpec(
            shard_id=shard_id,
            proto=self.proto,
            n_nodes=self.n_nodes,
            seed=derive_seed(self.seed, "shard", shard_id),
            n_priorities=self.n_priorities,
            window=self.window,
            runner=self.runner,
            host=self.host,
            journal_dir=journal_dir,
            fsync=self.fsync,
            snapshot_every=self.snapshot_every,
        )
        return self._launch(spec)

    def _launch(self, spec: ShardSpec) -> ShardProcess:
        process = subprocess.Popen(
            spec.argv(),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=_shard_env(),
        )
        shard = ShardProcess(spec=spec, process=process)
        try:
            shard.host, shard.port = self._await_ready(shard)
        except Exception:
            process.kill()
            process.wait()
            raise
        self.shards[spec.shard_id] = shard
        self.spawned_total += 1
        return shard

    def spawn_many(self, shard_ids) -> dict[int, ShardProcess]:
        for shard_id in shard_ids:
            self.spawn(shard_id)
        return dict(self.shards)

    def restart(self, shard_id: int) -> ShardProcess:
        """Respawn a dead shard from its recorded spec — same seed, same
        journal directory, so (with journaling on) it recovers its band
        instead of losing it.  Refuses to restart a live shard.
        """
        shard = self._get(shard_id)
        if shard.alive:
            raise ServiceError(f"shard {shard_id} is still running")
        replacement = self._launch(shard.spec)
        self.restarted_total += 1
        return replacement

    def _await_ready(self, shard: ShardProcess) -> tuple[str, int]:
        """Parse the serve CLI's ready line, with a hard deadline.

        The child's stdout is read non-blockingly (``select`` on the pipe)
        so a shard that wedges before binding cannot hang the federation
        bring-up; whatever it *did* print is kept for the error message.
        """
        deadline = time.monotonic() + self.spawn_timeout
        stream = shard.process.stdout
        assert stream is not None
        buffer = ""
        while True:
            line, buffer = self._next_line(buffer)
            if line is not None:
                shard.ready_output.append(line)
                if line.startswith("serving ") and " on " in line:
                    _, _, addr = line.rpartition(" on ")
                    host, _, port_s = addr.strip().rpartition(":")
                    return host, int(port_s)
                continue
            if shard.process.poll() is not None:
                raise ServiceError(
                    f"shard {shard.shard_id} exited with code "
                    f"{shard.process.returncode} before becoming ready; "
                    f"output: {shard.ready_output!r}"
                )
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError(
                    f"shard {shard.shard_id} not ready within "
                    f"{self.spawn_timeout}s; output: {shard.ready_output!r}"
                )
            readable, _, _ = select.select([stream], [], [], min(remaining, 0.2))
            if readable:
                chunk = os.read(stream.fileno(), 4096).decode(errors="replace")
                if not chunk:  # EOF: the child is going down
                    shard.process.wait(timeout=remaining)
                buffer += chunk

    @staticmethod
    def _next_line(buffer: str) -> tuple[str | None, str]:
        line, sep, rest = buffer.partition("\n")
        return (line, rest) if sep else (None, buffer)

    # -- observation -------------------------------------------------------

    def endpoints(self) -> dict[int, tuple[str, int]]:
        """``shard_id -> (host, port)`` for every *live* shard."""
        return {
            sid: (shard.host, shard.port)
            for sid, shard in self.shards.items()
            if shard.alive
        }

    def health(self) -> dict[int, dict]:
        """Liveness and exit status per shard — deaths are never silent."""
        report = {}
        for sid, shard in self.shards.items():
            returncode = shard.process.poll()
            report[sid] = {
                "alive": returncode is None,
                "pid": shard.process.pid,
                "returncode": returncode,
                "host": shard.host,
                "port": shard.port,
            }
        return report

    def deaths(self) -> list[int]:
        """Shard ids whose process has exited."""
        return [sid for sid, shard in self.shards.items() if not shard.alive]

    def telemetry(self) -> dict[str, int]:
        """Lifecycle tallies for the telemetry plane (router scrape hook)."""
        alive = sum(1 for shard in self.shards.values() if shard.alive)
        return {
            "shards_spawned_total": self.spawned_total,
            "shards_killed_total": self.killed_total,
            "shards_stopped_total": self.stopped_total,
            "shards_restarted_total": self.restarted_total,
            "shards_alive": alive,
            "shards_exited": len(self.shards) - alive,
        }

    # -- teardown ----------------------------------------------------------

    def kill(self, shard_id: int) -> None:
        """SIGKILL a shard — the chaos test's hammer.  Reaps the child."""
        shard = self._get(shard_id)
        shard.process.kill()
        shard.process.wait()
        self.killed_total += 1

    def stop(self, shard_id: int, *, timeout: float = 5.0) -> None:
        """Terminate a shard politely, escalating to kill on the deadline."""
        shard = self._get(shard_id)
        if shard.alive:
            shard.process.terminate()
            try:
                shard.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                shard.process.kill()
                shard.process.wait()
            self.stopped_total += 1

    def retire(self, shard_id: int, *, timeout: float = 5.0) -> None:
        """Stop a shard and drop it from the roster (post-merge cleanup)."""
        self.stop(shard_id, timeout=timeout)
        self.shards.pop(shard_id, None)

    def shutdown(self) -> None:
        for sid in list(self.shards):
            self.stop(sid)
        self.shards.clear()

    def _get(self, shard_id: int) -> ShardProcess:
        shard = self.shards.get(shard_id)
        if shard is None:
            raise ServiceError(f"unknown shard {shard_id}")
        return shard

    def __enter__(self) -> "ShardController":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
