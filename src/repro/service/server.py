"""The live queue service: an asyncio TCP front-end over a simulated cluster.

:class:`QueueService` owns a :class:`~repro.skeap.heap.SkeapHeap` or
:class:`~repro.seap.heap.SeapHeap` and *pumps* its runner from a
background asyncio task — the protocol code runs unmodified; the only
thing that changes is who advances the event loop (the paper's drivers
under experiments, this server under live traffic).  Client requests map
onto protocol operations through the causal op-id ``(owner, seq)`` that
PR 4 threads through every message: the service parks one asyncio future
per submitted op, keyed by that id, and resolves it the moment the op's
handle lands (its span completes).

Request lifecycle::

    frame in ──> admission ──┬─ shed ──> {status: "retry_after", ...}
                             └─ admit ─> submit at the session's node
                                          └─ pump ... handle.done
                                               └─> {status: "ok", ...} frame out

Graceful degradation is structural: the admission window bounds how many
ops may be outstanding inside the simulation, so offered load beyond it
is *shed with an explicit hint*, never buffered without bound and never
silently dropped.

Barrier requests (``history``, ``kselect``) are served at drained points
— no admitted op unresolved — where the element census is stable (the
same stability argument the fuzz harness's conservation check uses).
``kselect`` answers against a snapshot :class:`~repro.kselect.cluster.
KSelectCluster` seeded from the service seed, i.e. it runs the paper's
Section-4 protocol over the live heap's current elements without touching
the live cluster.

The protocol packages contain no service-specific branches; everything
here composes their public client API (``submit_*`` via the heap
front-ends) with the runners' :meth:`pump` hand-off hook.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field
from typing import Any

from ..errors import DurabilityError, ServiceError, WireError
from ..seap import SeapHeap
from ..semantics.history import DELETE, INSERT
from ..skeap import SkeapHeap
from .admission import AdmissionController
from .durability import DurabilityConfig, DurabilityPlane, certify_recovery
from .telemetry import MetricsRegistry, NullRegistry, TelemetrySampler
from .wire import DEFAULT_MAX_FRAME, WireStats, read_frame, write_frame

__all__ = ["QueueService", "RESPONSE_MAX_FRAME", "PROTOS"]

#: Server->client frames (history dumps) may be much larger than requests.
RESPONSE_MAX_FRAME = 1 << 26

#: Backends the service can front.
PROTOS = ("skeap", "seap")


def _make_heap(proto: str, n_nodes: int, seed: int, runner: str, n_priorities: int):
    if proto == "skeap":
        return SkeapHeap(
            n_nodes, n_priorities=n_priorities, seed=seed, runner=runner,
            record_history=True,
        )
    if proto == "seap":
        return SeapHeap(n_nodes, seed=seed, runner=runner, record_history=True)
    raise ServiceError(f"unknown proto {proto!r}; available: {PROTOS}")


@dataclass
class _Session:
    """One connected client."""

    session_id: int
    name: str
    node: int  # the real node this session's ops are submitted at
    writer: asyncio.StreamWriter
    send_lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    closed: bool = False


@dataclass(slots=True)
class _PendingOp:
    """An admitted op waiting for its handle to land."""

    session: _Session
    rid: Any
    handle: Any  # OpHandle
    submitted_at: float


@dataclass(slots=True)
class _Barrier:
    """A request served at the next drained point (history / kselect)."""

    session: _Session
    rid: Any
    op: str
    payload: dict
    enqueued_at: float = 0.0


class QueueService:
    """Serve a Skeap/Seap cluster over TCP to real asyncio clients."""

    def __init__(
        self,
        proto: str = "skeap",
        n_nodes: int = 16,
        seed: int = 0,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        runner: str = "sync",
        n_priorities: int = 3,
        window: int = 64,
        base_retry_after: float = 0.02,
        pump_budget: int = 64,
        idle_pump_budget: int = 8,
        idle_interval: float = 0.005,
        max_frame: int = DEFAULT_MAX_FRAME,
        heap=None,
        telemetry: bool = True,
        metrics_interval: float = 1.0,
        metrics_capacity: int = 512,
        durability: DurabilityConfig | None = None,
    ):
        if heap is not None:
            self.heap = heap
            self.proto = proto
        else:
            self.heap = _make_heap(proto, n_nodes, seed, runner, n_priorities)
            self.proto = proto
        if self.heap.history is None:
            raise ServiceError("the service needs record_history=True")
        self.host = host
        self.port = port  # rewritten with the bound port after start()
        self.seed = int(seed)
        self.admission = AdmissionController(
            window=window, base_retry_after=base_retry_after
        )
        self.pump_budget = int(pump_budget)
        self.idle_pump_budget = int(idle_pump_budget)
        self.idle_interval = float(idle_interval)
        self.max_frame = int(max_frame)
        self._sessions: dict[int, _Session] = {}
        self._session_ids = itertools.count()
        self._kselect_queries = itertools.count()
        self._pending: dict[tuple[int, int], _PendingOp] = {}
        self._barriers: list[_Barrier] = []
        self._work = asyncio.Event()
        self._server: asyncio.base_events.Server | None = None
        self._pump_task: asyncio.Task | None = None
        self._started_at = 0.0
        #: strong refs to in-flight send tasks (asyncio only keeps weak ones)
        self._send_tasks: set[asyncio.Task] = set()
        #: observability counters
        self.ops_completed = 0
        self.ops_failed = 0
        #: the telemetry plane: registry + endpoint wire tallies + sampler
        self.metrics = MetricsRegistry() if telemetry else NullRegistry()
        self.wire_stats = WireStats()
        self.sampler: TelemetrySampler | None = (
            TelemetrySampler(
                self.metrics, interval=metrics_interval, capacity=metrics_capacity
            )
            if telemetry and metrics_interval > 0
            else None
        )
        self._sampler_task: asyncio.Task | None = None
        #: live ``watch`` subscriptions, keyed (session_id, rid)
        self._watches: dict[tuple[int, Any], asyncio.Task] = {}
        #: the durability plane (None: this service forgets on crash)
        self.durability: DurabilityPlane | None = None
        self.generation = 0
        self.recovery: dict | None = None
        self._prior_records: list[dict] = []
        self._gen_records: list[dict] = []
        self._bootstrap_ids: set[tuple[int, int]] = set()
        self._ops_since_snapshot = 0
        self._recovering = False
        if durability is not None:
            self._open_durability(durability)
        self._init_instruments()

    def _open_durability(self, config: DurabilityConfig) -> None:
        """Recover from the journal directory (if any) and start journaling.

        Runs synchronously before the service accepts a byte: the restored
        heap is certified by the unmodified checker stack first, so a shard
        never serves from state it cannot prove consistent.
        """
        self._recovering = True
        self.durability = DurabilityPlane(
            config,
            meta={
                "proto": self.proto,
                "n_nodes": self.heap.n_nodes,
                "seed": self.seed,
                "order": getattr(self.heap, "order", "min"),
                "discipline": getattr(self.heap, "discipline", "fifo"),
            },
        )
        result = self.durability.recover()
        if result is not None:
            for key, current in (("proto", self.proto), ("n_nodes", self.heap.n_nodes)):
                prior = result.meta.get(key)
                if prior is not None and prior != current:
                    raise DurabilityError(
                        f"journal dir {config.dir} was written by {key}={prior!r}; "
                        f"this service runs {key}={current!r}"
                    )
            checks = certify_recovery(result)
            # Every future op id and auto-minted uid must be disjoint from
            # all prior generations', or replay idempotence and the dup-uid
            # history guard both collapse.
            for real in range(self.heap.n_nodes):
                self.heap.middle_node(real)._next_seq = result.seq_base
            # Re-insert the survivors one at a time, in serialization-key
            # order, under their original uids.  Sequential settling makes
            # the live heap's FIFO tiebreak order equal the spliced
            # history's ≺ — which the skeap replay-exactness check demands
            # when this generation's deletes start draining them.
            for survivor in result.survivors:
                handle = self.heap.insert(
                    priority=survivor["priority"],
                    value=survivor["value"],
                    uid=survivor["uid"],
                )
                self._bootstrap_ids.add(handle.op_id)
                self.heap.settle()
            self._prior_records = list(result.records)
            self.generation = self.durability.generation
            self.recovery = {
                "generation": self.generation,
                "ops_replayed": result.replayed_ops,
                "elements_restored": len(result.survivors),
                "snapshot_index": result.snapshot_index,
                "segments": result.segments,
                "checks": checks,
            }
        self.durability.begin(
            list(self._prior_records),
            sorted(self.heap.stored_uids()),
            state={"admission": self.admission.snapshot()},
        )
        self._recovering = False

    def _init_instruments(self) -> None:
        """Pre-fetch every hot-path metric object; register scrape hooks.

        Steady-state traffic mutates these cached objects directly — no
        registry lookup, no key formatting — which is what keeps the
        telemetry overhead contract (<5% on loadtest p99) honest.
        """
        reg = self.metrics
        self._m_lat = {
            "insert": reg.histogram("service_op_latency_seconds", kind="insert"),
            "deletemin": reg.histogram("service_op_latency_seconds", kind="deletemin"),
        }
        self._m_ok = {
            kind: reg.counter("service_ops_total", kind=kind, outcome="ok")
            for kind in ("insert", "deletemin")
        }
        self._m_err = {
            kind: reg.counter("service_ops_total", kind=kind, outcome="error")
            for kind in ("insert", "deletemin")
        }
        self._m_shed = reg.counter("service_sheds_total")
        self._m_retry_after = reg.histogram("service_retry_after_seconds")
        self._m_pump_calls = reg.counter("service_pump_calls_total")
        self._m_pump_rounds = reg.counter("service_pump_rounds_total")
        self._m_pump_budget = reg.counter("service_pump_budget_total")
        self._m_barrier_wait = reg.histogram("service_barrier_wait_seconds")
        self._m_connections = reg.counter("service_connections_total")
        self._m_scrapes = reg.counter("service_metrics_scrapes_total")
        if self.durability is not None:
            self._m_journal_bytes = reg.counter("service_journal_bytes_total")
            self._m_journal_appends = reg.counter("service_journal_appends_total")
            self._m_fsync_lat = reg.histogram("service_journal_fsync_seconds")
            self._m_snapshot_dur = reg.histogram("service_snapshot_duration_seconds")
        reg.add_hook(self._refresh_gauges)

    def _refresh_gauges(self) -> None:
        """Scrape-time gauges/counters whose truth lives outside the registry."""
        reg = self.metrics
        reg.gauge("service_pending_ops").set(len(self._pending))
        reg.gauge("service_barriers_pending").set(len(self._barriers))
        reg.gauge("service_sessions").set(len(self._sessions))
        reg.gauge("service_uptime_seconds").set(
            time.monotonic() - self._started_at if self._started_at else 0.0
        )
        budget = self._m_pump_budget.value
        reg.gauge("service_pump_utilization").set(
            self._m_pump_rounds.value / budget if budget else 0.0
        )
        snap = self.admission.snapshot()
        reg.gauge("admission_window").set(snap["window"])
        reg.gauge("admission_in_flight").set(snap["in_flight"])
        reg.gauge("admission_fair_share").set(snap["fair_share"])
        reg.gauge("admission_occupancy").set(
            snap["in_flight"] / max(1, snap["window"])
        )
        reg.counter("admission_admitted_total").value = snap["admitted"]
        reg.counter("admission_shed_total").value = snap["shed"]
        reg.counter("admission_released_total").value = snap["released"]
        ws = self.wire_stats
        reg.counter("service_frames_in_total").value = ws.frames_in
        reg.counter("service_bytes_in_total").value = ws.bytes_in
        reg.counter("service_frames_out_total").value = ws.frames_out
        reg.counter("service_bytes_out_total").value = ws.bytes_out
        reg.counter("service_framing_errors_total").value = ws.framing_errors
        reg.counter("service_oversize_errors_total").value = ws.oversize_errors
        if self.durability is not None:
            plane = self.durability
            # 0 = serving, 1 = recovering (``harness top`` renders the label)
            reg.gauge("service_recovery_state").set(1.0 if self._recovering else 0.0)
            reg.gauge("service_generation").set(plane.generation)
            reg.gauge("service_journal_segment").set(plane.segment)
            reg.gauge("service_snapshot_age_seconds").set(plane.snapshot_age())
            reg.counter("service_journal_fsyncs_total").value = plane.fsyncs_total
            reg.counter("service_snapshots_total").value = plane.snapshots_total
            rec = self.recovery or {}
            reg.counter("service_ops_replayed_total").value = rec.get(
                "ops_replayed", 0
            )
            reg.counter("service_recovery_elements_total").value = rec.get(
                "elements_restored", 0
            )

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            raise ServiceError("service already started")
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        self._pump_task = asyncio.create_task(self._pump_loop(), name="queue-pump")
        if self.sampler is not None:
            self._sampler_task = asyncio.create_task(
                self.sampler.run(), name="telemetry-sampler"
            )

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        for task in list(self._watches.values()):
            task.cancel()
        self._watches.clear()
        if self._sampler_task is not None:
            self._sampler_task.cancel()
            try:
                await self._sampler_task
            except asyncio.CancelledError:
                pass
            self._sampler_task = None
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
            self._pump_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for session in list(self._sessions.values()):
            session.writer.close()
        if self.durability is not None:
            self.durability.close()

    async def __aenter__(self) -> "QueueService":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    # -- the pump: simulation <-> event loop hand-off ----------------------

    async def _pump_loop(self) -> None:
        """Advance the simulation whenever client ops are outstanding.

        The runner's :meth:`pump` hook processes a bounded batch of
        rounds/events, then control returns to the event loop so new
        frames can be read — the hand-off that lets one thread serve both
        the sockets and the simulated cluster.  When nothing is pending
        the epoch/iteration machinery still ticks, but throttled to
        ``idle_interval`` (the protocols run their coordination waves
        perpetually even with no buffered ops; unthrottled pumping would
        spin a core for nothing).
        """
        runner = self.heap.runner
        while True:
            if self._pending or self._barriers:
                rounds = runner.pump(self.pump_budget)
                self._m_pump_calls.inc()
                self._m_pump_rounds.inc(rounds)
                self._m_pump_budget.inc(self.pump_budget)
                self._resolve_landed()
                await asyncio.sleep(0)
            elif runner.is_quiescent():
                self._work.clear()
                await self._work.wait()
            else:
                self._work.clear()
                # A small idle budget: background coordination waves only
                # need to tick, and a big idle pump is CPU stolen from
                # whoever shares the machine — e.g. the sibling shards of
                # a federation, each of which is idle most of the time.
                rounds = runner.pump(self.idle_pump_budget)
                self._m_pump_calls.inc()
                self._m_pump_rounds.inc(rounds)
                self._m_pump_budget.inc(self.idle_pump_budget)
                self._resolve_landed()
                # Throttled, but *interruptible*: an op submitted during
                # the idle wait starts pumping immediately instead of
                # waiting out the interval (which would put a full
                # idle_interval on every lightly-loaded op's latency —
                # ruinous for federation shards, which each see only a
                # band's worth of traffic).
                try:
                    await asyncio.wait_for(self._work.wait(), self.idle_interval)
                except asyncio.TimeoutError:
                    pass

    def _resolve_landed(self) -> None:
        """Resolve every pending op whose span landed (handle done).

        Runs synchronously inside the pump task: between the landed-scan
        and the barrier service below no other coroutine can interleave,
        so a served barrier really does observe a drained, settled heap.
        """
        if self._pending:
            landed = [
                (op_id, op) for op_id, op in self._pending.items() if op.handle.done
            ]
            now = time.monotonic()
            if landed and self.durability is not None:
                # Journal-then-ack: the batch hits the journal (and the OS,
                # via flush) *before* any completion frame is queued, so an
                # op the client saw acked is on disk by construction.
                entries = [
                    self._external_record(op_id, op.handle) for op_id, op in landed
                ]
                nbytes, fsync_s = self.durability.append_batch(entries)
                self._gen_records.extend(entries)
                self._ops_since_snapshot += len(entries)
                self._m_journal_bytes.inc(nbytes)
                self._m_journal_appends.inc(len(entries))
                if fsync_s:
                    self._m_fsync_lat.observe(fsync_s)
            for op_id, op in landed:
                del self._pending[op_id]
                self.admission.release(op.session.session_id)
                self.ops_completed += 1
                kind = "insert" if op.handle.kind == INSERT else "deletemin"
                self._m_lat[kind].observe(now - op.submitted_at)
                self._m_ok[kind].inc()
                self._send_soon(op.session, self._completion_frame(op_id, op))
            # Keep the heap's own outstanding list pruned (it tracks every
            # submitted handle; the service resolves them out of band).
            self.heap.outstanding()
        if self._barriers and not self._pending:
            barriers, self._barriers = self._barriers, []
            now = time.monotonic()
            for barrier in barriers:
                self._m_barrier_wait.observe(now - barrier.enqueued_at)
                self._send_soon(barrier.session, self._serve_barrier(barrier))
        if (
            self.durability is not None
            and not self._pending
            and self._ops_since_snapshot >= self.durability.config.snapshot_every
        ):
            # A drained point: the history is settled and the census stable,
            # so the snapshot is a consistent cut by the same argument the
            # barrier reads lean on.
            duration = self.durability.rotate(
                self._prior_records + self._gen_records,
                sorted(self.heap.stored_uids()),
                state={"admission": self.admission.snapshot()},
            )
            self._ops_since_snapshot = 0
            self._m_snapshot_dur.observe(duration)

    def _external_record(self, op_id, handle) -> dict:
        """One acked op as a journal record (the wire history entry form).

        The serialization key gets a generation prefix ``[gen, *key]`` so
        the splice of all generations is one totally ordered history, and
        inserts carry their ``value`` (the in-simulation
        :class:`~repro.semantics.history.OpRecord` doesn't store it) so a
        recovered element comes back payload and all.
        """
        rec = self.heap.history.ops[op_id]
        entry: dict[str, Any] = {
            "op": list(op_id),
            "kind": rec.kind,
            "priority": rec.priority,
            "uid": rec.uid,
            "order": (
                [self.generation, *rec.order_key]
                if rec.order_key is not None
                else None
            ),
            "ret": rec.returned_uid,
            "bot": rec.returned_bot,
            "done": True,
        }
        if rec.kind == INSERT:
            entry["value"] = getattr(handle, "value", None)
        return entry

    def _completion_frame(self, op_id, op: _PendingOp) -> dict:
        handle = op.handle
        frame: dict[str, Any] = {
            "rid": op.rid,
            "status": "ok",
            "op": list(op_id),
            "latency": time.monotonic() - op.submitted_at,
        }
        if handle.kind == INSERT:
            frame["kind"] = "insert"
            frame["uid"] = handle.uid
            frame["stored"] = True
        else:
            frame["kind"] = "deletemin"
            if handle.is_bottom:
                frame["bot"] = True
            else:
                element = handle.result
                frame["bot"] = False
                frame["uid"] = element.uid
                frame["priority"] = element.priority
                frame["value"] = element.value
        return frame

    # -- barrier requests (drained-point reads) ----------------------------

    def _serve_barrier(self, barrier: _Barrier) -> dict:
        try:
            if barrier.op == "history":
                return self._history_frame(barrier.rid)
            if barrier.op == "kselect":
                return self._kselect_frame(barrier.rid, barrier.payload)
            if barrier.op == "census":
                return self._census_frame(barrier.rid)
            raise ServiceError(f"unknown barrier op {barrier.op!r}")
        except Exception as exc:  # noqa: BLE001 - reported to the client
            return _error(barrier.rid, f"{type(exc).__name__}: {exc}")

    def _history_frame(self, rid) -> dict:
        frame = {
            "rid": rid,
            "status": "ok",
            "history": self._external_history(),
            "stored_uids": sorted(self.heap.stored_uids()),
            "proto": self.proto,
            "order": getattr(self.heap, "order", "min"),
            "discipline": getattr(self.heap, "discipline", "fifo"),
        }
        if self.durability is not None:
            frame["generation"] = self.generation
        return frame

    def _external_history(self) -> dict:
        """The served history: live recorder, or the durable splice.

        With durability on, the truth is the journaled record stream —
        every prior generation's ops under their gen-prefixed order keys
        plus this generation's acked ops — and the bootstrap re-inserts
        are *excluded*: their elements are already accounted for by the
        prior generations' insert records, and served at a drained point
        the splice is complete (only landed ops exist, all journaled).
        """
        if self.durability is None:
            return self.heap.history.to_jsonable()
        return {"ops": self._prior_records + self._gen_records}

    def _census_frame(self, rid) -> dict:
        """The drained-point element count (the federation's rebalance input).

        Served at a barrier like ``history``, so the count is exact: no
        admitted op is unresolved, hence no element is in flight between
        "stored" and "returned".
        """
        return {
            "rid": rid,
            "status": "ok",
            "stored": len(self.heap.stored_uids()),
        }

    def _kselect_frame(self, rid, payload: dict) -> dict:
        """Run Section-4 KSelect over a snapshot of the stored elements."""
        from ..kselect import KSelectCluster

        k = payload.get("k")
        if not isinstance(k, int) or isinstance(k, bool):
            return _error(rid, "kselect needs an integer 'k'")
        keys = [
            element.key
            for node in self.heap.nodes.values()
            for _, element in node.store.items()
        ]
        m = len(keys)
        if not 1 <= k <= max(m, 0) or m == 0:
            return _error(rid, f"k={k} out of range [1, {m}]")
        snapshot = KSelectCluster(
            self.heap.n_nodes,
            seed=self.seed + 1 + next(self._kselect_queries),
        )
        snapshot.scatter(keys)
        priority, uid = snapshot.select(k)
        return {
            "rid": rid, "status": "ok", "k": k, "m": m,
            "priority": int(priority), "uid": int(uid),
        }

    # -- connections -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session = _Session(
            session_id=next(self._session_ids),
            name="",
            node=0,
            writer=writer,
        )
        session.node = session.session_id % self.heap.n_nodes
        self.admission.register(session.session_id)
        self._sessions[session.session_id] = session
        self._m_connections.inc()
        try:
            while True:
                try:
                    request = await read_frame(
                        reader, max_frame=self.max_frame, stats=self.wire_stats
                    )
                except WireError as exc:
                    # A per-connection framing error: tell the peer if the
                    # pipe still works, then drop only this connection.
                    await self._send_safe(session, _error(None, str(exc)))
                    break
                if request is None:
                    break  # clean EOF
                if not await self._dispatch(session, request):
                    break
        finally:
            session.closed = True
            self.admission.unregister(session.session_id)
            self._sessions.pop(session.session_id, None)
            self._drop_session_state(session)
            self._cancel_watches(session)
            writer.close()

    def _drop_session_state(self, session: _Session) -> None:
        """Forget pending ops and barriers of a departed session.

        The *protocol* ops themselves still run to completion inside the
        simulation (they are already part of the history); only the
        response futures die with the connection.

        With durability on, pending ops of the departed session are *kept*:
        they will land, be journaled, and join the served history — which
        element conservation requires, since their elements exist in the
        census.  Their completion frames die quietly (``_send_soon`` skips
        closed sessions) and their admission slots were already returned by
        ``unregister``; ``release`` on an unregistered session is a no-op.
        """
        if self.durability is None:
            for op_id in [
                op_id for op_id, op in self._pending.items() if op.session is session
            ]:
                del self._pending[op_id]
        self._barriers = [b for b in self._barriers if b.session is not session]

    async def _dispatch(self, session: _Session, request: dict) -> bool:
        """Handle one request frame; returns False to close the connection."""
        op = request.get("op")
        rid = request.get("rid")
        if op == "hello":
            session.name = str(request.get("client", ""))
            await self._send_safe(
                session,
                {
                    "rid": rid,
                    "status": "ok",
                    "proto": self.proto,
                    "n_nodes": self.heap.n_nodes,
                    "session": session.session_id,
                    "node": session.node,
                    "window": self.admission.window,
                },
            )
            return True
        if op == "ping":
            await self._send_safe(session, {"rid": rid, "status": "ok", "pong": True})
            return True
        if op == "stats":
            await self._send_safe(session, self._stats_frame(rid))
            return True
        if op == "metrics":
            await self._send_safe(session, self._metrics_frame(rid, request))
            return True
        if op == "watch":
            self._start_watch(session, rid, request)
            return True
        if op == "unwatch":
            stopped = self._stop_watch(session, request.get("watch_rid", rid))
            await self._send_safe(
                session, {"rid": rid, "status": "ok", "stopped": stopped}
            )
            return True
        if op == "close":
            await self._send_safe(session, {"rid": rid, "status": "ok", "bye": True})
            return False
        if op in ("history", "kselect", "census"):
            self._barriers.append(
                _Barrier(
                    session=session, rid=rid, op=op, payload=request,
                    enqueued_at=time.monotonic(),
                )
            )
            self._work.set()
            return True
        if op in ("insert", "deletemin"):
            await self._submit(session, op, rid, request)
            return True
        await self._send_safe(session, _error(rid, f"unknown op {op!r}"))
        return True

    async def _submit(self, session: _Session, op: str, rid, request: dict) -> None:
        decision = self.admission.try_admit(session.session_id)
        if not decision.admitted:
            self._m_shed.inc()
            self._m_retry_after.observe(decision.retry_after)
            await self._send_safe(
                session,
                {
                    "rid": rid,
                    "status": "retry_after",
                    "retry_after": decision.retry_after,
                    "reason": decision.reason,
                },
            )
            return
        try:
            if op == "insert":
                priority = request.get("priority")
                if not isinstance(priority, int) or isinstance(priority, bool):
                    raise ServiceError("insert needs an integer 'priority'")
                handle = self.heap.insert(
                    priority=priority, value=request.get("value"), at=session.node
                )
            else:
                handle = self.heap.delete_min(at=session.node)
        except Exception as exc:  # noqa: BLE001 - bad request, slot returned
            self.admission.release(session.session_id)
            self.ops_failed += 1
            self._m_err[op].inc()
            await self._send_safe(session, _error(rid, f"{type(exc).__name__}: {exc}"))
            return
        self._pending[handle.op_id] = _PendingOp(
            session=session, rid=rid, handle=handle, submitted_at=time.monotonic()
        )
        # A client submission buffers work on the node *without* a message,
        # so the runner's maybe-active pruning (is_quiescent) may have
        # dropped it; wake it explicitly or the pump would stall forever.
        self.heap.runner.wake(self.heap.middle_node(session.node).id)
        self._work.set()

    def _stats_frame(self, rid) -> dict:
        runner = self.heap.runner
        frame = {
            "rid": rid,
            "status": "ok",
            "proto": self.proto,
            "n_nodes": self.heap.n_nodes,
            "uptime": time.monotonic() - self._started_at,
            "ops_completed": self.ops_completed,
            "ops_failed": self.ops_failed,
            "pending": len(self._pending),
            "rounds": getattr(runner, "_round", None),
            "sim_time": runner.now,
            "admission": self.admission.snapshot(),
            "history_ops": len(self.heap.history),
            "wire": self.wire_stats.to_dict(),
        }
        if self.durability is not None:
            rec = self.recovery or {}
            frame["durability"] = self.durability.telemetry()
            frame["recovery"] = {
                "state": "recovering" if self._recovering else "serving",
                "generation": self.generation,
                "ops_replayed": rec.get("ops_replayed", 0),
                "elements_restored": rec.get("elements_restored", 0),
                "snapshot_age_seconds": self.durability.snapshot_age(),
            }
        return frame

    # -- telemetry scrape + watch stream -----------------------------------

    def _metrics_frame(self, rid, request: dict | None = None) -> dict:
        """One telemetry scrape: the full registry snapshot, wire form.

        With ``series: true`` the sampler's ring buffer rides along —
        the time-series consumers (JSONL export, ``harness top``
        sparklines) read history without keeping their own state.
        """
        self._m_scrapes.inc()
        frame: dict[str, Any] = {
            "rid": rid,
            "status": "ok",
            "proto": self.proto,
            "metrics": self.metrics.snapshot(),
        }
        if request and request.get("series") and self.sampler is not None:
            frame["series"] = self.sampler.series()
        return frame

    def _start_watch(self, session: _Session, rid, request: dict) -> None:
        """Begin a streaming subscription: one snapshot frame per interval.

        Every frame shares the subscribing request's ``rid`` and carries a
        ``watch`` sequence number; the stream ends with a ``watch_done``
        frame when ``count`` is exhausted, ``unwatch`` arrives, or the
        connection drops.
        """
        key = (session.session_id, rid)
        if key in self._watches:
            self._send_soon(session, _error(rid, f"watch {rid!r} already active"))
            return
        interval = request.get("interval", 1.0)
        count = request.get("count")
        if not isinstance(interval, (int, float)) or interval <= 0:
            self._send_soon(session, _error(rid, "watch needs a positive 'interval'"))
            return
        if count is not None and (
            not isinstance(count, int) or isinstance(count, bool) or count < 1
        ):
            self._send_soon(session, _error(rid, "watch 'count' must be a positive int"))
            return
        task = asyncio.get_running_loop().create_task(
            self._watch_loop(session, rid, float(interval), count),
            name=f"watch-{session.session_id}-{rid}",
        )
        self._watches[key] = task
        task.add_done_callback(lambda _t, _k=key: self._watches.pop(_k, None))

    def _stop_watch(self, session: _Session, rid) -> bool:
        task = self._watches.pop((session.session_id, rid), None)
        if task is None:
            return False
        task.cancel()
        return True

    def _cancel_watches(self, session: _Session) -> None:
        for key in [k for k in self._watches if k[0] == session.session_id]:
            self._watches.pop(key).cancel()

    async def _watch_loop(
        self, session: _Session, rid, interval: float, count: int | None
    ) -> None:
        sent = 0
        try:
            while count is None or sent < count:
                self._m_scrapes.inc()
                await self._send_safe(
                    session,
                    {
                        "rid": rid,
                        "status": "ok",
                        "watch": sent,
                        "t": time.time(),
                        "metrics": self.metrics.snapshot(),
                    },
                )
                sent += 1
                if session.closed:
                    return
                if count is not None and sent >= count:
                    break
                await asyncio.sleep(interval)
            await self._send_safe(
                session,
                {"rid": rid, "status": "ok", "watch_done": True, "sent": sent},
            )
        except asyncio.CancelledError:
            # unwatch / disconnect: best-effort terminal frame, then out.
            if not session.closed:
                self._send_soon(
                    session,
                    {"rid": rid, "status": "ok", "watch_done": True, "sent": sent},
                )
            raise

    # -- frame output ------------------------------------------------------

    def _send_soon(self, session: _Session, frame: dict) -> None:
        """Queue a frame from sync pump code (drain happens in a task)."""
        if session.closed:
            return
        task = asyncio.get_running_loop().create_task(self._send_safe(session, frame))
        self._send_tasks.add(task)
        task.add_done_callback(self._send_tasks.discard)

    async def _send_safe(self, session: _Session, frame: dict) -> None:
        if session.closed:
            return
        try:
            async with session.send_lock:
                await write_frame(
                    session.writer, frame, max_frame=RESPONSE_MAX_FRAME,
                    stats=self.wire_stats,
                )
        except (ConnectionError, WireError):
            session.closed = True


def _error(rid, message: str) -> dict:
    return {"rid": rid, "status": "error", "error": message}
