"""The federation's partition map: priority bands, versioned by epoch.

A federation partitions the priority space across shards.  The unit of
routing is the *priority band* ``[lo, hi)``: every priority routes to
exactly one band, bands are contiguous and cover the whole integer line
(the outermost bands are unbounded), and each band is homed on exactly
one shard process.  Because a priority class lives entirely inside one
shard, FIFO order within a priority is a per-shard property — the merged
cross-shard history can stay exactly serializable (see
:mod:`repro.service.federation`).

The map is an explicit, immutable, versioned object shared by the router
and every orchestration layer:

* ``epoch`` — bumped by every rebalance; consumers reject maps that move
  backwards, so a stale map can never overwrite a newer one;
* ``split`` / ``merge_adjacent`` — the two rebalance primitives; both
  return a *new* map with ``epoch + 1`` and never mutate the old one;
* ``to_jsonable`` / ``from_jsonable`` — the wire form, so router and
  shards (different OS processes) agree on routing byte-for-byte.

Routing is pure arithmetic on the cut points — no I/O, no randomness —
which is what makes the property suite in
``tests/test_service_partition.py`` (total, disjoint, deterministic
across processes) checkable by brute force.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from ..errors import ServiceError

__all__ = ["Band", "PartitionMap", "even_partition"]


@dataclass(frozen=True, slots=True)
class Band:
    """A half-open priority interval ``[lo, hi)``; ``None`` = unbounded."""

    shard_id: int
    lo: int | None
    hi: int | None

    def __post_init__(self) -> None:
        if not isinstance(self.shard_id, int) or self.shard_id < 0:
            raise ServiceError(f"shard_id must be a non-negative int: {self.shard_id!r}")
        for edge in (self.lo, self.hi):
            if edge is not None and (not isinstance(edge, int) or isinstance(edge, bool)):
                raise ServiceError(f"band edge must be int or None: {edge!r}")
        if self.lo is not None and self.hi is not None and self.lo >= self.hi:
            raise ServiceError(f"empty band [{self.lo}, {self.hi})")

    def contains(self, priority: int) -> bool:
        return (self.lo is None or priority >= self.lo) and (
            self.hi is None or priority < self.hi
        )

    def describe(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi})"


@dataclass(frozen=True)
class PartitionMap:
    """An epoch-versioned, total, disjoint priority-space partition.

    ``bands`` is ordered ascending; band index = the shard's *rank* (rank
    0 owns the best/lowest priorities), which the router's DeleteMin
    routing and the history merger both key on.
    """

    epoch: int
    bands: tuple[Band, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.epoch, int) or self.epoch < 0:
            raise ServiceError(f"epoch must be a non-negative int: {self.epoch!r}")
        if not self.bands:
            raise ServiceError("a partition map needs at least one band")
        ids = [b.shard_id for b in self.bands]
        if len(set(ids)) != len(ids):
            raise ServiceError(f"duplicate shard ids in partition map: {ids}")
        if self.bands[0].lo is not None or self.bands[-1].hi is not None:
            raise ServiceError("outermost bands must be unbounded (total coverage)")
        for left, right in zip(self.bands, self.bands[1:]):
            if left.hi is None or right.lo is None or left.hi != right.lo:
                raise ServiceError(
                    f"bands not contiguous: {left.describe()} then {right.describe()}"
                )
        # Internal cut points, for bisect routing.
        object.__setattr__(self, "_cuts", tuple(b.lo for b in self.bands[1:]))

    # -- routing -----------------------------------------------------------

    def rank_for(self, priority: int) -> int:
        """The band index that owns ``priority`` (total and disjoint)."""
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ServiceError(f"priorities are ints, got {priority!r}")
        return bisect_right(self._cuts, priority)  # type: ignore[attr-defined]

    def shard_for(self, priority: int) -> int:
        """The shard id that owns ``priority``."""
        return self.bands[self.rank_for(priority)].shard_id

    def rank_of(self, shard_id: int) -> int:
        for rank, band in enumerate(self.bands):
            if band.shard_id == shard_id:
                return rank
        raise ServiceError(f"shard {shard_id} not in partition map")

    def band_of(self, shard_id: int) -> Band:
        return self.bands[self.rank_of(shard_id)]

    @property
    def shard_ids(self) -> tuple[int, ...]:
        """Shard ids in band (rank) order."""
        return tuple(b.shard_id for b in self.bands)

    @property
    def n_shards(self) -> int:
        return len(self.bands)

    # -- rebalance primitives ---------------------------------------------

    def split(self, shard_id: int, at: int, new_shard_id: int) -> "PartitionMap":
        """Split ``shard_id``'s band at ``at``; the upper half moves to
        ``new_shard_id``.  Returns a new map with ``epoch + 1``."""
        if new_shard_id in self.shard_ids:
            raise ServiceError(f"shard id {new_shard_id} already in the map")
        rank = self.rank_of(shard_id)
        band = self.bands[rank]
        if not band.contains(at) or (band.lo is not None and at <= band.lo):
            raise ServiceError(
                f"split point {at} not strictly inside band {band.describe()}"
            )
        replacement = (
            Band(shard_id, band.lo, at),
            Band(new_shard_id, at, band.hi),
        )
        return PartitionMap(
            self.epoch + 1,
            self.bands[:rank] + replacement + self.bands[rank + 1 :],
        )

    def merge_adjacent(self, shard_id: int) -> "PartitionMap":
        """Merge ``shard_id``'s band with the next band up; the merged band
        keeps ``shard_id`` and the neighbour's shard is retired.  Returns a
        new map with ``epoch + 1``."""
        rank = self.rank_of(shard_id)
        if rank + 1 >= len(self.bands):
            raise ServiceError(f"shard {shard_id} owns the last band; nothing above")
        low, high = self.bands[rank], self.bands[rank + 1]
        merged = Band(shard_id, low.lo, high.hi)
        return PartitionMap(
            self.epoch + 1,
            self.bands[:rank] + (merged,) + self.bands[rank + 2 :],
        )

    # -- wire form ---------------------------------------------------------

    def to_jsonable(self) -> dict:
        return {
            "epoch": self.epoch,
            "bands": [
                {"shard": b.shard_id, "lo": b.lo, "hi": b.hi} for b in self.bands
            ],
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "PartitionMap":
        return cls(
            int(data["epoch"]),
            tuple(Band(int(b["shard"]), b["lo"], b["hi"]) for b in data["bands"]),
        )

    def describe(self) -> str:
        parts = ", ".join(
            f"{b.shard_id}:{b.describe()}" for b in self.bands
        )
        return f"epoch {self.epoch}: {parts}"


def even_partition(
    n_shards: int,
    lo: int,
    hi: int,
    shard_ids: tuple[int, ...] | None = None,
) -> PartitionMap:
    """An epoch-0 map cutting ``[lo, hi)`` into ``n_shards`` even bands.

    The outermost bands extend to ±∞ so every integer routes somewhere;
    ``[lo, hi)`` only positions the internal cut points.
    """
    if n_shards < 1:
        raise ServiceError("a federation needs at least one shard")
    if shard_ids is None:
        shard_ids = tuple(range(n_shards))
    if len(shard_ids) != n_shards:
        raise ServiceError(f"need {n_shards} shard ids, got {len(shard_ids)}")
    if n_shards == 1:
        return PartitionMap(0, (Band(shard_ids[0], None, None),))
    if hi - lo < n_shards:
        raise ServiceError(
            f"range [{lo}, {hi}) too narrow for {n_shards} non-empty bands"
        )
    cuts = [lo + round(i * (hi - lo) / n_shards) for i in range(1, n_shards)]
    edges: list[int | None] = [None, *cuts, None]
    bands = tuple(
        Band(shard_ids[i], edges[i], edges[i + 1]) for i in range(n_shards)
    )
    return PartitionMap(0, bands)
