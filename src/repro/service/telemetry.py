"""Process-local metrics for the live service: counters, gauges, histograms.

The telemetry plane has three constraints the rest of the service stack
leans on:

* **hot-path cost is one attribute increment** — a :class:`Counter` is a
  bare ``__slots__`` int wrapper, a :class:`Histogram` observation is one
  ``int.bit_length`` bucket index plus a dict increment, and the service
  caches the metric objects it touches per operation so steady-state
  traffic never performs a registry lookup;
* **everything is exactly mergeable** — a :class:`Histogram` buckets on
  integer powers of ``growth`` above ``base``, so two snapshots taken on
  different shards bucket identical values identically and
  :func:`merge_snapshots` can sum them *bucket-wise* with no loss; the
  federation router exploits this to answer one ``metrics`` scrape for N
  shard processes (counters summed, histograms merged, gauges re-labeled
  per shard);
* **the wire form is plain JSON** — :meth:`MetricsRegistry.snapshot`
  returns a dict that travels through the existing frame codec unchanged
  and round-trips through :meth:`Histogram.from_jsonable` for client-side
  quantile reads (``harness top`` renders p50/p99 from the wire form).

Keys follow the Prometheus convention ``name{label=value,...}`` with
labels sorted, so the exporter in :mod:`repro.service.export` is a
straight transliteration.

Nothing in the simulator imports this module; like the rest of
``repro.service`` it is strictly additive.
"""

from __future__ import annotations

import asyncio
import math
import time
from collections import deque
from typing import Any, Callable, Iterable

from ..errors import ServiceError

__all__ = [
    "SNAPSHOT_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "TelemetrySampler",
    "metric_key",
    "parse_metric_key",
    "merge_snapshots",
    "validate_snapshot",
]

#: Version stamp on every snapshot wire form (scrape consumers check it).
SNAPSHOT_VERSION = 1

#: Histogram defaults: 1 µs base, powers of two — 64 buckets span ~9 days.
DEFAULT_BASE = 1e-6
DEFAULT_GROWTH = 2.0


def metric_key(name: str, labels: dict[str, Any] | None = None) -> str:
    """Canonical key: ``name`` or ``name{a=1,b=x}`` with labels sorted."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_metric_key(key: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`metric_key`; label values come back as strings."""
    name, brace, rest = key.partition("{")
    if not brace:
        return key, {}
    if not rest.endswith("}"):
        raise ServiceError(f"malformed metric key {key!r}")
    labels: dict[str, str] = {}
    body = rest[:-1]
    if body:
        for part in body.split(","):
            label, eq, value = part.partition("=")
            if not eq:
                raise ServiceError(f"malformed label {part!r} in key {key!r}")
            labels[label] = value
    return name, labels


class Counter:
    """A monotonic counter.  ``inc`` is the entire hot path."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value (set/inc/dec; not monotonic)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n


class Histogram:
    """Log-bucketed histogram with an exactly mergeable wire form.

    Bucket ``i`` holds values in ``(base * growth**(i-1), base * growth**i]``;
    values at or below ``base`` land in bucket 0.  Because bucket edges
    depend only on ``(base, growth)``, two histograms with the same shape
    parameters bucket identical observations identically — so merging is
    a per-index integer sum, never a re-binning, and federated quantiles
    are exactly the quantiles of the pooled buckets.

    For the default ``growth=2`` shape the bucket index is computed with
    integer ``bit_length`` arithmetic (no ``log`` call on the hot path).
    """

    __slots__ = ("base", "growth", "counts", "sum", "count", "min", "max")

    def __init__(self, base: float = DEFAULT_BASE, growth: float = DEFAULT_GROWTH):
        if base <= 0 or growth <= 1.0:
            raise ServiceError(f"histogram needs base > 0, growth > 1; "
                               f"got base={base}, growth={growth}")
        self.base = float(base)
        self.growth = float(growth)
        self.counts: dict[int, int] = {}
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    # -- recording ---------------------------------------------------------

    def bucket_index(self, value: float) -> int:
        if value <= self.base:
            return 0
        if self.growth == 2.0:
            # ceil(log2(value/base)) via integer bit twiddling: exact for
            # the quotient's integer part, cheap, and allocation-free.
            q = value / self.base
            n = int(q)
            if n == q and n & (n - 1) == 0:  # exact power of two
                return n.bit_length() - 1
            return n.bit_length()
        return max(0, math.ceil(math.log(value / self.base, self.growth) - 1e-12))

    def observe(self, value: float) -> None:
        idx = self.bucket_index(value)
        self.counts[idx] = self.counts.get(idx, 0) + 1
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    # -- reading -----------------------------------------------------------

    def bucket_upper(self, idx: int) -> float:
        """The inclusive upper bound of bucket ``idx``."""
        return self.base * self.growth**idx

    def bucket_lower(self, idx: int) -> float:
        return 0.0 if idx == 0 else self.base * self.growth ** (idx - 1)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0..1), linearly interpolated within a bucket.

        Exact to within one bucket's width (a factor of ``growth``); the
        result is clamped to the recorded ``[min, max]`` so degenerate
        populations (n=1, all-equal) come back exact.
        """
        if self.count == 0:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ServiceError(f"quantile must be in [0, 1], got {q}")
        rank = q * self.count
        cumulative = 0
        for idx in sorted(self.counts):
            in_bucket = self.counts[idx]
            if cumulative + in_bucket >= rank:
                lo, hi = self.bucket_lower(idx), self.bucket_upper(idx)
                frac = (rank - cumulative) / in_bucket if in_bucket else 0.0
                value = lo + (hi - lo) * frac
                return min(max(value, self.min), self.max)
            cumulative += in_bucket
        return self.max

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    # -- wire form ---------------------------------------------------------

    def to_jsonable(self) -> dict:
        return {
            "base": self.base,
            "growth": self.growth,
            "counts": {str(i): n for i, n in sorted(self.counts.items())},
            "sum": self.sum,
            "count": self.count,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_jsonable(cls, payload: dict) -> "Histogram":
        hist = cls(base=payload["base"], growth=payload["growth"])
        hist.counts = {int(i): int(n) for i, n in payload["counts"].items()}
        hist.sum = float(payload["sum"])
        hist.count = int(payload["count"])
        hist.min = payload["min"] if payload.get("min") is not None else math.inf
        hist.max = payload["max"] if payload.get("max") is not None else -math.inf
        return hist

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` in, bucket-wise.  Shapes must match exactly."""
        if (other.base, other.growth) != (self.base, self.growth):
            raise ServiceError(
                f"cannot merge histograms of different shape: "
                f"({self.base}, {self.growth}) vs ({other.base}, {other.growth})"
            )
        for idx, n in other.counts.items():
            self.counts[idx] = self.counts.get(idx, 0) + n
        self.sum += other.sum
        self.count += other.count
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)


class MetricsRegistry:
    """All of one process's metrics, keyed Prometheus-style.

    ``counter``/``gauge``/``histogram`` are get-or-create: instrumented
    code fetches its metric objects once (at construction time, for hot
    paths) and then mutates them directly.  ``add_hook`` registers a
    callback run at snapshot time — the idiom for gauges whose truth
    lives elsewhere (pending-op depth, admission occupancy, wire byte
    tallies): rather than updating a gauge on every change, the hook
    reads the source once per scrape.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._hists: dict[str, Histogram] = {}
        self._hooks: list[Callable[[], None]] = []

    #: real registries answer True; the NullRegistry answers False so
    #: instrumented code can skip non-trivial label bookkeeping entirely.
    enabled = True

    def counter(self, name: str, **labels: Any) -> Counter:
        key = metric_key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = metric_key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(
        self,
        name: str,
        *,
        base: float = DEFAULT_BASE,
        growth: float = DEFAULT_GROWTH,
        **labels: Any,
    ) -> Histogram:
        key = metric_key(name, labels)
        metric = self._hists.get(key)
        if metric is None:
            metric = self._hists[key] = Histogram(base=base, growth=growth)
        return metric

    def add_hook(self, hook: Callable[[], None]) -> None:
        self._hooks.append(hook)

    def snapshot(self) -> dict:
        """The full wire form: hooks run first, then everything serializes."""
        for hook in self._hooks:
            hook()
        return {
            "v": SNAPSHOT_VERSION,
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "hists": {k: h.to_jsonable() for k, h in sorted(self._hists.items())},
        }


class _NullMetric:
    """Absorbs every mutation; reads as zero."""

    __slots__ = ()
    value = 0

    def inc(self, n: Any = 1) -> None:
        pass

    def dec(self, n: Any = 1) -> None:
        pass

    def set(self, value: Any) -> None:
        pass

    def observe(self, value: Any) -> None:
        pass


_NULL_METRIC = _NullMetric()


class NullRegistry:
    """The telemetry-off registry: same surface, every operation a no-op.

    ``QueueService(telemetry=False)`` swaps this in, which is how the
    overhead acceptance comparison (telemetry on vs off on the same seed)
    gets a genuinely zero-cost baseline without a single ``if`` in the
    instrumented code paths.
    """

    enabled = False

    def counter(self, name: str, **labels: Any) -> _NullMetric:
        return _NULL_METRIC

    gauge = counter
    histogram = counter  # type: ignore[assignment]

    def add_hook(self, hook: Callable[[], None]) -> None:
        pass

    def snapshot(self) -> dict:
        return {"v": SNAPSHOT_VERSION, "counters": {}, "gauges": {}, "hists": {}}


def _relabel(key: str, label: str, value: Any) -> str:
    name, labels = parse_metric_key(key)
    labels[label] = value
    return metric_key(name, labels)


def merge_snapshots(
    sources: dict[Any, dict], *, gauge_label: str = "shard"
) -> dict:
    """Federated aggregation over per-source snapshot wire forms.

    Counters with the same key are **summed** (monotonic sums stay
    monotonic), histograms with the same key are **merged bucket-wise**
    (exact — see :meth:`Histogram.merge`), and gauges are **re-labeled**
    with ``gauge_label=<source>`` (a point-in-time value summed across
    shards is a lie; labeled per shard it is the per-shard truth).
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    hists: dict[str, Histogram] = {}
    for source in sorted(sources, key=str):
        snap = sources[source]
        for key, value in snap.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + value
        for key, value in snap.get("gauges", {}).items():
            gauges[_relabel(key, gauge_label, source)] = value
        for key, payload in snap.get("hists", {}).items():
            incoming = Histogram.from_jsonable(payload)
            existing = hists.get(key)
            if existing is None:
                hists[key] = incoming
            else:
                existing.merge(incoming)
    return {
        "v": SNAPSHOT_VERSION,
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "hists": {k: h.to_jsonable() for k, h in sorted(hists.items())},
    }


def validate_snapshot(snapshot: Any) -> list[str]:
    """Schema-check one snapshot wire form; returns a list of problems."""
    problems: list[str] = []
    if not isinstance(snapshot, dict):
        return [f"snapshot must be a dict, got {type(snapshot).__name__}"]
    if snapshot.get("v") != SNAPSHOT_VERSION:
        problems.append(f"unknown snapshot version {snapshot.get('v')!r}")
    for section in ("counters", "gauges", "hists"):
        if not isinstance(snapshot.get(section), dict):
            problems.append(f"missing or non-dict section {section!r}")
    if problems:
        return problems
    for key, value in snapshot["counters"].items():
        if not isinstance(value, (int, float)) or value < 0:
            problems.append(f"counter {key!r} must be a non-negative number")
        _check_key(key, problems)
    for key, value in snapshot["gauges"].items():
        if not isinstance(value, (int, float)):
            problems.append(f"gauge {key!r} must be a number")
        _check_key(key, problems)
    for key, payload in snapshot["hists"].items():
        _check_key(key, problems)
        if not isinstance(payload, dict):
            problems.append(f"histogram {key!r} must be a dict")
            continue
        missing = {"base", "growth", "counts", "sum", "count"} - set(payload)
        if missing:
            problems.append(f"histogram {key!r} missing fields {sorted(missing)}")
            continue
        total = sum(payload["counts"].values())
        if total != payload["count"]:
            problems.append(
                f"histogram {key!r}: bucket total {total} != count {payload['count']}"
            )
        if payload["count"] > 0 and (
            payload.get("min") is None or payload.get("max") is None
        ):
            problems.append(f"histogram {key!r}: populated but min/max missing")
    return problems


def _check_key(key: Any, problems: list[str]) -> None:
    try:
        parse_metric_key(key)
    except (ServiceError, TypeError, AttributeError):
        problems.append(f"malformed metric key {key!r}")


class TelemetrySampler:
    """Snapshot the registry on a cadence into a bounded time-series ring.

    Each point is ``{"t": wall-clock, **snapshot}``; the deque's
    ``maxlen`` bounds memory however long the service runs.  The service
    runs :meth:`run` as a background asyncio task; tests and the
    ``metrics`` op read :meth:`series`.
    """

    def __init__(
        self,
        registry: MetricsRegistry | NullRegistry,
        *,
        interval: float = 1.0,
        capacity: int = 512,
    ):
        if interval <= 0:
            raise ServiceError(f"sampler interval must be positive, got {interval}")
        if capacity < 1:
            raise ServiceError(f"sampler capacity must be >= 1, got {capacity}")
        self.registry = registry
        self.interval = float(interval)
        self._ring: deque[dict] = deque(maxlen=int(capacity))

    def sample(self) -> dict:
        point = dict(self.registry.snapshot(), t=time.time())
        self._ring.append(point)
        return point

    def series(self) -> list[dict]:
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    async def run(self) -> None:
        while True:
            self.sample()
            await asyncio.sleep(self.interval)
