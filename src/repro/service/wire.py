"""Length-prefixed JSON frame codec for the live queue service.

One frame = a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding a single object.  The format is deliberately
boring: every client in any language can speak it, and every failure mode
has exactly one diagnosis:

* a length above ``max_frame`` → :class:`~repro.errors.WireError`
  *before* buffering the body (an attacker-sized prefix never allocates);
* a body that is not valid UTF-8 JSON, or not a JSON *object* →
  :class:`~repro.errors.WireError`;
* a connection that closes mid-frame → :class:`~repro.errors.WireError`
  from the stream helpers (the incremental :class:`FrameDecoder` simply
  reports the bytes it still needs).

The codec is pure: no I/O in :func:`encode_frame` / :class:`FrameDecoder`,
so it is unit-testable byte by byte; :func:`read_frame` /
:func:`write_frame` adapt it to asyncio streams.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Iterator

from ..errors import WireError

__all__ = [
    "DEFAULT_MAX_FRAME",
    "HEADER_SIZE",
    "WireStats",
    "encode_frame",
    "FrameDecoder",
    "read_frame",
    "write_frame",
]

#: Frames above this are rejected (1 MiB is orders of magnitude beyond any
#: legitimate request; history dumps negotiate a larger bound explicitly).
DEFAULT_MAX_FRAME = 1 << 20

#: Big-endian unsigned 32-bit length prefix.
HEADER_SIZE = 4


class WireStats:
    """Frame/byte/error tallies for one endpoint (shared across connections).

    Plain ``__slots__`` ints mutated inline — the codec stays pure and
    allocation-free; callers opt in by passing one ``stats`` object to the
    decode/read/write entry points.  The server aggregates a single
    instance across all its connections, which is what surfaces
    per-connection framing-error isolation (previously only logged) in
    ``stats`` frames and the telemetry plane.
    """

    __slots__ = (
        "frames_in", "bytes_in", "frames_out", "bytes_out",
        "framing_errors", "oversize_errors",
    )

    def __init__(self) -> None:
        self.frames_in = 0
        self.bytes_in = 0
        self.frames_out = 0
        self.bytes_out = 0
        #: all framing violations (oversize included)
        self.framing_errors = 0
        #: the subset rejected on the declared length alone
        self.oversize_errors = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "frames_in": self.frames_in,
            "bytes_in": self.bytes_in,
            "frames_out": self.frames_out,
            "bytes_out": self.bytes_out,
            "framing_errors": self.framing_errors,
            "oversize_errors": self.oversize_errors,
        }


def encode_frame(obj: dict[str, Any], max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """Encode one JSON object as a length-prefixed frame."""
    if not isinstance(obj, dict):
        raise WireError(f"frames carry JSON objects, not {type(obj).__name__}")
    body = json.dumps(obj, separators=(",", ":"), sort_keys=True).encode("utf-8")
    if len(body) > max_frame:
        raise WireError(f"frame of {len(body)} bytes exceeds max_frame={max_frame}")
    return len(body).to_bytes(HEADER_SIZE, "big") + body


class FrameDecoder:
    """Incremental frame parser: feed arbitrary byte chunks, get objects.

    Handles partial reads (a frame split across any number of chunks) and
    interleaved frames (many frames in one chunk).  Raises
    :class:`~repro.errors.WireError` on an oversized declared length or a
    malformed body; after an error the decoder is poisoned — the stream
    has lost framing and the connection must be dropped.
    """

    def __init__(
        self, max_frame: int = DEFAULT_MAX_FRAME, stats: WireStats | None = None
    ):
        self.max_frame = int(max_frame)
        self._buffer = bytearray()
        self._poisoned = False
        self.stats = stats

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet decoded (mid-frame progress)."""
        return len(self._buffer)

    def feed(self, data: bytes) -> Iterator[dict[str, Any]]:
        """Buffer ``data`` and yield every complete frame it finishes."""
        if self._poisoned:
            raise WireError("decoder poisoned by an earlier framing error")
        self._buffer.extend(data)
        while True:
            if len(self._buffer) < HEADER_SIZE:
                return
            length = int.from_bytes(self._buffer[:HEADER_SIZE], "big")
            if length > self.max_frame:
                self._poisoned = True
                if self.stats is not None:
                    self.stats.oversize_errors += 1
                    self.stats.framing_errors += 1
                raise WireError(
                    f"declared frame length {length} exceeds max_frame={self.max_frame}"
                )
            if len(self._buffer) < HEADER_SIZE + length:
                return
            body = bytes(self._buffer[HEADER_SIZE : HEADER_SIZE + length])
            del self._buffer[: HEADER_SIZE + length]
            frame = self._decode_body(body)
            if self.stats is not None:
                self.stats.frames_in += 1
                self.stats.bytes_in += HEADER_SIZE + length
            yield frame

    def _decode_body(self, body: bytes) -> dict[str, Any]:
        try:
            obj = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._poisoned = True
            if self.stats is not None:
                self.stats.framing_errors += 1
            raise WireError(f"frame body is not valid JSON: {exc}") from exc
        if not isinstance(obj, dict):
            self._poisoned = True
            if self.stats is not None:
                self.stats.framing_errors += 1
            raise WireError(
                f"frame body must be a JSON object, got {type(obj).__name__}"
            )
        return obj


async def read_frame(
    reader: asyncio.StreamReader,
    max_frame: int = DEFAULT_MAX_FRAME,
    stats: WireStats | None = None,
) -> dict[str, Any] | None:
    """Read one frame from an asyncio stream.

    Returns ``None`` on a clean EOF *between* frames; raises
    :class:`~repro.errors.WireError` on EOF mid-frame (the peer vanished
    halfway through a message) or any framing violation.  With ``stats``
    every outcome is tallied (frames/bytes on success, framing/oversize
    errors on violations).
    """
    try:
        header = await reader.readexactly(HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF on a frame boundary
        if stats is not None:
            stats.framing_errors += 1
        raise WireError("connection closed mid-header") from exc
    length = int.from_bytes(header, "big")
    if length > max_frame:
        if stats is not None:
            stats.oversize_errors += 1
            stats.framing_errors += 1
        raise WireError(f"declared frame length {length} exceeds max_frame={max_frame}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        if stats is not None:
            stats.framing_errors += 1
        raise WireError(
            f"connection closed mid-frame ({len(exc.partial)}/{length} bytes)"
        ) from exc
    frame = FrameDecoder(max_frame, stats=stats)._decode_body(body)
    if stats is not None:
        stats.frames_in += 1
        stats.bytes_in += HEADER_SIZE + length
    return frame


async def write_frame(
    writer: asyncio.StreamWriter,
    obj: dict[str, Any],
    max_frame: int = DEFAULT_MAX_FRAME,
    stats: WireStats | None = None,
) -> None:
    """Encode ``obj`` and write it to an asyncio stream, with backpressure."""
    payload = encode_frame(obj, max_frame=max_frame)
    writer.write(payload)
    if stats is not None:
        stats.frames_out += 1
        stats.bytes_out += len(payload)
    await writer.drain()
