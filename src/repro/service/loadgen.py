"""Open- and closed-loop load generation against a live queue service.

The generator drives a :class:`~repro.service.QueueService` through real
sockets with seeded workload mixes from :mod:`repro.workloads`, records
the **client-observed history** — what each client saw, when — and
reduces it to p50/p95/p99 latency and throughput.

Two arrival models:

* **closed loop** — each of ``n_clients`` keeps ``concurrency`` ops in
  flight and submits the next the moment one resolves; offered load
  adapts to service speed (the classic benchmark loop, and the model the
  acceptance run uses);
* **open loop** — ops arrive on a seeded Poisson schedule at ``rate``
  ops/s per client regardless of completions; offered load is constant,
  so saturation shows up as shedding + retry backoff instead of silent
  slowdown.

Post-hoc verification closes the loop with the paper: the server's
settled history (fetched at a drained point) is fed through the *full*
``repro.semantics`` checker stack, the element-conservation census, and a
cross-check that every client-observed outcome matches the record the
server serialized for that causal op id.
"""

from __future__ import annotations

import asyncio
import math
import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConsistencyError, ServiceError
from ..harness.tables import Table
from ..semantics.checkers import (
    check_element_conservation,
    check_heap_consistency,
    check_local_consistency,
    check_seap_history,
    check_settled,
    check_skeap_history,
)
from ..semantics.history import DELETE, INSERT, History
from ..sim.faults import FaultPlan
from ..sim.rng import derive_seed
from ..workloads.generators import PriorityDistribution, fixed_priorities
from .client import ClientResult, QueueClient

__all__ = [
    "LoadSpec",
    "Observation",
    "LatencyStats",
    "LoadReport",
    "SLOSpec",
    "SLOResult",
    "SLOReport",
    "parse_slo",
    "evaluate_slo",
    "run_loadtest",
    "verify_observed_history",
]


@dataclass(frozen=True)
class LoadSpec:
    """A reproducible load-generation run."""

    n_clients: int = 4
    ops_per_client: int = 50
    mode: str = "closed"  # "closed" | "open"
    concurrency: int = 1  # per-client in-flight window (closed loop)
    rate: float = 200.0  # per-client arrivals/sec (open loop)
    insert_fraction: float = 0.6
    priorities: PriorityDistribution = field(
        default_factory=lambda: fixed_priorities(3)
    )
    seed: int = 0
    timeout: float = 60.0
    #: resubmit budget for retryable ``unavailable`` answers (chaos runs)
    retry_unavailable: int = 0
    #: frame-level chaos on every client's socket (see QueueClient)
    fault_plan: FaultPlan | None = None
    #: wall seconds per simulated time unit for fault holds/retries
    fault_scale: float = 0.01

    def __post_init__(self):
        if self.n_clients < 1 or self.ops_per_client < 1:
            raise ServiceError("loadgen needs at least one client and one op")
        if self.mode not in ("closed", "open"):
            raise ServiceError(f"unknown loadgen mode {self.mode!r}")
        if self.concurrency < 1:
            raise ServiceError("concurrency must be >= 1")
        if self.rate <= 0:
            raise ServiceError("open-loop rate must be positive")
        if not 0.0 <= self.insert_fraction <= 1.0:
            raise ServiceError("insert_fraction must be in [0, 1]")


@dataclass(frozen=True, slots=True)
class Observation:
    """One client-observed operation outcome."""

    client: int
    kind: str  # "ins" | "del"
    op_id: tuple[int, int]
    uid: int | None
    priority: int | None
    bot: bool
    retries: int
    latency: float
    finished_at: float


@dataclass(frozen=True, slots=True)
class LatencyStats:
    """Percentiles over one latency population (seconds)."""

    count: int
    p50: float
    p95: float
    p99: float
    mean: float

    @staticmethod
    def percentile(sorted_vals: list[float], q: float) -> float:
        """The ``q``-th percentile by linear interpolation of the order
        statistics (numpy's default ``linear`` method, spelled out).

        Small samples are handled exactly: n=1 returns the value for any
        ``q``; n=2 interpolates between the two; n=3 puts p50 on the
        middle value.  The previous implementation delegated blindly,
        which hid that contract — it is now pinned by unit tests.
        """
        if not sorted_vals:
            return 0.0
        if not 0.0 <= q <= 100.0:
            raise ServiceError(f"percentile must be in [0, 100], got {q}")
        n = len(sorted_vals)
        if n == 1:
            return float(sorted_vals[0])
        rank = (q / 100.0) * (n - 1)
        lo = math.floor(rank)
        hi = min(lo + 1, n - 1)
        frac = rank - lo
        return float(sorted_vals[lo] + (sorted_vals[hi] - sorted_vals[lo]) * frac)

    @classmethod
    def over(cls, latencies: list[float]) -> "LatencyStats":
        if not latencies:
            return cls(0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(latencies)
        return cls(
            len(ordered),
            cls.percentile(ordered, 50),
            cls.percentile(ordered, 95),
            cls.percentile(ordered, 99),
            sum(ordered) / len(ordered),
        )


@dataclass
class LoadReport:
    """Everything one load-generation run produced."""

    spec: LoadSpec
    proto: str
    n_nodes: int
    observations: list[Observation]
    wall_seconds: float
    shed_total: int
    retry_total: int
    server_stats: dict
    history_payload: dict | None = None
    checks_passed: list[str] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return len(self.observations)

    @property
    def throughput(self) -> float:
        return self.completed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def latency(self, kind: str | None = None) -> LatencyStats:
        return LatencyStats.over(
            [o.latency for o in self.observations if kind is None or o.kind == kind]
        )

    def table(self) -> Table:
        """The latency/throughput table ``harness loadtest`` renders."""
        table = Table(
            "LT",
            f"{self.proto} service loadtest "
            f"(n={self.n_nodes}, {self.spec.n_clients} clients, {self.spec.mode} loop)",
            "client-observed latency and throughput over a real socket boundary",
            ["op", "count", "p50 ms", "p95 ms", "p99 ms", "mean ms"],
        )
        for label, kind in (("insert", INSERT), ("deletemin", DELETE), ("all", None)):
            stats = self.latency(kind)
            table.add_row(
                label, stats.count,
                stats.p50 * 1e3, stats.p95 * 1e3, stats.p99 * 1e3, stats.mean * 1e3,
            )
        table.add_note(
            f"throughput {self.throughput:.1f} ops/s over {self.wall_seconds:.2f} s; "
            f"shed {self.shed_total}, client retries {self.retry_total}"
        )
        admission = self.server_stats.get("admission", {})
        table.add_note(
            f"admission: window {admission.get('window')}, "
            f"admitted {admission.get('admitted')}, shed {admission.get('shed')}"
        )
        federation = self.server_stats.get("federation")
        if federation:
            dead = federation.get("dead") or []
            table.add_note(
                f"federation: {len(federation.get('shards', []))} shards, "
                f"map epoch {federation.get('epoch')}"
                + (f", dead shards {dead}" if dead else "")
            )
        if self.checks_passed:
            table.verdict = "CHECKS PASS: " + ", ".join(self.checks_passed)
        return table


# -- SLO evaluation ---------------------------------------------------------

#: Objectives the evaluator knows, with their default comparison
#: direction: latency/shedding bound from above, throughput from below.
SLO_METRICS = {
    "p50": "<=",
    "p95": "<=",
    "p99": "<=",
    "mean": "<=",
    "shed_rate": "<=",
    "retry_rate": "<=",
    "error_rate": "<=",
    "throughput": ">=",
}


@dataclass(frozen=True, slots=True)
class SLOSpec:
    """One objective: ``metric op threshold``.

    Latency metrics (``p50``/``p95``/``p99``/``mean``) are in seconds
    over all client-observed ops; ``shed_rate``/``retry_rate`` are
    fractions of offered requests; ``error_rate`` is the server-side
    failed fraction; ``throughput`` is completed ops/s.
    """

    metric: str
    threshold: float
    op: str = ""  # "<=" | ">="; "" means the metric's default direction

    def __post_init__(self):
        if self.metric not in SLO_METRICS:
            raise ServiceError(
                f"unknown SLO metric {self.metric!r}; "
                f"available: {sorted(SLO_METRICS)}"
            )
        if self.op not in ("", "<=", ">="):
            raise ServiceError(f"SLO comparison must be <= or >=, got {self.op!r}")

    @property
    def direction(self) -> str:
        return self.op or SLO_METRICS[self.metric]


@dataclass(frozen=True, slots=True)
class SLOResult:
    """One evaluated objective."""

    metric: str
    direction: str
    threshold: float
    observed: float
    passed: bool

    def to_jsonable(self) -> dict:
        return {
            "metric": self.metric,
            "direction": self.direction,
            "threshold": self.threshold,
            "observed": self.observed,
            "passed": self.passed,
        }


@dataclass
class SLOReport:
    """The pass/fail verdict over every declared objective."""

    results: list[SLOResult]

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    def to_jsonable(self) -> dict:
        return {
            "passed": self.passed,
            "objectives": [r.to_jsonable() for r in self.results],
        }

    def table(self) -> Table:
        table = Table(
            "SLO",
            "service-level objectives over the loadtest run",
            "each declared objective against its client-observed value",
            ["metric", "objective", "observed", "verdict"],
        )
        for r in self.results:
            unit = " s" if r.metric in ("p50", "p95", "p99", "mean") else (
                " ops/s" if r.metric == "throughput" else ""
            )
            table.add_row(
                r.metric,
                f"{r.direction} {r.threshold:g}{unit}",
                f"{r.observed:.6g}{unit}",
                "pass" if r.passed else "FAIL",
            )
        table.verdict = (
            "SLO PASS: all objectives met"
            if self.passed
            else "SLO FAIL: "
            + ", ".join(r.metric for r in self.results if not r.passed)
        )
        return table


def parse_slo(text: str) -> list[SLOSpec]:
    """Parse ``--slo p99=0.05,shed_rate=0.2,throughput>=100``.

    Each comma-separated clause is ``metric=value`` (the metric's default
    direction) or an explicit ``metric<=value`` / ``metric>=value``.
    """
    specs: list[SLOSpec] = []
    for clause in text.split(","):
        clause = clause.strip()
        if not clause:
            continue
        for op in ("<=", ">="):
            if op in clause:
                metric, _, value = clause.partition(op)
                break
        else:
            op = ""
            metric, eq, value = clause.partition("=")
            if not eq:
                raise ServiceError(f"malformed SLO clause {clause!r}")
        try:
            threshold = float(value)
        except ValueError:
            raise ServiceError(
                f"SLO clause {clause!r}: threshold {value!r} is not a number"
            ) from None
        specs.append(SLOSpec(metric=metric.strip(), threshold=threshold, op=op))
    if not specs:
        raise ServiceError(f"no SLO objectives in {text!r}")
    return specs


def evaluate_slo(report: LoadReport, specs: list[SLOSpec]) -> SLOReport:
    """Evaluate every objective against one load report."""
    latency = report.latency()
    offered = report.completed + report.shed_total
    server_completed = report.server_stats.get("ops_completed", 0) or 0
    server_failed = report.server_stats.get("ops_failed", 0) or 0
    observed_by_metric = {
        "p50": latency.p50,
        "p95": latency.p95,
        "p99": latency.p99,
        "mean": latency.mean,
        "shed_rate": report.shed_total / offered if offered else 0.0,
        "retry_rate": report.retry_total / offered if offered else 0.0,
        "error_rate": (
            server_failed / (server_completed + server_failed)
            if server_completed + server_failed
            else 0.0
        ),
        "throughput": report.throughput,
    }
    results = []
    for spec in specs:
        observed = observed_by_metric[spec.metric]
        passed = (
            observed <= spec.threshold
            if spec.direction == "<="
            else observed >= spec.threshold
        )
        results.append(
            SLOResult(
                metric=spec.metric,
                direction=spec.direction,
                threshold=spec.threshold,
                observed=observed,
                passed=passed,
            )
        )
    return SLOReport(results=results)


def _client_ops(spec: LoadSpec, client_idx: int) -> list[tuple[str, int | None]]:
    """The seeded op stream for one client: ``(kind, priority)`` pairs."""
    rng = np.random.default_rng(derive_seed(spec.seed, "loadgen", client_idx))
    kinds = rng.random(spec.ops_per_client) < spec.insert_fraction
    if spec.insert_fraction > 0:
        kinds[0] = True  # lead with an insert, as repro.workloads does
    priorities = spec.priorities.sample(rng, spec.ops_per_client)
    return [
        ("ins", int(priorities[i])) if kinds[i] else ("del", None)
        for i in range(spec.ops_per_client)
    ]


def _observe(client_idx: int, kind: str, result: ClientResult) -> Observation:
    return Observation(
        client=client_idx,
        kind=kind,
        op_id=result.op_id,
        uid=result.uid,
        priority=result.priority,
        bot=result.bot,
        retries=result.retries,
        latency=result.latency,
        finished_at=time.monotonic(),
    )


async def _run_one_op(
    client: QueueClient, spec: LoadSpec, client_idx: int, op: tuple[str, int | None]
) -> Observation:
    kind, priority = op
    if kind == "ins":
        result = await client.insert(priority, value=None, timeout=spec.timeout)
    else:
        result = await client.delete_min(timeout=spec.timeout)
    return _observe(client_idx, kind, result)


async def _drive_closed(
    client: QueueClient, spec: LoadSpec, client_idx: int, out: list[Observation]
) -> None:
    ops = _client_ops(spec, client_idx)
    cursor = iter(ops)

    async def worker() -> None:
        for op in cursor:  # workers share the stream: `concurrency` in flight
            out.append(await _run_one_op(client, spec, client_idx, op))

    await asyncio.gather(*(worker() for _ in range(spec.concurrency)))


async def _drive_open(
    client: QueueClient, spec: LoadSpec, client_idx: int, out: list[Observation]
) -> None:
    ops = _client_ops(spec, client_idx)
    rng = np.random.default_rng(derive_seed(spec.seed, "loadgen-arrivals", client_idx))
    arrivals = np.cumsum(rng.exponential(1.0 / spec.rate, size=len(ops)))
    started = time.monotonic()
    tasks = []
    for op, due in zip(ops, arrivals):
        now = time.monotonic() - started
        if due > now:
            await asyncio.sleep(due - now)
        tasks.append(
            asyncio.create_task(_run_one_op(client, spec, client_idx, op))
        )
    for result in await asyncio.gather(*tasks):
        out.append(result)


async def run_loadtest(
    host: str,
    port: int,
    spec: LoadSpec,
    *,
    check: bool = True,
) -> LoadReport:
    """Drive a live service with ``spec``; optionally verify the history."""
    clients: list[QueueClient] = []
    try:
        for i in range(spec.n_clients):
            clients.append(
                await QueueClient.connect(
                    host, port,
                    client=f"loadgen-{i}",
                    timeout=spec.timeout,
                    retry_jitter_seed=derive_seed(spec.seed, "loadgen-jitter", i),
                    faults=spec.fault_plan,
                    fault_src=i + 1,  # plan channels: src = 1-based client
                    fault_time_scale=spec.fault_scale,
                    retry_unavailable=spec.retry_unavailable,
                )
            )
        observations: list[Observation] = []
        driver = _drive_closed if spec.mode == "closed" else _drive_open
        started = time.monotonic()
        await asyncio.gather(
            *(driver(client, spec, i, observations) for i, client in enumerate(clients))
        )
        wall = time.monotonic() - started
        server_stats = await clients[0].stats()
        history_payload = await clients[0].history() if check else None
    finally:
        for client in clients:
            await client.aclose()

    report = LoadReport(
        spec=spec,
        proto=server_stats["proto"],
        n_nodes=server_stats["n_nodes"],
        observations=observations,
        wall_seconds=wall,
        shed_total=sum(c.shed_seen for c in clients),
        retry_total=sum(c.retry_total for c in clients),
        server_stats=server_stats,
        history_payload=history_payload,
    )
    if check:
        report.checks_passed = verify_observed_history(report)
    return report


def verify_observed_history(report: LoadReport) -> list[str]:
    """Run the full semantics stack over the run; returns check names.

    Raises :class:`~repro.errors.ConsistencyError` on the first
    violation — a load test that fails its consistency checks *failed*,
    whatever its latency numbers say.
    """
    payload = report.history_payload
    if payload is None:
        raise ServiceError("report carries no history (loadtest ran check=False)")
    history = History.from_jsonable(payload["history"])
    passed: list[str] = []

    # 1. Client-observed outcomes match the server's serialized records.
    for obs in report.observations:
        rec = history.ops.get(obs.op_id)
        if rec is None:
            raise ConsistencyError(
                f"client observed op {obs.op_id} that the server never recorded"
            )
        if obs.kind == "ins":
            if rec.kind != INSERT or rec.uid != obs.uid:
                raise ConsistencyError(
                    f"insert {obs.op_id}: client saw uid {obs.uid}, "
                    f"server recorded {rec.kind}/{rec.uid}"
                )
        else:
            if rec.kind != DELETE or rec.returned_bot != obs.bot or (
                not obs.bot and rec.returned_uid != obs.uid
            ):
                raise ConsistencyError(
                    f"deletemin {obs.op_id}: client saw "
                    f"{'⊥' if obs.bot else obs.uid}, server recorded "
                    f"{'⊥' if rec.returned_bot else rec.returned_uid}"
                )
    passed.append("client-vs-server")

    # 2. The protocol's full consistency bundle over the settled history.
    proto = payload["proto"]
    if proto == "skeap":
        if payload.get("discipline", "fifo") == "fifo":
            check_skeap_history(history, order=payload.get("order", "min"))
            passed.append("skeap(SC+heap+serial)")
        else:
            check_settled(history)
            check_local_consistency(history)
            check_heap_consistency(history, order=payload.get("order", "min"))
            passed.append("skeap(SC+heap)")
    elif proto == "seap":
        check_seap_history(history)
        passed.append("seap(serializable+heap)")
    else:
        check_settled(history)
        check_heap_consistency(history)
        passed.append("heap-consistency")

    # 3. Element conservation against the drained-point census.
    check_element_conservation(history, payload["stored_uids"])
    passed.append("conservation")
    return passed
