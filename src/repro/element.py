"""Heap elements and their total order.

The paper draws elements from a universe :math:`\\mathcal{E}` where each
element carries a priority from a totally ordered universe
:math:`\\mathcal{P}` and ties between equal priorities are broken by a
tiebreaker.  We make the tiebreaker explicit: every element carries a
globally unique integer ``uid`` and elements are ordered by the pair
``(priority, uid)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Element", "PrioKey", "BOTTOM"]

#: Sort key type used everywhere ranks are computed.
PrioKey = tuple[int, int]


@dataclass(frozen=True, slots=True)
class Element:
    """A heap element: a priority, a unique id, and an opaque payload.

    Ordering is total via ``(priority, uid)``; two distinct elements never
    compare equal, which is what the paper's tiebreaker assumption provides.
    """

    priority: int
    uid: int
    value: Any = field(default=None, compare=False)

    @property
    def key(self) -> PrioKey:
        """The total-order sort key ``(priority, uid)``."""
        return (self.priority, self.uid)

    def __lt__(self, other: "Element") -> bool:
        return self.key < other.key

    def __le__(self, other: "Element") -> bool:
        return self.key <= other.key

    def __gt__(self, other: "Element") -> bool:
        return self.key > other.key

    def __ge__(self, other: "Element") -> bool:
        return self.key >= other.key

    def size_bits(self) -> int:
        """Encoded size used for message-size accounting.

        An element is its priority plus its uid; each is an integer encoded
        in its binary width (the paper encodes priorities from
        ``{1, ..., n^q}`` in ``O(log n)`` bits).
        """
        return max(self.priority.bit_length(), 1) + max(self.uid.bit_length(), 1)


class _Bottom:
    """Singleton for the paper's :math:`\\perp` (empty-heap DeleteMin result)."""

    _instance: "_Bottom | None" = None

    def __new__(cls) -> "_Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "BOTTOM"

    def __bool__(self) -> bool:
        return False


#: The value returned by DeleteMin on an empty heap.
BOTTOM = _Bottom()
