"""Consistency semantics: histories, reference heaps, machine checkers."""

from .checkers import (
    check_element_conservation,
    check_heap_consistency,
    check_local_consistency,
    check_seap_history,
    check_seap_sc_history,
    check_settled,
    check_skack_history,
    check_skeap_history,
    replay_fifo,
    replay_lifo,
    replay_ordered,
    replay_ordered_exact,
)
from .history import DELETE, INSERT, History, OpId, OpRecord
from .reference import FifoPriorityHeap, OrderedHeap, ReferenceStack

__all__ = [
    "DELETE",
    "FifoPriorityHeap",
    "History",
    "INSERT",
    "OpId",
    "OpRecord",
    "OrderedHeap",
    "ReferenceStack",
    "check_element_conservation",
    "check_heap_consistency",
    "check_local_consistency",
    "check_seap_history",
    "check_seap_sc_history",
    "check_settled",
    "check_skack_history",
    "check_skeap_history",
    "replay_fifo",
    "replay_lifo",
    "replay_ordered",
    "replay_ordered_exact",
]
