"""Sequential reference heaps used to replay candidate serializations.

If executing a history's operations *serially* in the candidate order ≺
against one of these reference heaps produces exactly the returns the
distributed protocol produced, the history is equivalent to a serial
execution — the definition of serializability.
"""

from __future__ import annotations

import heapq
from collections import deque

from ..errors import ConsistencyError

__all__ = ["FifoPriorityHeap", "OrderedHeap", "ReferenceStack"]


class FifoPriorityHeap:
    """Min-heap over priorities with FIFO tie-breaking within a priority.

    This is the sequential object Skeap implements: the anchor's
    ``[first_p, last_p]`` intervals serve positions of each priority in
    insertion order, lowest priority first.  ``order="max"`` inverts the
    priority order (the paper's MaxHeap remark after Definition 1.2).
    """

    def __init__(self, order: str = "min") -> None:
        if order not in ("min", "max"):
            raise ConsistencyError(f"order must be 'min' or 'max', got {order!r}")
        self.order = order
        self._queues: dict[int, deque[int]] = {}

    def insert(self, priority: int, uid: int) -> None:
        self._queues.setdefault(priority, deque()).append(uid)

    def delete_min(self) -> tuple[int, int] | None:
        """Pop ``(priority, uid)`` — the extremal priority — or None."""
        if not self._queues:
            return None
        p = min(self._queues) if self.order == "min" else max(self._queues)
        q = self._queues[p]
        uid = q.popleft()
        if not q:
            del self._queues[p]
        return (p, uid)

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())


class ReferenceStack:
    """A plain LIFO stack of uids — the serial object Skack implements."""

    def __init__(self) -> None:
        self._items: list[int] = []

    def push(self, uid: int) -> None:
        self._items.append(uid)

    def pop(self) -> int | None:
        return self._items.pop() if self._items else None

    def __len__(self) -> int:
        return len(self._items)


class OrderedHeap:
    """Min-heap over the full element order ``(priority, uid)``.

    The sequential object Seap implements: DeleteMin returns *some* element
    of minimal priority; the uid tiebreaker makes replay deterministic.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int]] = []

    def insert(self, priority: int, uid: int) -> None:
        heapq.heappush(self._heap, (priority, uid))

    def delete_min(self) -> tuple[int, int] | None:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)

    def peek(self) -> tuple[int, int] | None:
        return self._heap[0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)


def require(cond: bool, message: str) -> None:
    """Raise :class:`ConsistencyError` with ``message`` unless ``cond``."""
    if not cond:
        raise ConsistencyError(message)
