"""Machine-checked consistency: Definitions 1.1 and 1.2 of the paper.

Each checker takes a *settled* :class:`~repro.semantics.history.History`
(every submitted op completed) and raises
:class:`~repro.errors.ConsistencyError` on violation.

* :func:`check_local_consistency` — per node, the candidate serialization ≺
  respects local issue order (the extra condition that upgrades
  serializability to sequential consistency).
* :func:`check_heap_consistency` — the three properties of Definition 1.2
  for the matching M established by the protocol, verified by a single
  sweep over ≺.
* :func:`replay_fifo` / :func:`replay_ordered` — serial re-execution
  against a sequential reference heap; exact equivalence witnesses
  serializability.
* :func:`check_skeap_history` / :func:`check_seap_history` — the full
  bundles claimed by Theorems 3.2 and 5.1.
"""

from __future__ import annotations

from collections import defaultdict

from ..errors import ConsistencyError
from .history import DELETE, INSERT, History, OpRecord
from .reference import FifoPriorityHeap, OrderedHeap, ReferenceStack, require

__all__ = [
    "check_settled",
    "check_local_consistency",
    "check_heap_consistency",
    "check_element_conservation",
    "replay_fifo",
    "replay_ordered",
    "replay_ordered_exact",
    "replay_lifo",
    "check_skeap_history",
    "check_skack_history",
    "check_seap_history",
    "check_seap_sc_history",
]


def check_settled(history: History) -> None:
    """Every submitted operation completed and was serialized."""
    for rec in history.ops.values():
        require(rec.completed, f"op {rec.op_id} never completed")
        require(rec.order_key is not None, f"op {rec.op_id} never serialized")


def check_local_consistency(history: History) -> None:
    """For each node v: OP_{v,i} ≺ OP_{v,i+1} (Definition 1.1)."""
    by_node: dict[int, list[OpRecord]] = defaultdict(list)
    for rec in history.ops.values():
        if rec.order_key is not None:
            by_node[rec.node].append(rec)
    for node, recs in by_node.items():
        recs.sort(key=lambda r: r.seq)
        for a, b in zip(recs, recs[1:]):
            require(
                a.order_key < b.order_key,
                f"node {node}: local order violated between ops "
                f"{a.op_id} and {b.op_id}",
            )


def check_heap_consistency(history: History, order: str = "min") -> None:
    """The three matching properties of Definition 1.2, via one sweep of ≺.

    ``order="max"`` checks the inverted (MaxHeap) variant the paper notes
    after Definition 1.2: property (3) then forbids an unmatched insert of
    strictly *greater* priority before a matched delete.
    """
    ops = history.serialized_ops()
    matched_delete_of_uid: dict[int, OpRecord] = {}
    for rec in ops:
        if rec.kind == DELETE and rec.returned_uid is not None:
            require(
                rec.returned_uid not in matched_delete_of_uid,
                f"element {rec.returned_uid} returned twice",
            )
            matched_delete_of_uid[rec.returned_uid] = rec

    # Property (1): Ins ≺ Del for every matched pair.
    for uid, del_rec in matched_delete_of_uid.items():
        ins_rec = history.insert_of_uid(uid)
        require(ins_rec.order_key is not None, f"matched insert {uid} unserialized")
        require(
            ins_rec.order_key < del_rec.order_key,
            f"element {uid} deleted before its insert in ≺",
        )

    # Properties (2) and (3): sweep ≺ once.  In max order "better" means
    # a greater priority.
    better = (lambda a, b: a < b) if order == "min" else (lambda a, b: a > b)
    open_matched = 0  # matched inserts whose delete lies ahead
    best_unmatched_priority: int | None = None  # over unmatched inserts seen
    for rec in ops:
        if rec.kind == INSERT:
            if rec.uid in matched_delete_of_uid:
                open_matched += 1
            else:
                if (
                    best_unmatched_priority is None
                    or better(rec.priority, best_unmatched_priority)
                ):
                    best_unmatched_priority = rec.priority
        else:  # DELETE
            if rec.returned_uid is None:
                require(rec.returned_bot, f"delete {rec.op_id} neither matched nor ⊥")
                # Property (2): a ⊥ delete must not sit between a matched
                # insert and its (later) matched delete.
                require(
                    open_matched == 0,
                    f"⊥ delete {rec.op_id} while {open_matched} matched "
                    f"element(s) were in the heap",
                )
            else:
                ins_rec = history.insert_of_uid(rec.returned_uid)
                open_matched -= 1
                # Property (3): no unmatched insert of strictly better
                # priority precedes this delete.
                if best_unmatched_priority is not None:
                    require(
                        not better(best_unmatched_priority, ins_rec.priority),
                        f"delete {rec.op_id} returned priority "
                        f"{ins_rec.priority} although an unmatched insert of "
                        f"priority {best_unmatched_priority} preceded it",
                    )


def check_element_conservation(history: History, stored_uids) -> None:
    """No element lost or duplicated (T13's churn claim, machine-checked).

    At a quiescent point, every inserted element must be accounted for
    exactly once: either returned by exactly one DeleteMin or still
    stored in the DHT — never both, never neither, never twice.
    ``stored_uids`` is the cluster's current storage census
    (:meth:`~repro.cluster.OverlayCluster.stored_uids`).
    """
    all_inserted = {rec.uid for rec in history.ops.values() if rec.kind == INSERT}
    inserted = {
        rec.uid for rec in history.ops.values() if rec.kind == INSERT and rec.completed
    }
    returned: set[int] = set()
    for rec in history.ops.values():
        if rec.kind == DELETE and rec.returned_uid is not None:
            require(
                rec.returned_uid not in returned,
                f"element {rec.returned_uid} returned twice",
            )
            require(
                rec.returned_uid in all_inserted,
                f"delete returned unknown element {rec.returned_uid}",
            )
            returned.add(rec.returned_uid)
    stored = list(stored_uids)
    stored_set = set(stored)
    require(
        len(stored) == len(stored_set),
        "an element is stored more than once (duplication)",
    )
    overlap = stored_set & returned
    require(
        not overlap,
        f"elements both returned and still stored: {sorted(overlap)[:5]}",
    )
    missing = inserted - returned - stored_set
    require(
        not missing,
        f"elements lost (inserted, never returned, not stored): "
        f"{sorted(missing)[:5]}",
    )
    phantom = stored_set - inserted
    require(
        not phantom,
        f"stored elements never inserted: {sorted(phantom)[:5]}",
    )


def replay_fifo(history: History, order: str = "min") -> None:
    """Serial replay against the FIFO-within-priority reference heap.

    Exact, pairwise equivalence: every DeleteMin must return exactly the
    element the sequential heap returns — the strongest witness that
    Skeap's distributed execution *is* the serial one.
    """
    heap = FifoPriorityHeap(order=order)
    for rec in history.serialized_ops():
        if rec.kind == INSERT:
            heap.insert(rec.priority, rec.uid)
        else:
            expected = heap.delete_min()
            if expected is None:
                require(
                    rec.returned_bot,
                    f"delete {rec.op_id} returned an element from an empty heap",
                )
            else:
                require(
                    rec.returned_uid == expected[1],
                    f"delete {rec.op_id} returned uid {rec.returned_uid}, "
                    f"serial execution returns {expected[1]}",
                )


def replay_ordered(history: History) -> None:
    """Serial replay against the (priority, uid)-ordered reference heap.

    Priority-level equivalence: each DeleteMin must return an element whose
    *priority* matches the serial execution's.  (Within a Seap DeleteMin
    phase the pairing of equal-priority elements to requests is arbitrary,
    so uid-exact comparison is deliberately not required.)
    """
    heap = OrderedHeap()
    for rec in history.serialized_ops():
        if rec.kind == INSERT:
            heap.insert(rec.priority, rec.uid)
        else:
            expected = heap.delete_min()
            if expected is None:
                require(
                    rec.returned_bot,
                    f"delete {rec.op_id} returned an element from an empty heap",
                )
            else:
                require(
                    not rec.returned_bot,
                    f"delete {rec.op_id} returned ⊥, serial execution "
                    f"returns uid {expected[1]}",
                )
                got = history.insert_of_uid(rec.returned_uid)
                require(
                    got.priority == expected[0],
                    f"delete {rec.op_id} returned priority {got.priority}, "
                    f"serial execution returns {expected[0]}",
                )


def replay_ordered_exact(history: History) -> None:
    """Serial replay against the ordered reference heap, uid-exact.

    The strongest serial-equivalence witness: every DeleteMin returns
    exactly the element a sequential (priority, uid)-ordered heap pops.
    Seap-SC satisfies this because positions equal exact global ranks;
    plain Seap only satisfies the priority-level :func:`replay_ordered`.
    """
    heap = OrderedHeap()
    for rec in history.serialized_ops():
        if rec.kind == INSERT:
            heap.insert(rec.priority, rec.uid)
        else:
            expected = heap.delete_min()
            if expected is None:
                require(
                    rec.returned_bot,
                    f"delete {rec.op_id} returned an element from an empty heap",
                )
            else:
                require(
                    rec.returned_uid == expected[1],
                    f"delete {rec.op_id} returned uid {rec.returned_uid}, "
                    f"serial execution returns uid {expected[1]}",
                )


def replay_lifo(history: History) -> None:
    """Serial replay against a plain stack — the Skack (FSS18b) semantics.

    Every Pop must return exactly the element a sequential stack returns
    when operations execute in ≺ order.
    """
    stack = ReferenceStack()
    for rec in history.serialized_ops():
        if rec.kind == INSERT:
            stack.push(rec.uid)
        else:
            expected = stack.pop()
            if expected is None:
                require(
                    rec.returned_bot,
                    f"pop {rec.op_id} returned an element from an empty stack",
                )
            else:
                require(
                    rec.returned_uid == expected,
                    f"pop {rec.op_id} returned uid {rec.returned_uid}, "
                    f"serial execution returns {expected}",
                )


def check_skack_history(history: History) -> None:
    """The distributed stack: sequentially consistent LIFO."""
    check_settled(history)
    check_local_consistency(history)
    replay_lifo(history)


def check_skeap_history(history: History, order: str = "min") -> None:
    """Theorem 3.2(2): Skeap is sequentially consistent and heap consistent."""
    check_settled(history)
    check_local_consistency(history)
    check_heap_consistency(history, order=order)
    replay_fifo(history, order=order)


def check_seap_history(history: History) -> None:
    """Theorem 5.1(2): Seap is serializable and heap consistent."""
    check_settled(history)
    check_heap_consistency(history)
    replay_ordered(history)


def check_seap_sc_history(history: History) -> None:
    """The Section-6 variant: sequentially consistent *and* uid-exact serial."""
    check_settled(history)
    check_local_consistency(history)
    check_heap_consistency(history)
    replay_ordered_exact(history)
