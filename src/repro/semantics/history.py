"""Operation histories: the raw material of the consistency checkers.

A :class:`History` records, for every Insert/DeleteMin request issued
against a heap protocol:

* its identity ``op_id = (real_node, local_seq)`` — ``local_seq`` encodes
  the node's local issue order, which sequential consistency must respect;
* what it carried (priority, element uid);
* the *candidate serialization key* the protocol assigned to it (Skeap:
  ``(iteration, entry, phase, node, seq)``; Seap: ``(session, phase, pos)``)
  — checkers verify that sorting by this key witnesses the claimed
  consistency model;
* what it returned (an element uid, or ⊥ for an empty-heap DeleteMin).

Recording is pure instrumentation: protocol nodes write facts here, but no
protocol decision ever reads them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConsistencyError

__all__ = ["OpId", "OpRecord", "History", "INSERT", "DELETE"]

OpId = tuple[int, int]

INSERT = "ins"
DELETE = "del"


@dataclass(slots=True)
class OpRecord:
    """Everything recorded about one heap request."""

    op_id: OpId
    kind: str
    priority: int | None = None
    uid: int | None = None
    order_key: tuple | None = None
    returned_uid: int | None = None
    returned_bot: bool = False
    completed: bool = False

    @property
    def node(self) -> int:
        return self.op_id[0]

    @property
    def seq(self) -> int:
        return self.op_id[1]


class History:
    """Mutable recorder shared by all nodes of one cluster."""

    def __init__(self) -> None:
        self.ops: dict[OpId, OpRecord] = {}
        self._uid_to_insert: dict[int, OpId] = {}

    # -- recording --------------------------------------------------------

    def record_submit(
        self, op_id: OpId, kind: str, priority: int | None = None, uid: int | None = None
    ) -> None:
        if op_id in self.ops:
            raise ConsistencyError(f"duplicate op id {op_id}")
        rec = OpRecord(op_id=op_id, kind=kind, priority=priority, uid=uid)
        self.ops[op_id] = rec
        if kind == INSERT:
            if uid is None:
                raise ConsistencyError("insert recorded without uid")
            if uid in self._uid_to_insert:
                raise ConsistencyError(f"duplicate element uid {uid}")
            self._uid_to_insert[uid] = op_id

    def record_order(self, op_id: OpId, order_key: tuple) -> None:
        rec = self.ops[op_id]
        if rec.order_key is not None:
            raise ConsistencyError(f"op {op_id} serialized twice")
        rec.order_key = order_key

    def record_return(self, op_id: OpId, uid: int) -> None:
        rec = self.ops[op_id]
        if rec.completed:
            raise ConsistencyError(f"op {op_id} completed twice")
        rec.returned_uid = uid
        rec.completed = True

    def record_bot(self, op_id: OpId) -> None:
        rec = self.ops[op_id]
        if rec.completed:
            raise ConsistencyError(f"op {op_id} completed twice")
        rec.returned_bot = True
        rec.completed = True

    def record_insert_done(self, op_id: OpId) -> None:
        rec = self.ops[op_id]
        rec.completed = True

    # -- wire form ---------------------------------------------------------

    def to_jsonable(self) -> dict:
        """A JSON-safe snapshot of every record (the service wire form).

        Tuples (op ids, order keys) become lists; :meth:`from_jsonable`
        restores them, so a history shipped over the queue service's wire
        protocol feeds the checkers exactly like the in-process original.
        """
        return {
            "ops": [
                {
                    "op": list(rec.op_id),
                    "kind": rec.kind,
                    "priority": rec.priority,
                    "uid": rec.uid,
                    "order": list(rec.order_key) if rec.order_key is not None else None,
                    "ret": rec.returned_uid,
                    "bot": rec.returned_bot,
                    "done": rec.completed,
                }
                for rec in self.ops.values()
            ]
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "History":
        """Rebuild a :class:`History` from :meth:`to_jsonable` output."""
        history = cls()
        for entry in data["ops"]:
            op_id = tuple(entry["op"])
            rec = OpRecord(
                op_id=op_id,
                kind=entry["kind"],
                priority=entry["priority"],
                uid=entry["uid"],
                order_key=tuple(entry["order"]) if entry["order"] is not None else None,
                returned_uid=entry["ret"],
                returned_bot=entry["bot"],
                completed=entry["done"],
            )
            if op_id in history.ops:
                raise ConsistencyError(f"duplicate op id {op_id} in wire history")
            history.ops[op_id] = rec
            if rec.kind == INSERT and rec.uid is not None:
                if rec.uid in history._uid_to_insert:
                    raise ConsistencyError(f"duplicate element uid {rec.uid}")
                history._uid_to_insert[rec.uid] = op_id
        return history

    # -- derived views ----------------------------------------------------------

    def insert_of_uid(self, uid: int) -> OpRecord:
        return self.ops[self._uid_to_insert[uid]]

    def matchings(self) -> list[tuple[OpRecord, OpRecord]]:
        """The set M: (Insert, DeleteMin) pairs matched by returned element."""
        pairs = []
        for rec in self.ops.values():
            if rec.kind == DELETE and rec.returned_uid is not None:
                pairs.append((self.insert_of_uid(rec.returned_uid), rec))
        return pairs

    def serialized_ops(self) -> list[OpRecord]:
        """All ops with an order key, sorted by it (the candidate ≺)."""
        ops = [r for r in self.ops.values() if r.order_key is not None]
        ops.sort(key=lambda r: r.order_key)
        return ops

    def completed_count(self) -> int:
        return sum(1 for r in self.ops.values() if r.completed)

    def __len__(self) -> int:
        return len(self.ops)
