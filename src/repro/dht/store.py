"""Per-node key→element storage with Get-waits-for-Put parking.

The paper (Skeap Phase 4) requires: "it may happen that a Get request
arrives at the correct node in the DHT before the corresponding Put
request.  In this case the Get request waits at that node until the
corresponding Put request has arrived."  :class:`KeyValueStore` implements
exactly that: a Get on an absent key parks; the matching Put hands its
element straight to the oldest parked requester.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator

from ..element import Element, PrioKey

__all__ = ["KeyValueStore", "ParkedGet"]

#: A parked Get: (requester vid, request id).
ParkedGet = tuple[int, int]


class KeyValueStore:
    """Element storage of one virtual node."""

    def __init__(self) -> None:
        self._items: dict[float, deque[Element]] = {}
        self._parked: dict[float, deque[ParkedGet]] = {}

    def __len__(self) -> int:
        return sum(len(d) for d in self._items.values())

    @property
    def parked_count(self) -> int:
        return sum(len(d) for d in self._parked.values())

    def put(self, key: float, element: Element) -> ParkedGet | None:
        """Store ``element`` under ``key``.

        If a Get is parked on ``key`` the element is *not* stored; the
        parked requester is returned so the caller can reply to it.
        """
        waiting = self._parked.get(key)
        if waiting:
            claim = waiting.popleft()
            if not waiting:
                del self._parked[key]
            return claim
        self._items.setdefault(key, deque()).append(element)
        return None

    def get(self, key: float, requester: int, request_id: int) -> Element | None:
        """Retrieve (and remove) an element under ``key``, or park the Get."""
        bucket = self._items.get(key)
        if bucket:
            element = bucket.popleft()
            if not bucket:
                del self._items[key]
            return element
        self._parked.setdefault(key, deque()).append((requester, request_id))
        return None

    def elements(self) -> Iterator[Element]:
        """Iterate all stored elements (order unspecified)."""
        for bucket in self._items.values():
            yield from bucket

    def items(self) -> Iterator[tuple[float, Element]]:
        for key, bucket in self._items.items():
            for element in bucket:
                yield key, element

    def extract(self, predicate: Callable[[Element], bool]) -> list[tuple[float, Element]]:
        """Remove and return all elements satisfying ``predicate``.

        Used by Seap's DeleteMin phase to pull the locally stored elements
        with rank ≤ k out of the uniform key space before re-storing them
        under their position keys.
        """
        removed: list[tuple[float, Element]] = []
        for key in list(self._items):
            bucket = self._items[key]
            kept = deque(e for e in bucket if not predicate(e))
            if len(kept) != len(bucket):
                removed.extend((key, e) for e in bucket if predicate(e))
                if kept:
                    self._items[key] = kept
                else:
                    del self._items[key]
        return removed

    def extract_leq(self, threshold: PrioKey) -> list[tuple[float, Element]]:
        """Remove and return all elements with ``(priority, uid) <= threshold``."""
        return self.extract(lambda e: e.key <= threshold)

    def count_leq(self, threshold: PrioKey) -> int:
        return sum(1 for e in self.elements() if e.key <= threshold)
