"""DHT embedded in the LDB overlay (Lemma 2.2): keys, storage, protocol."""

from .hashing import KeySpace
from .protocol import DHTMixin
from .store import KeyValueStore

__all__ = ["DHTMixin", "KeySpace", "KeyValueStore"]
