"""Key derivation for the DHT — the paper's public hash function *h*.

Every protocol phase that meets at a rendezvous node derives the meeting
key here, so Put/Get pairs (Skeap Phase 4), copy/meet points (KSelect
Phase 2b) and position stores (Seap DeleteMin) agree on keys by
construction:

* Skeap stores the element assigned ``(p, pos)`` under ``h(p, pos)``;
* Seap's DeleteMin phase stores the rank-``pos`` element under
  ``h(session, pos)``;
* KSelect's pairwise comparison uses a *symmetric* key ``h(i, j) = h(j, i)``
  so both copies of a candidate pair land on the same node.
"""

from __future__ import annotations

from ..sim.rng import PseudoRandomHash

__all__ = ["KeySpace"]


class KeySpace:
    """All DHT key derivations used by the protocols, from one seed."""

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._h = PseudoRandomHash(seed, namespace="dht-key")

    def skeap_key(self, priority: int, pos: int) -> float:
        """Key for the Skeap pair ``(p, pos)`` — Phase 4 rendezvous."""
        return self._h.unit("skeap", priority, pos)

    def seap_position_key(self, session: int, pos: int) -> float:
        """Key for position ``pos`` of Seap DeleteMin session ``session``."""
        return self._h.unit("seap-pos", session, pos)

    def sort_position_key(self, session: int, pos: int) -> float:
        """Key for the candidate holder ``v_i`` in KSelect Phase 2b."""
        return self._h.unit("ksel-pos", session, pos)

    def copy_key(self, session: int, pos: int, lo: int, hi: int) -> float:
        """Key for a node of the copy-dissemination tree ``T(v_i)``."""
        return self._h.unit("ksel-copy", session, pos, lo, hi)

    def pair_key(self, session: int, i: int, j: int) -> float:
        """Symmetric meeting key: ``pair_key(s, i, j) == pair_key(s, j, i)``."""
        a, b = (i, j) if i <= j else (j, i)
        return self._h.unit("ksel-pair", session, a, b)

    def uniform_key(self, *tokens: object) -> float:
        """A fresh pseudorandom key (Seap Insert's uniformly random storage)."""
        return self._h.unit("uniform", *tokens)
