"""Key derivation for the DHT — the paper's public hash function *h*.

Every protocol phase that meets at a rendezvous node derives the meeting
key here, so Put/Get pairs (Skeap Phase 4), copy/meet points (KSelect
Phase 2b) and position stores (Seap DeleteMin) agree on keys by
construction:

* Skeap stores the element assigned ``(p, pos)`` under ``h(p, pos)``;
* Seap's DeleteMin phase stores the rank-``pos`` element under
  ``h(session, pos)``;
* KSelect's pairwise comparison uses a *symmetric* key ``h(i, j) = h(j, i)``
  so both copies of a candidate pair land on the same node.
"""

from __future__ import annotations

from ..sim.rng import PseudoRandomHash

__all__ = ["KeySpace"]


class KeySpace:
    """All DHT key derivations used by the protocols, from one seed.

    Every rendezvous key is derived at least twice (once per meeting
    party; copy-tree keys many more times), and ``unit`` pays a SHA-256
    per derivation — so derived keys are memoized.  The memo is exact by
    construction: ``unit`` hashes ``repr`` (which distinguishes ``1``
    from ``1.0``) while tuple keys would not, so each method only
    consults the cache after checking its arguments are genuine ints —
    anything else falls through to the uncached hash.
    """

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._h = PseudoRandomHash(seed, namespace="dht-key")
        self._cache: dict[tuple, float] = {}

    def skeap_key(self, priority: int, pos: int) -> float:
        """Key for the Skeap pair ``(p, pos)`` — Phase 4 rendezvous."""
        if type(priority) is int and type(pos) is int:
            key = ("skeap", priority, pos)
            val = self._cache.get(key)
            if val is None:
                val = self._cache[key] = self._h.unit("skeap", priority, pos)
            return val
        return self._h.unit("skeap", priority, pos)

    def seap_position_key(self, session: int, pos: int) -> float:
        """Key for position ``pos`` of Seap DeleteMin session ``session``."""
        if type(session) is int and type(pos) is int:
            key = ("seap-pos", session, pos)
            val = self._cache.get(key)
            if val is None:
                val = self._cache[key] = self._h.unit("seap-pos", session, pos)
            return val
        return self._h.unit("seap-pos", session, pos)

    def sort_position_key(self, session: int, pos: int) -> float:
        """Key for the candidate holder ``v_i`` in KSelect Phase 2b."""
        if type(session) is int and type(pos) is int:
            key = ("ksel-pos", session, pos)
            val = self._cache.get(key)
            if val is None:
                val = self._cache[key] = self._h.unit("ksel-pos", session, pos)
            return val
        return self._h.unit("ksel-pos", session, pos)

    def copy_key(self, session: int, pos: int, lo: int, hi: int) -> float:
        """Key for a node of the copy-dissemination tree ``T(v_i)``."""
        if (
            type(session) is int
            and type(pos) is int
            and type(lo) is int
            and type(hi) is int
        ):
            key = ("ksel-copy", session, pos, lo, hi)
            val = self._cache.get(key)
            if val is None:
                val = self._cache[key] = self._h.unit(
                    "ksel-copy", session, pos, lo, hi
                )
            return val
        return self._h.unit("ksel-copy", session, pos, lo, hi)

    def pair_key(self, session: int, i: int, j: int) -> float:
        """Symmetric meeting key: ``pair_key(s, i, j) == pair_key(s, j, i)``."""
        a, b = (i, j) if i <= j else (j, i)
        if type(session) is int and type(a) is int and type(b) is int:
            key = ("ksel-pair", session, a, b)
            val = self._cache.get(key)
            if val is None:
                val = self._cache[key] = self._h.unit("ksel-pair", session, a, b)
            return val
        return self._h.unit("ksel-pair", session, a, b)

    def uniform_key(self, *tokens: object) -> float:
        """A fresh pseudorandom key (Seap Insert's uniformly random storage)."""
        return self._h.unit("uniform", *tokens)
