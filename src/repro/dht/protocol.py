"""The DHT protocol embedded in the overlay (Lemma 2.2 (ii)–(iv)).

``Put(k, e)`` routes the element to the virtual node responsible for ``k``
and acknowledges the originator; ``Get(k, v)`` routes there, removes the
element (or parks until the Put arrives) and delivers it back to ``v``.
Both need O(log n) rounds w.h.p. because routing does (Lemma A.2), and
elements are spread uniformly because keys are pseudorandom (fairness,
Lemma 2.2 (iv)).

Client completion is surfaced through two overridable hooks:
``dht_put_confirmed(request_id)`` and
``dht_get_returned(request_id, key, element)``.
"""

from __future__ import annotations

from ..element import Element
from .store import KeyValueStore

__all__ = ["DHTMixin"]


class DHTMixin:
    """Put/Get client and server roles; host provides routing and ``send``."""

    def _init_dht(self) -> None:
        self.store = KeyValueStore()
        self._dht_next_request = 0

    # -- client side ----------------------------------------------------

    def _fresh_request_id(self) -> int:
        self._dht_next_request += 1
        # Request ids only need to be unique per requester; replies carry
        # them back verbatim.
        return self._dht_next_request

    def dht_put(self, key: float, element: Element, request_id: int | None = None) -> int:
        """Issue Put(key, element); returns the request id."""
        if request_id is None:
            request_id = self._fresh_request_id()
        self.route_to_point(
            key,
            "dht_put_arrive",
            {"key": key, "element": element, "request_id": request_id},
        )
        return request_id

    def dht_get(self, key: float, request_id: int | None = None) -> int:
        """Issue Get(key, self); returns the request id."""
        if request_id is None:
            request_id = self._fresh_request_id()
        self.route_to_point(
            key,
            "dht_get_arrive",
            {"key": key, "request_id": request_id},
        )
        return request_id

    # -- completion hooks (override in protocols) ---------------------------

    def dht_put_confirmed(self, request_id: int) -> None:
        """Called when a Put issued by this node is acknowledged."""

    def dht_get_returned(self, request_id: int, key: float, element: Element) -> None:
        """Called when a Get issued by this node returns its element."""

    # -- server side -------------------------------------------------------

    def on_dht_put_arrive(self, origin: int, key: float, element: Element, request_id: int) -> None:
        claim = self.store.put(key, element)
        if claim is not None:
            # A Get was parked on this key: hand the element straight over.
            requester, get_request_id = claim
            self.send(
                requester,
                "dht_reply",
                key=key,
                element=element,
                request_id=get_request_id,
            )
        self.send(origin, "dht_put_ack", request_id=request_id)

    def on_dht_get_arrive(self, origin: int, key: float, request_id: int) -> None:
        element = self.store.get(key, origin, request_id)
        if element is not None:
            self.send(origin, "dht_reply", key=key, element=element, request_id=request_id)
        # else: parked; the matching Put will reply (Get waits for Put).

    def on_dht_reply(self, sender: int, key: float, element: Element, request_id: int) -> None:
        self.dht_get_returned(request_id, key, element)

    def on_dht_put_ack(self, sender: int, request_id: int) -> None:
        self.dht_put_confirmed(request_id)
