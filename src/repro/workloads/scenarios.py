"""Application scenarios from the paper's motivation (Section 1).

The introduction motivates a distributed heap with (a) priority-based job
scheduling — workers pull the most urgent job — and (b) distributed
sorting.  These builders produce concrete workloads for both, used by the
examples and the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError
from ..sim.rng import derive_seed

__all__ = ["Job", "scheduling_trace", "sorting_batch"]


@dataclass(frozen=True, slots=True)
class Job:
    """A schedulable unit: an urgency class and an arbitrary payload."""

    job_id: int
    urgency: int
    submitted_by: int
    payload: str


def scheduling_trace(
    n_jobs: int,
    n_nodes: int,
    n_urgency_classes: int = 3,
    seed: int = 0,
) -> list[Job]:
    """Jobs submitted by random nodes with skewed urgency classes.

    Urgency 1 (most urgent) is rare, matching real schedulers where most
    work is background; the heap must still serve it first.
    """
    if n_jobs < 0 or n_nodes < 1 or n_urgency_classes < 1:
        raise WorkloadError("invalid scheduling trace parameters")
    rng = np.random.default_rng(derive_seed(seed, "scheduling", n_jobs))
    weights = np.array([2.0**c for c in range(n_urgency_classes)])
    weights /= weights.sum()
    urgencies = rng.choice(
        np.arange(1, n_urgency_classes + 1), size=n_jobs, p=weights
    )
    submitters = rng.integers(0, n_nodes, size=n_jobs)
    return [
        Job(
            job_id=i,
            urgency=int(urgencies[i]),
            submitted_by=int(submitters[i]),
            payload=f"job-{i}",
        )
        for i in range(n_jobs)
    ]


def sorting_batch(n_values: int, value_range: int = 1 << 30, seed: int = 0) -> list[int]:
    """Distinct values to sort via insert-all / delete-all (heap sort)."""
    if n_values < 0:
        raise WorkloadError("invalid sorting batch size")
    rng = np.random.default_rng(derive_seed(seed, "sorting", n_values))
    values = rng.choice(value_range, size=n_values, replace=False)
    return [int(v) for v in values]
