"""Workload generation: operation streams the experiments drive heaps with.

A workload is a reproducible stream of ``("ins", priority, node)`` /
``("del", None, node)`` tuples, parameterized by

* the **op mix** (insert fraction),
* the **priority distribution** — uniform over a range (Seap's arbitrary
  priorities), a small fixed set (Skeap's constant priorities), or a
  Zipf-skewed range (realistic job-priority skew),
* the **placement** of requests over nodes (uniform or hot-spot).

Everything derives from an explicit seed; two calls with equal parameters
produce identical streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..errors import WorkloadError
from ..sim.rng import derive_seed

__all__ = [
    "PriorityDistribution",
    "uniform_priorities",
    "fixed_priorities",
    "zipf_priorities",
    "WorkloadSpec",
    "generate_ops",
]


@dataclass(frozen=True, slots=True)
class PriorityDistribution:
    """A named sampler of integer priorities."""

    name: str
    lo: int
    hi: int
    zipf_s: float = 0.0
    classes: tuple[int, ...] = ()

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        if self.name == "uniform":
            return rng.integers(self.lo, self.hi + 1, size=size)
        if self.name == "fixed":
            return rng.choice(np.asarray(self.classes), size=size)
        if self.name == "zipf":
            # Rejection-free bounded Zipf: sample ranks, clamp to the range.
            raw = rng.zipf(self.zipf_s, size=size)
            span = self.hi - self.lo + 1
            return self.lo + (raw - 1) % span
        raise WorkloadError(f"unknown distribution {self.name!r}")


def uniform_priorities(lo: int, hi: int) -> PriorityDistribution:
    """Arbitrary priorities uniform in ``[lo, hi]`` (the Seap regime)."""
    if lo > hi or lo < 0:
        raise WorkloadError("invalid priority range")
    return PriorityDistribution("uniform", lo, hi)


def fixed_priorities(n_classes: int) -> PriorityDistribution:
    """Constant priority set ``{1..n_classes}`` (the Skeap regime)."""
    if n_classes < 1:
        raise WorkloadError("need at least one priority class")
    return PriorityDistribution(
        "fixed", 1, n_classes, classes=tuple(range(1, n_classes + 1))
    )


def zipf_priorities(lo: int, hi: int, s: float = 1.5) -> PriorityDistribution:
    """Zipf-skewed priorities: most requests near ``lo`` (urgent-heavy)."""
    if s <= 1.0:
        raise WorkloadError("zipf exponent must exceed 1")
    return PriorityDistribution("zipf", lo, hi, zipf_s=s)


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """A reproducible heap workload."""

    n_ops: int
    n_nodes: int
    insert_fraction: float = 0.6
    priorities: PriorityDistribution = field(
        default_factory=lambda: uniform_priorities(1, 1 << 20)
    )
    hot_node_fraction: float = 0.0  # fraction of ops pinned to node 0
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.insert_fraction <= 1.0:
            raise WorkloadError("insert_fraction must be in [0, 1]")
        if not 0.0 <= self.hot_node_fraction <= 1.0:
            raise WorkloadError("hot_node_fraction must be in [0, 1]")
        if self.n_ops < 0 or self.n_nodes < 1:
            raise WorkloadError("invalid workload size")


def generate_ops(spec: WorkloadSpec) -> Iterator[tuple[str, int | None, int]]:
    """Yield ``(kind, priority, node)`` tuples for ``spec``.

    Inserts lead slightly at the start of the stream (the first op is
    always an insert when ``insert_fraction > 0``) so delete-heavy mixes
    still exercise matched pairs rather than a wall of ⊥.
    """
    rng = np.random.default_rng(derive_seed(spec.seed, "workload", spec.n_ops))
    if spec.n_ops == 0:
        return
    kinds = rng.random(spec.n_ops) < spec.insert_fraction
    if spec.insert_fraction > 0:
        kinds[0] = True
    priorities = spec.priorities.sample(rng, spec.n_ops)
    nodes = rng.integers(0, spec.n_nodes, size=spec.n_ops)
    if spec.hot_node_fraction > 0:
        hot = rng.random(spec.n_ops) < spec.hot_node_fraction
        nodes[hot] = 0
    for i in range(spec.n_ops):
        if kinds[i]:
            yield ("ins", int(priorities[i]), int(nodes[i]))
        else:
            yield ("del", None, int(nodes[i]))
