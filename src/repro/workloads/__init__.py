"""Workload generators and application scenarios."""

from .generators import (
    PriorityDistribution,
    WorkloadSpec,
    fixed_priorities,
    generate_ops,
    uniform_priorities,
    zipf_priorities,
)
from .scenarios import Job, scheduling_trace, sorting_batch

__all__ = [
    "Job",
    "PriorityDistribution",
    "WorkloadSpec",
    "fixed_priorities",
    "generate_ops",
    "scheduling_trace",
    "sorting_batch",
    "uniform_priorities",
    "zipf_priorities",
]
