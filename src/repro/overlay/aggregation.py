"""Generic aggregation phases over the LDB-induced tree (Lemma 2.2).

The paper's protocols repeatedly run *aggregation phases*: every node
contributes a value, inner nodes combine the values of their children with
their own and forward the result up, the anchor consumes the combined value
and usually *distributes* a result back down, decomposing it per sub-tree
using what each node memorized about its children's contributions (Skeap
Phase 1/3, Seap's count/interval phases, every KSelect step).

:class:`AggregationMixin` implements this pattern once, generically.  A
protocol registers named :class:`AggSpec` handlers; tags are
``(name, token)`` tuples so many phases and iterations can be in flight
concurrently, even under full asynchrony.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..errors import ProtocolError

__all__ = ["AggSpec", "AggregationMixin", "sum_combine", "min_combine", "max_combine", "vector_sum_combine", "first_combine"]

Tag = tuple


# -- reusable combiners ------------------------------------------------------


def sum_combine(own, children):
    """Addition, e.g. counting participants (the paper's n-count example)."""
    return own + sum(v for _, v in children)


def min_combine(own, children):
    """Minimum over own + child values, ignoring None contributions."""
    vals = [own] + [v for _, v in children]
    vals = [v for v in vals if v is not None]
    return min(vals) if vals else None


def max_combine(own, children):
    """Maximum over own + child values, ignoring None contributions."""
    vals = [own] + [v for _, v in children]
    vals = [v for v in vals if v is not None]
    return max(vals) if vals else None


def vector_sum_combine(own, children):
    """Component-wise tuple addition (KSelect's (L, R) vectors)."""
    acc = list(own)
    for _, v in children:
        for i, x in enumerate(v):
            acc[i] += x
    return tuple(acc)


def first_combine(own, children):
    """First non-None value (delegating a single found item to the anchor)."""
    if own is not None:
        return own
    for _, v in children:
        if v is not None:
            return v
    return None


@dataclass(slots=True)
class AggSpec:
    """Behaviour of one named aggregation.

    ``combine(node, tag, own, children)`` merges a node's own contribution
    with its children's (``children`` is ``[(child_vid, value), ...]`` in
    deterministic tree order).  ``at_root`` fires at the anchor with the
    fully combined value.  ``decompose(node, tag, payload)`` splits a
    downward payload into ``(own_part, {child_vid: part})`` — it may consult
    :meth:`AggregationMixin.agg_memory`.  ``deliver`` fires at every node
    with its own part.
    """

    combine: Callable[[Any, Tag, Any, list], Any]
    at_root: Callable[[Any, Tag, Any], None] | None = None
    decompose: Callable[[Any, Tag, Any], tuple[Any, dict[int, Any]]] | None = None
    deliver: Callable[[Any, Tag, Any], None] | None = None


class AggregationMixin:
    """Convergecast / decompose-broadcast engine for tree nodes.

    Host class must provide ``self.view`` (a :class:`~repro.overlay.ldb.LocalView`)
    and ``self.send``.  Call :meth:`_init_aggregation` from ``__init__``.
    """

    def _init_aggregation(self) -> None:
        self._agg_specs: dict[str, AggSpec] = {}
        self._bcast_handlers: dict[str, Callable[[Any, Tag, Any], None]] = {}
        self._agg_own: dict[Tag, Any] = {}
        self._agg_children: dict[Tag, dict[int, Any]] = {}
        self._agg_flushed: set[Tag] = set()

    # -- registration ----------------------------------------------------

    def register_agg(self, name: str, spec: AggSpec) -> None:
        self._agg_specs[name] = spec

    def register_bcast(self, name: str, handler: Callable[[Any, Tag, Any], None]) -> None:
        self._bcast_handlers[name] = handler

    def _spec(self, tag: Tag) -> AggSpec:
        spec = self._agg_specs.get(tag[0])
        if spec is None:
            raise ProtocolError(f"node {self.id}: no aggregation named {tag[0]!r}")
        return spec

    # -- upward (convergecast) ---------------------------------------------

    def agg_contribute(self, tag: Tag, value: Any) -> None:
        """Provide this node's own contribution for ``tag``.

        Leaves flush immediately; inner nodes wait for all children.  Stale
        state from earlier iterations of the same name is purged (iterations
        are strictly ordered by their numeric token).
        """
        tag = tuple(tag)
        self._spec(tag)  # unknown names fail fast, not at flush time
        if tag in self._agg_own:
            raise ProtocolError(f"node {self.id}: duplicate contribution for {tag}")
        self._expire_older(tag)
        self._agg_own[tag] = value
        self._try_flush(tag)

    def on_agg_up(self, sender: int, tag: Tag, value: Any) -> None:
        tag = tuple(tag)
        bucket = self._agg_children.setdefault(tag, {})
        if sender in bucket:
            raise ProtocolError(f"node {self.id}: duplicate child value for {tag}")
        bucket[sender] = value
        self._try_flush(tag)

    @staticmethod
    def on_agg_up_batch(deliveries) -> None:
        """Coalesced convergecast: one grouped pass over a round's ``agg_up``.

        Under the batched kernel a contiguous run of a round's ``agg_up``
        messages lands here together.  All buckets fill first, then each
        touched ``(node, tag)`` flushes exactly once — so a parent whose
        children all reported in the run combines and forwards in a single
        pass instead of re-scanning its child set per arrival.  Equivalent
        to the single-message handler: ``_try_flush`` is monotone (it fires
        iff all children are present, whoever arrived last) and buckets
        fill in the same delivery order, so the flush round, the combined
        value, and the bucket iteration order are unchanged.  Flushes run
        in *last-arrival* order (each arrival moves its key to the end) —
        exactly the order the eager per-message handler would have emitted
        the upward sends in, which byte-identity requires, because outbox
        append order decides how next round's delivery shuffle maps.
        """
        touched: dict[tuple, tuple] = {}
        for node, sender, payload in deliveries:
            tag = tuple(payload["tag"])
            bucket = node._agg_children.setdefault(tag, {})
            if sender in bucket:
                raise ProtocolError(
                    f"node {node.id}: duplicate child value for {tag}"
                )
            bucket[sender] = payload["value"]
            key = (node.id, tag)
            if key in touched:
                del touched[key]
            touched[key] = (node, tag)
        for node, tag in touched.values():
            node._try_flush(tag)

    def _try_flush(self, tag: Tag) -> None:
        if tag in self._agg_flushed or tag not in self._agg_own:
            return
        got = self._agg_children.get(tag, {})
        if any(c not in got for c in self.view.children):
            return
        children = [(c, got[c]) for c in self.view.children]
        spec = self._spec(tag)
        combined = spec.combine(self, tag, self._agg_own[tag], children)
        self._agg_flushed.add(tag)
        if self.view.is_anchor:
            if spec.at_root is None:
                raise ProtocolError(f"aggregation {tag} reached anchor without at_root")
            spec.at_root(self, tag, combined)
        else:
            self.send(self.view.parent, "agg_up", tag=tag, value=combined)

    def _expire_older(self, tag: Tag) -> None:
        """Drop memory of earlier iterations of the same aggregation name."""
        if len(tag) < 2 or not isinstance(tag[-1], int):
            return
        stale = [
            t
            for t in self._agg_own
            if t[:-1] == tag[:-1]
            and isinstance(t[-1], int)
            and t[-1] < tag[-1]
            and t in self._agg_flushed
        ]
        for t in stale:
            self._agg_own.pop(t, None)
            self._agg_children.pop(t, None)
            self._agg_flushed.discard(t)

    # -- downward (decompose / broadcast) ------------------------------------

    def agg_memory(self, tag: Tag) -> tuple[Any, list[tuple[int, Any]]]:
        """What this node contributed and received for ``tag`` (for decompose)."""
        tag = tuple(tag)
        if tag not in self._agg_own:
            raise ProtocolError(f"node {self.id}: no memory for {tag}")
        got = self._agg_children.get(tag, {})
        return self._agg_own[tag], [(c, got[c]) for c in self.view.children]

    def agg_distribute(self, tag: Tag, payload: Any) -> None:
        """Push a payload down the tree, decomposing per memorized sub-batches.

        Called at the anchor to start Phase-3-style distribution; recurses
        via ``agg_down`` messages.
        """
        tag = tuple(tag)
        spec = self._spec(tag)
        if spec.decompose is None or spec.deliver is None:
            raise ProtocolError(f"aggregation {tag} is not distributable")
        own_part, child_parts = spec.decompose(self, tag, payload)
        for child in self.view.children:
            if child not in child_parts:
                raise ProtocolError(f"decompose for {tag} missed child {child}")
            self.send(child, "agg_down", tag=tag, part=child_parts[child])
        spec.deliver(self, tag, own_part)

    def on_agg_down(self, sender: int, tag: Tag, part: Any) -> None:
        self.agg_distribute(tuple(tag), part)

    def bcast(self, tag: Tag, payload: Any) -> None:
        """Uniform broadcast from the anchor: same payload to every node."""
        tag = tuple(tag)
        handler = self._bcast_handlers.get(tag[0])
        if handler is None:
            raise ProtocolError(f"node {self.id}: no broadcast named {tag[0]!r}")
        for child in self.view.children:
            self.send(child, "agg_bcast", tag=tag, payload=payload)
        handler(self, tag, payload)

    def on_agg_bcast(self, sender: int, tag: Tag, payload: Any) -> None:
        self.bcast(tuple(tag), payload)
