"""Classical d-dimensional de Bruijn graph (Definition 2.1).

Nodes are bitstrings ``(x_1, ..., x_d)`` — represented as integers with
``x_1`` the most significant bit — and edges go from ``(x_1, ..., x_d)`` to
``(j, x_1, ..., x_{d-1})`` for ``j ∈ {0, 1}``.  Routing adjusts exactly
``d`` bits by repeatedly prepending the target's bits, as in the paper's
example for ``d = 3``.

The LDB overlay (Appendix A) *emulates* this graph; this module is the
reference implementation that the emulation and its tests are checked
against.
"""

from __future__ import annotations

from ..errors import RoutingError

__all__ = ["DeBruijnGraph", "bits_of", "from_bits"]


def bits_of(x: int, d: int) -> tuple[int, ...]:
    """The bitstring ``(x_1, ..., x_d)`` of node ``x`` (MSB first)."""
    if not 0 <= x < (1 << d):
        raise RoutingError(f"node {x} out of range for dimension {d}")
    return tuple((x >> (d - 1 - i)) & 1 for i in range(d))


def from_bits(bits: tuple[int, ...]) -> int:
    """Inverse of :func:`bits_of`."""
    x = 0
    for b in bits:
        x = (x << 1) | (b & 1)
    return x


class DeBruijnGraph:
    """The standard d-dimensional de Bruijn graph on ``2^d`` nodes."""

    def __init__(self, d: int):
        if d < 1:
            raise RoutingError("dimension must be >= 1")
        self.d = int(d)
        self.n = 1 << self.d

    def neighbors(self, x: int) -> tuple[int, int]:
        """Out-neighbors ``(j, x_1, ..., x_{d-1})`` for ``j = 0, 1``."""
        if not 0 <= x < self.n:
            raise RoutingError(f"node {x} out of range")
        shifted = x >> 1
        return (shifted, shifted | (1 << (self.d - 1)))

    def hop(self, x: int, j: int) -> int:
        """One bitshift hop prepending bit ``j``."""
        if j not in (0, 1):
            raise RoutingError("bit must be 0 or 1")
        return (x >> 1) | (j << (self.d - 1))

    def route(self, s: int, t: int) -> list[int]:
        """The bitshift route from ``s`` to ``t`` (length exactly ``d + 1``).

        Prepends ``t``'s bits from least to most significant, reproducing
        the paper's example path
        ``((s1,s2,s3), (t3,s1,s2), (t2,t3,s1), (t1,t2,t3))``.
        """
        if not (0 <= s < self.n and 0 <= t < self.n):
            raise RoutingError("endpoints out of range")
        path = [s]
        cur = s
        tbits = bits_of(t, self.d)
        for i in range(self.d - 1, -1, -1):
            cur = self.hop(cur, tbits[i])
            path.append(cur)
        if cur != t:  # pragma: no cover - structural impossibility
            raise RoutingError("bitshift routing failed to converge")
        return path

    def edges(self):
        """Iterate over all ``2^{d+1}`` directed edges."""
        for x in range(self.n):
            for y in self.neighbors(x):
                yield (x, y)
