"""Self-stabilizing list linearization — how the LDB's sorted cycle forms.

Appendix A builds the aggregation tree on the sorted cycle of virtual-node
labels and cites the self-stabilizing de Bruijn construction [RSS11]
(itself based on the continuous-discrete approach [NW07]) for how that
cycle is *maintained*.  The core primitive of those constructions is
**list linearization**: starting from an arbitrary weakly connected
knowledge graph over labeled nodes, converge to the sorted list where
every node knows exactly its label-order neighbors.

This churn model is also why routed messages carry a *view epoch*: while
the overlay is (re)stabilizing, no node's cached picture of the cycle can
be trusted, so the hop-compressed routing fast path
(:class:`repro.overlay.routing.RoutePlanner`) keys its precomputed hop
tables to an epoch counter that membership bumps before any view mutation
and again after the views stand — any code that re-derives ``LocalView``s
outside ``repro.overlay.membership`` must do the same, or stale origins
would fly routes over an overlay that no longer exists.

This module implements the classic linearization rule as a message-passing
protocol on the simulation kernel:

* every node keeps a *knowledge set* of (label, id) pairs it has heard of;
* on activation it keeps only the closest known node on each side as its
  ``left``/``right`` candidates and **delegates** every other known node
  toward its side — introducing it to the closest neighbor in that
  direction, which is strictly closer to it in label order;
* received introductions join the knowledge set.

Delegation preserves weak connectivity (an edge is only replaced by a
two-edge path through a node between the endpoints), and every delegation
strictly shrinks some label distance, so the system converges to the
sorted list — after which the rule is a no-op (closure).  The main
cluster (`LDBTopology`) derives pred/succ *instantly* from the same hash
labels; this module demonstrates that the paper's standing assumption is
*constructible* from arbitrary initial knowledge, and measures how fast.
"""

from __future__ import annotations

from ..errors import TopologyError
from ..sim.faults import FaultInjector, FaultPlan
from ..sim.node import ProtocolNode
from ..sim.rng import PseudoRandomHash, RngRegistry
from ..sim.sync_runner import SyncRunner

__all__ = ["LinearizationNode", "LinearizationCluster"]


class LinearizationNode(ProtocolNode):
    """One participant of the linearization protocol."""

    def __init__(self, node_id: int, label: float):
        super().__init__(node_id)
        self.label = float(label)
        #: everything this node currently knows: id -> label
        self.knowledge: dict[int, float] = {}
        self.left: int | None = None
        self.right: int | None = None

    # -- protocol --------------------------------------------------------

    def on_activate(self) -> None:
        """The linearization rule: keep closest per side, delegate the rest."""
        if not self.knowledge:
            return
        lefts = [(lab, nid) for nid, lab in self.knowledge.items() if lab < self.label]
        rights = [(lab, nid) for nid, lab in self.knowledge.items() if lab > self.label]
        self.left = max(lefts)[1] if lefts else None
        self.right = min(rights)[1] if rights else None
        for lab, nid in lefts:
            if nid != self.left:
                # self.left lies strictly between nid and self: delegate.
                self.send(self.left, "ls_intro", nid=nid, label=lab)
        for lab, nid in rights:
            if nid != self.right:
                self.send(self.right, "ls_intro", nid=nid, label=lab)
        # Mutual introduction: neighbors must learn about *me*, or two
        # label-adjacent nodes whose edges both point elsewhere would never
        # meet (the knowledge graph would stabilize unsorted).
        for neighbor in (self.left, self.right):
            if neighbor is not None:
                self.send(neighbor, "ls_intro", nid=self.id, label=self.label)
        # Keep only the surviving neighbors; delegated knowledge moved on.
        kept = {n for n in (self.left, self.right) if n is not None}
        self.knowledge = {n: self.knowledge[n] for n in kept}

    def wants_activation(self) -> bool:
        # Mirrors on_activate's guard: while any knowledge remains, the
        # node keeps (re)introducing itself each round — self-stabilization
        # never goes fully idle, it converges to a fixed point instead.
        return bool(self.knowledge)

    def on_ls_intro(self, sender: int, nid: int, label: float) -> None:
        if nid != self.id:
            self.knowledge.setdefault(nid, label)

    def learn(self, nid: int, label: float) -> None:
        """Seed initial knowledge (the arbitrary starting graph)."""
        if nid != self.id:
            self.knowledge[nid] = label
            self.request_activation()


class LinearizationCluster:
    """Run linearization from a configurable initial knowledge graph."""

    def __init__(
        self,
        n_nodes: int,
        seed: int = 0,
        initial: str = "random",
        faults: FaultInjector | FaultPlan | None = None,
    ):
        if n_nodes < 1:
            raise TopologyError("need at least one node")
        self.n_nodes = n_nodes
        if isinstance(faults, FaultPlan):
            faults = FaultInjector(faults)
        self.runner = SyncRunner(seed=seed, faults=faults)
        hasher = PseudoRandomHash(seed, namespace="linearize")
        self.nodes = [
            LinearizationNode(i, hasher.unit("label", i)) for i in range(n_nodes)
        ]
        self.runner.register_all(self.nodes)
        self._seed_initial(initial, seed)

    def _seed_initial(self, initial: str, seed: int) -> None:
        """Seed a weakly connected starting graph of the requested shape."""
        nodes = self.nodes
        if initial == "line":
            order = list(range(self.n_nodes))
        elif initial == "random":
            order = list(RngRegistry(seed).stream("perm").permutation(self.n_nodes))
        elif initial == "star":
            hub = nodes[0]
            for other in nodes[1:]:
                hub.learn(other.id, other.label)
                other.learn(hub.id, hub.label)
            return
        else:
            raise TopologyError(f"unknown initial graph {initial!r}")
        # a path in the given order: connected, label-wise arbitrary
        for a, b in zip(order, order[1:]):
            nodes[a].learn(nodes[b].id, nodes[b].label)
            nodes[b].learn(nodes[a].id, nodes[a].label)

    # -- convergence -----------------------------------------------------------

    def sorted_ids(self) -> list[int]:
        return [n.id for n in sorted(self.nodes, key=lambda n: n.label)]

    def is_linearized(self) -> bool:
        """Every node's left/right equal the true sorted-order neighbors."""
        order = self.sorted_ids()
        position = {nid: i for i, nid in enumerate(order)}
        for node in self.nodes:
            i = position[node.id]
            want_left = order[i - 1] if i > 0 else None
            want_right = order[i + 1] if i < len(order) - 1 else None
            if node.left != want_left or node.right != want_right:
                return False
        return True

    def knowledge_is_connected(self) -> bool:
        """Weak connectivity of the union of knowledge + in-flight intros."""
        adjacency: dict[int, set[int]] = {n.id: set() for n in self.nodes}
        for node in self.nodes:
            for other in node.knowledge:
                adjacency[node.id].add(other)
                adjacency[other].add(node.id)
        # The runner outbox may hold hop-compressed Flights in general;
        # linearization never routes, but read defensively regardless.
        for msg in self.runner._outbox:
            if getattr(msg, "action", None) == "ls_intro":
                adjacency[msg.dest].add(msg.payload["nid"])
                adjacency[msg.payload["nid"]].add(msg.dest)
        seen = {self.nodes[0].id}
        stack = [self.nodes[0].id]
        while stack:
            for nxt in adjacency[stack.pop()]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return len(seen) == len(self.nodes)

    def _knowledge_minimal(self) -> bool:
        return all(
            set(node.knowledge)
            == {x for x in (node.left, node.right) if x is not None}
            for node in self.nodes
        )

    def run_to_convergence(self, max_rounds: int = 100_000) -> int:
        """Rounds until the sorted list is reached and closed.

        Once every node's candidates equal its true neighbors *and* its
        knowledge holds nothing else, any in-flight introduction is
        redundant (true neighbors are already known; farther nodes get
        re-delegated without changing candidates), so the state is stable.
        """
        return self.runner.run_until(
            lambda: self.is_linearized() and self._knowledge_minimal(),
            max_rounds=max_rounds,
        )
