"""The full overlay participant: process + routing + aggregation + DHT.

Every protocol node in this library (Skeap, Seap, KSelect, baselines that
use the overlay) derives from :class:`OverlayNode`, which wires together
the simulation process model with the LDB local view, the de Bruijn
routing engine, the tree aggregation engine and the DHT roles.
"""

from __future__ import annotations

from ..dht.hashing import KeySpace
from ..dht.protocol import DHTMixin
from ..sim.node import ProtocolNode
from .aggregation import AggregationMixin
from .ldb import LocalView
from .routing import RoutingMixin

__all__ = ["OverlayNode"]


class OverlayNode(ProtocolNode, RoutingMixin, AggregationMixin, DHTMixin):
    """A virtual node of the LDB overlay with all substrates attached."""

    def __init__(self, view: LocalView, keyspace: KeySpace):
        super().__init__(view.vid)
        self.view = view
        self.keyspace = keyspace
        self._init_routing()
        self._init_aggregation()
        self._init_dht()

    @property
    def is_anchor(self) -> bool:
        return self.view.is_anchor

    @property
    def is_middle(self) -> bool:
        from .ldb import VirtualKind

        return self.view.kind is VirtualKind.MIDDLE
