"""Linearized de Bruijn network and its induced aggregation tree.

Implements Definition A.1 and the parent/child rules of Appendix A:

* each real node ``v`` emulates three virtual nodes — ``m(v)`` with a
  pseudorandom label in ``[0, 1)``, ``l(v) = m(v)/2`` and
  ``r(v) = (m(v)+1)/2``;
* all virtual nodes form a sorted cycle (linear edges), plus virtual edges
  among the three nodes of one owner;
* the aggregation tree is a subgraph: ``p(m(v)) = l(v)``,
  ``p(left) = pred(left)``, ``p(r(v)) = m(v)``; the cycle's wrap-around edge
  is cut, making the globally smallest virtual node the tree root (the
  *anchor*).

Virtual node ids are ``3 * owner + kind`` so ``owner_of`` is a cheap
division — this is the mapping the congestion metric uses.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from enum import IntEnum

from ..errors import TopologyError
from ..sim.rng import PseudoRandomHash

__all__ = ["VirtualKind", "LocalView", "LDBTopology", "owner_of", "kind_of", "vid_for"]


class VirtualKind(IntEnum):
    """Which of its three virtual nodes a real node is acting as."""

    LEFT = 0
    MIDDLE = 1
    RIGHT = 2


def owner_of(vid: int) -> int:
    """The real node emulating virtual node ``vid``."""
    return vid // 3


def kind_of(vid: int) -> VirtualKind:
    """Which role (left/middle/right) virtual node ``vid`` plays."""
    return VirtualKind(vid % 3)


def vid_for(owner: int, kind: VirtualKind) -> int:
    """The virtual node id of ``owner``'s node of the given kind."""
    return owner * 3 + int(kind)


@dataclass(slots=True)
class LocalView:
    """Everything a virtual node knows locally about the overlay.

    This is the *distributed* state: protocol code only reads its own
    ``LocalView`` (plus node references received in messages), never the
    global topology object.
    """

    vid: int
    kind: VirtualKind
    owner: int
    label: float
    pred: int
    succ: int
    pred_label: float
    succ_label: float
    parent: int | None  # None only at the anchor
    children: tuple[int, ...]
    #: pre-order DFS rank in the aggregation tree (own-before-children, the
    #: order in which Phase-3 decomposition consumes positions)
    dfs_rank: int
    siblings: tuple[int, int, int]  # (left vid, middle vid, right vid) of owner
    middle_label: float
    debruijn_dim: int
    n_estimate: int  # number of real nodes (the paper's publicly known n)

    @property
    def is_anchor(self) -> bool:
        return self.parent is None

    @property
    def is_leaf(self) -> bool:
        return not self.children


class LDBTopology:
    """Builder and global view of the LDB overlay for ``n`` real nodes.

    The constructor computes labels with the publicly known pseudorandom
    hash, sorts the cycle, derives the aggregation tree and hands every
    virtual node its :class:`LocalView`.  Tests and experiment harnesses may
    also query the global structure (heights, responsibility) directly.
    """

    def __init__(self, real_ids: list[int], seed: int = 0):
        if not real_ids:
            raise TopologyError("an overlay needs at least one node")
        if len(set(real_ids)) != len(real_ids):
            raise TopologyError("duplicate real node ids")
        self.seed = int(seed)
        self.hash = PseudoRandomHash(seed, namespace="ldb-label")
        self.real_ids: list[int] = sorted(real_ids)
        self._labels: dict[int, float] = {}
        self._build()

    # -- construction -----------------------------------------------------

    def _middle_label(self, real_id: int) -> float:
        return self.hash.unit("label", real_id)

    def _compute_labels(self) -> None:
        self._labels.clear()
        seen: set[float] = set()
        for real in self.real_ids:
            m = self._middle_label(real)
            for kind, lab in (
                (VirtualKind.LEFT, m / 2.0),
                (VirtualKind.MIDDLE, m),
                (VirtualKind.RIGHT, (m + 1.0) / 2.0),
            ):
                if lab in seen:
                    # Vanishingly unlikely with 53-bit labels; refuse rather
                    # than silently break the strict order the cycle needs.
                    raise TopologyError(f"label collision at {lab}")
                seen.add(lab)
                self._labels[vid_for(real, kind)] = lab

    def _build(self) -> None:
        self._compute_labels()
        self.cycle: list[int] = sorted(self._labels, key=self._labels.__getitem__)
        self.sorted_labels: list[float] = [self._labels[v] for v in self.cycle]
        pos = {v: i for i, v in enumerate(self.cycle)}
        nvirt = len(self.cycle)

        pred: dict[int, int] = {}
        succ: dict[int, int] = {}
        for i, v in enumerate(self.cycle):
            pred[v] = self.cycle[(i - 1) % nvirt]
            succ[v] = self.cycle[(i + 1) % nvirt]

        # Parent rules of Appendix A; the anchor (minimum label) has none.
        anchor = self.cycle[0]
        parent: dict[int, int | None] = {}
        for v in self.cycle:
            if v == anchor:
                parent[v] = None
                continue
            kind = kind_of(v)
            if kind is VirtualKind.MIDDLE:
                parent[v] = vid_for(owner_of(v), VirtualKind.LEFT)
            elif kind is VirtualKind.LEFT:
                parent[v] = pred[v]
            else:  # RIGHT
                parent[v] = vid_for(owner_of(v), VirtualKind.MIDDLE)

        children: dict[int, list[int]] = {v: [] for v in self.cycle}
        for v, p in parent.items():
            if p is not None:
                children[p].append(v)
        for v in children:
            children[v].sort(key=pos.__getitem__)

        self.pred = pred
        self.succ = succ
        self.parent = parent
        self.children = {v: tuple(c) for v, c in children.items()}
        self.anchor = anchor
        # Pre-order DFS ranks: the global consumption order of Phase-3
        # interval decomposition (own batch first, then child subtrees).
        self.dfs_rank: dict[int, int] = {}
        order = 0
        stack = [anchor]
        while stack:
            v = stack.pop()
            self.dfs_rank[v] = order
            order += 1
            stack.extend(reversed(self.children[v]))
        # One bit of routing resolution per doubling of the *virtual* node
        # count, so the post-bitshift linear walk stays O(log n) w.h.p.
        n_real = len(self.real_ids)
        self.debruijn_dim = max(1, math.ceil(math.log2(max(2, 3 * n_real))))
        self._validate()

    def _validate(self) -> None:
        """Check the tree is a single tree obeying the paper's C(v) rules."""
        seen = 0
        stack = [self.anchor]
        while stack:
            v = stack.pop()
            seen += 1
            stack.extend(self.children[v])
        if seen != len(self.cycle):
            raise TopologyError(
                f"aggregation tree covers {seen}/{len(self.cycle)} virtual nodes"
            )
        for v in self.cycle:
            if kind_of(v) is VirtualKind.RIGHT and self.children[v]:
                raise TopologyError("right virtual node must be a tree leaf")
            if v != self.anchor:
                p = self.parent[v]
                if p is None or self._labels[p] >= self._labels[v]:
                    raise TopologyError("parent labels must strictly decrease")

    # -- global queries ----------------------------------------------------

    @property
    def n_real(self) -> int:
        return len(self.real_ids)

    @property
    def n_virtual(self) -> int:
        return len(self.cycle)

    def label(self, vid: int) -> float:
        return self._labels[vid]

    def responsible_for(self, point: float) -> int:
        """The virtual node whose key range contains ``point``.

        A node is responsible for ``[label, succ_label)``; the node with the
        largest label owns the wrap-around range.
        """
        if not 0.0 <= point < 1.0:
            raise TopologyError(f"point {point} outside [0,1)")
        i = bisect.bisect_right(self.sorted_labels, point) - 1
        return self.cycle[i % len(self.cycle)]

    def tree_height(self) -> int:
        """Height of the aggregation tree (edges on the longest root path)."""
        depth = {self.anchor: 0}
        stack = [self.anchor]
        best = 0
        while stack:
            v = stack.pop()
            for c in self.children[v]:
                depth[c] = depth[v] + 1
                best = max(best, depth[c])
                stack.append(c)
        return best

    def local_view(self, vid: int) -> LocalView:
        owner = owner_of(vid)
        return LocalView(
            vid=vid,
            kind=kind_of(vid),
            owner=owner,
            label=self._labels[vid],
            pred=self.pred[vid],
            succ=self.succ[vid],
            pred_label=self._labels[self.pred[vid]],
            succ_label=self._labels[self.succ[vid]],
            parent=self.parent[vid],
            children=self.children[vid],
            dfs_rank=self.dfs_rank[vid],
            siblings=(
                vid_for(owner, VirtualKind.LEFT),
                vid_for(owner, VirtualKind.MIDDLE),
                vid_for(owner, VirtualKind.RIGHT),
            ),
            middle_label=self._labels[vid_for(owner, VirtualKind.MIDDLE)],
            debruijn_dim=self.debruijn_dim,
            n_estimate=len(self.real_ids),
        )

    def all_views(self) -> dict[int, LocalView]:
        return {v: self.local_view(v) for v in self.cycle}
