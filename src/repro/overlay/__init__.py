"""Overlay network: de Bruijn reference graph, LDB, aggregation tree, routing."""

from .aggregation import (
    AggregationMixin,
    AggSpec,
    first_combine,
    max_combine,
    min_combine,
    sum_combine,
    vector_sum_combine,
)
from .base import OverlayNode
from .debruijn import DeBruijnGraph, bits_of, from_bits
from .ldb import LDBTopology, LocalView, VirtualKind, kind_of, owner_of, vid_for
from .routing import RoutingMixin, point_bits
from .selfstab import LinearizationCluster, LinearizationNode

__all__ = [
    "AggSpec",
    "AggregationMixin",
    "DeBruijnGraph",
    "LDBTopology",
    "LinearizationCluster",
    "LinearizationNode",
    "LocalView",
    "OverlayNode",
    "RoutingMixin",
    "VirtualKind",
    "bits_of",
    "first_combine",
    "from_bits",
    "kind_of",
    "max_combine",
    "min_combine",
    "owner_of",
    "point_bits",
    "sum_combine",
    "vector_sum_combine",
    "vid_for",
]
