"""Join and Leave (Contribution 4): churn without losing data.

The paper states join/leave "work exactly the same as in Skueue": a
request is routed to its splice position in O(log n) hops, admission is
*lazy* (constant local work at the splice point), and the overlay/tree
structure is restored within O(log n) rounds for batches of requests,
without violating heap semantics or losing elements.

We implement the contract at the cluster level, between protocol
iterations (the lazy processing points):

* **join** — a probe message is routed through the live overlay to the new
  node's splice position (its measured hop count is the O(log n)
  restoration cost, experiment T13); then the topology is re-derived, the
  new node's three virtual nodes are spliced in, every existing node's
  local view is refreshed, and stored elements whose keys now fall into
  the newcomer's ranges are handed over from the (former) neighbours.
* **leave** — the three virtual nodes are removed, their stored elements
  and parked requests are handed to the nodes now responsible.

Element conservation is asserted after every change.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MembershipError
from .ldb import LDBTopology, owner_of

__all__ = ["MembershipReport", "join_node", "leave_node"]


@dataclass(frozen=True, slots=True)
class MembershipReport:
    """What a join/leave cost and moved."""

    real_id: int
    probe_hops: int
    elements_moved: int
    parked_moved: int


def _quiesce_guard(cluster) -> None:
    if not hasattr(cluster.runner, "pending_messages"):
        raise MembershipError("membership changes run under the synchronous driver")
    if cluster.runner.pending_messages() != 0:
        raise MembershipError(
            "membership changes apply at quiescent points (lazy processing); "
            "messages are still in flight"
        )


def _probe_hops(cluster, target_label: float) -> int:
    """Route a probe to ``target_label`` and return its hop count."""
    if not hasattr(cluster.runner, "step"):
        raise MembershipError("membership changes run under the synchronous driver")
    gateway = cluster.middle_node(cluster.topology.real_ids[0])
    before = len(gateway_probe_sink(cluster))
    gateway.route_to_point(target_label, "membership_probe", {})
    cluster.runner.run_until(
        lambda: len(gateway_probe_sink(cluster)) > before, max_rounds=10_000
    )
    return gateway_probe_sink(cluster)[-1]


def gateway_probe_sink(cluster) -> list[int]:
    """Probe hop counts recorded so far; (re)installs handlers on all nodes."""
    sink = getattr(cluster, "_membership_probe_hops", None)
    if sink is None:
        sink = []
        cluster._membership_probe_hops = sink
    for node in cluster.nodes.values():
        if not hasattr(node, "on_membership_probe"):
            node.on_membership_probe = (
                lambda origin, _node=node: sink.append(_node.route_hops[-1])
            )
    return sink


def _invalidate_planner(cluster) -> None:
    """Open churn: stale every node's route-plan epoch before mutating.

    From here until :func:`_rebuild_views` restamps, no node may use the
    hop-sequence oracle — its cached geometry describes the pre-churn
    overlay.  Every ``route_to_point`` in between (the splice probe, any
    straggler work) takes the exact per-hop path, which reads only live
    ``LocalView`` state and is therefore always correct.
    """
    planner = getattr(cluster, "route_planner", None)
    if planner is not None:
        planner.invalidate()


def _rebuild_views(cluster, new_topology: LDBTopology) -> None:
    cluster.topology = new_topology
    for vid, node in cluster.nodes.items():
        node.view = new_topology.local_view(vid)
    # Close churn: rebuild the planner against the new overlay and restamp
    # every live node into the fresh view epoch.
    planner = getattr(cluster, "route_planner", None)
    if planner is not None:
        planner.refresh(new_topology)
        for node in cluster.nodes.values():
            node.route_planner = planner
            node._route_epoch = planner.version


def _redistribute(cluster) -> tuple[int, int]:
    """Hand stored items/parked gets to their (new) responsible nodes.

    Only items that are no longer in their holder's responsibility range
    move — the neighbour-local handoff a real implementation performs.
    """
    moved_elements = 0
    moved_parked = 0
    relocations: list[tuple[float, object, int]] = []
    parked_relocations: list[tuple[float, tuple, int]] = []
    for vid, node in cluster.nodes.items():
        store = node.store
        for key in list(store._items):
            target = cluster.topology.responsible_for(key)
            if target != vid:
                for element in store._items.pop(key):
                    relocations.append((key, element, target))
        for key in list(store._parked):
            target = cluster.topology.responsible_for(key)
            if target != vid:
                for claim in store._parked.pop(key):
                    parked_relocations.append((key, claim, target))
    for key, element, target in relocations:
        claim = cluster.nodes[target].store.put(key, element)
        if claim is not None:
            requester, request_id = claim
            cluster.nodes[target].send(
                requester, "dht_reply", key=key, element=element, request_id=request_id
            )
        moved_elements += 1
    for key, claim, target in parked_relocations:
        requester, request_id = claim
        element = cluster.nodes[target].store.get(key, requester, request_id)
        if element is not None:
            cluster.nodes[target].send(
                requester, "dht_reply", key=key, element=element, request_id=request_id
            )
        moved_parked += 1
    return moved_elements, moved_parked


def join_node(cluster, new_real_id: int) -> MembershipReport:
    """Admit ``new_real_id`` into a quiescent cluster."""
    _quiesce_guard(cluster)
    if new_real_id in cluster.topology.real_ids:
        raise MembershipError(f"node {new_real_id} already present")
    total_before = cluster.total_stored()

    new_topology = LDBTopology(
        cluster.topology.real_ids + [new_real_id], seed=cluster.seed
    )
    hops = _probe_hops(cluster, new_topology.label(new_real_id * 3 + 1))

    # Splice: refresh views, create & register the three new virtual nodes.
    _invalidate_planner(cluster)
    for vid, view in new_topology.all_views().items():
        if owner_of(vid) == new_real_id:
            node = cluster.make_node(view)
            cluster.nodes[vid] = node
            cluster.runner.register(node)
    _rebuild_views(cluster, new_topology)
    cluster.n_nodes = new_topology.n_real
    moved, parked = _redistribute(cluster)

    if cluster.total_stored() != total_before:
        raise MembershipError("join lost or duplicated stored elements")
    return MembershipReport(new_real_id, hops, moved, parked)


def leave_node(cluster, real_id: int) -> MembershipReport:
    """Remove ``real_id`` from a quiescent cluster, handing off its data."""
    _quiesce_guard(cluster)
    remaining = [r for r in cluster.topology.real_ids if r != real_id]
    if len(remaining) == len(cluster.topology.real_ids):
        raise MembershipError(f"node {real_id} not present")
    if not remaining:
        raise MembershipError("the last node cannot leave")
    total_before = cluster.total_stored()

    # Collect the departing node's data before removing it.
    departing = [vid for vid in cluster.nodes if owner_of(vid) == real_id]
    orphans: list[tuple[float, object]] = []
    orphan_parked: list[tuple[float, tuple]] = []
    for vid in departing:
        store = cluster.nodes[vid].store
        orphans.extend(store.items())
        for key, claims in store._parked.items():
            orphan_parked.extend((key, claim) for claim in claims)

    new_topology = LDBTopology(remaining, seed=cluster.seed)
    hops = _probe_hops(cluster, cluster.topology.label(real_id * 3 + 1))
    _invalidate_planner(cluster)
    for vid in departing:
        del cluster.nodes[vid]
        cluster.runner.deregister(vid)
    _rebuild_views(cluster, new_topology)
    cluster.n_nodes = new_topology.n_real

    moved = 0
    for key, element in orphans:
        target = cluster.topology.responsible_for(key)
        cluster.nodes[target].store.put(key, element)
        moved += 1
    for key, claim in orphan_parked:
        target = cluster.topology.responsible_for(key)
        requester, request_id = claim
        cluster.nodes[target].store.get(key, requester, request_id)
    moved_more, parked = _redistribute(cluster)

    if cluster.total_stored() != total_before:
        raise MembershipError("leave lost or duplicated stored elements")
    return MembershipReport(real_id, hops, moved + moved_more, parked + len(orphan_parked))
