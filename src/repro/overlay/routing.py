"""Point-to-point routing in the LDB by de Bruijn emulation (Appendix A).

To route to a point ``t ∈ [0, 1)`` a message performs ``d`` bitshift hops.
Each hop must execute at a *middle* virtual node ``m(v)``, because only the
owner's virtual edges to ``l(v) = m(v)/2`` and ``r(v) = (m(v)+1)/2`` realize
the continuous de Bruijn edge ``z → (b + z)/2``.  The message therefore
alternates:

1. a *linear walk* along the sorted cycle to the node responsible for the
   current ideal point, then a few more steps to the nearest middle node
   (middles are a constant fraction of the cycle, so this is O(1) expected);
2. a *virtual jump* to that owner's left (bit 0) or right (bit 1) node,
   which lands exactly at ``(b + m)/2`` — within half a cycle-gap of the
   ideal trajectory, so the accumulated drift stays ``O(log n / n)``.

After the last bit the message walks linearly to the node responsible for
``t`` itself (the predecessor of ``t``, Lemma A.2).  Total hops are
``O(log n)`` w.h.p.; experiment T10 measures this.
"""

from __future__ import annotations

from typing import Any

from ..errors import RoutingError
from ..sim.message import (
    _ITEM_OVERHEAD_BITS,
    _int_bits,
    _str_bits,
    payload_size_bits,
)
from .ldb import VirtualKind

__all__ = ["RoutingMixin", "point_bits"]

# Routed messages dominate the simulation, and their envelope changes only
# trivially per hop (one bit consumed, hops incremented) while ``fpayload``
# rides through untouched.  Sizing the payload recursively at every hop is
# therefore pure waste: the size is computed once at the route's origin
# (``fsize``) and the per-hop message size is assembled from that plus the
# closed-form cost of the envelope fields below — bit-for-bit equal to
# what the recursive sizer would charge for the same fields.  ``fsize``
# itself is bookkeeping (derivable by the receiver), so it is excluded
# from the accounting.
_ROUTE_KEYS = (
    "target", "bits", "ideal", "seek", "faction", "fpayload", "origin", "hops",
)
_ROUTE_FIXED_BITS = (
    8  # message header, as charged by Message.__post_init__
    + sum(_str_bits(k) + _ITEM_OVERHEAD_BITS for k in _ROUTE_KEYS)
    + 1  # seek: bool
)
#: each hop bit is 0 or 1: 2 bits wide plus the per-item framing overhead
_HOP_BIT_COST = 2 + _ITEM_OVERHEAD_BITS


def point_bits(target: float, d: int) -> list[int]:
    """The hop bits for ``target``: ``[t_d, t_{d-1}, ..., t_1]``.

    Consuming them in order makes the ideal trajectory converge to
    ``0.t_1 t_2 ... t_d`` — within ``2^{-d}`` of ``target`` — exactly as in
    the classical bitshift route of Definition 2.1.
    """
    bits = []
    x = target
    for _ in range(d):
        x *= 2.0
        b = int(x)
        bits.append(b)
        x -= b
    bits.reverse()
    return bits


class RoutingMixin:
    """LDB routing engine; host must provide ``self.view`` and ``self.send``."""

    def _init_routing(self) -> None:
        #: hop counts of routed messages that terminated here (experiment T10)
        self.route_hops: list[int] = []

    # -- public API --------------------------------------------------------

    def route_to_point(
        self,
        target: float,
        faction: str,
        fpayload: dict[str, Any] | None = None,
    ) -> None:
        """Route a remote call of ``faction`` to the node responsible for ``target``."""
        if not 0.0 <= target < 1.0:
            raise RoutingError(f"target {target} outside [0,1)")
        fpayload = fpayload or {}
        self._route_step(
            target=target,
            bits=point_bits(target, self.view.debruijn_dim),
            ideal=self.view.label,
            seek=False,
            faction=faction,
            fpayload=fpayload,
            fsize=payload_size_bits(fpayload),
            origin=self.id,
            hops=0,
        )

    # -- message handler ------------------------------------------------------

    def on_route(self, sender, target, bits, ideal, seek, faction, fpayload, origin, hops, fsize=None):
        if fsize is None:
            fsize = payload_size_bits(fpayload)
        self._route_step(
            target, list(bits), ideal, seek, faction, fpayload, fsize, origin, hops
        )

    # -- mechanics -------------------------------------------------------------

    def _responsible_for(self, point: float) -> bool:
        a, b = self.view.label, self.view.succ_label
        if a < b:
            return a <= point < b
        return point >= a or point < b  # wrap-around range of the max label

    def _forward(self, dest, *, target, bits, ideal, seek, faction, fpayload, fsize, origin, hops):
        hops += 1
        size = (
            _ROUTE_FIXED_BITS
            + payload_size_bits(target)
            + _HOP_BIT_COST * len(bits)
            + payload_size_bits(ideal)
            + _str_bits(faction)
            + fsize
            + _int_bits(origin)
            + _int_bits(hops)
        )
        self.send_sized(
            dest,
            "route",
            dict(
                target=target,
                bits=bits,
                ideal=ideal,
                seek=seek,
                faction=faction,
                fpayload=fpayload,
                fsize=fsize,
                origin=origin,
                hops=hops,
            ),
            size,
        )

    def _route_step(self, target, bits, ideal, seek, faction, fpayload, fsize, origin, hops):
        max_hops = 16 * (self.view.debruijn_dim + 4) + 6 * self.view.n_estimate
        if hops > max_hops:
            raise RoutingError(
                f"routing to {target} exceeded {max_hops} hops at node {self.id}"
            )
        fwd = dict(
            target=target,
            bits=bits,
            ideal=ideal,
            seek=seek,
            faction=faction,
            fpayload=fpayload,
            fsize=fsize,
            origin=origin,
            hops=hops,
        )
        if bits:
            if seek:
                # Walking succ-ward in search of the nearest middle node.
                if self.view.kind is not VirtualKind.MIDDLE:
                    self._forward(self.view.succ, **fwd)
                    return
            elif not self._responsible_for(ideal):
                # Linear correction toward the current ideal point.
                forward = (ideal - self.view.label) % 1.0
                backward = (self.view.label - ideal) % 1.0
                nxt = self.view.succ if forward <= backward else self.view.pred
                self._forward(nxt, **fwd)
                return
            elif self.view.kind is not VirtualKind.MIDDLE:
                # Responsible but not a middle node: seek one succ-ward.
                fwd["seek"] = True
                self._forward(self.view.succ, **fwd)
                return
            # At a middle node: perform the de Bruijn bitshift hop via the
            # owner's virtual edge.  The landing label is exactly
            # (b + m(v)) / 2, which becomes the new ideal point.
            b, rest = bits[0], bits[1:]
            new_ideal = (b + self.view.label) / 2.0
            dest = self.view.siblings[
                VirtualKind.LEFT if b == 0 else VirtualKind.RIGHT
            ]
            fwd.update(bits=rest, ideal=new_ideal, seek=False)
            self._forward(dest, **fwd)
            return
        if not self._responsible_for(target):
            forward = (target - self.view.label) % 1.0
            backward = (self.view.label - target) % 1.0
            nxt = self.view.succ if forward <= backward else self.view.pred
            self._forward(nxt, **fwd)
            return
        # Arrived at the responsible node: local delivery of the final action.
        self.route_hops.append(hops)
        handler = getattr(self, "on_" + faction, None)
        if handler is None:
            raise RoutingError(
                f"node {self.id} cannot deliver routed action {faction!r}"
            )
        handler(origin, **fpayload)
