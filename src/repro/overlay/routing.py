"""Point-to-point routing in the LDB by de Bruijn emulation (Appendix A).

To route to a point ``t ∈ [0, 1)`` a message performs ``d`` bitshift hops.
Each hop must execute at a *middle* virtual node ``m(v)``, because only the
owner's virtual edges to ``l(v) = m(v)/2`` and ``r(v) = (m(v)+1)/2`` realize
the continuous de Bruijn edge ``z → (b + z)/2``.  The message therefore
alternates:

1. a *linear walk* along the sorted cycle to the node responsible for the
   current ideal point, then a few more steps to the nearest middle node
   (middles are a constant fraction of the cycle, so this is O(1) expected);
2. a *virtual jump* to that owner's left (bit 0) or right (bit 1) node,
   which lands exactly at ``(b + m)/2`` — within half a cycle-gap of the
   ideal trajectory, so the accumulated drift stays ``O(log n / n)``.

After the last bit the message walks linearly to the node responsible for
``t`` itself (the predecessor of ``t``, Lemma A.2).  Total hops are
``O(log n)`` w.h.p.; experiment T10 measures this.

Two transports realize the same route:

* the **exact path** (:meth:`RoutingMixin._route_step`) forwards a real
  message hop by hop — every intermediate node executes the decision rule
  above on its own :class:`~repro.overlay.ldb.LocalView`;
* the **fast path** precomputes the identical hop sequence at the origin
  with :class:`RoutePlanner` (every decision is a pure function of static
  view state) and hands the runner a hop-compressed
  :class:`~repro.sim.flight.Flight` that charges the same per-round,
  per-hop metrics without materializing intermediate messages.

The fast path is a pure optimization and silently steps aside whenever its
preconditions fail: the runner reports flights unsafe (fault injection,
``exact_transport=True``, detail metrics), or the planner's view epoch no
longer matches the stamp on this node (membership churn in progress).  See
``docs/PERF.md`` for the full contract.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any

from ..errors import RoutingError
from ..sim.flight import Flight
from ..sim.message import (
    _INT_BITS_TABLE,
    _ITEM_OVERHEAD_BITS,
    _int_bits,
    _str_bits,
    payload_size_bits,
)
from .ldb import VirtualKind

__all__ = ["RoutingMixin", "RoutePlanner", "point_bits"]

# Routed messages dominate the simulation, and their envelope changes only
# trivially per hop (one bit consumed, hops incremented) while ``fpayload``
# rides through untouched.  Sizing the payload recursively at every hop is
# therefore pure waste: the size is computed once at the route's origin
# (``fsize``) and the per-hop message size is assembled from that plus the
# closed-form cost of the envelope fields below — bit-for-bit equal to
# what the recursive sizer would charge for the same fields.  ``fsize``
# itself is bookkeeping (derivable by the receiver), so it is excluded
# from the accounting.
_ROUTE_KEYS = (
    "target", "bits", "ideal", "seek", "faction", "fpayload", "origin", "hops",
)
_ROUTE_FIXED_BITS = (
    8  # message header, as charged by Message.__post_init__
    + sum(_str_bits(k) + _ITEM_OVERHEAD_BITS for k in _ROUTE_KEYS)
    + 1  # seek: bool
)
#: each hop bit is 0 or 1: 2 bits wide plus the per-item framing overhead
_HOP_BIT_COST = 2 + _ITEM_OVERHEAD_BITS
#: ``target`` and ``ideal`` are floats: 64 bits each in the payload sizer
_ROUTE_FLOAT_BITS = 64 + 64


@lru_cache(maxsize=1 << 16)
def point_bits(target: float, d: int) -> tuple[int, ...]:
    """The hop bits for ``target``: ``(t_d, t_{d-1}, ..., t_1)``.

    Consuming them in order makes the ideal trajectory converge to
    ``0.t_1 t_2 ... t_d`` — within ``2^{-d}`` of ``target`` — exactly as in
    the classical bitshift route of Definition 2.1.

    Targets repeat heavily across the sweeps (every element's DHT key is
    routed to at insert and again at delete), so the expansion is memoized;
    the result is a tuple because every consumer treats it immutably
    (hops slice it, they never mutate in place).
    """
    bits = []
    x = target
    for _ in range(d):
        x *= 2.0
        b = int(x)
        bits.append(b)
        x -= b
    bits.reverse()
    return tuple(bits)


class RoutePlanner:
    """Origin-side oracle for complete LDB hop sequences.

    Built from the global :class:`~repro.overlay.ldb.LDBTopology`, it
    replays the exact decision procedure of
    :meth:`RoutingMixin._route_step` — linear walk, middle-seek, bitshift,
    terminal walk — against the same per-node view state, producing the
    destination, congestion owner and closed-form envelope size of every
    hop a routed message would take.

    **View epochs.**  ``version`` is the planner's view epoch.  Every node
    is stamped with the epoch current at wiring time; membership churn
    calls :meth:`invalidate` *before* mutating the overlay (bumping the
    epoch, so every stamp goes stale and all origins fall back to the
    exact path) and :meth:`refresh` after the new topology stands (rebuild
    tables, bump the epoch again, restamp nodes).  A node whose stamp
    disagrees with ``version`` must not use the planner — its cached hop
    geometry may describe an overlay that no longer exists.
    """

    def __init__(self, topology):
        self.version = 0
        self._plans: dict[tuple[int, float], tuple] = {}
        self._load(topology)

    def _load(self, topology) -> None:
        # Per-vid static route state: everything _route_step reads from a
        # LocalView, keyed for the planner's walk loop.
        info: dict[int, tuple] = {}
        labels = topology._labels
        pred = topology.pred
        succ = topology.succ
        for vid in topology.cycle:
            owner = vid // 3
            info[vid] = (
                labels[vid],          # label
                labels[succ[vid]],    # succ_label
                pred[vid],
                succ[vid],
                vid % 3 == int(VirtualKind.MIDDLE),
                owner * 3,            # left sibling vid
                owner * 3 + 2,        # right sibling vid
            )
        self._info = info
        self._dim = topology.debruijn_dim
        self._max_hops = 16 * (topology.debruijn_dim + 4) + 6 * topology.n_real
        # Walk-segment caches (see _walk): between two bit consumptions the
        # trajectory is a pure function of (consuming middle, bit) — the
        # jump lands at a fixed sibling with a fixed new ideal, and every
        # correction/seek decision afterwards reads only static view state.
        # Likewise the pre-first-bit walk depends only on the origin.  Both
        # caches are bounded by the topology (≤ 2 entries per middle, one
        # per origin), unlike the per-(origin, target) plan cache.
        self._initial: dict[int, tuple] = {}
        self._segments: dict[int, tuple] = {}

    # -- epochs ----------------------------------------------------------

    def invalidate(self) -> None:
        """Bump the view epoch: every outstanding node stamp goes stale."""
        self.version += 1

    def refresh(self, topology) -> None:
        """Rebuild hop tables for ``topology`` and open a new view epoch.

        The caller (membership's view-rebuild) must restamp every live
        node with the new ``version`` for the fast path to resume.
        """
        self._plans.clear()
        self._load(topology)
        self.version += 1

    # -- planning --------------------------------------------------------

    def plan(self, origin: int, target: float) -> tuple:
        """The complete hop sequence from ``origin`` to ``target``.

        Returns ``(dests, owners, base_sizes)`` tuples, one entry per hop.
        ``base_sizes`` excludes the faction-name and ``fpayload`` bits
        (which vary per call and are added by the caller); everything else
        about hop ``i``'s envelope size is geometry and cached here.
        """
        key = (origin, target)
        cached = self._plans.get(key)
        if cached is None:
            cached = self._plans[key] = self._walk(origin, target)
        return cached

    def _walk(self, origin: int, target: float) -> tuple:
        """Assemble a plan from cached walk segments.

        Byte-for-byte equal to :meth:`_walk_exact` (the differential test
        ``test_batched.py::test_segment_walk_matches_exact`` sweeps this):
        the pre-first-bit walk comes from ``_initial[origin]``, each bit
        consumption appends its memoized ``(jump, corrections, seek)``
        segment, and only the post-last-bit terminal walk toward ``target``
        runs the decision loop per query.  Per-hop envelope sizes differ
        only in the bits-remaining term (constant within a segment) and the
        hop counter (a table lookup).  Any overrun of the hop bound falls
        back to the exact walk so pathological routes raise the identical
        :class:`RoutingError`.
        """
        info = self._info
        bits = point_bits(target, self._dim)
        nbits = len(bits)
        if nbits == 0:
            return self._walk_exact(origin, target)
        initial = self._initial.get(origin)
        if initial is None:
            initial = self._walk_initial(origin)
            if initial is None:
                return self._walk_exact(origin, target)
            self._initial[origin] = initial
        pre, pre_owners, mid = initial
        fixed = _ROUTE_FIXED_BITS + _ROUTE_FLOAT_BITS + _int_bits(origin)
        limit = self._max_hops
        ib = _INT_BITS_TABLE
        dests = list(pre)
        owners = list(pre_owners)
        sizes: list[int] = []
        h = 0
        if pre:
            n = len(pre)
            base = fixed + _HOP_BIT_COST * nbits
            # Hop-counter width is constant between powers of two, so the
            # whole block usually extends in one C-level list multiply.
            if ib[1] == (ib[n] if n < 4096 else _int_bits(n)):
                sizes.extend([base + ib[1]] * n)
            else:
                for j in range(1, n + 1):
                    sizes.append(base + (ib[j] if j < 4096 else _int_bits(j)))
            h = n
        segments = self._segments
        last = nbits - 1
        for i in range(last):
            if h > limit:
                return self._walk_exact(origin, target)
            key = (mid << 1) | bits[i]
            seg = segments.get(key)
            if seg is None:
                seg = self._build_segment(mid, bits[i])
                if seg is None:
                    return self._walk_exact(origin, target)
                segments[key] = seg
            hops_t, owners_t, mid = seg
            dests.extend(hops_t)
            owners.extend(owners_t)
            n = len(hops_t)
            base = fixed + _HOP_BIT_COST * (nbits - i - 1)
            j = h + 1
            h += n
            w = ib[j] if j < 4096 else _int_bits(j)
            if w == (ib[h] if h < 4096 else _int_bits(h)):
                sizes.extend([base + w] * n)
            else:
                while j <= h:
                    sizes.append(base + (ib[j] if j < 4096 else _int_bits(j)))
                    j += 1
        # Final bit: only the jump is geometry; the terminal walk toward
        # ``target`` itself is per-query.
        minfo = info[mid]
        cur = minfo[5] if bits[last] == 0 else minfo[6]
        h += 1
        dests.append(cur)
        owners.append(cur // 3)
        sizes.append(fixed + (ib[h] if h < 4096 else _int_bits(h)))
        while True:
            if h > limit:
                return self._walk_exact(origin, target)
            label, succ_label, pred, succ, _mid, _l, _r = info[cur]
            if (
                label <= target < succ_label
                if label < succ_label
                else (target >= label or target < succ_label)
            ):
                break
            forward = (target - label) % 1.0
            backward = (label - target) % 1.0
            cur = succ if forward <= backward else pred
            h += 1
            dests.append(cur)
            owners.append(cur // 3)
            sizes.append(fixed + (ib[h] if h < 4096 else _int_bits(h)))
        return tuple(dests), tuple(owners), tuple(sizes)

    def _walk_initial(self, origin: int) -> tuple | None:
        """Hops from ``origin`` to the middle that consumes the first bit.

        The origin is trivially responsible for its own label (the initial
        ideal), so the walk is: nothing if the origin is a middle node,
        otherwise one seek step succ-ward per non-middle node encountered.
        Returns None on overrun (caller falls back to the exact walk).
        """
        info = self._info
        if info[origin][4]:
            return (), (), origin
        limit = self._max_hops
        hops = []
        cur = info[origin][3]
        hops.append(cur)
        while True:
            if len(hops) > limit:
                return None
            entry = info[cur]
            if entry[4]:
                return tuple(hops), tuple(v // 3 for v in hops), cur
            cur = entry[3]
            hops.append(cur)

    def _build_segment(self, mid: int, b: int) -> tuple | None:
        """The walk from consuming bit ``b`` at middle ``mid`` up to (and
        stopping at) the next bit-consuming middle: the sibling jump, then
        linear corrections toward the new ideal, then the middle-seek.
        Returns ``(hop_tuple, owner_tuple, next_mid)``, or None on overrun.
        """
        info = self._info
        label = info[mid][0]
        ideal = (b + label) / 2.0
        cur = info[mid][5] if b == 0 else info[mid][6]
        hops = [cur]
        seek = False
        limit = self._max_hops
        while True:
            if len(hops) > limit:
                return None
            label, succ_label, pred, succ, is_middle, _l, _r = info[cur]
            if seek:
                if is_middle:
                    return tuple(hops), tuple(v // 3 for v in hops), cur
                cur = succ
            elif not (
                label <= ideal < succ_label
                if label < succ_label
                else (ideal >= label or ideal < succ_label)
            ):
                forward = (ideal - label) % 1.0
                backward = (label - ideal) % 1.0
                cur = succ if forward <= backward else pred
            elif not is_middle:
                seek = True
                cur = succ
            else:
                return tuple(hops), tuple(v // 3 for v in hops), cur
            hops.append(cur)

    def _walk_exact(self, origin: int, target: float) -> tuple:
        info = self._info
        d = self._dim
        bits = point_bits(target, d)
        nbits = len(bits)
        bi = 0  # bits consumed so far
        ideal = info[origin][0]
        seek = False
        hops = 0
        origin_bits = _int_bits(origin)
        fixed = _ROUTE_FIXED_BITS + _ROUTE_FLOAT_BITS + origin_bits
        dests: list[int] = []
        sizes: list[int] = []
        cur = origin
        while True:
            label, succ_label, pred, succ, is_middle, left, right = info[cur]
            if hops > self._max_hops:
                raise RoutingError(
                    f"routing to {target} exceeded {self._max_hops} hops "
                    f"at node {cur}"
                )
            if bi < nbits:
                if seek:
                    if not is_middle:
                        nxt = succ
                    else:
                        b = bits[bi]
                        bi += 1
                        ideal = (b + label) / 2.0
                        nxt = left if b == 0 else right
                        seek = False
                elif not (
                    label <= ideal < succ_label
                    if label < succ_label
                    else (ideal >= label or ideal < succ_label)
                ):
                    forward = (ideal - label) % 1.0
                    backward = (label - ideal) % 1.0
                    nxt = succ if forward <= backward else pred
                elif not is_middle:
                    seek = True
                    nxt = succ
                else:
                    b = bits[bi]
                    bi += 1
                    ideal = (b + label) / 2.0
                    nxt = left if b == 0 else right
            else:
                if (
                    label <= target < succ_label
                    if label < succ_label
                    else (target >= label or target < succ_label)
                ):
                    break  # ``cur`` is responsible: terminal delivery here
                forward = (target - label) % 1.0
                backward = (label - target) % 1.0
                nxt = succ if forward <= backward else pred
            hops += 1
            dests.append(nxt)
            sizes.append(
                fixed + _HOP_BIT_COST * (nbits - bi) + _int_bits(hops)
            )
            cur = nxt
        return tuple(dests), tuple(v // 3 for v in dests), tuple(sizes)


class RoutingMixin:
    """LDB routing engine; host must provide ``self.view`` and ``self.send``."""

    def _init_routing(self) -> None:
        #: hop counts of routed messages that terminated here (experiment T10)
        self.route_hops: list[int] = []
        #: wired by the cluster; None means no fast path (exact transport)
        self.route_planner: RoutePlanner | None = None
        #: the planner view epoch this node's view belongs to
        self._route_epoch = -1

    # -- public API --------------------------------------------------------

    def route_to_point(
        self,
        target: float,
        faction: str,
        fpayload: dict[str, Any] | None = None,
    ) -> None:
        """Route a remote call of ``faction`` to the node responsible for ``target``."""
        if not 0.0 <= target < 1.0:
            raise RoutingError(f"target {target} outside [0,1)")
        fpayload = fpayload or {}
        planner = self.route_planner
        if planner is not None and planner.version == self._route_epoch:
            ctx = self._ctx
            if ctx is not None and getattr(ctx, "flights_enabled", False):
                dests, owners, base_sizes = planner.plan(self.id, target)
                if not dests:  # origin already responsible (degenerate)
                    self.deliver_flight(faction, self.id, fpayload, 0)
                    return
                extra = _str_bits(faction) + payload_size_bits(fpayload)
                ctx.launch_flight(
                    Flight(
                        self.id, dests, owners,
                        [b + extra for b in base_sizes],
                        faction, self.id, fpayload,
                    )
                )
                return
        fsize = payload_size_bits(fpayload)
        self._route_step(
            target=target,
            bits=point_bits(target, self.view.debruijn_dim),
            ideal=self.view.label,
            seek=False,
            faction=faction,
            fpayload=fpayload,
            fsize=fsize,
            origin=self.id,
            hops=0,
            base=(
                _ROUTE_FIXED_BITS + _ROUTE_FLOAT_BITS + _str_bits(faction)
                + fsize + _int_bits(self.id)
            ),
        )

    # -- message handler ------------------------------------------------------

    def on_route(self, sender, target, bits, ideal, seek, faction, fpayload, origin, hops, fsize=None, base=None):
        if fsize is None:
            fsize = payload_size_bits(fpayload)
        if base is None:
            base = (
                _ROUTE_FIXED_BITS + _ROUTE_FLOAT_BITS + _str_bits(faction)
                + fsize + _int_bits(origin)
            )
        # ``bits`` is consumed immutably (hops slice it, nothing mutates),
        # so the tuple rides through as-is — no defensive copy.
        self._route_step(
            target, bits, ideal, seek, faction, fpayload, fsize, origin, hops,
            base,
        )

    # -- terminal delivery -----------------------------------------------------

    def deliver_flight(self, faction: str, origin: int, fpayload: dict, hops: int) -> None:
        """Terminal delivery of a hop-compressed flight (or 0-hop route)."""
        self.route_hops.append(hops)
        if not self.dispatch_action(faction, origin, fpayload):
            raise RoutingError(
                f"node {self.id} cannot deliver routed action {faction!r}"
            )

    # -- mechanics -------------------------------------------------------------

    def _responsible_for(self, point: float) -> bool:
        a, b = self.view.label, self.view.succ_label
        if a < b:
            return a <= point < b
        return point >= a or point < b  # wrap-around range of the max label

    def _forward(self, dest, fwd):
        """Send the route envelope ``fwd`` one hop to ``dest``.

        The envelope size is ``base`` (every per-route-constant component,
        computed once at the origin and carried as bookkeeping, exactly
        like ``fsize``) plus the two components that change per hop: the
        remaining hop bits and the hop counter — bit-for-bit the sum the
        recursive sizer would charge for the same fields.
        """
        hops = fwd["hops"] + 1
        fwd["hops"] = hops
        self.send_sized(
            dest,
            "route",
            fwd,
            fwd["base"] + _HOP_BIT_COST * len(fwd["bits"]) + _int_bits(hops),
        )

    def _route_step(self, target, bits, ideal, seek, faction, fpayload, fsize, origin, hops, base):
        max_hops = 16 * (self.view.debruijn_dim + 4) + 6 * self.view.n_estimate
        if hops > max_hops:
            raise RoutingError(
                f"routing to {target} exceeded {max_hops} hops at node {self.id}"
            )
        fwd = dict(
            target=target,
            bits=bits,
            ideal=ideal,
            seek=seek,
            faction=faction,
            fpayload=fpayload,
            fsize=fsize,
            origin=origin,
            hops=hops,
            base=base,
        )
        if bits:
            if seek:
                # Walking succ-ward in search of the nearest middle node.
                if self.view.kind is not VirtualKind.MIDDLE:
                    self._forward(self.view.succ, fwd)
                    return
            elif not self._responsible_for(ideal):
                # Linear correction toward the current ideal point.
                forward = (ideal - self.view.label) % 1.0
                backward = (self.view.label - ideal) % 1.0
                nxt = self.view.succ if forward <= backward else self.view.pred
                self._forward(nxt, fwd)
                return
            elif self.view.kind is not VirtualKind.MIDDLE:
                # Responsible but not a middle node: seek one succ-ward.
                fwd["seek"] = True
                self._forward(self.view.succ, fwd)
                return
            # At a middle node: perform the de Bruijn bitshift hop via the
            # owner's virtual edge.  The landing label is exactly
            # (b + m(v)) / 2, which becomes the new ideal point.
            b, rest = bits[0], bits[1:]
            new_ideal = (b + self.view.label) / 2.0
            dest = self.view.siblings[
                VirtualKind.LEFT if b == 0 else VirtualKind.RIGHT
            ]
            fwd.update(bits=rest, ideal=new_ideal, seek=False)
            self._forward(dest, fwd)
            return
        if not self._responsible_for(target):
            forward = (target - self.view.label) % 1.0
            backward = (self.view.label - target) % 1.0
            nxt = self.view.succ if forward <= backward else self.view.pred
            self._forward(nxt, fwd)
            return
        # Arrived at the responsible node: local delivery of the final action.
        self.route_hops.append(hops)
        if not self.dispatch_action(faction, origin, fpayload):
            raise RoutingError(
                f"node {self.id} cannot deliver routed action {faction!r}"
            )
