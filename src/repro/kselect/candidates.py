"""Per-node candidate bookkeeping for KSelect (the sets ``v.C``).

Every node keeps, per KSelect session, the sorted list of its surviving
candidate keys ``(priority, uid)``.  All pruning/counting steps reduce to
order statistics on this sorted list, done with ``bisect`` in
O(log |C|) — the natural vectorization of the paper's "remove candidates
with priorities not in [P_min, P_max]" instructions.
"""

from __future__ import annotations

import bisect
from typing import Iterable

from ..element import PrioKey
from ..errors import ProtocolError

__all__ = ["CandidateSet"]


class CandidateSet:
    """A node's surviving candidates for one selection session, sorted."""

    def __init__(self, keys: Iterable[PrioKey] = ()):
        self._keys: list[PrioKey] = sorted(keys)
        if any(
            self._keys[i] == self._keys[i + 1] for i in range(len(self._keys) - 1)
        ):
            raise ProtocolError("duplicate candidate keys in one node's set")

    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self):
        return iter(self._keys)

    @property
    def keys(self) -> list[PrioKey]:
        return self._keys

    # -- order statistics ----------------------------------------------------

    def kth_smallest(self, rank: int) -> PrioKey:
        """The candidate of local rank ``rank`` (1-based)."""
        if not 1 <= rank <= len(self._keys):
            raise ProtocolError(f"local rank {rank} outside 1..{len(self._keys)}")
        return self._keys[rank - 1]

    def local_minmax_ranks(self, k: int, n: int) -> tuple[PrioKey, PrioKey] | None:
        """The paper's ``(v.P_min, v.P_max)`` for Phase 1.

        ``v.P_min`` is the ⌊k/n⌋-th and ``v.P_max`` the ⌈k/n⌉-th smallest
        local candidate; both ranks are clamped into ``[1, |C|]`` so sparse
        nodes contribute safely (clamping can only widen the window, never
        cut the target — see DESIGN.md's guard-rail note).
        """
        if not self._keys:
            return None
        lo_rank = max(1, min(k // n, len(self._keys)))
        hi_rank = max(1, min(-(-k // n), len(self._keys)))
        return self._keys[lo_rank - 1], self._keys[hi_rank - 1]

    def count_below(self, key: PrioKey) -> int:
        """Candidates strictly smaller than ``key``."""
        return bisect.bisect_left(self._keys, key)

    def count_above(self, key: PrioKey) -> int:
        """Candidates strictly greater than ``key``."""
        return len(self._keys) - bisect.bisect_right(self._keys, key)

    # -- pruning ----------------------------------------------------------------

    def prune(self, low: PrioKey | None, high: PrioKey | None) -> tuple[int, int]:
        """Keep only candidates in ``[low, high]`` (inclusive, None = open).

        Returns ``(removed_below, removed_above)``.
        """
        lo_idx = bisect.bisect_left(self._keys, low) if low is not None else 0
        hi_idx = (
            bisect.bisect_right(self._keys, high)
            if high is not None
            else len(self._keys)
        )
        removed_below = lo_idx
        removed_above = len(self._keys) - hi_idx
        self._keys = self._keys[lo_idx:hi_idx]
        return removed_below, removed_above
