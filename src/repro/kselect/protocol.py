"""Protocol KSelect (Section 4): distributed k-selection in O(log n) rounds.

The anchor drives a pipeline of aggregation phases over the tree:

* **Phase 1 (sampling by local ranks)** — ``log₂(q)+1`` iterations; every
  node reports the priorities of its ⌊k/n⌋-th and ⌈k/n⌉-th smallest local
  candidates, the anchor combines them to ``P_min``/``P_max`` and all
  candidates outside ``[P_min, P_max]`` are removed (Lemma 4.4: the
  survivor count drops to ``O(n^{3/2} log n)``).
* **Phase 2 (representatives)** — candidates are sampled with probability
  ``√n / N``, distributedly sorted (``repro.kselect.sorting``), the anchor
  picks ``c_l``/``c_r`` at sample orders ``k·n'/N ∓ δ`` with
  ``δ = Θ(√log n · n^{1/4})``, computes their exact ranks and prunes to
  ``[c_l, c_r]`` (Lemma 4.7: ``O(√n)`` survivors after O(1) iterations).
* **Phase 3 (exact)** — one sorting round over *all* survivors; the
  candidate of order ``k`` is the answer.

Safety beyond the paper's w.h.p. arguments (see DESIGN.md): every prune is
validated against the counting aggregation the paper already performs, and
skipped on the unsafe side if it would cut the target rank; sampling
rounds that yield no usable window escalate the sampling rate, bounded by
the ``phase3_cap`` fallback — so the protocol is *always* correct,
terminating, and w.h.p. identical to the paper's behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from ..element import PrioKey
from ..errors import ProtocolError
from ..overlay.aggregation import AggSpec, sum_combine, vector_sum_combine
from ..sim.trace import PHASE
from .candidates import CandidateSet
from .sorting import SortingMixin

__all__ = ["KSelectMixin", "KSelectRun"]


def _minmax_combine(node, tag, own, children):
    """Combine (P_min, P_max) pairs; None means 'no candidates here'."""
    mins = []
    maxs = []
    for value in [own] + [v for _, v in children]:
        if value is None:
            continue
        lo, hi = value
        mins.append(tuple(lo))
        maxs.append(tuple(hi))
    if not mins:
        return None
    return (min(mins), max(maxs))


@dataclass(slots=True)
class KSelectRun:
    """Anchor-side state of one selection session."""

    session: int
    k: int
    n: int
    on_complete: Callable[[int, PrioKey], None]
    N: int = 0
    k_left: int = 0
    p1_left: int = 0
    p1_iter: int = 0
    p2_iter: int = 0
    sample_boost: float = 1.0
    stalls: int = 0
    token: tuple = ()
    n_prime: int = 0
    exact: bool = False
    want_cl: bool = False
    want_cr: bool = False
    cl: PrioKey | None = None
    cr: PrioKey | None = None
    pending_p1_bounds: tuple | None = None
    result: PrioKey | None = None
    #: survivor counts per stage — the data behind experiment T5
    stats: dict = field(default_factory=dict)


class KSelectMixin(SortingMixin):
    """KSelect participant role; anchors additionally run :class:`KSelectRun`."""

    #: phase-2 iterations before escalating to the exhaustive fallback
    P2_MAX_ITERS = 12

    def _init_kselect(self, delta_scale: float = 1.0) -> None:
        self._init_sorting()
        self.delta_scale = float(delta_scale)
        self._ks_sets: dict[int, CandidateSet] = {}
        self._ks_samples: dict[tuple, list[PrioKey]] = {}
        self._ks_runs: dict[int, KSelectRun] = {}  # anchor only

        self.register_bcast("ksB", type(self)._bc_begin)
        self.register_bcast("ks1", type(self)._bc_p1_ranks)
        self.register_bcast("ks1c", type(self)._bc_p1_count)
        self.register_bcast("ks1p", type(self)._bc_p1_prune)
        self.register_bcast("ks2", type(self)._bc_p2_sample)
        self.register_bcast("ks2r", type(self)._bc_p2_rank)
        self.register_bcast("ks2p", type(self)._bc_p2_prune)
        self.register_bcast("ksG", type(self)._bc_gather)
        self.register_bcast("ksF", type(self)._bc_finished)

        self.register_agg("ksC", AggSpec(combine=lambda s, t, o, c: sum_combine(o, c), at_root=type(self)._rt_count))
        self.register_agg("ksMM", AggSpec(combine=_minmax_combine, at_root=type(self)._rt_p1_bounds))
        self.register_agg("ks1n", AggSpec(combine=lambda s, t, o, c: vector_sum_combine(o, c), at_root=type(self)._rt_p1_counts))
        self.register_agg("ks1r", AggSpec(combine=lambda s, t, o, c: vector_sum_combine(o, c), at_root=type(self)._rt_p1_removed))
        self.register_agg(
            "ks2n",
            AggSpec(
                combine=lambda s, t, o, c: sum_combine(o, c),
                at_root=type(self)._rt_p2_count,
                decompose=type(self)._dc_positions,
                deliver=type(self)._dv_positions,
            ),
        )
        self.register_agg("ks2rank", AggSpec(combine=lambda s, t, o, c: vector_sum_combine(o, c), at_root=type(self)._rt_p2_ranks))
        self.register_agg("ks2rm", AggSpec(combine=lambda s, t, o, c: vector_sum_combine(o, c), at_root=type(self)._rt_p2_removed))
        self.register_agg("ksGv", AggSpec(combine=type(self)._gather_combine, at_root=type(self)._rt_gather))

    # -- hooks ------------------------------------------------------------

    def kselect_candidates(self, session: int) -> list[PrioKey]:
        """The local candidate keys ``v.C ⊆ v.E`` for a new session.

        Defaults to the keys of the locally stored DHT elements (how Seap
        uses KSelect); standalone clusters override this.
        """
        return [e.key for e in self.store.elements()]

    def kselect_finished(self, session: int, result: PrioKey) -> None:
        """Called at *every* node when a session completes (override)."""

    # -- entry point (anchor only) --------------------------------------------

    def kselect_begin(
        self, k: int, session: int, on_complete: Callable[[int, PrioKey], None]
    ) -> None:
        """Start selecting the k-th smallest candidate (anchor only)."""
        if not self.view.is_anchor:
            raise ProtocolError("kselect_begin must run at the anchor")
        if session in self._ks_runs:
            raise ProtocolError(f"kselect session {session} already running")
        if k < 1:
            raise ProtocolError(f"k must be positive, got {k}")
        self._ks_runs[session] = KSelectRun(
            session=session,
            k=k,
            n=self.view.n_estimate,
            on_complete=on_complete,
        )
        tr = self.tracer
        if tr is not None:
            tr.emit(PHASE, proto="kselect", name="begin", session=session, k=k)
        self.bcast(("ksB", session), None)

    # -- session setup -----------------------------------------------------------

    def _bc_begin(self, tag, payload) -> None:
        session = tag[1]
        self._ks_sets[session] = CandidateSet(self.kselect_candidates(session))
        self.agg_contribute(("ksC", session), len(self._ks_sets[session]))

    def _rt_count(self, tag, total: int) -> None:
        run = self._ks_runs[tag[1]]
        run.N = total
        run.k_left = run.k
        if run.k > total:
            raise ProtocolError(
                f"kselect: k={run.k} exceeds candidate count {total}"
            )
        run.stats["initial_N"] = total
        n = max(2, run.n)
        # m <= n^q  =>  q = ceil(log m / log n); phase 1 runs log2(q)+1 times.
        q = max(1, math.ceil(math.log(max(total, 2)) / math.log(n)))
        run.p1_left = math.ceil(math.log2(q)) + 1 if total > 2 * run.n else 0
        self._anchor_advance(run)

    # -- anchor scheduling -------------------------------------------------------

    def _anchor_advance(self, run: KSelectRun) -> None:
        """Pick the next stage from the anchor's (N, k, iteration) state."""
        n = max(run.n, 1)
        phase3_cap = max(64, int(4 * math.sqrt(n)))
        if run.p1_left > 0 and run.N > 2 * run.n:
            self._p1_start(run)
            return
        run.stats.setdefault("after_phase1", run.N)
        if run.N <= max(math.isqrt(n), 2) or run.N <= phase3_cap:
            self._p2_start(run, exact=True)
            return
        if run.p2_iter >= self.P2_MAX_ITERS:
            self._gather_start(run)
            return
        self._p2_start(run, exact=False)

    # -- Phase 1 ----------------------------------------------------------------

    def _p1_start(self, run: KSelectRun) -> None:
        run.p1_left -= 1
        run.p1_iter += 1
        tr = self.tracer
        if tr is not None:
            tr.emit(
                PHASE, proto="kselect", name="p1",
                session=run.session, it=run.p1_iter, N=run.N,
            )
        self.bcast(("ks1", run.session, run.p1_iter), (run.k_left, run.n))

    def _bc_p1_ranks(self, tag, payload) -> None:
        _, session, it = tag
        k, n = payload
        cand = self._ks_sets[session]
        self.agg_contribute(("ksMM", session, it), cand.local_minmax_ranks(k, max(n, 1)))

    def _rt_p1_bounds(self, tag, bounds) -> None:
        run = self._ks_runs[tag[1]]
        if bounds is None:  # pragma: no cover - k<=N guarantees candidates
            raise ProtocolError("phase 1 found no candidates anywhere")
        run.pending_p1_bounds = bounds
        self.bcast(("ks1c", run.session, tag[2]), bounds)

    def _bc_p1_count(self, tag, payload) -> None:
        _, session, it = tag
        pmin, pmax = payload
        cand = self._ks_sets[session]
        self.agg_contribute(
            ("ks1n", session, it),
            (cand.count_below(tuple(pmin)), cand.count_above(tuple(pmax))),
        )

    def _rt_p1_counts(self, tag, counts) -> None:
        run = self._ks_runs[tag[1]]
        below, above = counts
        pmin, pmax = run.pending_p1_bounds
        # Guard rails: skip a side of the prune if it would cut rank k.
        low = pmin if below < run.k_left else None
        high = pmax if run.k_left <= run.N - above else None
        self.bcast(("ks1p", run.session, tag[2]), (low, high))

    def _bc_p1_prune(self, tag, payload) -> None:
        _, session, it = tag
        low, high = payload
        cand = self._ks_sets[session]
        removed = cand.prune(
            tuple(low) if low is not None else None,
            tuple(high) if high is not None else None,
        )
        self.agg_contribute(("ks1r", session, it), removed)

    def _rt_p1_removed(self, tag, removed) -> None:
        run = self._ks_runs[tag[1]]
        below, above = removed
        run.N -= below + above
        run.k_left -= below
        run.stats.setdefault("phase1_N", []).append(run.N)
        self._anchor_advance(run)

    # -- Phase 2a: sampling -------------------------------------------------------

    def _p2_start(self, run: KSelectRun, exact: bool) -> None:
        run.p2_iter += 1
        run.exact = exact
        tr = self.tracer
        if tr is not None:
            tr.emit(
                PHASE, proto="kselect", name="p3" if exact else "p2",
                session=run.session, it=run.p2_iter, N=run.N,
            )
        run.token = (run.session, run.p2_iter)
        prob = 1.0 if exact else min(
            1.0, run.sample_boost * math.sqrt(max(run.n, 1)) / max(run.N, 1)
        )
        self.bcast(("ks2",) + run.token, (prob, exact))

    def _bc_p2_sample(self, tag, payload) -> None:
        _, session, it = tag
        prob, exact = payload
        cand = self._ks_sets[session]
        token = (session, it)
        if exact or prob >= 1.0:
            sample = list(cand.keys)
        else:
            rng = self.ctx.rng.stream("kselect-sample", self.id)
            sample = [key for key in cand.keys if rng.random() < prob]
        self._ks_samples[token] = sample
        self.agg_contribute(("ks2n",) + token, len(sample))

    def _rt_p2_count(self, tag, n_prime: int) -> None:
        run = self._ks_runs[tag[1]]
        run.n_prime = n_prime
        if run.exact:
            if n_prime != run.N:  # pragma: no cover - structural
                raise ProtocolError("exact phase sampled a strict subset")
            self._distribute_positions(run, want_l=0, want_r=0, want_ans=run.k_left)
            return
        if n_prime == 0:
            self._p2_stall(run)
            return
        n = max(run.n, 2)
        delta = max(
            1, math.ceil(self.delta_scale * math.sqrt(math.log2(n)) * n ** 0.25)
        )
        center = run.k_left * n_prime / run.N
        l = math.floor(center - delta)
        r = math.ceil(center + delta)
        run.want_cl = l >= 1
        run.want_cr = r <= n_prime
        if not run.want_cl and not run.want_cr:
            self._p2_stall(run)
            return
        run.cl = None
        run.cr = None
        self._distribute_positions(
            run,
            want_l=l if run.want_cl else 0,
            want_r=r if run.want_cr else 0,
            want_ans=0,
        )

    def _p2_stall(self, run: KSelectRun) -> None:
        """Sample too small to carry a δ-window: escalate the sampling rate."""
        run.stalls += 1
        run.sample_boost *= 4.0
        if run.stalls > 6:  # pragma: no cover - bounded by phase3_cap math
            self._gather_start(run)
            return
        self._anchor_advance(run)

    # -- Phase 2b: positions and sorting ---------------------------------------------

    def _distribute_positions(self, run: KSelectRun, want_l, want_r, want_ans) -> None:
        self.agg_distribute(
            ("ks2n",) + run.token,
            (1, run.n_prime, want_l, want_r, want_ans),
        )

    def _dc_positions(self, tag, payload):
        start, n_prime, want_l, want_r, want_ans = payload
        own_count, child_counts = self.agg_memory(tag)
        own_part = (start, n_prime, want_l, want_r, want_ans)
        cursor = start + own_count
        child_parts = {}
        for child, count in child_counts:
            child_parts[child] = (cursor, n_prime, want_l, want_r, want_ans)
            cursor += count
        return own_part, child_parts

    def _dv_positions(self, tag, part) -> None:
        start, n_prime, want_l, want_r, want_ans = part
        token = (tag[1], tag[2])
        sample = self._ks_samples.pop(token, [])
        for offset, candidate in enumerate(sample):
            pos = start + offset
            self.route_to_point(
                self.keyspace.sort_position_key(token, pos),
                "ks_hold",
                {
                    "token": token,
                    "i": pos,
                    "candidate": candidate,
                    "n_prime": n_prime,
                    "want_l": want_l,
                    "want_r": want_r,
                    "want_ans": want_ans,
                },
            )

    # -- Phase 2c: c_l / c_r ranks and pruning -----------------------------------------

    def on_ks_found(self, origin: int, token: tuple, which: str, candidate) -> None:
        run = self._ks_runs.get(tuple(token)[0])
        if run is None or run.token != tuple(token):
            raise ProtocolError(f"ks_found for unknown session token {token}")
        candidate = tuple(candidate)
        if which == "ans":
            self._complete(run, candidate)
            return
        if which == "cl":
            run.cl = candidate
        elif which == "cr":
            run.cr = candidate
        else:  # pragma: no cover - structural
            raise ProtocolError(f"unknown ks_found kind {which!r}")
        if (run.cl is not None) == run.want_cl and (run.cr is not None) == run.want_cr:
            self.bcast(("ks2r",) + run.token, (run.cl, run.cr))

    def _bc_p2_rank(self, tag, payload) -> None:
        _, session, it = tag
        cl, cr = payload
        cand = self._ks_sets[session]
        below_cl = cand.count_below(tuple(cl)) if cl is not None else 0
        below_cr = cand.count_below(tuple(cr)) if cr is not None else 0
        self.agg_contribute(("ks2rank", session, it), (below_cl, below_cr))

    def _rt_p2_ranks(self, tag, ranks) -> None:
        run = self._ks_runs[tag[1]]
        L, R = ranks
        low = run.cl
        high = run.cr
        # Guard rails around Lemma 4.6: keep the side that would cut rank k.
        if low is not None and L >= run.k_left:
            low = None
        if high is not None and (R + 1) < run.k_left:
            high = None
        self.bcast(("ks2p",) + run.token, (low, high))

    def _bc_p2_prune(self, tag, payload) -> None:
        _, session, it = tag
        low, high = payload
        cand = self._ks_sets[session]
        removed = cand.prune(
            tuple(low) if low is not None else None,
            tuple(high) if high is not None else None,
        )
        self.agg_contribute(("ks2rm", session, it), removed)

    def _rt_p2_removed(self, tag, removed) -> None:
        run = self._ks_runs[tag[1]]
        below, above = removed
        run.N -= below + above
        run.k_left -= below
        if run.k_left < 1 or run.k_left > run.N:  # pragma: no cover - guarded
            raise ProtocolError("pruning cut the target rank")
        run.stats.setdefault("phase2_N", []).append(run.N)
        self._anchor_advance(run)

    # -- fallback: gather everything (correct but unscalable; bounded use) -----------

    def _gather_start(self, run: KSelectRun) -> None:
        run.stats["gather_fallback"] = True
        tr = self.tracer
        if tr is not None:
            tr.emit(
                PHASE, proto="kselect", name="gather",
                session=run.session, N=run.N,
            )
        self.bcast(("ksG", run.session, run.p2_iter), None)

    def _bc_gather(self, tag, payload) -> None:
        _, session, it = tag
        self.agg_contribute(("ksGv", session, it), list(self._ks_sets[session]))

    def _gather_combine(self, tag, own, children):
        merged = list(own)
        for _, keys in children:
            merged.extend(tuple(k) for k in keys)
        merged.sort()
        return merged

    def _rt_gather(self, tag, merged) -> None:
        run = self._ks_runs[tag[1]]
        self._complete(run, tuple(merged[run.k_left - 1]))

    # -- completion ----------------------------------------------------------------

    def _complete(self, run: KSelectRun, result: PrioKey) -> None:
        run.result = result
        run.stats["final_N"] = run.N
        #: kept for experiment T5 (survivor counts per stage)
        self.ks_last_stats = dict(run.stats)
        tr = self.tracer
        if tr is not None:
            tr.emit(
                PHASE, proto="kselect", name="finished",
                session=run.session, result=list(result),
            )
        self.bcast(("ksF", run.session), result)
        run.on_complete(run.session, result)
        del self._ks_runs[run.session]

    def _bc_finished(self, tag, payload) -> None:
        session = tag[1]
        self._ks_sets.pop(session, None)
        stale = [t for t in self._ks_samples if t[0] == session]
        for t in stale:
            del self._ks_samples[t]
        self.kselect_finished(session, tuple(payload))
