"""Distributed sorting of sampled candidates (KSelect Phase 2b, Alg. 3).

Each sampled candidate ``c_i`` is routed to the holder node ``v_i``
responsible for ``h(session, i)``.  The holder disseminates ``n'`` copies
through a binary copy tree ``T(v_i)`` (ranges halve recursively; tree node
``(lo, hi)`` lives at the node responsible for ``h(session, i, lo, hi)``).
The leaf carrying copy ``c_{i,j}`` routes it to the *meeting node*
responsible for the symmetric key ``h(session, {i, j})``, where it meets
``c_{j,i}``; the meeting node compares priorities and returns ``(1,0)`` to
the larger candidate's leaf and ``(0,1)`` to the smaller's.  Vectors are
summed back up the copy tree; at the holder, ``order(c_i) = L + 1``.

The holder then reports to the anchor if its candidate's order is one of
the wanted orders (``c_l``, ``c_r`` in Phase 2, the answer in Phase 3),
via parent-pointer forwarding up the aggregation tree (``anchor_cast``).
"""

from __future__ import annotations

from typing import Any

from ..element import PrioKey
from ..errors import ProtocolError

__all__ = ["SortingMixin"]

#: sentinel for "no wanted order"
NONE_WANT = 0


class SortingMixin:
    """Copy-tree dissemination, pairwise meets and order aggregation."""

    def _init_sorting(self) -> None:
        # holder state: (token, i) -> dict(candidate, n_prime, wants)
        self._ks_holdings: dict[tuple, dict[str, Any]] = {}
        # internal copy-tree node state: (token, i, lo, hi) -> accumulation
        self._ks_copy_nodes: dict[tuple, dict[str, Any]] = {}
        # leaf copies awaiting their comparison: (token, i, j) -> parent ref
        self._ks_leaves: dict[tuple, tuple[int, int, int]] = {}
        # meeting points: (token, a, b) -> first arrival
        self._ks_meets: dict[tuple, tuple[int, PrioKey, int]] = {}

    # -- anchor-cast: parent-pointer forwarding to the tree root -------------

    def anchor_cast(self, action: str, payload: dict[str, Any]) -> None:
        """Deliver ``action`` at the anchor by walking up the tree."""
        if self.view.is_anchor:
            if not self.dispatch_action(action, self.id, payload):
                raise ProtocolError(
                    f"node {self.id} has no anchor-cast handler for {action!r}"
                )
        else:
            self.send(
                self.view.parent, "anchor_fwd", inner=action, inner_payload=payload
            )

    def on_anchor_fwd(self, sender: int, inner: str, inner_payload: dict[str, Any]) -> None:
        self.anchor_cast(inner, inner_payload)

    # -- holder ------------------------------------------------------------

    def on_ks_hold(
        self,
        origin: int,
        token: tuple,
        i: int,
        candidate: PrioKey,
        n_prime: int,
        want_l: int,
        want_r: int,
        want_ans: int,
        want_all: bool = False,
        element=None,
    ) -> None:
        token = tuple(token)
        key = (token, i)
        if key in self._ks_holdings:
            raise ProtocolError(f"duplicate holder state for {key}")
        self._ks_holdings[key] = {
            "candidate": tuple(candidate),
            "n_prime": n_prime,
            "wants": (want_l, want_r, want_ans),
            "want_all": want_all,
            "element": element,
        }
        # The holder is the root of T(v_i): handle the full range here.
        self._ks_copy_range(token, i, 1, n_prime, tuple(candidate), parent=None)

    # -- copy tree -------------------------------------------------------------

    def on_ks_copy(
        self,
        origin: int,
        token: tuple,
        i: int,
        lo: int,
        hi: int,
        candidate: PrioKey,
        parent: tuple[int, int, int],
    ) -> None:
        self._ks_copy_range(tuple(token), i, lo, hi, tuple(candidate), tuple(parent))

    def _ks_copy_range(self, token, i, lo, hi, candidate, parent) -> None:
        """Handle responsibility for the copy range ``[lo, hi]`` of ``c_i``.

        ``parent`` is ``(vid, parent_lo, parent_hi)`` or None at the holder.
        """
        if lo == hi:
            j = lo
            if j == i:
                # A candidate is never compared with itself (Alg. 3 skips
                # the diagonal); contribute a zero vector.
                self._ks_vector_up(token, i, parent, (0, 0))
                return
            self._ks_leaves[(token, i, j)] = parent if parent is not None else (
                self.id,
                lo,
                hi,
            )
            if parent is None:
                raise ProtocolError("diagonal-free leaf cannot be the tree root")
            self.route_to_point(
                self.keyspace.pair_key(token, i, j),
                "ks_meet",
                {
                    "token": token,
                    "i": i,
                    "j": j,
                    "candidate": candidate,
                    "leaf": self.id,
                },
            )
            return
        mid = (lo + hi) // 2
        self._ks_copy_nodes[(token, i, lo, hi)] = {
            "parent": parent,
            "acc": [0, 0],
            "pending": 2,
        }
        for sub_lo, sub_hi in ((lo, mid), (mid + 1, hi)):
            self.route_to_point(
                self.keyspace.copy_key(token, i, sub_lo, sub_hi),
                "ks_copy",
                {
                    "token": token,
                    "i": i,
                    "lo": sub_lo,
                    "hi": sub_hi,
                    "candidate": candidate,
                    "parent": (self.id, lo, hi),
                },
            )

    # -- meeting points -------------------------------------------------------

    def on_ks_meet(
        self, origin: int, token: tuple, i: int, j: int, candidate: PrioKey, leaf: int
    ) -> None:
        token = tuple(token)
        candidate = tuple(candidate)
        a, b = (i, j) if i < j else (j, i)
        key = (token, a, b)
        other = self._ks_meets.pop(key, None)
        if other is None:
            self._ks_meets[key] = (i, candidate, leaf)
            return
        other_i, other_candidate, other_leaf = other
        if other_i == i:  # pragma: no cover - structural
            raise ProtocolError(f"meeting point {key} received the same copy twice")
        # The copy with the larger key learns one candidate is smaller.
        if candidate > other_candidate:
            mine, theirs = (1, 0), (0, 1)
        else:
            mine, theirs = (0, 1), (1, 0)
        self.send(leaf, "ks_cmp", token=token, i=i, j=j, vec=mine)
        self.send(other_leaf, "ks_cmp", token=token, i=other_i, j=i, vec=theirs)

    def on_ks_cmp(self, sender: int, token: tuple, i: int, j: int, vec) -> None:
        token = tuple(token)
        parent = self._ks_leaves.pop((token, i, j), None)
        if parent is None:
            raise ProtocolError(f"comparison result for unknown leaf ({token},{i},{j})")
        self._ks_vector_up(token, i, parent, tuple(vec))

    # -- vector aggregation back to the holder ------------------------------------

    def _ks_vector_up(self, token, i, parent, vec) -> None:
        if parent is None:
            # Root-of-tree shortcut (n' == 1): resolve the holder directly.
            self._ks_order_resolved(token, i, vec[0] + 1)
            return
        parent_vid, parent_lo, parent_hi = parent
        self.send(
            parent_vid,
            "ks_vec",
            token=token,
            i=i,
            lo=parent_lo,
            hi=parent_hi,
            vec=vec,
        )

    def on_ks_vec(self, sender: int, token: tuple, i: int, lo: int, hi: int, vec) -> None:
        token = tuple(token)
        state_key = (token, i, lo, hi)
        holding_key = (token, i)
        if state_key in self._ks_copy_nodes:
            state = self._ks_copy_nodes[state_key]
            state["acc"][0] += vec[0]
            state["acc"][1] += vec[1]
            state["pending"] -= 1
            if state["pending"] == 0:
                del self._ks_copy_nodes[state_key]
                holding = self._ks_holdings.get(holding_key)
                if state["parent"] is None:
                    if holding is None or holding["n_prime"] != hi:
                        raise ProtocolError("copy-tree root without holder state")
                    self._ks_order_resolved(token, i, state["acc"][0] + 1)
                else:
                    self._ks_vector_up(token, i, state["parent"], tuple(state["acc"]))
            return
        raise ProtocolError(f"vector for unknown copy-tree node {state_key}")

    def ks_order_resolved_hook(self, token, i, holding, order: int) -> None:
        """Override to consume every resolved order (``want_all`` holdings).

        Used by the sequentially consistent Seap variant: the holder learns
        its element's exact global rank and stores it at that rank's
        position key.
        """
        raise ProtocolError(f"no rank consumer for holding ({token}, {i})")

    def _ks_order_resolved(self, token, i, order: int) -> None:
        holding = self._ks_holdings.pop((token, i), None)
        if holding is None:
            raise ProtocolError(f"order resolved for unknown holding ({token}, {i})")
        if holding.get("want_all"):
            self.ks_order_resolved_hook(token, i, holding, order)
            return
        want_l, want_r, want_ans = holding["wants"]
        if order == want_l:
            self.anchor_cast(
                "ks_found",
                {"token": token, "which": "cl", "candidate": holding["candidate"]},
            )
        if order == want_r:
            self.anchor_cast(
                "ks_found",
                {"token": token, "which": "cr", "candidate": holding["candidate"]},
            )
        if order == want_ans:
            self.anchor_cast(
                "ks_found",
                {"token": token, "which": "ans", "candidate": holding["candidate"]},
            )
