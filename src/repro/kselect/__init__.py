"""KSelect (Section 4): distributed k-selection in O(log n) rounds w.h.p."""

from .candidates import CandidateSet
from .cluster import KSelectCluster, KSelectNode, distributed_select
from .protocol import KSelectMixin, KSelectRun
from .sorting import SortingMixin

__all__ = [
    "CandidateSet",
    "KSelectCluster",
    "KSelectMixin",
    "KSelectNode",
    "KSelectRun",
    "SortingMixin",
    "distributed_select",
]
