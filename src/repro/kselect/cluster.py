"""Standalone KSelect: select the k-th smallest of m distributed elements.

:class:`KSelectCluster` hosts elements spread uniformly over ``n`` nodes
(the paper's setting for Theorem 4.2) and exposes :meth:`select`;
:func:`distributed_select` is the one-call convenience wrapper::

    key = distributed_select([(prio, uid), ...], k=5, n_nodes=16)
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..cluster import OverlayCluster
from ..dht.hashing import KeySpace
from ..element import PrioKey
from ..errors import ProtocolError
from ..overlay.base import OverlayNode
from ..overlay.ldb import LocalView
from .protocol import KSelectMixin

__all__ = ["KSelectCluster", "KSelectNode", "distributed_select"]


class KSelectNode(OverlayNode, KSelectMixin):
    """Overlay node whose candidates come from an explicit local list."""

    def __init__(self, view: LocalView, keyspace: KeySpace, delta_scale: float = 1.0):
        super().__init__(view, keyspace)
        self.local_elements: list[PrioKey] = []
        self._init_kselect(delta_scale=delta_scale)

    def kselect_candidates(self, session: int) -> list[PrioKey]:
        return list(self.local_elements)



class KSelectCluster(OverlayCluster):
    """An overlay whose nodes hold explicit element keys, for selection."""

    def __init__(
        self,
        n_nodes: int,
        seed: int = 0,
        runner: str = "sync",
        delta_scale: float = 1.0,
        **cluster_kwargs,
    ):
        self.delta_scale = float(delta_scale)
        self._next_session = 0
        super().__init__(n_nodes, seed=seed, runner=runner, **cluster_kwargs)

    def make_node(self, view: LocalView) -> KSelectNode:
        """Instantiate this protocol's node for one virtual overlay slot."""
        return KSelectNode(view, self.keyspace, delta_scale=self.delta_scale)

    # -- element placement ---------------------------------------------------

    def scatter(self, keys: Iterable[PrioKey]) -> None:
        """Distribute element keys uniformly at random over the real nodes.

        Elements live at middle virtual nodes; uniformity over *real* nodes
        is the paper's storage assumption (Section 4 preamble).
        """
        rng = self.runner.rng.stream("kselect-scatter")
        keys = [tuple(k) for k in keys]
        if len(set(keys)) != len(keys):
            raise ProtocolError("duplicate element keys")
        for key in keys:
            target = int(rng.integers(0, self.n_nodes))
            self.middle_node(target).local_elements.append(key)

    def total_elements(self) -> int:
        """How many element keys the cluster currently hosts."""
        return sum(len(n.local_elements) for n in self.middles())

    # -- selection -----------------------------------------------------------

    def select(self, k: int, max_rounds: int = 500_000) -> PrioKey:
        """Run one KSelect session; returns the k-th smallest key."""
        session = self._next_session
        self._next_session += 1
        results: list[PrioKey] = []
        self.anchor.kselect_begin(
            k, session, lambda s, key: results.append(key)
        )
        if hasattr(self.runner, "step"):
            self.runner.run_until(lambda: bool(results), max_rounds=max_rounds)
        else:
            self.runner.run_until(lambda: bool(results), max_time=float(max_rounds))
        return results[0]

    def last_run_stats(self) -> dict:
        """Anchor statistics of the most recent session (experiment T5)."""
        return dict(getattr(self.anchor, "ks_last_stats", {}))


def distributed_select(
    keys: Sequence[PrioKey], k: int, n_nodes: int = 16, seed: int = 0
) -> PrioKey:
    """Select the k-th smallest of ``keys`` with a fresh KSelect cluster."""
    cluster = KSelectCluster(n_nodes, seed=seed)
    cluster.scatter(keys)
    return cluster.select(k)
