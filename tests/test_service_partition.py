"""Property suite for the federation partition map.

The partition map is the federation's routing ground truth, so its
properties are checked the hard way: hypothesis generates arbitrary
band layouts and priorities, and every routing claim is verified against
a brute-force scan of ``Band.contains`` — totality (every priority has a
home), disjointness (exactly one home), bisect-vs-linear agreement,
split/merge coverage preservation, epoch monotonicity, and byte-stable
routing across OS processes (the router and the shards are different
processes and must agree on every key).
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServiceError
from repro.service.partition import Band, PartitionMap, even_partition

SRC = str(Path(__file__).resolve().parent.parent / "src")

# -- strategies -------------------------------------------------------------

cut_points = st.lists(
    st.integers(min_value=-(10**6), max_value=10**6),
    min_size=0, max_size=8, unique=True,
).map(sorted)


@st.composite
def partition_maps(draw) -> PartitionMap:
    cuts = draw(cut_points)
    edges = [None, *cuts, None]
    epoch = draw(st.integers(min_value=0, max_value=100))
    bands = tuple(
        Band(sid, edges[i], edges[i + 1]) for i, sid in enumerate(range(len(cuts) + 1))
    )
    return PartitionMap(epoch, bands)


priorities = st.integers(min_value=-(10**7), max_value=10**7)


# -- total + disjoint routing ----------------------------------------------

class TestRoutingTotalAndDisjoint:
    @given(pmap=partition_maps(), priority=priorities)
    @settings(max_examples=200)
    def test_every_priority_has_exactly_one_home(self, pmap, priority):
        owners = [b.shard_id for b in pmap.bands if b.contains(priority)]
        assert len(owners) == 1  # total (>=1) and disjoint (<=1)
        assert pmap.shard_for(priority) == owners[0]

    @given(pmap=partition_maps(), priority=priorities)
    @settings(max_examples=200)
    def test_bisect_rank_matches_linear_scan(self, pmap, priority):
        linear = next(
            rank for rank, b in enumerate(pmap.bands) if b.contains(priority)
        )
        assert pmap.rank_for(priority) == linear

    @given(pmap=partition_maps())
    def test_band_of_inverts_shard_ids(self, pmap):
        for rank, sid in enumerate(pmap.shard_ids):
            assert pmap.rank_of(sid) == rank
            assert pmap.band_of(sid) is pmap.bands[rank]

    def test_non_integer_priority_rejected(self):
        pmap = even_partition(2, 0, 10)
        for bad in ("3", 3.0, True, None):
            with pytest.raises(ServiceError):
                pmap.rank_for(bad)  # type: ignore[arg-type]


# -- split / merge ----------------------------------------------------------

class TestRebalancePrimitives:
    @given(pmap=partition_maps(), priority=priorities, data=st.data())
    @settings(max_examples=200)
    def test_split_preserves_coverage_and_bumps_epoch(self, pmap, priority, data):
        rank = data.draw(st.integers(0, pmap.n_shards - 1), label="rank")
        band = pmap.bands[rank]
        lo = band.lo if band.lo is not None else -(10**6) - 10
        hi = band.hi if band.hi is not None else 10**6 + 10
        if hi - lo < 2:
            return  # nowhere to cut strictly inside
        at = data.draw(st.integers(lo + 1, hi - 1), label="at")
        new_sid = max(pmap.shard_ids) + 1
        split = pmap.split(band.shard_id, at, new_sid)

        assert split.epoch == pmap.epoch + 1
        assert split.n_shards == pmap.n_shards + 1
        owners = [b.shard_id for b in split.bands if b.contains(priority)]
        assert len(owners) == 1  # still total + disjoint
        old_home = pmap.shard_for(priority)
        if old_home != band.shard_id:
            assert owners[0] == old_home  # untouched keys don't move
        else:
            assert owners[0] == (band.shard_id if priority < at else new_sid)

    @given(pmap=partition_maps(), priority=priorities, data=st.data())
    @settings(max_examples=200)
    def test_merge_preserves_coverage_and_bumps_epoch(self, pmap, priority, data):
        if pmap.n_shards < 2:
            return
        rank = data.draw(st.integers(0, pmap.n_shards - 2), label="rank")
        keep = pmap.bands[rank].shard_id
        retired = pmap.bands[rank + 1].shard_id
        merged = pmap.merge_adjacent(keep)

        assert merged.epoch == pmap.epoch + 1
        assert merged.n_shards == pmap.n_shards - 1
        assert retired not in merged.shard_ids
        owners = [b.shard_id for b in merged.bands if b.contains(priority)]
        assert len(owners) == 1
        old_home = pmap.shard_for(priority)
        assert owners[0] == (keep if old_home in (keep, retired) else old_home)

    @given(pmap=partition_maps(), data=st.data())
    @settings(max_examples=100)
    def test_epochs_are_strictly_monotone_along_any_rebalance_chain(self, pmap, data):
        current = pmap
        for _ in range(data.draw(st.integers(1, 4), label="steps")):
            before = current.epoch
            if current.n_shards >= 2 and data.draw(st.booleans(), label="merge?"):
                keep = current.bands[
                    data.draw(st.integers(0, current.n_shards - 2), label="rank")
                ].shard_id
                current = current.merge_adjacent(keep)
            else:
                band = current.bands[0]
                hi = band.hi if band.hi is not None else 10**6 + 10
                current = current.split(
                    band.shard_id, hi - 1, max(current.shard_ids) + 1
                )
            assert current.epoch == before + 1

    def test_split_rejects_cut_outside_band_and_duplicate_ids(self):
        pmap = even_partition(2, 0, 10)  # bands: (-inf, 5), [5, +inf)
        with pytest.raises(ServiceError, match="not strictly inside"):
            pmap.split(0, 7, 9)  # 7 lives in shard 1's band
        with pytest.raises(ServiceError, match="already in the map"):
            pmap.split(0, 2, 1)
        with pytest.raises(ServiceError, match="nothing above"):
            pmap.merge_adjacent(1)  # last band has no upper neighbour


# -- wire form and validation ----------------------------------------------

class TestWireFormAndValidation:
    @given(pmap=partition_maps())
    @settings(max_examples=100)
    def test_jsonable_round_trip_preserves_routing(self, pmap):
        wire = json.loads(json.dumps(pmap.to_jsonable()))
        back = PartitionMap.from_jsonable(wire)
        assert back == pmap
        assert back.epoch == pmap.epoch
        assert back.shard_ids == pmap.shard_ids

    def test_invalid_maps_rejected(self):
        with pytest.raises(ServiceError, match="at least one band"):
            PartitionMap(0, ())
        with pytest.raises(ServiceError, match="unbounded"):
            PartitionMap(0, (Band(0, 0, 5),))
        with pytest.raises(ServiceError, match="not contiguous"):
            PartitionMap(0, (Band(0, None, 3), Band(1, 4, None)))
        with pytest.raises(ServiceError, match="duplicate shard ids"):
            PartitionMap(0, (Band(0, None, 3), Band(0, 3, None)))
        with pytest.raises(ServiceError, match="empty band"):
            Band(0, 5, 5)
        with pytest.raises(ServiceError, match="epoch"):
            PartitionMap(-1, (Band(0, None, None),))

    def test_even_partition_shapes(self):
        single = even_partition(1, 0, 100)
        assert single.bands == (Band(0, None, None),)
        four = even_partition(4, 1, 9)
        assert four.shard_ids == (0, 1, 2, 3)
        assert [b.lo for b in four.bands] == [None, 3, 5, 7]
        with pytest.raises(ServiceError, match="too narrow"):
            even_partition(4, 0, 3)
        with pytest.raises(ServiceError, match="at least one shard"):
            even_partition(0, 0, 10)
        custom = even_partition(2, 0, 10, shard_ids=(7, 3))
        assert custom.shard_ids == (7, 3)


# -- cross-process determinism ---------------------------------------------

class TestCrossProcessDeterminism:
    def test_routing_identical_in_a_separate_process(self):
        """The router and every shard must route each key identically.

        The same serialized map is routed here and in a fresh interpreter
        (different PYTHONHASHSEED, so anything hash-order dependent would
        diverge) and the decisions must match key for key.
        """
        pmap = even_partition(4, -100, 100).split(3, 80, 9)
        keys = list(range(-150, 151, 7)) + [-(10**6), 10**6, 0]
        local = [pmap.shard_for(k) for k in keys]

        program = """
import json, sys
from repro.service.partition import PartitionMap
payload = json.loads(sys.stdin.read())
pmap = PartitionMap.from_jsonable(payload["map"])
print(json.dumps([pmap.shard_for(k) for k in payload["keys"]]))
"""
        result = subprocess.run(
            [sys.executable, "-c", program],
            input=json.dumps({"map": pmap.to_jsonable(), "keys": keys}),
            capture_output=True, text=True,
            env={"PYTHONPATH": SRC, "PYTHONHASHSEED": "99"},
        )
        assert result.returncode == 0, result.stderr
        assert json.loads(result.stdout) == local
