"""Tests for the ASCII introspection renderers."""

from __future__ import annotations

from repro import SkeapHeap
from repro.harness import (
    render_activity,
    render_cycle,
    render_store_loads,
    render_tree,
)
from repro.overlay.ldb import LDBTopology


def _run_heap(n=5, seed=2):
    heap = SkeapHeap(
        n, n_priorities=2, seed=seed, record_history=False, metrics_detail=True
    )
    for i in range(8):
        heap.insert(priority=1 + i % 2, at=i % n)
    heap.settle()
    return heap


class TestRenderTree:
    def test_contains_every_virtual_node(self):
        topo = LDBTopology(list(range(4)), seed=1)
        out = render_tree(topo)
        for real in range(4):
            for glyph in "lmr":
                assert f"{glyph}({real})" in out

    def test_marks_anchor_once(self):
        out = render_tree(LDBTopology(list(range(6)), seed=2))
        assert out.count("← anchor") == 1

    def test_structure_lines_match_node_count(self):
        topo = LDBTopology(list(range(7)), seed=3)
        out = render_tree(topo)
        assert len(out.splitlines()) == topo.n_virtual + 1  # + header

    def test_truncation(self):
        topo = LDBTopology(list(range(30)), seed=4)
        out = render_tree(topo, max_nodes=10)
        assert "truncated" in out

    def test_indentation_reflects_depth(self):
        topo = LDBTopology(list(range(5)), seed=3)
        out = render_tree(topo)
        # at least one nested connector
        assert "└─" in out or "├─" in out


class TestRenderCycle:
    def test_strip_width_and_legend(self):
        out = render_cycle(LDBTopology(list(range(8)), seed=5), width=50)
        lines = out.splitlines()
        assert len(lines[1]) == 50
        assert lines[0].startswith("label space")

    def test_single_node(self):
        out = render_cycle(LDBTopology([0], seed=6))
        assert sum(out.splitlines()[1].count(g) for g in "lmr*") == 3


class TestRenderActivity:
    def test_summary_and_sparkline(self):
        heap = _run_heap()
        out = render_activity(heap.metrics)
        assert f"rounds={heap.metrics.rounds}" in out
        assert "route" in out  # dominant action listed
        assert "congestion/round:" in out

    def test_empty_metrics(self):
        from repro.sim.metrics import MetricsCollector

        out = render_activity(MetricsCollector())
        assert "rounds=0" in out

    def test_long_runs_are_bucketed(self):
        from repro.sim.metrics import MetricsCollector

        mc = MetricsCollector()
        for _ in range(500):
            mc.end_round()
        out = render_activity(mc)
        spark = out.splitlines()[1].split(": ", 1)[1]
        assert len(spark) <= 64

    def test_lean_metrics_render_without_action_mix(self):
        from repro.sim.metrics import MetricsCollector

        out = render_activity(MetricsCollector())
        assert "action mix unavailable" in out

    def test_snapshot_renders_without_per_round_history(self):
        # A MetricsSnapshot has neither per-round arrays nor action
        # counters; the renderer must say so instead of raising.
        from repro.sim.metrics import MetricsCollector

        mc = MetricsCollector()
        mc.end_round()
        out = render_activity(mc.snapshot())
        assert "rounds=1" in out
        assert "per-round history unavailable" in out
        assert "action mix unavailable" in out

    def test_window_snapshot_renders(self):
        heap = _run_heap()
        out = render_activity(heap.metrics.snapshot())
        assert f"messages={heap.metrics.messages}" in out


class TestRenderStoreLoads:
    def test_totals_match_cluster(self):
        heap = _run_heap()
        out = render_store_loads(heap)
        assert f"total={heap.total_stored()}" in out
        assert all(f"p{r}" in out for r in range(heap.n_nodes))
