"""End-to-end live service: real sockets, real clients, checked semantics.

The acceptance bar for the service runtime: a loadtest against a live
16-node cluster — Skeap *and* Seap — must pass the full semantics stack
(sequential consistency / serializability + heap consistency) plus
element conservation, computed post hoc from the observed history.
"""

import asyncio
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import ServiceError
from repro.service import LoadSpec, QueueClient, QueueService, run_loadtest

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _loadtest(proto, *, n_nodes=16, runner="sync", **spec_kwargs):
    async def scenario():
        async with QueueService(proto, n_nodes=n_nodes, seed=13, runner=runner) as svc:
            return await run_loadtest(svc.host, svc.port, LoadSpec(**spec_kwargs))

    return asyncio.run(scenario())


class TestLoadtestAcceptance:
    def test_skeap_16_nodes_checked(self):
        report = _loadtest(
            "skeap", n_clients=4, ops_per_client=25, concurrency=2, seed=3
        )
        assert report.completed == 100
        assert report.proto == "skeap" and report.n_nodes == 16
        assert "skeap(SC+heap+serial)" in report.checks_passed
        assert "conservation" in report.checks_passed
        assert "client-vs-server" in report.checks_passed
        assert report.latency().p99 > 0
        assert report.throughput > 0

    def test_seap_16_nodes_checked(self):
        report = _loadtest(
            "seap", n_clients=4, ops_per_client=25, concurrency=2, seed=3
        )
        assert report.completed == 100
        assert "seap(serializable+heap)" in report.checks_passed
        assert "conservation" in report.checks_passed

    def test_open_loop_seap(self):
        report = _loadtest(
            "seap", n_nodes=8,
            n_clients=2, ops_per_client=10, mode="open", rate=400.0, seed=5,
        )
        assert report.completed == 20
        assert report.checks_passed  # verification ran and held

    def test_async_runner_backend(self):
        report = _loadtest(
            "skeap", n_nodes=8, runner="async",
            n_clients=2, ops_per_client=10, seed=7,
        )
        assert report.completed == 20
        assert "conservation" in report.checks_passed

    def test_latency_table_renders(self):
        report = _loadtest(
            "skeap", n_nodes=4, n_clients=2, ops_per_client=5, seed=1
        )
        rendered = report.table().render()
        assert "p99 ms" in rendered and "throughput" in rendered
        assert "CHECKS PASS" in rendered
        markdown = report.table().to_markdown()
        assert "|" in markdown


class TestClientOps:
    def test_kselect_returns_kth_smallest(self):
        async def scenario():
            async with QueueService("seap", n_nodes=8, seed=21) as svc:
                client = await QueueClient.connect(svc.host, svc.port)
                priorities = [50, 10, 40, 20, 30]
                for p in priorities:
                    await client.insert(p, f"job-{p}")
                got = []
                for k in range(1, len(priorities) + 1):
                    result = await client.kselect(k)
                    got.append(result.priority)
                await client.aclose()
                return got

        assert asyncio.run(scenario()) == [10, 20, 30, 40, 50]

    def test_kselect_out_of_range_and_bad_k(self):
        async def scenario():
            async with QueueService("skeap", n_nodes=4, seed=0) as svc:
                client = await QueueClient.connect(svc.host, svc.port)
                await client.insert(1, "only")
                errors = []
                for bad_k in (0, 5, "one", True):
                    try:
                        await client.kselect(bad_k)
                    except ServiceError as exc:
                        errors.append(str(exc))
                await client.aclose()
                return errors

        errors = asyncio.run(scenario())
        assert len(errors) == 4

    def test_deletemin_on_empty_returns_bottom(self):
        async def scenario():
            async with QueueService("skeap", n_nodes=4, seed=0) as svc:
                client = await QueueClient.connect(svc.host, svc.port)
                result = await client.delete_min()
                await client.aclose()
                return result

        result = asyncio.run(scenario())
        assert result.bot and result.uid is None

    def test_insert_validation_error_returns_slot(self):
        """A rejected request must not leak its admission slot."""

        async def scenario():
            async with QueueService("skeap", n_nodes=4, seed=0, window=2) as svc:
                client = await QueueClient.connect(svc.host, svc.port)
                for _ in range(5):
                    with pytest.raises(ServiceError, match="priority"):
                        await client.insert("high", "bad")  # type: ignore[arg-type]
                # Window would be exhausted after 2 leaks; this still works:
                ok = await client.insert(1, "good")
                stats = await client.stats()
                await client.aclose()
                return ok, stats

        ok, stats = asyncio.run(scenario())
        assert ok.uid is not None
        assert stats["admission"]["in_flight"] == 0
        assert stats["ops_failed"] == 5

    def test_unknown_op_is_an_error_not_a_disconnect(self):
        async def scenario():
            async with QueueService("skeap", n_nodes=4, seed=0) as svc:
                client = await QueueClient.connect(svc.host, svc.port)
                with pytest.raises(ServiceError, match="unknown op"):
                    await client._request({"op": "mystery"})
                pong = await client.ping()
                await client.aclose()
                return pong

        assert asyncio.run(scenario())["pong"] is True

    def test_two_sessions_land_on_distinct_nodes(self):
        async def scenario():
            async with QueueService("skeap", n_nodes=4, seed=0) as svc:
                a = await QueueClient.connect(svc.host, svc.port, client="a")
                b = await QueueClient.connect(svc.host, svc.port, client="b")
                nodes = (a.node, b.node)
                await a.aclose()
                await b.aclose()
                return nodes

        a_node, b_node = asyncio.run(scenario())
        assert a_node != b_node


class TestTargetsRegistry:
    def test_registry_covers_every_runnable_target_exactly(self):
        from repro.harness.targets_cli import _check_complete

        assert _check_complete() == []

    def test_targets_cli_runs(self, capsys):
        from repro.harness.targets_cli import targets_main

        assert targets_main([]) == 0
        out = capsys.readouterr().out
        for needle in ("T1", "A3", "skeap-async", "serve|loadtest"):
            assert needle in out


class TestSimulatorIsolation:
    def test_sim_runs_byte_identical_with_service_imported(self):
        """Importing repro.service must not perturb a simulator-only run."""
        program = """
import hashlib, json, sys
{extra}
from repro import SkeapHeap
heap = SkeapHeap(n_nodes=8, n_priorities=3, seed=42)
for i in range(12):
    heap.insert(priority=i % 3 + 1, value=i, at=i % 8)
handles = [heap.delete_min(at=i % 8) for i in range(6)]
heap.settle()
digest = hashlib.sha256(json.dumps(
    heap.history.to_jsonable(), sort_keys=True).encode()).hexdigest()
print(digest, sorted(heap.stored_uids()))
"""
        outputs = []
        for extra in ("", "import repro.service"):
            result = subprocess.run(
                [sys.executable, "-c", program.format(extra=extra)],
                capture_output=True, text=True,
                env={"PYTHONPATH": SRC, "PYTHONHASHSEED": "0"},
            )
            assert result.returncode == 0, result.stderr
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]
