"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

# Simulation-backed property tests are slow per example; keep example
# counts modest and disable deadlines globally.
settings.register_profile(
    "repro",
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def seed() -> int:
    return 12345


@pytest.fixture
def small_skeap():
    from repro import SkeapHeap

    return SkeapHeap(n_nodes=6, n_priorities=3, seed=101)


@pytest.fixture
def small_seap():
    from repro import SeapHeap

    return SeapHeap(n_nodes=6, seed=202)
