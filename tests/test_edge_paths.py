"""Edge and failure paths not covered by the mainline tests."""

from __future__ import annotations

import random

import pytest

from repro import KSelectCluster, OverlayCluster, SeapHeap, SkeapHeap
from repro.errors import (
    ConsistencyError,
    MembershipError,
    ProtocolError,
    ReproError,
    RoutingError,
    SimulationError,
    TopologyError,
    WorkloadError,
)
from repro.skeap import AnchorState, Batch, BatchEntry, decompose_block, encode_ops


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for exc in (
            ConsistencyError,
            MembershipError,
            ProtocolError,
            RoutingError,
            SimulationError,
            TopologyError,
            WorkloadError,
        ):
            assert issubclass(exc, ReproError)
            with pytest.raises(ReproError):
                raise exc("x")


class TestClusterConstruction:
    def test_invalid_runner_kind(self):
        with pytest.raises(SimulationError):
            OverlayCluster(4, runner="quantum")

    def test_zero_nodes(self):
        with pytest.raises(SimulationError):
            OverlayCluster(0)

    def test_async_cluster_builds(self):
        cluster = OverlayCluster(4, runner="async")
        assert len(cluster.nodes) == 12

    def test_owner_store_sizes_empty(self):
        cluster = OverlayCluster(5)
        sizes = cluster.owner_store_sizes()
        assert sizes == {r: 0 for r in range(5)}

    def test_middles_are_client_faces(self):
        cluster = OverlayCluster(4)
        assert len(cluster.middles()) == 4
        assert all(n.is_middle for n in cluster.middles())

    def test_anchor_accessor(self):
        cluster = OverlayCluster(7)
        assert cluster.anchor.is_anchor


class TestAnchorStateCorruption:
    def test_invariant_detects_corruption(self):
        anchor = AnchorState(2)
        anchor.first[0] = 10  # corrupt: first > last + 1
        with pytest.raises(ProtocolError):
            anchor.assign(Batch(2, [BatchEntry((0, 0), 1)]))

    def test_width_mismatch(self):
        anchor = AnchorState(2)
        with pytest.raises(ProtocolError):
            anchor.assign(Batch(3, [BatchEntry((0, 0, 0), 0)]))


class TestDecomposeMisuse:
    def test_block_smaller_than_batches_fails(self):
        """A block that doesn't cover the claimed sub-batches must fail."""
        own, _ = encode_ops([("ins", 1), ("ins", 1)], 2)
        anchor = AnchorState(2)
        # Assign for HALF the ops only: decomposition over-consumes.
        small_block = anchor.assign(Batch(2, [BatchEntry((1, 0), 0)]))
        with pytest.raises(ProtocolError):
            decompose_block(small_block, own, [])


class TestKSelectGatherFallback:
    def test_fallback_still_exact(self):
        rng = random.Random(3)
        keys = [(rng.randint(1, 1 << 24), uid) for uid in range(16 * 128)]
        cluster = KSelectCluster(16, seed=3)
        for node in cluster.nodes.values():
            node.P2_MAX_ITERS = 0  # force the gather fallback after phase 1
        k = len(keys) // 2
        cluster.scatter(keys)
        assert cluster.select(k) == sorted(keys)[k - 1]
        assert cluster.last_run_stats().get("gather_fallback") is True


class TestPauseResume:
    def test_skeap_pause_reaches_boundary(self):
        heap = SkeapHeap(n_nodes=5, n_priorities=2, seed=1)
        heap.insert(priority=1, at=0)
        heap.settle()
        boundary = heap.pause()
        assert heap.runner.pending_messages() == 0
        assert all(n.iteration == boundary + 1 for n in heap.nodes.values())
        heap.resume()
        h = heap.insert(priority=2, at=1)
        heap.settle()
        assert h.done

    def test_seap_pause_holds_epoch(self):
        heap = SeapHeap(n_nodes=4, seed=2)
        heap.insert(priority=3, at=0)
        heap.settle()
        heap.pause()
        held = heap.anchor_node._held_epoch
        assert held is not None
        epoch_at_pause = heap.anchor_node.epoch
        for _ in range(30):
            heap.runner.step()
        assert heap.anchor_node.epoch == epoch_at_pause  # frozen
        heap.resume()
        d = heap.delete_min(at=1)
        heap.settle()
        assert d.result.priority == 3

    def test_pause_before_any_traffic(self):
        heap = SeapHeap(n_nodes=3, seed=3)
        heap.pause()
        heap.resume()
        heap.insert(priority=1, at=0)
        heap.settle()
        assert heap.heap_size() == 1


class TestMetricsHelpers:
    def test_owner_rate_and_action_totals(self):
        heap = SkeapHeap(
            n_nodes=4, n_priorities=2, seed=4, record_history=False,
            metrics_detail=True,
        )
        heap.insert(priority=1, at=0)
        heap.settle()
        from repro.overlay.ldb import owner_of

        anchor_owner = owner_of(heap.topology.anchor)
        assert heap.metrics.owner_rate(anchor_owner) > 0
        assert heap.metrics.owner_action_total(anchor_owner, ["agg_up"]) >= 1
        assert heap.metrics.owner_action_total(anchor_owner, ["no_such"]) == 0

    def test_owner_rate_unknown_owner(self):
        heap = SkeapHeap(
            n_nodes=3, n_priorities=2, seed=5, record_history=False,
            metrics_detail=True,
        )
        heap.settle()
        assert heap.metrics.owner_rate(999) == 0.0

    def test_lean_metrics_reject_owner_breakdowns(self):
        from repro.errors import SimulationError

        heap = SkeapHeap(n_nodes=3, n_priorities=2, seed=5, record_history=False)
        heap.settle()
        with pytest.raises(SimulationError):
            heap.metrics.owner_rate(0)
        with pytest.raises(SimulationError):
            heap.metrics.owner_action_total(0, ["agg_up"])


class TestMembershipAsyncGuard:
    def test_membership_rejected_under_async(self):
        from repro.overlay.membership import join_node

        heap = SkeapHeap(n_nodes=4, n_priorities=2, seed=6, runner="async")
        with pytest.raises(MembershipError):
            join_node(heap, 4)


class TestHandleApi:
    def test_insert_handle_fields(self):
        heap = SkeapHeap(n_nodes=3, n_priorities=2, seed=7)
        h = heap.insert(priority=2, value="v", at=1)
        assert h.kind == "ins" and h.priority == 2 and h.value == "v"
        assert h.op_id[0] == 1
        assert not h.is_bottom
        heap.settle()
        assert h.result is True

    def test_delete_handle_fields(self):
        heap = SkeapHeap(n_nodes=3, n_priorities=2, seed=8)
        d = heap.delete_min(at=2)
        heap.settle()
        assert d.kind == "del" and d.is_bottom
