"""The hop-compressed routing fast path must be invisible.

Every test here is a differential: the same workload under the fast path
(flights) and under ``exact_transport=True`` (legacy per-hop messages)
must produce identical observable state — histories, metrics, hop counts,
terminal nodes — while the fast path demonstrably engages (flights > 0)
or demonstrably steps aside (faults, detail metrics, stale view epochs).
"""

from __future__ import annotations

import pytest

from repro import SeapHeap, SkeapHeap
from repro.harness.fuzz import TARGET_NAMES
from repro.cluster import OverlayCluster
from repro.errors import ProtocolError, RoutingError
from repro.overlay.routing import point_bits
from repro.sim import FaultPlan, ProtocolNode, SyncRunner
from repro.sim.faults import DROP, DUP, FaultEvent
from repro.sim.message import _str_bits, payload_size_bits


def _core_numbers(metrics):
    return (
        metrics.rounds,
        metrics.messages,
        metrics.bits,
        metrics.max_message_bits,
        metrics.congestion,
        list(metrics.congestion_by_round),
        list(metrics.max_bits_by_round),
    )


def _drive_skeap(**kwargs):
    heap = SkeapHeap(n_nodes=8, n_priorities=3, seed=21, **kwargs)
    for i in range(30):
        heap.insert(priority=1 + i % 3, at=i % 8)
    heap.settle()
    for i in range(15):
        heap.delete_min(at=i % 8)
    heap.settle()
    return heap


def _drive_seap(**kwargs):
    heap = SeapHeap(n_nodes=6, seed=31, **kwargs)
    for i in range(20):
        heap.insert(priority=1 + 13 * i % 97, at=i % 6)
    heap.settle()
    for i in range(10):
        heap.delete_min(at=i % 6)
    heap.settle()
    return heap


def _heap_state(heap):
    return (
        repr(sorted(heap.history.ops.items())),
        _core_numbers(heap.metrics),
        sorted(heap.all_route_hops()),
        sorted(heap.stored_uids()),
    )


def _trace_exact_route(cluster, origin_vid, target, faction="probe_sink"):
    """Drive one exact-transport route; return its per-hop (dest, size)."""
    done = []
    for n in cluster.nodes.values():
        if not hasattr(n, "on_" + faction):
            setattr(
                n, "on_" + faction,
                lambda origin, _n=n: done.append(_n.id),
            )
    cluster.nodes[origin_vid].route_to_point(target, faction, {})
    hops = []
    while not done:
        for m in cluster.runner._outbox:
            if getattr(m, "action", None) == "route":
                hops.append((m.dest, m.size_bits))
        cluster.runner.step()
    return hops, done[0]


class TestPlannerTraceEquivalence:
    """The planner's hop sequence IS the exact path's hop sequence."""

    @pytest.mark.parametrize("n_nodes,seed", [(1, 3), (4, 0), (13, 7), (32, 5)])
    def test_plan_matches_exact_hop_trace(self, n_nodes, seed):
        cluster = OverlayCluster(n_nodes, seed=seed, exact_transport=True)
        assert cluster.runner.flights_enabled is False
        rng = cluster.runner.rng.stream("fastpath-test")
        planner = cluster.route_planner
        origins = [cluster.topology.cycle[int(rng.integers(len(cluster.topology.cycle)))]
                   for _ in range(6)]
        for i, origin in enumerate(origins):
            target = float(rng.random())
            hops, terminal = _trace_exact_route(
                cluster, origin, target, faction=f"probe_sink_{i}"
            )
            dests, owners, base_sizes = planner.plan(origin, target)
            extra = _str_bits(f"probe_sink_{i}") + payload_size_bits({})
            assert [d for d, _ in hops] == list(dests)
            assert [s for _, s in hops] == [b + extra for b in base_sizes]
            assert owners == tuple(d // 3 for d in dests)
            assert terminal == dests[-1]
            assert terminal == cluster.topology.responsible_for(target)
        assert cluster.runner.flights_launched == 0

    def test_skeap_sync_workload_identical(self):
        fast = _drive_skeap()
        exact = _drive_skeap(exact_transport=True)
        assert fast.runner.flights_launched > 0
        assert exact.runner.flights_launched == 0
        assert _heap_state(fast) == _heap_state(exact)

    def test_seap_sync_workload_identical(self):
        fast = _drive_seap()
        exact = _drive_seap(exact_transport=True)
        assert fast.runner.flights_launched > 0
        assert exact.runner.flights_launched == 0
        assert _heap_state(fast) == _heap_state(exact)

    def test_skeap_async_workload_identical(self):
        fast = _drive_skeap(runner="async")
        exact = _drive_skeap(runner="async", exact_transport=True)
        assert fast.runner.flights_launched > 0
        assert exact.runner.flights_launched == 0
        assert _heap_state(fast) == _heap_state(exact)
        # Event-time parity: delay draws and tick order must line up too.
        assert fast.runner._time == exact.runner._time

    def test_seap_async_workload_identical(self):
        fast = _drive_seap(runner="async")
        exact = _drive_seap(runner="async", exact_transport=True)
        assert _heap_state(fast) == _heap_state(exact)
        assert fast.runner._time == exact.runner._time

    def test_routed_actions_still_reach_responsible_node(self):
        # The classic routing test, now exercising the fast path.
        cluster = OverlayCluster(20, seed=12345)
        hits: list[int] = []
        for node in cluster.nodes.values():
            node.on_probe = lambda origin, _n=node: hits.append(_n.id)
        rng = cluster.runner.rng.stream("t")
        targets = [float(rng.random()) for _ in range(15)]
        for t in targets:
            cluster.middle_node(3).route_to_point(t, "probe", {})
        cluster.runner.run_until(lambda: len(hits) == 15, max_rounds=5000)
        assert cluster.runner.flights_launched == 15
        expected = sorted(cluster.topology.responsible_for(t) for t in targets)
        assert sorted(hits) == expected


class TestFastPathGates:
    """Every disable condition of the contract, observed via the counter."""

    def _plan(self):
        return FaultPlan(
            seed=5,
            events=[
                FaultEvent(kind=DROP, src=0, dst=4, nth=0),
                FaultEvent(kind=DUP, src=1, dst=7, nth=1),
            ],
        )

    def test_faults_disable_flights(self):
        heap = _drive_skeap(faults=self._plan())
        assert heap.runner.flights_launched == 0

    def test_faulted_run_identical_to_exact_faulted_run(self):
        fast_cfg = _drive_skeap(faults=self._plan())
        exact_cfg = _drive_skeap(faults=self._plan(), exact_transport=True)
        assert _heap_state(fast_cfg) == _heap_state(exact_cfg)

    def test_detail_metrics_disable_flights(self):
        heap = _drive_skeap(metrics_detail=True)
        assert heap.runner.flights_launched == 0
        # and the lean fast-path run still reports the same core numbers
        assert _core_numbers(heap.metrics) == _core_numbers(_drive_skeap().metrics)

    def test_exact_transport_flag_disables_flights(self):
        assert SkeapHeap(4, n_priorities=2, seed=0, exact_transport=True
                         ).runner.flights_enabled is False

    def test_env_var_escape_hatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXACT_TRANSPORT", "1")
        heap = SkeapHeap(4, n_priorities=2, seed=0)
        assert heap.runner.exact_transport is True
        assert heap.runner.flights_enabled is False
        monkeypatch.setenv("REPRO_EXACT_TRANSPORT", "0")
        assert SkeapHeap(4, n_priorities=2, seed=0).runner.flights_enabled is True

    def test_async_gates_mirror_sync(self):
        assert SkeapHeap(4, n_priorities=2, seed=0, runner="async",
                         faults=self._plan()).runner.flights_enabled is False
        assert SkeapHeap(4, n_priorities=2, seed=0, runner="async",
                         metrics_detail=True).runner.flights_enabled is False
        assert SkeapHeap(4, n_priorities=2, seed=0, runner="async"
                         ).runner.flights_enabled is True


class TestViewEpochInvalidation:
    """Membership churn must fence the planner's precomputed geometry."""

    def test_join_bumps_epoch_and_restamps(self):
        heap = SkeapHeap(n_nodes=6, n_priorities=3, seed=9)
        for i in range(12):
            heap.insert(priority=1 + i % 3, at=i % 6)
        heap.settle()
        launched_before = heap.runner.flights_launched
        assert launched_before > 0
        version_before = heap.route_planner.version
        heap.add_node(6)
        # invalidate (churn opens) + refresh (views stand) = two bumps
        assert heap.route_planner.version == version_before + 2
        for node in heap.nodes.values():
            assert node._route_epoch == heap.route_planner.version
        # the fast path resumes against the new overlay
        for i in range(12):
            heap.insert(priority=1 + i % 3, at=i % 7)
        heap.settle()
        assert heap.runner.flights_launched > launched_before

    def test_churned_history_identical_to_exact(self):
        def drive(**kwargs):
            heap = SkeapHeap(n_nodes=6, n_priorities=3, seed=9, **kwargs)
            for i in range(12):
                heap.insert(priority=1 + i % 3, at=i % 6)
            heap.settle()
            heap.add_node(6)
            for i in range(12):
                heap.insert(priority=1 + i % 3, at=i % 7)
            heap.settle()
            heap.remove_node(2)
            survivors = [0, 1, 3, 4, 5, 6]
            for i in range(10):
                heap.delete_min(at=survivors[i % len(survivors)])
            heap.settle()
            return heap

        fast = drive()
        exact = drive(exact_transport=True)
        assert fast.runner.flights_launched > 0
        assert exact.runner.flights_launched == 0
        assert _heap_state(fast) == _heap_state(exact)

    def test_stale_epoch_falls_back_to_exact_path(self):
        cluster = OverlayCluster(10, seed=4)
        done = []
        for node in cluster.nodes.values():
            node.on_probe = lambda origin, _n=node: done.append(_n.id)
        cluster.route_planner.invalidate()  # simulate churn-in-progress
        cluster.middle_node(0).route_to_point(0.42, "probe", {})
        cluster.runner.run_until(lambda: done, max_rounds=5000)
        assert cluster.runner.flights_launched == 0
        assert done[0] == cluster.topology.responsible_for(0.42)

    def test_unwired_node_routes_exactly(self):
        # A node with no planner at all (route_planner=None) must still route.
        cluster = OverlayCluster(8, seed=2)
        done = []
        for node in cluster.nodes.values():
            node.on_probe = lambda origin, _n=node: done.append(_n.id)
            node.route_planner = None
        cluster.middle_node(1).route_to_point(0.9, "probe", {})
        cluster.runner.run_until(lambda: done, max_rounds=5000)
        assert cluster.runner.flights_launched == 0
        assert done[0] == cluster.topology.responsible_for(0.9)


class TestDispatchCache:
    def test_unknown_action_still_raises_protocol_error(self):
        from repro.sim import Message

        class Plain(ProtocolNode):
            def on_known(self, sender):
                pass

        runner = SyncRunner()
        node = Plain(0)
        runner.register(node)
        with pytest.raises(ProtocolError, match="no handler for action 'nope'"):
            node.handle(Message(sender=1, dest=0, action="nope"))

    def test_class_handlers_dispatch_through_cache(self):
        from repro.sim import Message
        from repro.sim.node import _HANDLER_TABLES

        hits = []

        class Cached(ProtocolNode):
            def on_ping(self, sender, value):
                hits.append((sender, value))

        node = Cached(0)
        node.handle(Message(sender=7, dest=0, action="ping", payload={"value": 3}))
        assert hits == [(7, 3)]
        assert "ping" in _HANDLER_TABLES[Cached]

    def test_subclass_override_wins(self):
        from repro.sim import Message

        calls = []

        class Base(ProtocolNode):
            def on_ev(self, sender):
                calls.append("base")

        class Sub(Base):
            def on_ev(self, sender):
                calls.append("sub")

        Sub(0).handle(Message(sender=1, dest=0, action="ev"))
        Base(1).handle(Message(sender=1, dest=1, action="ev"))
        assert calls == ["sub", "base"]

    def test_instance_installed_handler_still_works(self):
        from repro.sim import Message

        node = ProtocolNode(0)
        got = []
        node.on_adhoc = lambda sender, x: got.append((sender, x))
        node.handle(Message(sender=2, dest=0, action="adhoc", payload={"x": 9}))
        assert got == [(2, 9)]

    def test_dispatch_action_reports_missing_handler(self):
        node = ProtocolNode(0)
        assert node.dispatch_action("ghost", 0, {}) is False

    def test_unroutable_faction_raises_routing_error_on_fast_path(self):
        cluster = OverlayCluster(6, seed=3)
        assert cluster.runner.flights_enabled
        cluster.middle_node(0).route_to_point(0.5, "no_such_faction", {})
        with pytest.raises(RoutingError, match="cannot deliver routed action"):
            cluster.runner.run_until(lambda: False, max_rounds=100)


class TestQuiescenceActiveSet:
    class Worker(ProtocolNode):
        def __init__(self, node_id):
            super().__init__(node_id)
            self.pending = 0

        def has_work(self):
            return self.pending > 0

        def on_activate(self):
            if self.pending:
                self.pending -= 1

    def test_idle_nodes_drop_out_of_the_active_set(self):
        runner = SyncRunner()
        nodes = [self.Worker(i) for i in range(50)]
        runner.register_all(nodes)
        nodes[7].pending = 3
        assert not runner.is_quiescent()
        # after the first check, only the node with work remains tracked
        assert runner._maybe_active == {7}
        runner.run_until_quiescent()
        assert runner.is_quiescent()
        assert runner._maybe_active == set()

    def test_deregistered_nodes_drop_out(self):
        runner = SyncRunner()
        nodes = [self.Worker(i) for i in range(10)]
        runner.register_all(nodes)
        nodes[4].pending = 100
        assert not runner.is_quiescent()
        assert 4 in runner._maybe_active
        runner.deregister(4)
        assert 4 not in runner._maybe_active
        assert runner.is_quiescent()

    def test_woken_nodes_rejoin_the_active_set(self):
        runner = SyncRunner()
        nodes = [self.Worker(i) for i in range(5)]
        runner.register_all(nodes)
        runner.run_until_quiescent()
        assert runner._maybe_active == set()
        nodes[2].pending = 1
        nodes[2].request_activation()
        assert not runner.is_quiescent()
        runner.run_until_quiescent()
        assert runner.is_quiescent()

    def test_async_runner_prunes_too(self):
        from repro.sim import AsyncRunner

        runner = AsyncRunner(seed=1)
        nodes = [self.Worker(i) for i in range(20)]
        runner.register_all(nodes)
        nodes[3].pending = 2
        runner.run_until_quiescent()
        assert runner.is_quiescent()
        assert runner._maybe_active == set()
        runner.deregister(5)
        assert 5 not in runner._maybe_active


class TestAdversityEquivalence:
    """All seven fuzz targets, fault plans active: the fast path must stand
    down and the run must match exact transport stat-for-stat."""

    @pytest.mark.parametrize("index,target", list(enumerate(TARGET_NAMES)))
    def test_faulted_fuzz_target_matches_exact_transport(
        self, index, target, monkeypatch
    ):
        from repro.harness.fuzz import make_case, run_case

        case = make_case(index, root_seed=0, targets=(target,))
        assert case.target == target
        assert case.plan.events, "fuzz plans always carry fault events"
        monkeypatch.delenv("REPRO_EXACT_TRANSPORT", raising=False)
        fast_cfg = run_case(case)
        monkeypatch.setenv("REPRO_EXACT_TRANSPORT", "1")
        exact_cfg = run_case(case)
        assert fast_cfg.signature is None, fast_cfg.message
        assert (fast_cfg.signature, fast_cfg.message, fast_cfg.transport) == (
            exact_cfg.signature, exact_cfg.message, exact_cfg.transport
        )

    def test_quick_harness_tables_identical_in_jobs_mode(self, monkeypatch):
        from repro.harness.experiments import all_plans
        from repro.harness.parallel import execute_plans

        def render(exact):
            if exact:
                monkeypatch.setenv("REPRO_EXACT_TRANSPORT", "1")
            else:
                monkeypatch.delenv("REPRO_EXACT_TRANSPORT", raising=False)
            tables = execute_plans(all_plans(quick=True, ids=["T10"]), jobs=2)
            return "\n".join(t.render() for t in tables)

        assert render(exact=False) == render(exact=True)


class TestPointBitsMemo:
    def test_returns_cached_tuple(self):
        a = point_bits(0.37251, 9)
        b = point_bits(0.37251, 9)
        assert isinstance(a, tuple)
        assert a is b  # memoized

    def test_expansion_still_correct(self):
        bits = point_bits(0.625, 3)
        ideal = 0.3
        for b in bits:
            ideal = (b + ideal) / 2
        assert abs(ideal - 0.625) < 2**-3
