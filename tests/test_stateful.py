"""Hypothesis stateful testing: a Skeap cluster against the sequential model.

The rule machine interleaves inserts, deletes, iteration-aligned batch
boundaries and full settles; after every aligned batch the distributed
heap's returns must match the FIFO-priority reference exactly (with
DFS-order tie-breaking within a batch, which is Skeap's serialization).
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule
from hypothesis import strategies as st

from repro import BOTTOM, SkeapHeap, check_skeap_history
from repro.semantics import FifoPriorityHeap

N_NODES = 5
N_PRIORITIES = 3


class SkeapMachine(RuleBasedStateMachine):
    """Drive a real cluster and a sequential model in lockstep batches."""

    def __init__(self):
        super().__init__()
        self.heap = None
        self.model = None
        self.batch_ins: list[tuple[int, int, int, int]] = []  # dfs, seq, prio, uid
        self.batch_dels: list = []
        self.dfs_of: dict[int, int] = {}

    @initialize(seed=st.integers(0, 2**20))
    def setup(self, seed):
        self.heap = SkeapHeap(N_NODES, n_priorities=N_PRIORITIES, seed=seed)
        self.model = FifoPriorityHeap()
        self.dfs_of = {
            r: self.heap.topology.dfs_rank[r * 3 + 1] for r in range(N_NODES)
        }
        self.heap.pause()

    @rule(priority=st.integers(1, N_PRIORITIES), node=st.integers(0, N_NODES - 1))
    def insert(self, priority, node):
        self.batch_ins.append((priority, node))

    @rule(node=st.integers(0, N_NODES - 1))
    def delete_min(self, node):
        self.batch_dels.append(node)

    @rule()
    def commit_batch(self):
        """Close the batch: run it as one iteration, compare to the model.

        Inserts are submitted before deletes so every node's buffer is a
        single batch entry — the regime where batch semantics equal the
        sequential model's insert-all-then-pop order.
        """
        submitted = []
        for priority, node in self.batch_ins:
            h = self.heap.insert(priority=priority, at=node)
            submitted.append((self.dfs_of[node], h.op_id[1], priority, h.uid))
        self.batch_dels = [self.heap.delete_min(at=node) for node in self.batch_dels]
        self.heap.resume()
        self.heap.settle(500_000)
        self.heap.pause()
        for _, _, priority, uid in sorted(submitted):
            self.model.insert(priority, uid)
        expected = set()
        for _ in self.batch_dels:
            popped = self.model.delete_min()
            expected.add(popped[1] if popped else None)
        got = {
            d.result.uid if d.result is not BOTTOM else None
            for d in self.batch_dels
        }
        assert got == expected
        self.batch_ins.clear()
        self.batch_dels.clear()

    @invariant()
    def anchor_and_model_agree_on_size(self):
        if self.heap is None or self.batch_ins or self.batch_dels:
            return
        assert self.heap.live_elements() == len(self.model)

    def teardown(self):
        if self.heap is None:
            return
        self.heap.resume()
        self.heap.settle(500_000)
        check_skeap_history(self.heap.history)


SkeapMachine.TestCase.settings = settings(
    max_examples=10, stateful_step_count=12, deadline=None
)
TestSkeapStateful = SkeapMachine.TestCase
