"""The telemetry plane: metric primitives, federated aggregation, wire ops.

Four layers, cheapest first:

* **primitives** — log-bucketed histogram indexing/quantiles/merging,
  metric keys, registry get-or-create, snapshot hooks, the NullRegistry;
* **aggregation** — :func:`merge_snapshots` sums counters, merges
  histograms bucket-wise *exactly*, and re-labels gauges per shard;
* **small-sample percentiles + SLO** — the loadgen percentile contract
  on n=0..3, SLO parsing/evaluation, exporter schema validators;
* **live wire** — a real service's ``metrics`` scrape and ``watch``
  stream, wire-error surfacing in ``stats`` frames, and the federated
  scrape: router aggregation equals per-shard sums at the same barrier,
  and a dying shard degrades the scrape to survivors, never an error.
"""

import asyncio
import math

import pytest

from repro.errors import ServiceError
from repro.service import QueueClient, QueueRouter, QueueService
from repro.service.export import (
    series_to_jsonl,
    to_prometheus,
    validate_jsonl,
    validate_prometheus_text,
)
from repro.service.loadgen import (
    LatencyStats,
    LoadReport,
    LoadSpec,
    SLOSpec,
    evaluate_slo,
    parse_slo,
)
from repro.service.partition import even_partition
from repro.service.telemetry import (
    Histogram,
    MetricsRegistry,
    NullRegistry,
    TelemetrySampler,
    merge_snapshots,
    metric_key,
    parse_metric_key,
    validate_snapshot,
)
from repro.service.wire import HEADER_SIZE
from repro.sim.rng import derive_seed


# -- primitives -------------------------------------------------------------

class TestMetricKeys:
    def test_roundtrip_with_sorted_labels(self):
        key = metric_key("ops", {"b": 2, "a": "x"})
        assert key == "ops{a=x,b=2}"
        assert parse_metric_key(key) == ("ops", {"a": "x", "b": "2"})
        assert parse_metric_key("plain") == ("plain", {})

    def test_malformed_keys_raise(self):
        with pytest.raises(ServiceError):
            parse_metric_key("ops{unclosed")
        with pytest.raises(ServiceError):
            parse_metric_key("ops{noequals}")


class TestHistogram:
    def test_bucket_index_matches_ceil_log2(self):
        hist = Histogram(base=1e-6, growth=2.0)
        for value in (1e-7, 1e-6, 2e-6, 3e-6, 1.5e-3, 1.0, 17.3):
            idx = hist.bucket_index(value)
            if value <= hist.base:
                assert idx == 0
            else:
                expected = math.ceil(math.log2(value / hist.base) - 1e-9)
                assert idx == expected, value
            # The defining contract: value lies in (lower, upper].
            assert hist.bucket_lower(idx) < value + 1e-18
            assert value <= hist.bucket_upper(idx) * (1 + 1e-12)

    def test_power_of_two_quotients_land_on_the_boundary_bucket(self):
        hist = Histogram(base=1.0, growth=2.0)
        assert hist.bucket_index(1.0) == 0
        assert hist.bucket_index(2.0) == 1
        assert hist.bucket_index(4.0) == 2
        assert hist.bucket_index(4.0001) == 3

    def test_quantiles_clamp_to_observed_range(self):
        hist = Histogram(base=1.0, growth=2.0)
        hist.observe(5.0)
        assert hist.quantile(0.0) == 5.0
        assert hist.quantile(0.5) == 5.0
        assert hist.quantile(1.0) == 5.0
        hist.observe(5.0)
        assert hist.quantile(0.99) == 5.0  # all-equal population is exact

    def test_merge_is_exactly_bucketwise(self):
        a, b = Histogram(), Histogram()
        for v in (1e-5, 3e-4, 0.1):
            a.observe(v)
        for v in (1e-5, 0.2, 0.2):
            b.observe(v)
        separate = {}
        for h in (a, b):
            for idx, n in h.counts.items():
                separate[idx] = separate.get(idx, 0) + n
        merged = Histogram.from_jsonable(a.to_jsonable())
        merged.merge(Histogram.from_jsonable(b.to_jsonable()))
        assert merged.counts == separate
        assert merged.count == 6
        assert merged.sum == pytest.approx(a.sum + b.sum)
        assert merged.min == 1e-5 and merged.max == 0.2

    def test_merge_rejects_shape_mismatch(self):
        with pytest.raises(ServiceError, match="different shape"):
            Histogram(base=1e-6).merge(Histogram(base=1e-3))

    def test_wire_form_roundtrip(self):
        hist = Histogram()
        for v in (0.001, 0.002, 0.5):
            hist.observe(v)
        clone = Histogram.from_jsonable(hist.to_jsonable())
        assert clone.counts == hist.counts
        assert clone.count == hist.count
        assert clone.quantile(0.5) == hist.quantile(0.5)
        empty = Histogram.from_jsonable(Histogram().to_jsonable())
        assert empty.count == 0 and empty.quantile(0.5) == 0.0


class TestRegistry:
    def test_get_or_create_returns_the_same_object(self):
        reg = MetricsRegistry()
        c1 = reg.counter("ops", kind="insert")
        c2 = reg.counter("ops", kind="insert")
        assert c1 is c2
        c1.inc(3)
        snap = reg.snapshot()
        assert snap["counters"]["ops{kind=insert}"] == 3
        assert validate_snapshot(snap) == []

    def test_hooks_run_at_snapshot_time(self):
        reg = MetricsRegistry()
        source = {"depth": 0}
        reg.add_hook(lambda: reg.gauge("depth").set(source["depth"]))
        source["depth"] = 7
        assert reg.snapshot()["gauges"]["depth"] == 7

    def test_null_registry_absorbs_everything(self):
        reg = NullRegistry()
        assert reg.enabled is False
        reg.counter("x").inc()
        reg.gauge("y").set(5)
        reg.histogram("z").observe(1.0)
        hook_ran = []
        reg.add_hook(lambda: hook_ran.append(True))
        snap = reg.snapshot()
        assert snap["counters"] == {} and snap["gauges"] == {}
        assert not hook_ran  # hooks are dropped, never invoked
        assert validate_snapshot(snap) == []

    def test_sampler_ring_is_bounded(self):
        reg = MetricsRegistry()
        sampler = TelemetrySampler(reg, interval=0.01, capacity=3)
        for _ in range(5):
            sampler.sample()
        series = sampler.series()
        assert len(series) == 3
        assert all("t" in p and p["v"] == 1 for p in series)
        assert series[0]["t"] <= series[-1]["t"]


class TestMergeSnapshots:
    def _snap(self, ops, lat_values):
        reg = MetricsRegistry()
        reg.counter("service_ops_total", kind="insert").inc(ops)
        reg.gauge("service_pending_ops").set(ops)
        hist = reg.histogram("service_op_latency_seconds")
        for v in lat_values:
            hist.observe(v)
        return reg.snapshot()

    def test_counters_sum_gauges_relabel_hists_merge_exactly(self):
        snaps = {0: self._snap(3, [0.001, 0.02]), 1: self._snap(5, [0.001, 0.5])}
        merged = merge_snapshots(snaps)
        assert validate_snapshot(merged) == []
        assert merged["counters"]["service_ops_total{kind=insert}"] == 8
        # Gauges never sum across shards: each survives under its label.
        assert merged["gauges"]["service_pending_ops{shard=0}"] == 3
        assert merged["gauges"]["service_pending_ops{shard=1}"] == 5
        hist = Histogram.from_jsonable(
            merged["hists"]["service_op_latency_seconds"]
        )
        expected = {}
        for snap in snaps.values():
            for idx, n in snap["hists"]["service_op_latency_seconds"][
                "counts"
            ].items():
                expected[int(idx)] = expected.get(int(idx), 0) + n
        assert hist.counts == expected  # bucket totals reproduce exactly
        assert hist.count == 4

    def test_validate_snapshot_flags_corruption(self):
        snap = MetricsRegistry().snapshot()
        assert validate_snapshot(snap) == []
        assert validate_snapshot({"v": 99}) != []
        bad = self._snap(1, [0.1])
        bad["hists"]["service_op_latency_seconds"]["count"] = 42
        assert any("bucket total" in p for p in validate_snapshot(bad))


# -- small-sample percentiles + SLO -----------------------------------------

class TestLatencyStatsSmallSamples:
    def test_empty_population(self):
        stats = LatencyStats.over([])
        assert (stats.count, stats.p50, stats.p95, stats.p99, stats.mean) == (
            0, 0.0, 0.0, 0.0, 0.0,
        )

    def test_single_sample_is_every_percentile(self):
        stats = LatencyStats.over([0.25])
        assert stats.p50 == stats.p95 == stats.p99 == 0.25
        assert stats.mean == 0.25

    def test_two_samples_interpolate_linearly(self):
        stats = LatencyStats.over([0.0, 1.0])
        assert stats.p50 == pytest.approx(0.5)
        assert stats.p95 == pytest.approx(0.95)
        assert stats.p99 == pytest.approx(0.99)

    def test_three_samples_put_p50_on_the_middle(self):
        stats = LatencyStats.over([3.0, 1.0, 2.0])  # order must not matter
        assert stats.p50 == 2.0
        assert stats.p99 == pytest.approx(1.0 + 2.0 * 0.99)
        assert stats.mean == pytest.approx(2.0)

    def test_matches_numpy_linear_interpolation(self):
        import numpy as np

        values = [0.004, 0.1, 0.03, 0.0001, 0.27, 0.005, 0.09]
        stats = LatencyStats.over(values)
        p50, p95, p99 = np.percentile(np.asarray(values), [50, 95, 99])
        assert stats.p50 == pytest.approx(float(p50))
        assert stats.p95 == pytest.approx(float(p95))
        assert stats.p99 == pytest.approx(float(p99))

    def test_quantile_bounds_checked(self):
        with pytest.raises(ServiceError):
            LatencyStats.percentile([1.0], 101)


def _report(latencies, *, shed=0, retries=0, wall=1.0, stats=None):
    from repro.service.loadgen import Observation

    observations = [
        Observation(
            client=0, kind="ins", op_id=(0, i), uid=i, priority=1,
            bot=False, retries=0, latency=lat, finished_at=0.0,
        )
        for i, lat in enumerate(latencies)
    ]
    return LoadReport(
        spec=LoadSpec(), proto="skeap", n_nodes=4,
        observations=observations, wall_seconds=wall,
        shed_total=shed, retry_total=retries,
        server_stats=stats or {"ops_completed": len(latencies), "ops_failed": 0},
    )


class TestSLO:
    def test_parse_defaults_and_explicit_directions(self):
        specs = parse_slo("p99=0.05, shed_rate<=0.2 ,throughput>=100")
        assert [(s.metric, s.direction, s.threshold) for s in specs] == [
            ("p99", "<=", 0.05),
            ("shed_rate", "<=", 0.2),
            ("throughput", ">=", 100.0),
        ]

    def test_parse_rejects_garbage(self):
        with pytest.raises(ServiceError, match="unknown SLO metric"):
            parse_slo("p42=1")
        with pytest.raises(ServiceError, match="not a number"):
            parse_slo("p99=fast")
        with pytest.raises(ServiceError):
            parse_slo("   ")

    def test_evaluation_pass_and_fail(self):
        report = _report([0.01, 0.02, 0.03], shed=1)
        ok = evaluate_slo(report, parse_slo("p99=0.1,shed_rate=0.5,throughput>=1"))
        assert ok.passed
        assert all(r.passed for r in ok.results)
        bad = evaluate_slo(report, parse_slo("p50=0.001"))
        assert not bad.passed
        table = bad.table()
        assert "SLO FAIL" in table.verdict and "p50" in table.verdict
        payload = bad.to_jsonable()
        assert payload["passed"] is False
        assert payload["objectives"][0]["observed"] == pytest.approx(0.02)

    def test_shed_rate_counts_offered_requests(self):
        report = _report([0.01] * 8, shed=2)
        result = evaluate_slo(report, [SLOSpec("shed_rate", 0.5)]).results[0]
        assert result.observed == pytest.approx(2 / 10)


class TestExporters:
    def _registry_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("ops_total", kind="insert").inc(4)
        reg.gauge("pending").set(2)
        hist = reg.histogram("lat_seconds")
        for v in (0.001, 0.004, 0.3):
            hist.observe(v)
        return reg.snapshot()

    def test_prometheus_text_passes_its_own_validator(self):
        text = to_prometheus(self._registry_snapshot())
        assert validate_prometheus_text(text) == []
        assert '# TYPE lat_seconds histogram' in text
        assert 'ops_total{kind="insert"} 4' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text

    def test_prometheus_buckets_are_cumulative(self):
        text = to_prometheus(self._registry_snapshot())
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("lat_seconds_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 3

    def test_prometheus_validator_flags_malformed_text(self):
        assert validate_prometheus_text("not a metric line !!!\n") != []
        # A histogram TYPE with no samples is incomplete.
        assert any(
            "missing" in p
            for p in validate_prometheus_text("# TYPE h histogram\n")
        )

    def test_jsonl_roundtrip_and_validation(self):
        sampler = TelemetrySampler(MetricsRegistry(), capacity=8)
        for _ in range(3):
            sampler.sample()
        text = series_to_jsonl(sampler.series())
        assert validate_jsonl(text) == []
        assert validate_jsonl("") != []  # empty series is a failure
        assert validate_jsonl("{broken\n") != []
        assert any(
            "backwards" in p
            for p in validate_jsonl(
                series_to_jsonl(
                    [dict(MetricsRegistry().snapshot(), t=t) for t in (2.0, 1.0)]
                )
            )
        )


# -- live wire: single service ----------------------------------------------

class TestServiceTelemetry:
    def test_metrics_scrape_reflects_completed_ops(self):
        async def scenario():
            async with QueueService("skeap", n_nodes=4, seed=0) as service:
                client = await QueueClient.connect(
                    service.host, service.port, client="scraper"
                )
                for i in range(4):
                    await client.insert(i % 3 + 1, f"v{i}")
                await client.delete_min()
                response = await client.metrics()
                await client.aclose()
                return response

        response = asyncio.run(scenario())
        snap = response["metrics"]
        assert validate_snapshot(snap) == []
        counters = snap["counters"]
        assert counters["service_ops_total{kind=insert,outcome=ok}"] == 4
        assert counters["service_ops_total{kind=deletemin,outcome=ok}"] == 1
        lat = Histogram.from_jsonable(
            snap["hists"]["service_op_latency_seconds{kind=insert}"]
        )
        assert lat.count == 4 and lat.quantile(0.5) > 0
        # The wire tallies made it into the registry via the scrape hook.
        assert counters["service_frames_in_total"] > 0
        assert counters["service_framing_errors_total"] == 0
        assert snap["gauges"]["admission_window"] == 64

    def test_stats_frame_surfaces_wire_error_counts(self):
        async def scenario():
            async with QueueService("skeap", n_nodes=4, seed=0) as service:
                # A raw connection that declares an oversized frame.
                reader, writer = await asyncio.open_connection(
                    service.host, service.port
                )
                writer.write((service.max_frame + 1).to_bytes(HEADER_SIZE, "big"))
                await writer.drain()
                error = await asyncio.wait_for(reader.read(4096), 5)
                writer.close()
                client = await QueueClient.connect(
                    service.host, service.port, client="auditor"
                )
                stats = await client.stats()
                metrics = (await client.metrics())["metrics"]
                await client.aclose()
                return error, stats, metrics

        error, stats, metrics = asyncio.run(scenario())
        assert b"exceeds max_frame" in error
        wire = stats["wire"]
        assert wire["framing_errors"] == 1
        assert wire["oversize_errors"] == 1
        assert wire["frames_out"] > 0 and wire["bytes_out"] > 0
        assert metrics["counters"]["service_oversize_errors_total"] == 1

    def test_watch_streams_snapshots_then_terminates(self):
        async def scenario():
            async with QueueService("skeap", n_nodes=4, seed=0) as service:
                client = await QueueClient.connect(
                    service.host, service.port, client="watcher"
                )
                await client.insert(1, "x")
                frames = []
                async for frame in client.watch(interval=0.02, count=3):
                    frames.append(frame)
                # The stream ended cleanly: the connection still works.
                pong = await client.ping()
                await client.aclose()
                return frames, pong

        frames, pong = asyncio.run(scenario())
        assert [f["watch"] for f in frames] == [0, 1, 2]
        assert pong["pong"] is True
        for frame in frames:
            assert validate_snapshot(frame["metrics"]) == []
        ops = [
            f["metrics"]["counters"].get(
                "service_ops_total{kind=insert,outcome=ok}", 0
            )
            for f in frames
        ]
        assert ops == sorted(ops)  # counters are monotonic across the stream

    def test_watch_rejects_bad_parameters(self):
        async def scenario():
            async with QueueService("skeap", n_nodes=4, seed=0) as service:
                client = await QueueClient.connect(
                    service.host, service.port, client="watcher"
                )
                with pytest.raises(ServiceError, match="interval"):
                    async for _ in client.watch(interval=-1, count=1):
                        pass
                await client.aclose()

        asyncio.run(scenario())

    def test_telemetry_off_swaps_in_the_null_registry(self):
        async def scenario():
            async with QueueService(
                "skeap", n_nodes=4, seed=0, telemetry=False
            ) as service:
                assert service.sampler is None
                client = await QueueClient.connect(
                    service.host, service.port, client="off"
                )
                await client.insert(1, "x")
                response = await client.metrics()
                stats = await client.stats()
                await client.aclose()
                return response, stats

        response, stats = asyncio.run(scenario())
        assert response["metrics"]["counters"] == {}
        # The wire tallies are independent of the registry: still live.
        assert stats["wire"]["frames_in"] > 0

    def test_sampler_fills_the_series(self):
        async def scenario():
            async with QueueService(
                "skeap", n_nodes=4, seed=0, metrics_interval=0.02
            ) as service:
                client = await QueueClient.connect(
                    service.host, service.port, client="series"
                )
                await asyncio.sleep(0.1)
                response = await client.metrics(series=True)
                await client.aclose()
                return response

        response = asyncio.run(scenario())
        series = response["series"]
        assert len(series) >= 2
        assert validate_jsonl(series_to_jsonl(series)) == []


# -- live wire: federation --------------------------------------------------

async def _start_federation(n_shards=2, *, seed=0):
    services = []
    for i in range(n_shards):
        svc = QueueService(
            "skeap", 4, derive_seed(seed, "svc", i), n_priorities=4
        )
        await svc.start()
        services.append(svc)
    endpoints = {i: (svc.host, svc.port) for i, svc in enumerate(services)}
    router = QueueRouter(endpoints, even_partition(n_shards, 1, 5), seed=seed)
    await router.start()
    client = await QueueClient.connect(router.host, router.port, client="telfed")
    return services, router, client


async def _stop_federation(services, router, client):
    await client.aclose()
    await router.aclose()
    for svc in services:
        await svc.aclose()


class TestFederatedTelemetry:
    def test_router_aggregation_equals_per_shard_sums_at_the_barrier(self):
        async def scenario():
            services, router, client = await _start_federation()
            try:
                for priority in (1, 2, 3, 4, 1, 4):
                    await client._request({"op": "insert", "priority": priority})
                await client._request({"op": "deletemin"})
                return await client._request({"op": "metrics", "per_shard": True})
            finally:
                await _stop_federation(services, router, client)

        response = asyncio.run(scenario())
        merged, per_shard = response["metrics"], response["per_shard"]
        assert validate_snapshot(merged) == []
        assert sorted(per_shard) == ["0", "1"]
        # Counters: the aggregated value is exactly the per-shard sum.
        for key in {
            k for snap in per_shard.values() for k in snap["counters"]
        }:
            assert merged["counters"][key] == sum(
                snap["counters"].get(key, 0) for snap in per_shard.values()
            ), key
        # Histograms: merged buckets reproduce per-shard totals exactly.
        for key in {k for snap in per_shard.values() for k in snap["hists"]}:
            expected = {}
            for snap in per_shard.values():
                payload = snap["hists"].get(key)
                if payload is None:
                    continue
                for idx, n in payload["counts"].items():
                    expected[int(idx)] = expected.get(int(idx), 0) + n
            got = Histogram.from_jsonable(merged["hists"][key])
            assert got.counts == expected, key
        # Both shards served inserts, so the summed count covers all 6.
        assert (
            merged["counters"]["service_ops_total{kind=insert,outcome=ok}"] == 6
        )
        # Gauges arrive labeled per source, router's own included.
        gauge_names = {parse_metric_key(k)[1].get("shard") for k in merged["gauges"]}
        assert {"0", "1", "router"} <= gauge_names

    def test_scrape_during_shard_death_returns_survivors(self):
        async def scenario():
            services, router, client = await _start_federation()
            try:
                for priority in (1, 4):
                    await client._request({"op": "insert", "priority": priority})
                # Shard 0 dies abruptly; the scrape must not error.
                await services[0].aclose()
                response = await client._request(
                    {"op": "metrics", "per_shard": True}
                )
                stats = await client.stats()
                return response, stats
            finally:
                await _stop_federation(services, router, client)

        response, stats = asyncio.run(scenario())
        assert response["status"] == "ok"
        assert response["federation"]["dead"] == [0]
        assert response["federation"]["scraped"] == [1]
        assert sorted(response["per_shard"]) == ["1"]
        # The survivor's ops are still in the aggregate.
        assert (
            response["metrics"]["counters"][
                "service_ops_total{kind=insert,outcome=ok}"
            ]
            == 1
        )
        # The stats frame reports the dead shard with its router-side view.
        dead_entry = stats["federation"]["per_shard"]["0"]
        assert dead_entry["alive"] is False
        assert "band" in dead_entry and "count_estimate" in dead_entry

    def test_stats_frame_carries_full_per_shard_breakdown(self):
        async def scenario():
            services, router, client = await _start_federation()
            try:
                for priority in (1, 4):
                    await client._request({"op": "insert", "priority": priority})
                return await client.stats()
            finally:
                await _stop_federation(services, router, client)

        stats = asyncio.run(scenario())
        assert stats["wire"]["frames_in"] > 0  # router's own endpoint tallies
        for sid in ("0", "1"):
            entry = stats["federation"]["per_shard"][sid]
            assert entry["alive"] is True
            assert entry["ops_completed"] == 1
            assert entry["ops_failed"] == 0
            assert entry["count_estimate"] == 1
            assert isinstance(entry["admission"], dict)
            assert entry["wire"]["frames_in"] > 0
            assert entry["upstream_latency"]["count"] >= 1
            assert entry["upstream_latency"]["p99"] > 0

    def test_router_watch_streams_federated_snapshots(self):
        async def scenario():
            services, router, client = await _start_federation()
            try:
                await client._request({"op": "insert", "priority": 1})
                frames = []
                async for frame in client.watch(interval=0.02, count=2):
                    frames.append(frame)
                return frames
            finally:
                await _stop_federation(services, router, client)

        frames = asyncio.run(scenario())
        assert [f["watch"] for f in frames] == [0, 1]
        for frame in frames:
            assert validate_snapshot(frame["metrics"]) == []
            assert (
                frame["metrics"]["counters"][
                    "service_ops_total{kind=insert,outcome=ok}"
                ]
                == 1
            )
