"""Tests for the experiment harness: fits, tables, runners, experiments."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.harness import (
    Table,
    fit_linear,
    fit_log2,
    is_logarithmic,
    is_sublinear,
    run_injection,
    run_workload,
)
from repro.harness.experiments import f1_figure1_trace, f2_figure2_ldb
from repro.harness.runner import make_seap, make_skeap
from repro.workloads import WorkloadSpec, fixed_priorities


class TestFitting:
    def test_perfect_log_fit(self):
        xs = [8, 16, 32, 64, 128]
        ys = [3 * np.log2(x) + 5 for x in xs]
        fit = fit_log2(xs, ys)
        assert abs(fit.a - 3) < 1e-9 and abs(fit.b - 5) < 1e-9
        assert fit.r2 > 0.999

    def test_perfect_linear_fit(self):
        xs = [1, 2, 3, 4]
        fit = fit_linear(xs, [2 * x + 1 for x in xs])
        assert abs(fit.a - 2) < 1e-9

    def test_predictors(self):
        fit = fit_log2([2, 4, 8], [1, 2, 3])
        assert abs(fit.predict_log2(16) - 4) < 1e-6

    def test_log_series_is_logarithmic(self):
        xs = [8, 16, 32, 64, 128, 256]
        assert is_logarithmic(xs, [4 * np.log2(x) + 2 for x in xs])

    def test_linear_series_is_not_logarithmic(self):
        xs = [8, 16, 32, 64, 128, 256]
        ys = [float(3 * x) for x in xs]
        assert not is_logarithmic(xs, ys)

    def test_constant_series_passes(self):
        """Claims are upper bounds: constants are fine."""
        xs = [8, 16, 32, 64]
        assert is_logarithmic(xs, [7, 7, 7, 7])

    def test_sublinear(self):
        assert is_sublinear([10, 100], [5, 10])
        assert not is_sublinear([10, 100], [5, 50])

    def test_noisy_log_still_fits(self):
        rng = np.random.default_rng(0)
        xs = [8, 16, 32, 64, 128, 256, 512]
        ys = [5 * np.log2(x) + rng.normal(0, 1.0) for x in xs]
        assert is_logarithmic(xs, ys)

    def test_too_few_points_rejected(self):
        with pytest.raises(WorkloadError):
            fit_log2([4], [1])
        with pytest.raises(WorkloadError):
            fit_log2([0, 4], [1, 2])


class TestTable:
    def test_render_contains_everything(self):
        t = Table("TX", "title", "claim", ["a", "b"])
        t.add_row(1, 2.5)
        t.add_note("a note")
        t.verdict = "SHAPE HOLDS"
        text = t.render()
        assert "TX" in text and "claim" in text and "a note" in text
        assert "SHAPE HOLDS" in text and "2.50" in text

    def test_row_width_enforced(self):
        t = Table("TX", "t", "c", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_markdown(self):
        t = Table("TX", "t", "c", ["a"])
        t.add_row(3)
        md = t.to_markdown()
        assert "| a |" in md and "| 3 |" in md

    def test_float_formatting(self):
        t = Table("TX", "t", "c", ["a"])
        t.add_row(1234567.0)
        assert "1.23e+06" in t.render()


class TestRunners:
    def test_run_workload_counts(self):
        heap = make_skeap(6, seed=0)
        spec = WorkloadSpec(
            n_ops=18, n_nodes=6, priorities=fixed_priorities(3), seed=0
        )
        result = run_workload(heap, spec)
        assert result.completed_ops == 18
        assert result.rounds > 0 and result.messages > 0
        assert result.throughput > 0

    def test_run_injection_measures_window(self):
        heap = make_skeap(8, seed=1)
        result = run_injection(heap, rate_per_node=1, n_rounds=10)
        assert result.completed_ops == 80
        assert result.congestion >= 1

    def test_run_injection_needs_sync(self):
        from repro.errors import SimulationError

        heap = make_seap(4, seed=2)
        heap.runner.step  # sanity: sync has step
        from repro import SeapHeap

        async_heap = SeapHeap(4, seed=2, runner="async", record_history=False)
        with pytest.raises(SimulationError):
            run_injection(async_heap, rate_per_node=1, n_rounds=2)


class TestFigureExperiments:
    def test_figure1_exact(self):
        table = f1_figure1_trace()
        assert table.verdict == "SHAPE HOLDS"
        assert len(table.rows) >= 6

    def test_figure2_exact(self):
        table = f2_figure2_ldb()
        assert table.verdict == "SHAPE HOLDS"
        assert len(table.rows) == 6

    def test_figure2_any_seed(self):
        for seed in range(5):
            assert f2_figure2_ldb(seed=seed).verdict == "SHAPE HOLDS"


class TestMainEntry:
    def test_unknown_experiment_id(self):
        from repro.harness.__main__ import main

        assert main(["ZZ"]) == 2

    def test_named_experiment_runs(self, capsys):
        from repro.harness.__main__ import main

        assert main(["F2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out


class TestExperimentRegistry:
    def test_all_experiments_registered(self):
        from repro.harness.experiments import ALL_EXPERIMENTS

        ids = set(ALL_EXPERIMENTS)
        assert {"T1", "T4", "T7", "T8", "T11", "T14", "T15", "F1", "F2", "A1", "A2", "A3"} <= ids
        assert len(ids) == 20

    def test_every_experiment_has_bench_target(self):
        """One pytest-benchmark file per experiment (deliverable d)."""
        from pathlib import Path

        bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
        text = "\n".join(
            p.read_text() for p in bench_dir.glob("test_bench_*.py")
        )
        from repro.harness.experiments import ALL_EXPERIMENTS

        for fn in ALL_EXPERIMENTS.values():
            assert fn.__name__ in text, f"no benchmark invokes {fn.__name__}"
