"""Tests for the structured tracing subsystem.

Covers the tentpole's observability contract:

* determinism — two traced runs of the same scenario emit byte-identical
  JSONL event logs;
* non-perturbation — metrics, histories and harness tables are identical
  with tracing off and on, under both execution drivers;
* span model — every heap operation reconstructs to one complete span,
  and span round counts are consistent with ``MetricsCollector.window()``;
* exporters — the Chrome trace validates against the schema checker and
  is JSON-serializable; manifests hash the exact rendered tables.
"""

from __future__ import annotations

import json

import pytest

from repro import SeapHeap, SkeapHeap
from repro.harness import (
    all_plans,
    build_manifest,
    build_spans,
    events_to_jsonl,
    execute_plans,
    span_summary_table,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.harness.manifest import sha256_text, write_manifest
from repro.sim.trace import OP, Tracer, tracing


def _drive_skeap(n=8, ops=24, seed=3, runner="sync"):
    heap = SkeapHeap(
        n, n_priorities=3, seed=seed, record_history=True, runner=runner
    )
    for i in range(ops):
        if i % 3 == 2:
            heap.delete_min(at=i % n)
        else:
            heap.insert(priority=1 + i % 3, at=i % n)
    heap.settle()
    return heap


def _drive_seap(n=4, ops=16, seed=5):
    heap = SeapHeap(n, seed=seed, record_history=True)
    for i in range(ops):
        if i % 3 == 2:
            heap.delete_min(at=i % n)
        else:
            heap.insert(priority=1 + 7 * i, at=i % n)
    heap.settle()
    return heap


def _traced(drive, **kw):
    tracer = Tracer()
    with tracing(tracer):
        heap = drive(**kw)
    return tracer, heap


def _metric_tuple(heap):
    m = heap.metrics
    return (m.rounds, m.messages, m.bits, m.congestion, m.max_message_bits)


class TestDeterminism:
    def test_two_traced_skeap_runs_are_bit_identical(self):
        a, _ = _traced(_drive_skeap)
        b, _ = _traced(_drive_skeap)
        assert events_to_jsonl(a) == events_to_jsonl(b)

    def test_two_traced_seap_runs_are_bit_identical(self):
        a, _ = _traced(_drive_seap)
        b, _ = _traced(_drive_seap)
        assert events_to_jsonl(a) == events_to_jsonl(b)

    def test_chrome_export_is_deterministic(self):
        a, _ = _traced(_drive_skeap)
        b, _ = _traced(_drive_skeap)
        dump = lambda t: json.dumps(to_chrome_trace(t), sort_keys=True)  # noqa: E731
        assert dump(a) == dump(b)


class TestNonPerturbation:
    def test_sync_metrics_identical_off_and_on(self):
        plain = _drive_skeap()
        _, traced = _traced(_drive_skeap)
        assert _metric_tuple(plain) == _metric_tuple(traced)
        assert sorted(plain.history.ops) == sorted(traced.history.ops)

    def test_async_metrics_identical_off_and_on(self):
        plain = _drive_skeap(runner="async")
        _, traced = _traced(_drive_skeap, runner="async")
        assert _metric_tuple(plain) == _metric_tuple(traced)
        assert sorted(plain.history.ops) == sorted(traced.history.ops)

    def test_seap_metrics_identical_off_and_on(self):
        plain = _drive_seap()
        _, traced = _traced(_drive_seap)
        assert _metric_tuple(plain) == _metric_tuple(traced)

    def test_harness_table_identical_off_and_on(self):
        render = lambda tables: "\n".join(t.render() for t in tables)  # noqa: E731
        plain = render(execute_plans(all_plans(quick=True, ids=["T1"]), jobs=1))
        with tracing(Tracer()):
            traced = render(
                execute_plans(all_plans(quick=True, ids=["T1"]), jobs=1)
            )
        assert plain == traced

    def test_tracer_draws_no_rng_and_sends_nothing(self):
        # The whole-run event log exists, yet the traced heap's message
        # count equals the untraced one — tracing is observation only.
        tracer, traced = _traced(_drive_skeap)
        assert len(tracer) > 0
        assert traced.metrics.messages == _drive_skeap().metrics.messages


class TestSpans:
    def test_one_complete_span_per_operation(self):
        tracer, heap = _traced(_drive_skeap)
        spans = build_spans(tracer.events)
        assert len(spans) == 24
        assert all(sp.complete for sp in spans)
        assert sorted(sp.kind for sp in spans).count("del") == 8

    def test_span_boundaries_ordered(self):
        tracer, _ = _traced(_drive_skeap)
        for sp in build_spans(tracer.events):
            ts = [sp.submit_ts, sp.batched_ts, sp.dht_ts, sp.done_ts]
            present = [t for t in ts if t is not None]
            assert present == sorted(present)
            phases = sp.phase_durations()
            assert all(v >= 0 for v in phases.values())
            assert sum(phases.values()) == pytest.approx(sp.rounds)

    def test_span_rounds_consistent_with_metrics_window(self):
        # Submit a single op at a quiescent heap: its span must fit
        # inside the metrics window of the settle that resolved it.
        heap = SkeapHeap(8, n_priorities=3, seed=11, record_history=False)
        heap.insert(priority=1, at=0)
        heap.settle()
        tracer = Tracer()
        heap.runner.tracer = tracer
        tracer.bind_clock(lambda: float(heap.runner._round))
        before = heap.metrics.snapshot()
        heap.insert(priority=2, at=3)
        heap.settle()
        window = heap.metrics.window(before)
        (span,) = [sp for sp in build_spans(tracer.events) if sp.complete]
        assert 0 < span.rounds <= window.rounds
        assert span.submit_ts >= before.rounds
        assert span.done_ts <= heap.metrics.rounds

    def test_seap_spans_complete(self):
        tracer, _ = _traced(_drive_seap)
        spans = build_spans(tracer.events)
        assert len(spans) == 16
        assert all(sp.complete for sp in spans)

    def test_exclusive_costs_attributed(self):
        tracer, _ = _traced(_drive_skeap)
        spans = build_spans(tracer.events)
        # DHT puts/gets ride messages stamped with the op's own context.
        assert sum(sp.msgs for sp in spans) > 0
        assert sum(sp.bits for sp in spans) > 0


class TestChromeTrace:
    def test_schema_valid_and_serializable(self):
        tracer, _ = _traced(_drive_skeap)
        trace = to_chrome_trace(tracer)
        assert validate_chrome_trace(trace) == []
        json.dumps(trace)  # must not raise

    def test_one_slice_per_complete_span(self):
        tracer, _ = _traced(_drive_skeap)
        slices = [
            e for e in to_chrome_trace(tracer)["traceEvents"]
            if e.get("ph") == "X" and e.get("pid") == 1
        ]
        assert len(slices) == 24

    def test_validator_catches_breakage(self):
        tracer, _ = _traced(_drive_skeap)
        trace = to_chrome_trace(tracer)
        del trace["traceEvents"][3]["ts"]
        assert validate_chrome_trace(trace)
        assert validate_chrome_trace({"nope": []})


class TestJsonl:
    def test_one_json_object_per_event(self):
        tracer, _ = _traced(_drive_seap)
        lines = events_to_jsonl(tracer).splitlines()
        assert len(lines) == len(tracer)
        first = json.loads(lines[0])
        assert "ts" in first and "kind" in first

    def test_submit_and_done_counts_match_ops(self):
        tracer, _ = _traced(_drive_skeap)
        ops = [e for e in tracer.of_kind(OP)]
        assert sum(1 for e in ops if e.data.get("ev") == "submit") == 24
        assert sum(1 for e in ops if e.data.get("ev") == "done") == 24


class TestManifest:
    def test_table_hashes_match_rendered_text(self, tmp_path):
        tracer, _ = _traced(_drive_skeap)
        table = span_summary_table(tracer)
        manifest = build_manifest(
            command=["test"], seed=3, tables=[table], started=None
        )
        entry = manifest["tables"][table.exp_id]
        assert entry["sha256"] == sha256_text(table.render())
        assert entry["rows"] == len(table.rows)
        path = write_manifest(tmp_path / "m.json", manifest)
        reread = json.loads(path.read_text())
        assert reread["tables"] == manifest["tables"]
        assert reread["schema"] == 1

    def test_harness_tables_hash_assertion(self):
        # The satellite contract: manifest hashes match the written tables.
        tables = execute_plans(all_plans(quick=True, ids=["T1"]), jobs=1)
        manifest = build_manifest(command=["harness"], tables=tables)
        for table in tables:
            assert (
                manifest["tables"][table.exp_id]["sha256"]
                == sha256_text(table.render())
            )

    def test_markdown_hashes_differ_from_text(self):
        tracer, _ = _traced(_drive_seap)
        table = span_summary_table(tracer)
        text = build_manifest(command=[], tables=[table])
        md = build_manifest(command=[], tables=[table], markdown=True)
        assert (
            text["tables"][table.exp_id]["sha256"]
            != md["tables"][table.exp_id]["sha256"]
        )
        assert md["tables"][table.exp_id]["format"] == "markdown"


class TestCli:
    def test_trace_cli_writes_artifacts(self, tmp_path, capsys):
        from repro.harness.trace_cli import trace_main

        out = tmp_path / "t"
        rc = trace_main(
            ["skeap", "--nodes", "4", "--ops", "8", "--seed", "1",
             "--out", str(out)]
        )
        assert rc == 0
        trace = json.loads((out / "trace.json").read_text())
        assert validate_chrome_trace(trace) == []
        lines = (out / "events.jsonl").read_text().splitlines()
        assert lines and all(json.loads(line) for line in lines)
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["submitted_ops"] == 8
        assert manifest["outcome"] == "pass"
        assert "TRACE" in manifest["tables"]
        assert "op-span summary" in capsys.readouterr().out

    def test_trace_cli_rejects_unknown_target(self, capsys):
        from repro.harness.trace_cli import trace_main

        assert trace_main(["not-a-target"]) == 2

    def test_replay_trace_preserves_verdict(self, tmp_path):
        from pathlib import Path

        from repro.harness.fuzz import replay_main

        repro = sorted(
            (Path(__file__).parent / "reproducers").glob("*.json")
        )[0]
        out = tmp_path / "replay"
        rc_plain = replay_main([str(repro)])
        rc_traced = replay_main(
            ["--trace", "--out", str(out), str(repro)]
        )
        assert rc_traced == rc_plain
        assert (out / "events.jsonl").exists()
        assert (out / "trace.json").exists()
        assert json.loads((out / "manifest.json").read_text())["schema"] == 1
