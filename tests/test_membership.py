"""Tests for Join/Leave (Contribution 4): churn without data loss."""

from __future__ import annotations

import random

import pytest

from repro import BOTTOM, SeapHeap, SkeapHeap, check_seap_history, check_skeap_history
from repro.errors import MembershipError
from repro.overlay.membership import join_node, leave_node


def _loaded_skeap(n=8, elements=20, seed=31):
    heap = SkeapHeap(n_nodes=n, n_priorities=3, seed=seed)
    rng = random.Random(seed)
    for i in range(elements):
        heap.insert(priority=rng.randint(1, 3), at=i % n)
    heap.settle()
    return heap


class TestJoin:
    def test_elements_conserved(self):
        heap = _loaded_skeap()
        before = heap.total_stored()
        report = heap.add_node(8)
        assert heap.total_stored() == before
        assert report.probe_hops > 0
        assert 8 in heap.topology.real_ids

    def test_new_node_fully_participates(self):
        heap = _loaded_skeap()
        heap.add_node(8)
        h = heap.insert(priority=1, at=8)
        d = heap.delete_min(at=8)
        heap.settle()
        assert h.done and d.result is not BOTTOM

    def test_duplicate_join_rejected(self):
        heap = _loaded_skeap()
        with pytest.raises(MembershipError):
            heap.add_node(3)

    def test_multiple_joins(self):
        heap = _loaded_skeap(n=4)
        for new in (4, 5, 6):
            heap.add_node(new)
        assert heap.n_nodes == 7
        heap.insert(priority=2, at=6)
        d = heap.delete_min(at=5)
        heap.settle()
        assert d.result is not BOTTOM


class TestLeave:
    def test_elements_conserved(self):
        heap = _loaded_skeap()
        before = heap.total_stored()
        heap.remove_node(2)
        assert heap.total_stored() == before
        assert 2 not in heap.topology.real_ids

    def test_unknown_node_rejected(self):
        heap = _loaded_skeap()
        with pytest.raises(MembershipError):
            heap.remove_node(77)

    def test_last_node_cannot_leave(self):
        heap = SkeapHeap(n_nodes=1, n_priorities=2, seed=1)
        heap.settle()
        with pytest.raises(MembershipError):
            heap.remove_node(0)

    def test_anchor_owner_can_leave(self):
        heap = _loaded_skeap()
        anchor_owner = heap.anchor_node.view.owner
        before = heap.total_stored()
        heap.remove_node(anchor_owner)
        assert heap.total_stored() == before
        # the heap still works end to end
        d = heap.delete_min(at=heap.topology.real_ids[0])
        heap.settle()
        assert d.result is not BOTTOM

    def test_departed_elements_still_retrievable(self):
        heap = _loaded_skeap(elements=12)
        inserted = 12
        heap.remove_node(1)
        live = list(heap.topology.real_ids)
        got = 0
        while True:
            dels = [heap.delete_min(at=r) for r in live]
            heap.settle()
            found = sum(1 for d in dels if d.result is not BOTTOM)
            got += found
            if found == 0:
                break
        assert got == inserted


class TestChurnUnderTraffic:
    def test_skeap_history_valid_across_churn(self):
        heap = _loaded_skeap(n=6, elements=15, seed=5)
        rng = random.Random(5)
        next_id = 6
        for phase in range(3):
            if phase % 2 == 0:
                heap.add_node(next_id)
                next_id += 1
            else:
                heap.remove_node(rng.choice(list(heap.topology.real_ids)))
            live = list(heap.topology.real_ids)
            for _ in range(8):
                if rng.random() < 0.5:
                    heap.insert(priority=rng.randint(1, 3), at=rng.choice(live))
                else:
                    heap.delete_min(at=rng.choice(live))
            heap.settle()
        check_skeap_history(heap.history)

    def test_seap_history_valid_across_churn(self):
        heap = SeapHeap(n_nodes=6, seed=8)
        rng = random.Random(8)
        for i in range(18):
            heap.insert(priority=rng.randint(1, 10**6), at=i % 6)
        heap.settle()
        heap.add_node(6)
        heap.remove_node(0)
        live = list(heap.topology.real_ids)
        for _ in range(12):
            if rng.random() < 0.5:
                heap.insert(priority=rng.randint(1, 10**6), at=rng.choice(live))
            else:
                heap.delete_min(at=rng.choice(live))
        heap.settle()
        check_seap_history(heap.history)

    def test_seap_heap_size_preserved(self):
        heap = SeapHeap(n_nodes=5, seed=9)
        for p in (4, 2, 7):
            heap.insert(priority=p, at=0)
        heap.settle()
        heap.add_node(5)
        heap.remove_node(1)
        assert heap.heap_size() == 3
        dels = [heap.delete_min(at=heap.topology.real_ids[0]) for _ in range(3)]
        heap.settle()
        assert sorted(d.result.priority for d in dels) == [2, 4, 7]


class TestGuards:
    def test_membership_requires_quiescence(self):
        heap = _loaded_skeap()
        heap.insert(priority=1, at=0)
        heap.runner.step()  # messages now in flight
        with pytest.raises(MembershipError):
            join_node(heap, 99)

    def test_direct_leave_requires_presence(self):
        heap = _loaded_skeap()
        heap.pause()
        with pytest.raises(MembershipError):
            leave_node(heap, 1234)
