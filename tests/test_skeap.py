"""End-to-end tests for the Skeap protocol (Section 3, Theorem 3.2)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import BOTTOM, SkeapHeap, check_skeap_history
from repro.semantics import FifoPriorityHeap
from repro.sim.async_runner import adversarial_delay


def drive(heap, ops, settle_every=0.0, rng=None):
    """Submit (kind, priority, node) ops; returns delete handles."""
    deletes = []
    for kind, priority, node in ops:
        if kind == "ins":
            heap.insert(priority=priority, at=node)
        else:
            deletes.append(heap.delete_min(at=node))
        if rng is not None and settle_every and rng.random() < settle_every:
            heap.settle(500_000)
    heap.settle(500_000)
    return deletes


class TestBasics:
    def test_insert_then_delete(self, small_skeap):
        small_skeap.insert(priority=2, value="x", at=0)
        d = small_skeap.delete_min(at=3)
        small_skeap.settle()
        assert d.done and d.result.value == "x"

    def test_min_priority_wins(self, small_skeap):
        small_skeap.insert(priority=3, at=0)
        small_skeap.insert(priority=1, at=1)
        small_skeap.insert(priority=2, at=2)
        small_skeap.settle()
        d = small_skeap.delete_min(at=4)
        small_skeap.settle()
        assert d.result.priority == 1

    def test_empty_heap_returns_bottom(self, small_skeap):
        d = small_skeap.delete_min(at=2)
        small_skeap.settle()
        assert d.result is BOTTOM and d.is_bottom

    def test_fifo_within_priority(self, small_skeap):
        """Same-node same-priority inserts are served in submission order."""
        a = small_skeap.insert(priority=1, value="first", at=0)
        b = small_skeap.insert(priority=1, value="second", at=0)
        small_skeap.settle()
        d1 = small_skeap.delete_min(at=1)
        small_skeap.settle()
        d2 = small_skeap.delete_min(at=1)
        small_skeap.settle()
        assert d1.result.uid == a.uid
        assert d2.result.uid == b.uid

    def test_insert_handles_resolve(self, small_skeap):
        h = small_skeap.insert(priority=1, at=0)
        assert not h.done
        small_skeap.settle()
        assert h.done and h.result is True

    def test_invalid_priority_rejected(self, small_skeap):
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            small_skeap.insert(priority=9, at=0)

    def test_single_node_heap(self):
        heap = SkeapHeap(n_nodes=1, n_priorities=2, seed=0)
        heap.insert(priority=2, at=0)
        heap.insert(priority=1, at=0)
        d = heap.delete_min(at=0)
        heap.settle()
        assert d.result.priority == 1

    def test_elements_survive_in_dht(self, small_skeap):
        for i in range(9):
            small_skeap.insert(priority=1 + i % 3, at=i % 6)
        small_skeap.settle()
        assert small_skeap.total_stored() == 9
        assert small_skeap.live_elements() == 9

    def test_round_robin_submission(self):
        heap = SkeapHeap(n_nodes=4, n_priorities=2, seed=1)
        for _ in range(8):
            heap.insert(priority=1)
        heap.settle()
        assert heap.total_stored() == 8


class TestBatching:
    def test_same_round_ops_form_one_batch(self, small_skeap):
        for node in range(6):
            small_skeap.insert(priority=1, at=node)
        small_skeap.settle()
        log = small_skeap.anchor_node.anchor_log
        batches_with_ops = [b for b, _ in log if not b.is_empty()]
        assert len(batches_with_ops) == 1
        assert batches_with_ops[0].total_inserts() == 6

    def test_cross_iteration_positions_continue(self, small_skeap):
        small_skeap.insert(priority=1, at=0)
        small_skeap.settle()
        small_skeap.insert(priority=1, at=0)
        small_skeap.settle()
        state = small_skeap.anchor_node.anchor_state
        assert state.last[0] == 2

    def test_more_deletes_than_elements(self, small_skeap):
        small_skeap.insert(priority=2, at=0)
        small_skeap.settle()
        dels = [small_skeap.delete_min(at=i) for i in range(4)]
        small_skeap.settle()
        matched = [d for d in dels if d.result is not BOTTOM]
        bots = [d for d in dels if d.result is BOTTOM]
        assert len(matched) == 1 and len(bots) == 3


class TestSequentialConsistency:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10)
    def test_random_histories_check_out(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 10)
        heap = SkeapHeap(n_nodes=n, n_priorities=rng.randint(1, 4), seed=seed)
        ops = []
        for _ in range(rng.randint(5, 60)):
            if rng.random() < 0.55:
                ops.append(("ins", rng.randint(1, heap.n_priorities), rng.randrange(n)))
            else:
                ops.append(("del", None, rng.randrange(n)))
        drive(heap, ops, settle_every=0.15, rng=rng)
        check_skeap_history(heap.history)

    def test_matches_sequential_model_single_client(self):
        """One client, strictly sequential: must match a FIFO heap exactly."""
        heap = SkeapHeap(n_nodes=5, n_priorities=3, seed=7)
        model = FifoPriorityHeap()
        rng = random.Random(0)
        for step in range(40):
            if rng.random() < 0.6:
                p = rng.randint(1, 3)
                h = heap.insert(priority=p, at=0)
                heap.settle()
                model.insert(p, h.uid)
            else:
                d = heap.delete_min(at=0)
                heap.settle()
                expected = model.delete_min()
                if expected is None:
                    assert d.result is BOTTOM
                else:
                    assert d.result.uid == expected[1]

    def test_local_order_respected_under_async(self):
        heap = SkeapHeap(
            n_nodes=6, n_priorities=3, seed=3, runner="async",
            delay_fn=adversarial_delay(),
        )
        rng = random.Random(11)
        for _ in range(60):
            node = rng.randrange(6)
            if rng.random() < 0.55:
                heap.insert(priority=rng.randint(1, 3), at=node)
            else:
                heap.delete_min(at=node)
        heap.settle(500_000)
        check_skeap_history(heap.history)

    def test_concurrent_deletes_never_duplicate(self, small_skeap):
        for i in range(5):
            small_skeap.insert(priority=1, at=i)
        small_skeap.settle()
        dels = [small_skeap.delete_min(at=i) for i in range(6)]
        small_skeap.settle()
        returned = [d.result.uid for d in dels if d.result is not BOTTOM]
        assert len(returned) == 5 and len(set(returned)) == 5
        assert sum(1 for d in dels if d.result is BOTTOM) == 1


class TestMessageSizes:
    def test_batch_messages_grow_with_buffered_ops(self):
        light = SkeapHeap(n_nodes=8, n_priorities=3, seed=5, record_history=False)
        light.insert(priority=1, at=0)
        light.settle()
        heavy = SkeapHeap(n_nodes=8, n_priorities=3, seed=5, record_history=False)
        for i in range(200):
            # alternate to maximize batch entries (worst case of Lemma 3.8)
            heavy.insert(priority=1 + i % 3, at=i % 8)
            heavy.delete_min(at=(i + 1) % 8)
        heavy.settle()
        assert heavy.metrics.max_message_bits > light.metrics.max_message_bits
