"""Cross-module integration tests: long mixed runs, application scenarios,
and the runnable examples.
"""

from __future__ import annotations

import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro import (
    BOTTOM,
    SeapHeap,
    SkeapHeap,
    check_seap_history,
    check_skeap_history,
)
from repro.semantics import FifoPriorityHeap, OrderedHeap
from repro.workloads import scheduling_trace, sorting_batch

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestLongMixedRuns:
    def test_skeap_long_run_against_model(self):
        """Iteration-aligned batches must equal the sequential FIFO heap.

        ``pause()`` aligns each submission batch to one protocol iteration;
        submitting a batch's inserts before its deletes keeps each node's
        buffer a single batch entry, so the batch's deletes return exactly
        the set of FIFO-minima the sequential model pops.
        """
        heap = SkeapHeap(n_nodes=9, n_priorities=4, seed=77)
        model = FifoPriorityHeap()
        rng = random.Random(77)
        dfs_of = {r: heap.topology.dfs_rank[r * 3 + 1] for r in range(9)}
        for _ in range(18):
            heap.pause()
            n_ins, n_del = rng.randint(0, 4), rng.randint(0, 3)
            batch_dels = []
            batch_ins = []
            for _ in range(n_ins):
                p = rng.randint(1, 4)
                node = rng.randrange(9)
                h = heap.insert(priority=p, at=node)
                batch_ins.append((dfs_of[node], h.op_id[1], p, h.uid))
            # Within one iteration, positions are assigned in the tree's
            # DFS order — that is the FIFO order the serialization uses.
            for _, _, p, uid in sorted(batch_ins):
                model.insert(p, uid)
            for _ in range(n_del):
                batch_dels.append(heap.delete_min(at=rng.randrange(9)))
            heap.resume()
            heap.settle()
            expected = set()
            for _ in batch_dels:
                popped = model.delete_min()
                expected.add(popped[1] if popped else None)
            got = {
                d.result.uid if d.result is not BOTTOM else None for d in batch_dels
            }
            assert got == expected
        check_skeap_history(heap.history)

    def test_seap_long_run_against_model(self):
        """Epoch-aligned batches equal the sequential ordered heap: a Seap
        epoch inserts everything first, then serves the k smallest."""
        heap = SeapHeap(n_nodes=7, seed=88)
        model = OrderedHeap()
        rng = random.Random(88)
        for _ in range(12):
            heap.pause()
            batch_dels = []
            for _ in range(rng.randint(1, 6)):
                if rng.random() < 0.6:
                    p = rng.randint(1, 10**9)
                    h = heap.insert(priority=p, at=rng.randrange(7))
                    model.insert(p, h.uid)
                else:
                    batch_dels.append(heap.delete_min(at=rng.randrange(7)))
            heap.resume()
            heap.settle()
            expected = set()
            for _ in batch_dels:
                popped = model.delete_min()
                expected.add(popped[1] if popped else None)
            got = {
                d.result.uid if d.result is not BOTTOM else None for d in batch_dels
            }
            assert got == expected
        check_seap_history(heap.history)

    def test_both_heaps_agree_on_priority_multisets(self):
        """Same workload on Skeap and Seap: same multiset of served priorities."""
        ops = []
        rng = random.Random(5)
        for i in range(60):
            if rng.random() < 0.6:
                ops.append(("ins", rng.randint(1, 3), rng.randrange(6)))
            else:
                ops.append(("del", None, rng.randrange(6)))

        def run(heap):
            served = []
            for kind, p, node in ops:
                if kind == "ins":
                    heap.insert(priority=p, at=node)
                else:
                    served.append(heap.delete_min(at=node))
                heap.settle()  # fully sequential ⇒ both must match exactly
            return sorted(
                d.result.priority for d in served if d.result is not BOTTOM
            )

        skeap_served = run(SkeapHeap(6, n_priorities=3, seed=1))
        seap_served = run(SeapHeap(6, seed=1))
        assert skeap_served == seap_served


class TestScenarios:
    def test_scheduling_serves_urgent_first(self):
        heap = SeapHeap(n_nodes=8, seed=13)
        jobs = scheduling_trace(40, 8, n_urgency_classes=3, seed=13)
        for job in jobs:
            heap.insert(priority=job.urgency, value=job.job_id, at=job.submitted_by)
        heap.settle()
        n_urgent = sum(1 for j in jobs if j.urgency == 1)
        pulls = [heap.delete_min(at=i % 8) for i in range(n_urgent)]
        heap.settle()
        assert all(p.result.priority == 1 for p in pulls)

    def test_heap_sort_end_to_end(self):
        values = sorting_batch(40, seed=21)
        heap = SeapHeap(n_nodes=5, seed=21)
        for i, v in enumerate(values):
            heap.insert(priority=v, at=i % 5)
        heap.settle()
        drained = []
        while len(drained) < len(values):
            heap.pause()  # epoch-align the wave: its pulls are the 5 minima
            pulls = [heap.delete_min(at=r) for r in range(5)]
            heap.resume()
            heap.settle()
            wave = sorted(p.result.priority for p in pulls if p.result is not BOTTOM)
            drained.extend(wave)
        assert drained == sorted(values)


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "kselect_median.py", "churn_membership.py", "consistency_lab.py"],
)
def test_examples_run_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


@pytest.mark.slow
@pytest.mark.parametrize("script", ["job_scheduler.py", "distributed_sort.py"])
def test_slow_examples_run_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=900,
    )
    assert result.returncode == 0, result.stderr


def test_package_main_tour_runs():
    result = subprocess.run(
        [sys.executable, "-m", "repro"], capture_output=True, text=True, timeout=300
    )
    assert result.returncode == 0, result.stderr
    assert "machine-checked" in result.stdout
    assert "anchor" in result.stdout
