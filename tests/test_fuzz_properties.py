"""Property-based fuzzing: random op mixes × random fault plans.

The machine-checked form of T13's conservation claim: whatever the
workload and whatever the (reliable-transport) fault schedule, once the
cluster is quiescent every inserted element is accounted for exactly
once — returned by one DeleteMin or still stored in the DHT, never both,
never neither — and the full consistency theorems still hold.

Hypothesis drives both generators through a single integer seed, so a
failing example shrinks to a small seed and replays deterministically.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SeapHeap, SkeapHeap
from repro.harness.fuzz import generate_plan
from repro.semantics import (
    check_element_conservation,
    check_seap_history,
    check_skeap_history,
)
from repro.sim.rng import derive_seed

N_NODES = 4


def _ops(seed: int, n_ops: int, arbitrary: bool):
    rng = np.random.default_rng(derive_seed(seed, "props", "ops"))
    top = (1 << 20) if arbitrary else 4
    return [
        (bool(rng.random() < 0.6), int(rng.integers(1, top)), int(rng.integers(0, N_NODES)))
        for _ in range(n_ops)
    ]


def _drive(heap, ops):
    for is_insert, priority, node in ops:
        if is_insert:
            heap.insert(priority=priority, at=node)
        else:
            heap.delete_min(at=node)
    heap.settle(20_000)


@given(seed=st.integers(0, 2**31 - 1), n_ops=st.integers(1, 16))
@settings(max_examples=15)
def test_skeap_conserves_elements_under_random_faults(seed, n_ops):
    plan = generate_plan(seed, N_NODES, churn=False)
    heap = SkeapHeap(N_NODES, n_priorities=3, seed=seed, faults=plan, runner="sync")
    _drive(heap, _ops(seed, n_ops, arbitrary=False))
    heap.runner.faults.require_no_losses()
    check_skeap_history(heap.history)
    check_element_conservation(heap.history, heap.stored_uids())


@given(seed=st.integers(0, 2**31 - 1), n_ops=st.integers(1, 16))
@settings(max_examples=15)
def test_seap_conserves_elements_under_random_faults(seed, n_ops):
    plan = generate_plan(seed, N_NODES, churn=False)
    heap = SeapHeap(N_NODES, seed=seed, faults=plan, runner="sync")
    _drive(heap, _ops(seed, n_ops, arbitrary=True))
    heap.runner.faults.require_no_losses()
    check_seap_history(heap.history)
    check_element_conservation(heap.history, heap.stored_uids())
