"""Tests for Skeap batches, anchor intervals and Phase-3 decomposition."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.skeap import (
    AnchorState,
    Batch,
    BatchEntry,
    decompose_block,
    encode_ops,
)

ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("ins"), st.integers(1, 3)),
        st.tuples(st.just("del"), st.none()),
    ),
    max_size=40,
)


class TestEncodeOps:
    def test_paper_example(self):
        """Section 3.2's example: Ins(1), Ins(1), Del, Ins(2), Del."""
        ops = [("ins", 1), ("ins", 1), ("del", None), ("ins", 2), ("del", None)]
        batch, entry_of = encode_ops(ops, 2)
        assert batch.entries == [
            BatchEntry((2, 0), 1),
            BatchEntry((0, 1), 1),
        ]
        assert entry_of == [0, 0, 0, 1, 1]

    def test_empty(self):
        batch, entry_of = encode_ops([], 2)
        assert batch.is_empty() and entry_of == []

    def test_delete_only(self):
        batch, _ = encode_ops([("del", None)] * 3, 2)
        assert batch.entries == [BatchEntry((0, 0), 3)]

    def test_invalid_priority(self):
        with pytest.raises(ProtocolError):
            encode_ops([("ins", 5)], 2)
        with pytest.raises(ProtocolError):
            encode_ops([("ins", 0)], 2)

    def test_invalid_kind(self):
        with pytest.raises(ProtocolError):
            encode_ops([("pop", None)], 2)

    @given(ops_strategy)
    def test_encoding_preserves_counts_and_order(self, ops):
        batch, entry_of = encode_ops(ops, 3)
        assert batch.total_inserts() == sum(1 for k, _ in ops if k == "ins")
        assert batch.total_deletes() == sum(1 for k, _ in ops if k == "del")
        assert len(entry_of) == len(ops)
        # entry indices are non-decreasing (local order respected)
        assert entry_of == sorted(entry_of)
        # within one entry, inserts precede deletes
        for j in range(len(batch.entries)):
            kinds = [ops[i][0] for i in range(len(ops)) if entry_of[i] == j]
            if "del" in kinds:
                assert "ins" not in kinds[kinds.index("del"):]


class TestCombine:
    def test_entrywise_sum(self):
        a = Batch(2, [BatchEntry((1, 0), 2)])
        b = Batch(2, [BatchEntry((2, 1), 1)])
        assert a.combine(b).entries == [BatchEntry((3, 1), 3)]

    def test_padding(self):
        a = Batch(2, [BatchEntry((1, 0), 0), BatchEntry((0, 1), 1)])
        b = Batch(2, [BatchEntry((1, 1), 1)])
        combined = a.combine(b)
        assert len(combined) == 2
        assert combined.entries[1] == BatchEntry((0, 1), 1)

    def test_width_mismatch_rejected(self):
        with pytest.raises(ProtocolError):
            Batch(2).combine(Batch(3))

    @given(ops_strategy, ops_strategy)
    def test_combine_commutes_on_totals(self, ops_a, ops_b):
        a, _ = encode_ops(ops_a, 3)
        b, _ = encode_ops(ops_b, 3)
        ab, ba = a.combine(b), b.combine(a)
        assert ab.total_inserts() == ba.total_inserts()
        assert ab.total_deletes() == ba.total_deletes()
        assert len(ab) == len(ba)

    @given(ops_strategy, ops_strategy, ops_strategy)
    def test_combine_associative(self, xa, xb, xc):
        a, _ = encode_ops(xa, 3)
        b, _ = encode_ops(xb, 3)
        c, _ = encode_ops(xc, 3)
        assert (a.combine(b)).combine(c) == a.combine(b.combine(c))

    def test_size_bits_grows_with_counts(self):
        small = Batch(2, [BatchEntry((1, 1), 1)])
        big = Batch(2, [BatchEntry((1000, 1000), 1000)])
        assert big.size_bits() > small.size_bits()


class TestAnchorState:
    def test_figure1_assignment(self):
        """The combined batch of Figure 1: ((4,1),3)."""
        anchor = AnchorState(2)
        block = anchor.assign(Batch(2, [BatchEntry((4, 1), 3)]))
        entry = block.entries[0]
        assert entry.ins == ((1, 4), (1, 1))
        assert [(p.priority, p.start, p.count) for p in entry.del_pieces] == [(1, 1, 3)]
        assert entry.bots == 0
        assert anchor.first == [4, 1] and anchor.last == [4, 1]

    def test_deletes_drain_priorities_in_order(self):
        anchor = AnchorState(3)
        anchor.assign(Batch(3, [BatchEntry((2, 2, 2), 0)]))
        block = anchor.assign(Batch(3, [BatchEntry((0, 0, 0), 5)]))
        pieces = block.entries[0].del_pieces
        assert [(p.priority, p.count) for p in pieces] == [(1, 2), (2, 2), (3, 1)]

    def test_bots_when_heap_empty(self):
        anchor = AnchorState(2)
        block = anchor.assign(Batch(2, [BatchEntry((0, 0), 4)]))
        assert block.entries[0].bots == 4

    def test_partial_bots(self):
        anchor = AnchorState(2)
        block = anchor.assign(Batch(2, [BatchEntry((1, 0), 3)]))
        entry = block.entries[0]
        assert sum(p.count for p in entry.del_pieces) == 1
        assert entry.bots == 2

    def test_inserts_before_deletes_within_entry(self):
        anchor = AnchorState(1)
        block = anchor.assign(Batch(1, [BatchEntry((2,), 2)]))
        entry = block.entries[0]
        assert entry.ins == ((1, 2),)
        assert entry.del_pieces[0].start == 1 and entry.del_pieces[0].count == 2
        assert entry.bots == 0

    def test_occupancy_tracking(self):
        anchor = AnchorState(2)
        anchor.assign(Batch(2, [BatchEntry((3, 2), 1)]))
        assert anchor.total_occupancy() == 4
        assert anchor.occupancy(1) == 2 and anchor.occupancy(2) == 2

    @given(
        st.lists(
            st.tuples(
                st.tuples(st.integers(0, 5), st.integers(0, 5)),
                st.integers(0, 8),
            ),
            max_size=12,
        )
    )
    def test_invariant_and_conservation(self, entries):
        anchor = AnchorState(2)
        batch = Batch(2, [BatchEntry(ins, d) for ins, d in entries])
        block = anchor.assign(batch)
        size = 0
        for (ins, d), assignment in zip(entries, block.entries):
            size += sum(ins)
            served = sum(p.count for p in assignment.del_pieces)
            assert served + assignment.bots == d
            assert served <= size
            size -= served
        assert anchor.total_occupancy() == size
        for p in range(1, 3):
            assert anchor.first[p - 1] <= anchor.last[p - 1] + 1


class TestDecompose:
    def _simple(self, own_ops, child_ops_list):
        own, _ = encode_ops(own_ops, 2)
        children = [
            (i + 1, encode_ops(ops, 2)[0]) for i, ops in enumerate(child_ops_list)
        ]
        combined = own
        for _, b in children:
            combined = combined.combine(b)
        anchor = AnchorState(2)
        block = anchor.assign(combined)
        return decompose_block(block, own, children), block

    def test_figure1_decomposition(self):
        (own_block, child_blocks), _ = self._simple(
            [("ins", 1)],
            [
                [("ins", 1), ("ins", 1)][:1] + [("del", None), ("del", None)],
                [("ins", 1), ("ins", 1), ("ins", 2), ("del", None)],
            ],
        )
        assert own_block.entries[0].ins[0] == (1, 1)
        c1 = child_blocks[1].entries[0]
        assert c1.ins[0] == (2, 1)
        assert [(p.start, p.count) for p in c1.del_pieces] == [(1, 2)]
        c2 = child_blocks[2].entries[0]
        assert c2.ins[0] == (3, 2) and c2.ins[1] == (1, 1)
        assert [(p.start, p.count) for p in c2.del_pieces] == [(3, 1)]

    def test_bots_assigned_to_trailing_consumers(self):
        (own_block, child_blocks), _ = self._simple(
            [("ins", 1), ("del", None)],
            [[("del", None)], [("del", None)]],
        )
        # one element, three deletes in entry order own->c1->c2
        assert own_block.entries[0].bots == 0
        assert child_blocks[1].entries[0].bots == 1
        assert child_blocks[2].entries[0].bots == 1

    @given(
        st.lists(ops_strategy, min_size=1, max_size=4),
    )
    def test_decomposition_partitions_positions(self, all_ops):
        """Own + children shares partition every interval exactly."""
        own, _ = encode_ops(all_ops[0], 3)
        children = [(i, encode_ops(ops, 3)[0]) for i, ops in enumerate(all_ops[1:])]
        combined = own
        for _, b in children:
            combined = combined.combine(b)
        anchor = AnchorState(3)
        # preload some elements so deletes have targets
        anchor.assign(Batch(3, [BatchEntry((4, 4, 4), 0)]))
        block = anchor.assign(combined)
        own_block, child_blocks = decompose_block(block, own, children)
        blocks = [own_block] + [child_blocks[c] for c, _ in children]
        for j, assignment in enumerate(block.entries):
            for p_idx in range(3):
                start, count = assignment.ins[p_idx]
                got = []
                for blk in blocks:
                    s, c = blk.entries[j].ins[p_idx]
                    got.extend(range(s, s + c))
                assert got == list(range(start, start + count))
            want_dels = [
                (p.priority, pos)
                for p in assignment.del_pieces
                for pos in range(p.start, p.start + p.count)
            ]
            got_dels = []
            bots = 0
            for blk in blocks:
                e = blk.entries[j]
                got_dels.extend(
                    (p.priority, pos)
                    for p in e.del_pieces
                    for pos in range(p.start, p.start + p.count)
                )
                bots += e.bots
            assert got_dels == want_dels
            assert bots == assignment.bots
