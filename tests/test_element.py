"""Unit and property tests for heap elements and the ⊥ sentinel."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.element import BOTTOM, Element


class TestElementOrdering:
    def test_orders_by_priority_first(self):
        assert Element(1, 100) < Element(2, 1)

    def test_ties_broken_by_uid(self):
        assert Element(5, 1) < Element(5, 2)

    def test_distinct_elements_never_equal_in_order(self):
        a, b = Element(3, 1), Element(3, 2)
        assert a < b or b < a

    def test_key_is_priority_uid_pair(self):
        assert Element(7, 42).key == (7, 42)

    def test_value_does_not_affect_comparison(self):
        assert not Element(1, 1, "x") < Element(1, 1, "y")
        assert Element(1, 1, "x") == Element(1, 1, "y")

    @given(
        st.tuples(st.integers(0, 1 << 30), st.integers(0, 1 << 30)),
        st.tuples(st.integers(0, 1 << 30), st.integers(0, 1 << 30)),
    )
    def test_order_matches_key_order(self, ka, kb):
        a = Element(ka[0], ka[1])
        b = Element(kb[0], kb[1])
        assert (a < b) == (ka < kb)
        assert (a <= b) == (ka <= kb)
        assert (a > b) == (ka > kb)

    @given(st.lists(st.tuples(st.integers(0, 100), st.integers(0, 1000)), max_size=30))
    def test_sorting_elements_matches_sorting_keys(self, keys):
        elements = [Element(p, u) for p, u in keys]
        assert [e.key for e in sorted(elements)] == sorted(keys)


class TestSizeBits:
    def test_small_element(self):
        assert Element(1, 1).size_bits() == 2

    def test_grows_with_priority_width(self):
        assert Element(1 << 20, 1).size_bits() > Element(1, 1).size_bits()

    @given(st.integers(1, 1 << 40), st.integers(1, 1 << 40))
    def test_size_is_bit_lengths(self, p, u):
        assert Element(p, u).size_bits() == p.bit_length() + u.bit_length()


class TestBottom:
    def test_singleton(self):
        from repro.element import _Bottom

        assert _Bottom() is BOTTOM

    def test_falsy(self):
        assert not BOTTOM

    def test_repr(self):
        assert repr(BOTTOM) == "BOTTOM"

    def test_is_not_none(self):
        assert BOTTOM is not None
