"""Tests for the DHT: key derivation, the store, and the Put/Get protocol."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import OverlayCluster
from repro.dht import KeySpace, KeyValueStore
from repro.element import Element


class TestKeySpace:
    def test_deterministic(self):
        a, b = KeySpace(3), KeySpace(3)
        assert a.skeap_key(1, 5) == b.skeap_key(1, 5)
        assert a.seap_position_key(2, 9) == b.seap_position_key(2, 9)

    def test_distinct_inputs_distinct_keys(self):
        ks = KeySpace(3)
        keys = {ks.skeap_key(p, pos) for p in range(1, 4) for pos in range(1, 50)}
        assert len(keys) == 3 * 49

    def test_pair_key_symmetric(self):
        ks = KeySpace(1)
        assert ks.pair_key(7, 3, 9) == ks.pair_key(7, 9, 3)

    def test_namespaces_do_not_collide(self):
        ks = KeySpace(1)
        assert ks.skeap_key(1, 1) != ks.seap_position_key(1, 1)

    @given(st.integers(0, 1000), st.integers(0, 1000))
    def test_keys_in_unit_interval(self, a, b):
        ks = KeySpace(0)
        assert 0.0 <= ks.skeap_key(a, b) < 1.0
        assert 0.0 <= ks.uniform_key(a, b) < 1.0

    def test_keys_roughly_uniform(self):
        ks = KeySpace(9)
        keys = [ks.uniform_key(i) for i in range(3000)]
        mean = sum(keys) / len(keys)
        assert 0.45 < mean < 0.55


class TestKeyValueStore:
    def test_put_then_get(self):
        store = KeyValueStore()
        e = Element(1, 1)
        assert store.put(0.5, e) is None
        assert store.get(0.5, requester=9, request_id=1) is e
        assert len(store) == 0

    def test_get_before_put_parks(self):
        """The paper's 'Get waits for Put' rule."""
        store = KeyValueStore()
        assert store.get(0.5, requester=9, request_id=1) is None
        assert store.parked_count == 1
        e = Element(1, 1)
        claim = store.put(0.5, e)
        assert claim == (9, 1)
        assert len(store) == 0 and store.parked_count == 0

    def test_parked_gets_fifo(self):
        store = KeyValueStore()
        store.get(0.5, 1, 11)
        store.get(0.5, 2, 22)
        assert store.put(0.5, Element(1, 1)) == (1, 11)
        assert store.put(0.5, Element(1, 2)) == (2, 22)

    def test_same_key_multiple_elements_fifo(self):
        store = KeyValueStore()
        store.put(0.3, Element(1, 1))
        store.put(0.3, Element(1, 2))
        assert store.get(0.3, 0, 0).uid == 1
        assert store.get(0.3, 0, 1).uid == 2

    def test_extract_leq(self):
        store = KeyValueStore()
        for uid, p in enumerate((5, 1, 9, 3)):
            store.put(0.1 * (uid + 1), Element(p, uid))
        removed = store.extract_leq((3, 1 << 62))
        assert sorted(e.priority for _, e in removed) == [1, 3]
        assert sorted(e.priority for e in store.elements()) == [5, 9]

    def test_count_leq(self):
        store = KeyValueStore()
        for uid, p in enumerate((5, 1, 9)):
            store.put(0.2 * (uid + 1), Element(p, uid))
        assert store.count_leq((5, 1 << 62)) == 2

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 3)), max_size=60))
    def test_put_get_conservation(self, ops):
        """Every put is eventually matched by exactly one get."""
        store = KeyValueStore()
        puts, gets = 0, 0
        claims = 0
        uid = 0
        for key_i, kind in ops:
            key = key_i / 100.0
            if kind == 0:
                uid += 1
                if store.put(key, Element(1, uid)) is not None:
                    claims += 1
                puts += 1
            else:
                if store.get(key, 0, uid) is not None:
                    claims += 1
                gets += 1
        assert len(store) + store.parked_count + 2 * claims == puts + gets


class TestDHTProtocol:
    def _cluster(self, n=12, seed=3):
        return OverlayCluster(n, seed=seed)

    def test_put_get_roundtrip(self):
        cluster = self._cluster()
        src, dst = cluster.middle_node(1), cluster.middle_node(7)
        key = cluster.keyspace.skeap_key(1, 1)
        acks, gots = [], []
        src.dht_put_confirmed = lambda r: acks.append(r)
        dst.dht_get_returned = lambda r, k, e: gots.append(e)
        src.dht_put(key, Element(4, 44, "v"))
        cluster.runner.run_until(lambda: acks, max_rounds=2000)
        dst.dht_get(key)
        cluster.runner.run_until(lambda: gots, max_rounds=2000)
        assert gots[0].uid == 44 and gots[0].value == "v"

    def test_get_issued_before_put_still_returns(self):
        cluster = self._cluster()
        src, dst = cluster.middle_node(0), cluster.middle_node(5)
        key = cluster.keyspace.skeap_key(2, 2)
        gots = []
        dst.dht_get_returned = lambda r, k, e: gots.append(e)
        dst.dht_get(key)
        for _ in range(30):
            cluster.runner.step()
        assert not gots  # parked at the rendezvous
        src.dht_put(key, Element(9, 99))
        cluster.runner.run_until(lambda: gots, max_rounds=2000)
        assert gots[0].uid == 99

    def test_many_elements_land_on_responsible_nodes(self):
        cluster = self._cluster(n=10)
        src = cluster.middle_node(0)
        rng = cluster.runner.rng.stream("keys")
        keys = [float(rng.random()) for _ in range(40)]
        acks = []
        src.dht_put_confirmed = lambda r: acks.append(r)
        for i, key in enumerate(keys):
            src.dht_put(key, Element(i, i))
        cluster.runner.run_until(lambda: len(acks) == 40, max_rounds=10_000)
        for key in keys:
            holder = cluster.topology.responsible_for(key)
            assert any(k == key for k, _ in cluster.nodes[holder].store.items())

    def test_fairness_of_uniform_keys(self):
        """Lemma 2.2(iv): ~m/n elements per real node for random keys."""
        n, m = 16, 800
        cluster = self._cluster(n=n, seed=8)
        src = cluster.middle_node(0)
        acks = []
        src.dht_put_confirmed = lambda r: acks.append(r)
        for i in range(m):
            src.dht_put(cluster.keyspace.uniform_key("fair", i), Element(i, i))
        cluster.runner.run_until(lambda: len(acks) == m, max_rounds=50_000)
        loads = cluster.owner_store_sizes()
        assert sum(loads.values()) == m
        assert max(loads.values()) <= 6 * (m / n)

    def test_distinct_request_ids(self):
        cluster = self._cluster(n=4)
        node = cluster.middle_node(0)
        ids = {node.dht_put(cluster.keyspace.uniform_key(i), Element(i, i)) for i in range(20)}
        assert len(ids) == 20


class TestDHTAsync:
    def test_parked_get_resolves_under_async(self):
        from repro.sim.async_runner import adversarial_delay

        cluster = OverlayCluster(6, seed=21, runner="async",
                                 delay_fn=adversarial_delay())
        src, dst = cluster.middle_node(0), cluster.middle_node(4)
        key = cluster.keyspace.skeap_key(1, 9)
        gots, acks = [], []
        dst.dht_get_returned = lambda r, k, e: gots.append(e)
        src.dht_put_confirmed = lambda r: acks.append(r)
        dst.dht_get(key)          # likely arrives long before the put
        src.dht_put(key, Element(2, 22, "payload"))
        cluster.runner.run_until(lambda: gots and acks, max_time=50_000)
        assert gots[0].value == "payload"

    def test_value_roundtrip_preserves_payload(self):
        cluster = OverlayCluster(5, seed=22)
        src = cluster.middle_node(1)
        key = cluster.keyspace.uniform_key("rt")
        payload = {"nested": [1, 2, "three"]}
        gots = []
        src.dht_get_returned = lambda r, k, e: gots.append(e)
        src.dht_put(key, Element(1, 1, payload))
        src.dht_get(key)
        cluster.runner.run_until(lambda: gots, max_rounds=5000)
        assert gots[0].value == payload
