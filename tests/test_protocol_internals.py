"""White-box tests of protocol internals: epoch machinery, sorting state,
message-size fallbacks, anchor logs.
"""

from __future__ import annotations

import pytest

from repro import BOTTOM, SeapHeap, SkeapHeap
from repro.element import Element
from repro.errors import ProtocolError
from repro.overlay.ldb import VirtualKind
from repro.sim.message import payload_size_bits


class TestPayloadSizingFallbacks:
    def test_intenum_sized_as_int(self):
        assert payload_size_bits(VirtualKind.RIGHT) == payload_size_bits(2)

    def test_object_with_size_bits(self):
        class Thing:
            def size_bits(self):
                return 99

        assert payload_size_bits(Thing()) == 99

    def test_nested_structures(self):
        nested = {"a": [1, (2, 3)], "b": {"c": None}}
        assert payload_size_bits(nested) > 0

    def test_element_subclasses_not_needed(self):
        assert payload_size_bits(Element(3, 4)) == Element(3, 4).size_bits()


class TestSkeapAnchorLog:
    def test_log_records_every_iteration(self):
        heap = SkeapHeap(4, n_priorities=2, seed=1)
        heap.insert(priority=1, at=0)
        heap.settle()
        log = heap.anchor_node.anchor_log
        assert len(log) >= 1
        non_empty = [b for b, _ in log if not b.is_empty()]
        assert len(non_empty) == 1
        assert non_empty[0].total_inserts() == 1

    def test_assignments_match_batches(self):
        heap = SkeapHeap(5, n_priorities=2, seed=2)
        for i in range(6):
            heap.insert(priority=1 + i % 2, at=i % 5)
        heap.delete_min(at=0)
        heap.settle()
        for batch, block in heap.anchor_node.anchor_log:
            assert len(block.entries) == len(batch.entries)
            for entry, assignment in zip(batch.entries, block.entries):
                for p_idx, count in enumerate(entry.ins):
                    assert assignment.ins[p_idx][1] == count
                served = sum(p.count for p in assignment.del_pieces)
                assert served + assignment.bots == entry.dels


class TestSeapEpochInternals:
    def test_insert_only_epochs_keep_m_accurate(self):
        heap = SeapHeap(4, seed=3)
        for batch in range(3):
            for i in range(batch + 1):
                heap.insert(priority=10 * batch + i, at=i % 4)
            heap.settle()
        assert heap.heap_size() == 1 + 2 + 3
        assert heap.total_stored() == 6

    def test_delete_only_epochs_drain_to_bottom(self):
        heap = SeapHeap(4, seed=4)
        heap.insert(priority=1, at=0)
        heap.settle()
        d1 = heap.delete_min(at=1)
        heap.settle()
        d2 = heap.delete_min(at=2)
        heap.settle()
        assert d1.result.priority == 1 and d2.result is BOTTOM
        assert heap.heap_size() == 0

    def test_threshold_move_is_exact(self):
        """Exactly k elements move to position keys; the rest stay put."""
        heap = SeapHeap(5, seed=5)
        for p in (10, 20, 30, 40, 50):
            heap.insert(priority=p, at=0)
        heap.settle()
        heap.pause()
        dels = [heap.delete_min(at=i) for i in range(2)]
        heap.resume()
        heap.settle()
        assert sorted(d.result.priority for d in dels) == [10, 20]
        remaining = sorted(e.priority for n in heap.nodes.values() for e in n.store.elements())
        assert remaining == [30, 40, 50]

    def test_epoch_counter_monotone(self):
        heap = SeapHeap(3, seed=6)
        heap.runner.run_until(lambda: heap.anchor_node.epoch >= 2, max_rounds=20_000)
        seen = heap.anchor_node.epoch
        heap.runner.run_until(lambda: heap.anchor_node.epoch > seen, max_rounds=20_000)


class TestSortingStateHygiene:
    def test_no_leftover_sorting_state_after_selection(self):
        from repro.kselect import KSelectCluster

        cluster = KSelectCluster(8, seed=7)
        cluster.scatter([(i, i) for i in range(120)])
        cluster.select(60)
        # select() returns at the anchor's answer; in-flight sort traffic
        # of abandoned iterations still drains to completion afterwards.
        cluster.runner.run_until_quiescent(max_rounds=50_000)
        for node in cluster.nodes.values():
            assert not node._ks_holdings
            assert not node._ks_copy_nodes
            assert not node._ks_leaves
            assert not node._ks_meets

    def test_no_leftover_state_after_seap_epochs(self):
        heap = SeapHeap(5, seed=8)
        for i in range(10):
            heap.insert(priority=i, at=i % 5)
        heap.settle()
        dels = [heap.delete_min(at=i % 5) for i in range(10)]
        heap.settle()
        for node in heap.nodes.values():
            assert not node._ks_holdings
            assert not node._pending_gets
            assert not node._pending_move_acks

    def test_vector_for_unknown_copy_node_raises(self):
        from repro.kselect import KSelectCluster

        cluster = KSelectCluster(3, seed=9)
        node = cluster.middle_node(0)
        with pytest.raises(ProtocolError):
            node.on_ks_vec(1, token=(0, 1), i=1, lo=1, hi=4, vec=(1, 0))

    def test_cmp_for_unknown_leaf_raises(self):
        from repro.kselect import KSelectCluster

        cluster = KSelectCluster(3, seed=10)
        node = cluster.middle_node(0)
        with pytest.raises(ProtocolError):
            node.on_ks_cmp(1, token=(0, 1), i=1, j=2, vec=(0, 1))


class TestDuplicateProtection:
    def test_duplicate_holder_state_rejected(self):
        from repro.kselect import KSelectCluster

        cluster = KSelectCluster(3, seed=11)
        node = cluster.middle_node(0)
        kwargs = dict(
            token=(5, 1), i=1, candidate=(1, 1), n_prime=2,
            want_l=0, want_r=0, want_ans=1,
        )
        node.on_ks_hold(0, **kwargs)
        with pytest.raises(ProtocolError):
            node.on_ks_hold(0, **kwargs)
