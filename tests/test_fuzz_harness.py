"""End-to-end tests for the schedule fuzzer: campaign, shrink, replay.

The committed files under ``tests/reproducers/`` are minimized fault
plans that once caught a (deliberately seeded) transport bug; they run
here as permanent regression tests — each must still reproduce its
recorded failure signature, and must pass once the transport is
repaired.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.harness.fuzz import (
    TARGET_NAMES,
    fuzz_campaign,
    fuzz_main,
    load_reproducer,
    make_case,
    replay_main,
    replay_reproducer,
    run_case,
    shrink_case,
)

REPRODUCERS = sorted((Path(__file__).parent / "reproducers").glob("*.json"))


class TestCampaign:
    def test_clean_campaign_passes_every_target(self):
        result = fuzz_campaign(len(TARGET_NAMES), root_seed=7, n_ops=8)
        assert result.ok
        assert result.cases_run == len(TARGET_NAMES)
        assert set(result.by_target) == set(TARGET_NAMES)

    def test_case_generation_is_deterministic(self):
        a = make_case(5, 0)
        b = make_case(5, 0)
        assert a == b
        assert make_case(6, 0) != a

    def test_run_case_rejects_unknown_target(self):
        case = dataclasses.replace(make_case(0, 0), target="nope")
        with pytest.raises(Exception, match="unknown fuzz target"):
            run_case(case)


class TestSeededBugIsCaught:
    def _first_failure(self, inject_bug, targets, root_seed=0):
        result = fuzz_campaign(
            6, root_seed=root_seed, targets=targets, n_ops=10,
            inject_bug=inject_bug, shrink=False,
        )
        assert not result.ok, f"seeded bug {inject_bug!r} escaped the fuzzer"
        return result.failures[0]

    def test_no_retry_bug_caught_shrunk_and_replayed(self, tmp_path):
        failure = self._first_failure("no-retry", ("skeap",))
        minimized, runs = shrink_case(failure.case, failure.signature)
        assert len(minimized.plan.events) <= 10
        assert len(minimized.plan.events) <= len(failure.case.plan.events)
        # deterministic replay: same minimized case, same failure, twice
        first = run_case(minimized)
        second = run_case(minimized)
        assert first.signature == failure.signature == second.signature
        assert first.message == second.message

    def test_no_dedup_bug_caught(self):
        failure = self._first_failure("no-dedup", ("seap",), root_seed=3)
        assert failure.signature
        # the same case with deduplication restored passes
        repaired = dataclasses.replace(
            failure.case, plan=dataclasses.replace(failure.case.plan, dedup=True)
        )
        assert run_case(repaired).signature is None

    def test_shrink_preserves_failure_signature(self):
        failure = self._first_failure("no-retry", ("skeap",))
        minimized, _ = shrink_case(failure.case, failure.signature)
        assert run_case(minimized).signature == failure.signature


class TestReproducerFiles:
    def test_reproducers_are_committed(self):
        assert REPRODUCERS, "tests/reproducers/ must hold at least one file"

    @pytest.mark.parametrize("path", REPRODUCERS, ids=lambda p: p.stem)
    def test_reproducer_still_reproduces(self, path):
        ok, result, expected = replay_reproducer(path)
        assert ok, (
            f"{path.name}: expected {expected}, got {result.signature} "
            f"({result.message})"
        )

    @pytest.mark.parametrize("path", REPRODUCERS, ids=lambda p: p.stem)
    def test_reproducer_passes_once_transport_repaired(self, path):
        case, _signature, _message = load_reproducer(path)
        repaired = dataclasses.replace(
            case,
            plan=dataclasses.replace(case.plan, reliable=True, dedup=True),
        )
        assert run_case(repaired).signature is None

    @pytest.mark.parametrize("path", REPRODUCERS, ids=lambda p: p.stem)
    def test_reproducer_is_minimal(self, path):
        case, _signature, _message = load_reproducer(path)
        assert len(case.plan.events) <= 10

    def test_save_load_round_trip(self, tmp_path):
        doc = json.loads(REPRODUCERS[0].read_text())
        copy = tmp_path / "copy.json"
        copy.write_text(json.dumps(doc))
        case, signature, message = load_reproducer(copy)
        assert case.to_dict() == doc["case"]
        assert signature == doc["expect"]["signature"]


class TestCli:
    def test_fuzz_cli_clean_run(self, capsys):
        rc = fuzz_main(["--plans", "4", "--seed", "7", "--ops", "8",
                        "--targets", "skeap,skack"])
        assert rc == 0
        assert "0 distinct failure" in capsys.readouterr().out

    def test_fuzz_cli_expect_caught(self, tmp_path, capsys):
        rc = fuzz_main([
            "--plans", "6", "--seed", "0", "--ops", "10", "--targets", "skeap",
            "--inject-bug", "no-retry", "--expect-caught",
            "--out", str(tmp_path),
        ])
        assert rc == 0
        assert list(tmp_path.glob("repro-*.json"))

    def test_replay_cli(self, capsys):
        rc = replay_main([str(REPRODUCERS[0])])
        assert rc == 0
        assert "reproduced" in capsys.readouterr().out

    def test_replay_cli_missing_file(self, tmp_path):
        assert replay_main([str(tmp_path / "absent.json")]) != 0

    def test_fuzz_cli_rejects_unknown_target(self):
        assert fuzz_main(["--targets", "bogus"]) != 0
