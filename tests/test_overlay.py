"""Tests for the overlay: de Bruijn graph, LDB topology, aggregation, routing."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import OverlayCluster
from repro.errors import RoutingError, TopologyError
from repro.overlay import (
    AggSpec,
    DeBruijnGraph,
    LDBTopology,
    VirtualKind,
    bits_of,
    first_combine,
    from_bits,
    kind_of,
    max_combine,
    min_combine,
    owner_of,
    point_bits,
    sum_combine,
    vector_sum_combine,
    vid_for,
)


# -- classical de Bruijn graph (Definition 2.1) ------------------------------------


class TestDeBruijn:
    def test_bits_roundtrip(self):
        for x in range(16):
            assert from_bits(bits_of(x, 4)) == x

    def test_neighbors_are_bitshifts(self):
        g = DeBruijnGraph(3)
        assert set(g.neighbors(0b101)) == {0b010, 0b110}

    def test_paper_example_route(self):
        """The d=3 example path of Section 2.1."""
        g = DeBruijnGraph(3)
        s = 0b101  # (s1,s2,s3)
        t = 0b011  # (t1,t2,t3)
        path = g.route(s, t)
        # ((s1,s2,s3),(t3,s1,s2),(t2,t3,s1),(t1,t2,t3))
        assert path == [0b101, 0b110, 0b111, 0b011]

    @given(st.integers(1, 8), st.data())
    def test_route_always_converges_in_d_hops(self, d, data):
        g = DeBruijnGraph(d)
        s = data.draw(st.integers(0, g.n - 1))
        t = data.draw(st.integers(0, g.n - 1))
        path = g.route(s, t)
        assert len(path) == d + 1
        assert path[0] == s and path[-1] == t
        for a, b in zip(path, path[1:]):
            assert b in g.neighbors(a)

    def test_edge_count(self):
        g = DeBruijnGraph(4)
        assert len(list(g.edges())) == 2 * g.n

    def test_invalid_inputs(self):
        with pytest.raises(RoutingError):
            DeBruijnGraph(0)
        g = DeBruijnGraph(3)
        with pytest.raises(RoutingError):
            g.neighbors(8)
        with pytest.raises(RoutingError):
            g.hop(0, 2)
        with pytest.raises(RoutingError):
            bits_of(9, 3)


# -- LDB topology (Definition A.1, Appendix A) -----------------------------------------


class TestLDBTopology:
    def test_vid_mapping(self):
        assert owner_of(vid_for(5, VirtualKind.RIGHT)) == 5
        assert kind_of(vid_for(5, VirtualKind.RIGHT)) is VirtualKind.RIGHT

    def test_three_virtual_nodes_per_real(self):
        topo = LDBTopology(list(range(7)), seed=1)
        assert topo.n_virtual == 21

    def test_label_construction(self):
        """l(v) = m(v)/2 and r(v) = (m(v)+1)/2."""
        topo = LDBTopology([0, 1, 2], seed=2)
        for r in range(3):
            m = topo.label(vid_for(r, VirtualKind.MIDDLE))
            assert topo.label(vid_for(r, VirtualKind.LEFT)) == m / 2
            assert topo.label(vid_for(r, VirtualKind.RIGHT)) == (m + 1) / 2

    def test_anchor_is_global_minimum_and_left(self):
        topo = LDBTopology(list(range(9)), seed=3)
        assert topo.anchor == topo.cycle[0]
        assert kind_of(topo.anchor) is VirtualKind.LEFT

    @given(st.integers(1, 40), st.integers(0, 10))
    def test_tree_invariants(self, n, seed):
        topo = LDBTopology(list(range(n)), seed=seed)
        # single tree covering everything
        seen = set()
        stack = [topo.anchor]
        while stack:
            v = stack.pop()
            assert v not in seen
            seen.add(v)
            stack.extend(topo.children[v])
        assert seen == set(topo.cycle)
        for v in topo.cycle:
            # Appendix A parent rules
            kind = kind_of(v)
            if v == topo.anchor:
                assert topo.parent[v] is None
                continue
            if kind is VirtualKind.MIDDLE:
                assert topo.parent[v] == vid_for(owner_of(v), VirtualKind.LEFT)
            elif kind is VirtualKind.RIGHT:
                assert topo.parent[v] == vid_for(owner_of(v), VirtualKind.MIDDLE)
                assert topo.children[v] == ()
            else:
                assert topo.parent[v] == topo.pred[v]
            assert len(topo.children[v]) <= 2  # Lemma 2.2(i)

    @given(st.integers(1, 30), st.integers(0, 5))
    def test_cycle_is_sorted_and_circular(self, n, seed):
        topo = LDBTopology(list(range(n)), seed=seed)
        labels = [topo.label(v) for v in topo.cycle]
        assert labels == sorted(labels)
        for i, v in enumerate(topo.cycle):
            assert topo.succ[topo.pred[v]] == v
            assert topo.pred[topo.succ[v]] == v

    def test_responsible_for_is_predecessor(self):
        topo = LDBTopology(list(range(5)), seed=4)
        for i, v in enumerate(topo.cycle):
            lab = topo.label(v)
            assert topo.responsible_for(lab) == v
            nxt = topo.sorted_labels[(i + 1) % len(topo.cycle)]
            midpoint = lab + (((nxt - lab) % 1.0) / 2)
            if midpoint < 1.0:
                assert topo.responsible_for(midpoint) == v

    def test_responsible_wraparound(self):
        topo = LDBTopology(list(range(5)), seed=4)
        tiny = topo.sorted_labels[0] / 2
        assert topo.responsible_for(tiny) == topo.cycle[-1]

    def test_dfs_rank_preorder(self):
        topo = LDBTopology(list(range(12)), seed=5)
        assert topo.dfs_rank[topo.anchor] == 0
        for v in topo.cycle:
            for c in topo.children[v]:
                assert topo.dfs_rank[c] > topo.dfs_rank[v]

    def test_local_view_fields(self):
        topo = LDBTopology(list(range(4)), seed=6)
        view = topo.local_view(topo.anchor)
        assert view.is_anchor and view.parent is None
        assert view.n_estimate == 4
        other = topo.local_view(topo.cycle[-1])
        assert not other.is_anchor

    def test_validation_errors(self):
        with pytest.raises(TopologyError):
            LDBTopology([], seed=0)
        with pytest.raises(TopologyError):
            LDBTopology([1, 1], seed=0)
        topo = LDBTopology([0], seed=0)
        with pytest.raises(TopologyError):
            topo.responsible_for(1.5)

    def test_single_node_topology(self):
        topo = LDBTopology([0], seed=9)
        assert topo.n_virtual == 3
        assert topo.tree_height() == 2

    def test_height_grows_slowly(self):
        h64 = LDBTopology(list(range(64)), seed=0).tree_height()
        h512 = LDBTopology(list(range(512)), seed=0).tree_height()
        assert h512 < 4 * h64  # far below the 8x of linear growth


# -- combiners --------------------------------------------------------------------------


class TestCombiners:
    def test_sum(self):
        assert sum_combine(1, [(10, 2), (11, 3)]) == 6

    def test_min_max_with_nones(self):
        assert min_combine(None, [(1, 5), (2, None)]) == 5
        assert max_combine(None, [(1, 5), (2, 9)]) == 9
        assert min_combine(None, [(1, None)]) is None

    def test_vector_sum(self):
        assert vector_sum_combine((1, 2), [(9, (3, 4))]) == (4, 6)

    def test_first(self):
        assert first_combine(None, [(1, None), (2, "x"), (3, "y")]) == "x"
        assert first_combine("own", [(1, "x")]) == "own"


# -- aggregation engine over a real cluster ------------------------------------------------


class CountingCluster(OverlayCluster):
    def make_node(self, view):
        from repro.overlay.base import OverlayNode

        node = OverlayNode(view, self.keyspace)
        node.register_agg(
            "count",
            AggSpec(
                combine=lambda s, t, own, ch: sum_combine(own, ch),
                at_root=lambda s, t, total: results.append(total),
                decompose=lambda s, t, payload: (
                    payload,
                    {c: payload for c in s.view.children},
                ),
                deliver=lambda s, t, part: delivered.append((s.id, part)),
            ),
        )
        node.register_bcast("go", lambda s, t, p: s.agg_contribute(("count", t[1]), 1))
        return node


results: list[int] = []
delivered: list[tuple[int, object]] = []


class TestAggregation:
    def setup_method(self):
        results.clear()
        delivered.clear()

    def test_count_aggregation_reaches_root(self):
        cluster = CountingCluster(10, seed=1)
        cluster.anchor.bcast(("go", 0), None)
        cluster.runner.run_until(lambda: results, max_rounds=2000)
        assert results == [30]  # 3 virtual nodes per real node

    def test_distribution_reaches_every_node(self):
        cluster = CountingCluster(6, seed=2)
        cluster.anchor.bcast(("go", 0), None)
        cluster.runner.run_until(lambda: results, max_rounds=2000)
        cluster.anchor.agg_distribute(("count", 0), "payload")
        cluster.runner.run_until(lambda: len(delivered) == 18, max_rounds=2000)
        assert {d[0] for d in delivered} == set(cluster.nodes)

    def test_duplicate_contribution_rejected(self):
        from repro.errors import ProtocolError

        cluster = CountingCluster(3, seed=3)
        node = cluster.anchor
        node.agg_contribute(("count", 5), 1)
        with pytest.raises(ProtocolError):
            node.agg_contribute(("count", 5), 1)

    def test_unknown_aggregation_rejected(self):
        from repro.errors import ProtocolError

        cluster = CountingCluster(3, seed=3)
        with pytest.raises(ProtocolError):
            cluster.anchor.agg_contribute(("nope", 0), 1)

    def test_stale_iterations_expire(self):
        cluster = CountingCluster(4, seed=4)
        for it in range(3):
            cluster.anchor.bcast(("go", it), None)
            cluster.runner.run_until(lambda: len(results) == it + 1, max_rounds=2000)
        anchor = cluster.anchor
        tags = [t for t in anchor._agg_own if t[0] == "count"]
        assert len(tags) == 1 and tags[0][1] == 2


# -- point routing -------------------------------------------------------------------


class TestRouting:
    def test_point_bits_reconstruct_prefix(self):
        bits = point_bits(0.625, 3)  # 0.101
        assert bits == [1, 0, 1][::-1] or len(bits) == 3
        # consuming bits: ideal' = (b + ideal)/2 must converge to 0.101
        ideal = 0.3
        for b in bits:
            ideal = (b + ideal) / 2
        assert abs(ideal - 0.625) < 2**-3

    @given(st.floats(min_value=0.0, max_value=0.999999), st.integers(1, 20))
    def test_point_bits_prefix_error_bound(self, target, d):
        ideal = 0.5
        for b in point_bits(target, d):
            ideal = (b + ideal) / 2
        assert abs(ideal - target) <= 2.0 ** (-d) + 1e-12

    def test_routing_lands_on_responsible_node(self, seed):
        cluster = OverlayCluster(20, seed=seed)
        hits: list[int] = []
        for node in cluster.nodes.values():
            node.on_probe = lambda origin, _n=node: hits.append(_n.id)
        rng = cluster.runner.rng.stream("t")
        targets = [float(rng.random()) for _ in range(15)]
        for t in targets:
            cluster.middle_node(3).route_to_point(t, "probe", {})
        cluster.runner.run_until(lambda: len(hits) == 15, max_rounds=5000)
        # compare against the global responsibility map
        expected = sorted(cluster.topology.responsible_for(t) for t in targets)
        assert sorted(hits) == expected

    def test_route_hops_recorded(self):
        cluster = OverlayCluster(16, seed=1)
        done = []
        for node in cluster.nodes.values():
            node.on_probe = lambda origin, _n=node: done.append(1)
        cluster.middle_node(0).route_to_point(0.77, "probe", {})
        cluster.runner.run_until(lambda: done, max_rounds=5000)
        assert sum(len(n.route_hops) for n in cluster.nodes.values()) == 1

    def test_invalid_target_rejected(self):
        cluster = OverlayCluster(4, seed=1)
        with pytest.raises(RoutingError):
            cluster.middle_node(0).route_to_point(1.2, "probe", {})

    def test_single_node_routing(self):
        cluster = OverlayCluster(1, seed=1)
        done = []
        for node in cluster.nodes.values():
            node.on_probe = lambda origin: done.append(1)
        cluster.middle_node(0).route_to_point(0.9, "probe", {})
        cluster.runner.run_until(lambda: done, max_rounds=100)
        assert done == [1]


class TestRoutingDeterminism:
    def test_destination_independent_of_source(self):
        """Routes to the same key from different sources converge on the
        same responsible node — the property DHT rendezvous relies on."""
        cluster = OverlayCluster(12, seed=8)
        hits: dict[float, set[int]] = {}
        for node in cluster.nodes.values():
            def on_probe(origin, key, _n=node):
                hits.setdefault(key, set()).add(_n.id)
            node.on_probe2 = on_probe
        rng = cluster.runner.rng.stream("det")
        keys = [float(rng.random()) for _ in range(6)]
        for key in keys:
            for src in (0, 5, 11):
                cluster.middle_node(src).route_to_point(key, "probe2", {"key": key})
        cluster.runner.run_until(
            lambda: sum(len(v) for v in hits.values()) >= 0
            and sum(len(n.route_hops) for n in cluster.nodes.values()) >= 18,
            max_rounds=20_000,
        )
        for key in keys:
            assert len(hits[key]) == 1, f"key {key} landed on {hits[key]}"

    def test_hops_grow_slowly_with_n(self):
        import statistics

        def mean_hops(n):
            cluster = OverlayCluster(n, seed=4)
            done = []
            for node in cluster.nodes.values():
                node.on_probe3 = lambda origin, _d=done: _d.append(1)
            rng = cluster.runner.rng.stream("h")
            for _ in range(12):
                cluster.middle_node(int(rng.integers(0, n))).route_to_point(
                    float(rng.random()), "probe3", {}
                )
            cluster.runner.run_until(lambda: len(done) == 12, max_rounds=50_000)
            return statistics.mean(cluster.all_route_hops())

        assert mean_hops(64) < 3 * mean_hops(8)
