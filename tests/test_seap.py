"""End-to-end tests for the Seap protocol (Section 5, Theorem 5.1)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import BOTTOM, SeapHeap, check_seap_history
from repro.semantics import OrderedHeap
from repro.sim.async_runner import adversarial_delay


class TestBasics:
    def test_insert_then_delete(self, small_seap):
        small_seap.insert(priority=123456, value="x", at=0)
        d = small_seap.delete_min(at=3)
        small_seap.settle()
        assert d.result.value == "x"

    def test_min_priority_wins_over_wide_range(self, small_seap):
        small_seap.insert(priority=10**9, at=0)
        small_seap.insert(priority=3, at=1)
        small_seap.insert(priority=10**6, at=2)
        small_seap.settle()
        d = small_seap.delete_min(at=4)
        small_seap.settle()
        assert d.result.priority == 3

    def test_empty_heap_returns_bottom(self, small_seap):
        d = small_seap.delete_min(at=2)
        small_seap.settle()
        assert d.result is BOTTOM

    def test_more_deletes_than_elements(self, small_seap):
        small_seap.insert(priority=5, at=0)
        small_seap.insert(priority=9, at=1)
        small_seap.settle()
        dels = [small_seap.delete_min(at=i) for i in range(5)]
        small_seap.settle()
        matched = [d.result for d in dels if d.result is not BOTTOM]
        assert sorted(e.priority for e in matched) == [5, 9]
        assert sum(1 for d in dels if d.result is BOTTOM) == 3

    def test_heap_size_bookkeeping(self, small_seap):
        for p in (4, 8, 15):
            small_seap.insert(priority=p, at=0)
        small_seap.settle()
        assert small_seap.heap_size() == 3
        small_seap.delete_min(at=1)
        small_seap.settle()
        assert small_seap.heap_size() == 2

    def test_single_node_heap(self):
        heap = SeapHeap(n_nodes=1, seed=0)
        heap.insert(priority=7, at=0)
        heap.insert(priority=2, at=0)
        d = heap.delete_min(at=0)
        heap.settle()
        assert d.result.priority == 2

    def test_negative_priority_rejected(self, small_seap):
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            small_seap.insert(priority=-1, at=0)

    def test_same_phase_batch_deletes_get_k_smallest(self):
        heap = SeapHeap(n_nodes=8, seed=3)
        prios = [50, 10, 40, 20, 30, 60, 70, 80]
        for i, p in enumerate(prios):
            heap.insert(priority=p, at=i)
        heap.settle()
        dels = [heap.delete_min(at=i) for i in range(4)]
        heap.settle()
        got = sorted(d.result.priority for d in dels)
        assert got == [10, 20, 30, 40]


class TestSerializability:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=8)
    def test_random_histories_check_out(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 8)
        heap = SeapHeap(n_nodes=n, seed=seed)
        for _ in range(rng.randint(5, 50)):
            if rng.random() < 0.55:
                heap.insert(priority=rng.randint(1, 1 << 20), at=rng.randrange(n))
            else:
                heap.delete_min(at=rng.randrange(n))
            if rng.random() < 0.1:
                heap.settle(500_000)
        heap.settle(500_000)
        check_seap_history(heap.history)

    def test_phase_separated_equivalence_to_ordered_heap(self):
        """Settling between ops gives exact equivalence to a serial heap."""
        heap = SeapHeap(n_nodes=5, seed=6)
        model = OrderedHeap()
        rng = random.Random(1)
        uid_of = {}
        for step in range(30):
            if rng.random() < 0.6:
                p = rng.randint(1, 10**6)
                h = heap.insert(priority=p, at=rng.randrange(5))
                heap.settle()
                model.insert(p, h.uid)
            else:
                d = heap.delete_min(at=rng.randrange(5))
                heap.settle()
                expected = model.delete_min()
                if expected is None:
                    assert d.result is BOTTOM
                else:
                    assert d.result.priority == expected[0]

    def test_adversarial_async(self):
        heap = SeapHeap(
            n_nodes=6, seed=9, runner="async", delay_fn=adversarial_delay()
        )
        rng = random.Random(2)
        for _ in range(50):
            if rng.random() < 0.55:
                heap.insert(priority=rng.randint(1, 1000), at=rng.randrange(6))
            else:
                heap.delete_min(at=rng.randrange(6))
        heap.settle(500_000)
        check_seap_history(heap.history)

    def test_no_element_returned_twice(self):
        heap = SeapHeap(n_nodes=6, seed=10)
        for i in range(12):
            heap.insert(priority=i % 4, at=i % 6)
        heap.settle()
        dels = [heap.delete_min(at=i % 6) for i in range(12)]
        heap.settle()
        uids = [d.result.uid for d in dels if d.result is not BOTTOM]
        assert len(uids) == 12 and len(set(uids)) == 12


class TestMessageSizes:
    def test_messages_stay_small_under_load(self):
        """Lemma 5.5: message size independent of the buffered-request count."""
        light = SeapHeap(n_nodes=8, seed=4, record_history=False)
        light.insert(priority=1, at=0)
        light.settle()
        light_bits = light.metrics.max_message_bits

        heavy = SeapHeap(n_nodes=8, seed=4, record_history=False)
        for i in range(300):
            heavy.insert(priority=1 + i, at=i % 8)
            if i % 2:
                heavy.delete_min(at=i % 8)
        heavy.settle()
        heavy_bits = heavy.metrics.max_message_bits
        # 300x the ops should cost at most a few dozen extra bits (wider
        # integers), never the linear batch growth Skeap shows.
        assert heavy_bits <= light_bits + 200


class TestEpochMachinery:
    def test_epochs_advance_when_idle(self, small_seap):
        small_seap.runner.run_until(
            lambda: small_seap.anchor_node.epoch >= 3, max_rounds=20_000
        )
        assert small_seap.heap_size() == 0

    def test_late_submissions_join_later_epoch(self, small_seap):
        small_seap.insert(priority=5, at=0)
        small_seap.settle()
        first_epoch = small_seap.anchor_node.epoch
        small_seap.insert(priority=6, at=0)
        small_seap.settle()
        assert small_seap.anchor_node.epoch > first_epoch
        assert small_seap.heap_size() == 2

    def test_store_holds_elements_between_epochs(self, small_seap):
        for p in (3, 1, 2):
            small_seap.insert(priority=p, at=0)
        small_seap.settle()
        assert small_seap.total_stored() == 3
