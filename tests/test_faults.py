"""Unit tests for the fault-injection transport layer.

The injector's channel decisions must be pure functions of the plan and
the per-channel send count — that determinism is what makes fuzz replays
byte-for-byte and shrinking sound — so every behaviour (drop/retry,
dup/dedup, delay, partition windows, loss accounting) is pinned here at
the transport boundary, plus end-to-end through both runners.
"""

from __future__ import annotations

import pytest

from repro import SkeapHeap
from repro.errors import SimulationError
from repro.semantics import check_skeap_history
from repro.sim import FaultEvent, FaultInjector, FaultPlan, Message


def msg(src=0, dst=1, action="m"):
    return Message(sender=src, dest=dst, action=action)


class TestFaultPlanSerialization:
    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=42,
            events=[
                FaultEvent(kind="drop", src=1, dst=2, nth=3),
                FaultEvent(kind="dup", src=0, dst=4, nth=0, hold=2.5),
                FaultEvent(kind="delay", src=2, dst=2, nth=7, hold=9.0),
                FaultEvent(
                    kind="partition", start=5.0, duration=10.0, group=(0, 1, 2)
                ),
                FaultEvent(kind="crash", node=3, slot=1, down_for=2),
            ],
            reliable=False,
            dedup=False,
            retry_timeout=7.5,
            max_retries=9,
        )
        back = FaultPlan.from_json(plan.to_json())
        assert back == plan

    def test_event_kind_selectors(self):
        plan = FaultPlan(
            events=[
                FaultEvent(kind="drop"),
                FaultEvent(kind="dup"),
                FaultEvent(kind="delay"),
                FaultEvent(kind="partition", duration=1.0, group=(0,)),
                FaultEvent(kind="crash", node=1),
            ]
        )
        assert [e.kind for e in plan.message_events()] == ["drop", "dup", "delay"]
        assert [e.kind for e in plan.partition_events()] == ["partition"]
        assert [e.kind for e in plan.crash_events()] == ["crash"]

    def test_with_events_copies_knobs(self):
        plan = FaultPlan(seed=1, reliable=False, retry_timeout=2.0)
        sub = plan.with_events([FaultEvent(kind="drop")])
        assert sub.seed == 1 and not sub.reliable and sub.retry_timeout == 2.0
        assert len(sub.events) == 1 and not plan.events


class TestInjectorChannelDecisions:
    def test_clean_channel_delivers_once_with_no_extra_delay(self):
        inj = FaultInjector(FaultPlan())
        out = inj.deliveries(msg(), now=0.0)
        assert len(out) == 1 and out[0][0] == 0.0
        assert inj.stats.sent == 1 and inj.stats.dropped == 0

    def test_drop_retransmits_after_timeout(self):
        plan = FaultPlan(
            events=[FaultEvent(kind="drop", src=0, dst=1, nth=0)], retry_timeout=4.0
        )
        inj = FaultInjector(plan)
        out = inj.deliveries(msg(), now=10.0)
        assert [extra for extra, _ in out] == [4.0]
        assert inj.stats.dropped == 1 and inj.stats.retransmitted == 1
        assert inj.stats.lost == 0

    def test_drop_without_reliability_loses_the_message(self):
        plan = FaultPlan(
            events=[FaultEvent(kind="drop", src=0, dst=1, nth=0)], reliable=False
        )
        inj = FaultInjector(plan)
        assert inj.deliveries(msg(), now=0.0) == []
        assert inj.stats.lost == 1
        with pytest.raises(SimulationError):
            inj.require_no_losses()

    def test_nth_targets_only_that_transmission(self):
        plan = FaultPlan(events=[FaultEvent(kind="drop", src=0, dst=1, nth=1)])
        inj = FaultInjector(plan)
        assert inj.deliveries(msg(), now=0.0)[0][0] == 0.0  # nth=0: clean
        assert inj.deliveries(msg(), now=0.0)[0][0] > 0.0  # nth=1: dropped
        assert inj.deliveries(msg(), now=0.0)[0][0] == 0.0  # nth=2: clean
        # a different channel has its own counter
        assert inj.deliveries(msg(dst=2), now=0.0)[0][0] == 0.0

    def test_delay_adds_hold(self):
        plan = FaultPlan(events=[FaultEvent(kind="delay", src=0, dst=1, nth=0, hold=6.0)])
        inj = FaultInjector(plan)
        assert inj.deliveries(msg(), now=0.0)[0][0] == 6.0

    def test_dup_delivers_two_copies_and_dedup_suppresses_second(self):
        plan = FaultPlan(events=[FaultEvent(kind="dup", src=0, dst=1, nth=0, hold=3.0)])
        inj = FaultInjector(plan)
        m = msg()
        out = inj.deliveries(m, now=0.0)
        assert [extra for extra, _ in out] == [0.0, 3.0]
        assert inj.stats.duplicated == 1
        assert inj.accept(m) is True  # first copy passes
        assert inj.accept(m) is False  # second is suppressed
        assert inj.stats.deduped == 1

    def test_dup_without_dedup_hands_both_copies_to_the_handler(self):
        plan = FaultPlan(
            events=[FaultEvent(kind="dup", src=0, dst=1, nth=0)], dedup=False
        )
        inj = FaultInjector(plan)
        m = msg()
        assert len(inj.deliveries(m, now=0.0)) == 2
        assert inj.accept(m) is True and inj.accept(m) is True

    def test_accept_ignores_unduplicated_messages(self):
        inj = FaultInjector(FaultPlan())
        m = msg()
        inj.deliveries(m, now=0.0)
        assert inj.accept(m) is True and inj.accept(m) is True


class TestPartitions:
    PLAN = FaultPlan(
        events=[
            FaultEvent(kind="partition", start=10.0, duration=20.0, group=(0, 2))
        ],
        retry_timeout=4.0,
    )

    def test_crossing_message_is_dropped_and_retried_past_the_window(self):
        inj = FaultInjector(self.PLAN)
        out = inj.deliveries(msg(src=0, dst=1), now=12.0)
        # retries at 16, 20, 24, 28, 32: first instant past end (30) is 32
        assert [extra for extra, _ in out] == [20.0]
        assert inj.stats.dropped == 1 and inj.stats.retransmitted == 5

    def test_same_side_messages_pass(self):
        inj = FaultInjector(self.PLAN)
        assert inj.deliveries(msg(src=0, dst=2), now=12.0)[0][0] == 0.0
        assert inj.deliveries(msg(src=1, dst=3), now=12.0)[0][0] == 0.0

    def test_outside_the_window_everything_passes(self):
        inj = FaultInjector(self.PLAN)
        assert inj.deliveries(msg(src=0, dst=1), now=9.0)[0][0] == 0.0
        assert inj.deliveries(msg(src=0, dst=1), now=30.0)[0][0] == 0.0

    def test_partition_longer_than_retry_budget_loses_the_message(self):
        plan = FaultPlan(
            events=[
                FaultEvent(kind="partition", start=0.0, duration=1000.0, group=(0,))
            ],
            retry_timeout=1.0,
            max_retries=5,
        )
        inj = FaultInjector(plan)
        assert inj.deliveries(msg(src=0, dst=1), now=0.0) == []
        assert inj.stats.lost == 1


class TestEndToEnd:
    """The injector wired through real protocol runs."""

    def _events(self):
        return [
            FaultEvent(kind="drop", src=2, dst=1, nth=0),
            FaultEvent(kind="drop", src=1, dst=4, nth=2),
            FaultEvent(kind="dup", src=4, dst=1, nth=1, hold=2.0),
            FaultEvent(kind="delay", src=1, dst=7, nth=0, hold=5.0),
            FaultEvent(kind="partition", start=3.0, duration=12.0, group=(0, 1, 2)),
        ]

    @pytest.mark.parametrize("runner", ["sync", "async"])
    def test_skeap_stays_consistent_under_faults(self, runner):
        plan = FaultPlan(seed=5, events=self._events())
        heap = SkeapHeap(4, n_priorities=3, seed=5, faults=plan, runner=runner)
        for i in range(8):
            heap.insert(priority=1 + i % 3, at=i % 4)
        for i in range(6):
            heap.delete_min(at=i % 4)
        heap.settle()
        check_skeap_history(heap.history)
        heap.runner.faults.require_no_losses()
        assert heap.runner.faults.stats.dropped >= 1

    def test_identical_plans_give_identical_histories(self):
        def run():
            plan = FaultPlan(seed=5, events=self._events())
            heap = SkeapHeap(4, n_priorities=3, seed=5, faults=plan, runner="sync")
            for i in range(8):
                heap.insert(priority=1 + i % 3, at=i % 4)
                heap.delete_min(at=(i + 1) % 4)
            heap.settle()
            return [
                (r.op_id, r.kind, r.order_key, r.returned_uid)
                for r in heap.history.serialized_ops()
            ], heap.runner.faults.stats.as_dict()

        assert run() == run()

    def test_unreliable_transport_stalls_the_protocol(self):
        # Drop an early aggregation message with retries disabled: the
        # round-synchronous wave never completes and settle() times out.
        events = [
            FaultEvent(kind="drop", src=s, dst=d, nth=n)
            for s in range(12)
            for d in range(12)
            for n in range(3)
        ]
        plan = FaultPlan(seed=5, events=events, reliable=False)
        heap = SkeapHeap(4, n_priorities=3, seed=5, faults=plan, runner="sync")
        heap.insert(priority=1, at=0)
        with pytest.raises(SimulationError):
            heap.settle(limit=2_000)
