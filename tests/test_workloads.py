"""Tests for workload generators and application scenarios."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads import (
    WorkloadSpec,
    fixed_priorities,
    generate_ops,
    scheduling_trace,
    sorting_batch,
    uniform_priorities,
    zipf_priorities,
)


class TestDistributions:
    def test_uniform_range(self):
        import numpy as np

        dist = uniform_priorities(5, 9)
        vals = dist.sample(np.random.default_rng(0), 500)
        assert vals.min() >= 5 and vals.max() <= 9

    def test_fixed_classes(self):
        import numpy as np

        dist = fixed_priorities(3)
        vals = set(dist.sample(np.random.default_rng(0), 200).tolist())
        assert vals <= {1, 2, 3}

    def test_zipf_skew(self):
        import numpy as np

        dist = zipf_priorities(1, 100, s=2.0)
        vals = dist.sample(np.random.default_rng(0), 2000)
        assert (vals == 1).mean() > 0.3  # heavy head

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            uniform_priorities(5, 2)
        with pytest.raises(WorkloadError):
            fixed_priorities(0)
        with pytest.raises(WorkloadError):
            zipf_priorities(1, 10, s=0.5)


class TestWorkloadSpec:
    def test_deterministic(self):
        spec = WorkloadSpec(n_ops=50, n_nodes=8, seed=3)
        assert list(generate_ops(spec)) == list(generate_ops(spec))

    def test_respects_counts_and_nodes(self):
        spec = WorkloadSpec(n_ops=100, n_nodes=4, seed=1)
        ops = list(generate_ops(spec))
        assert len(ops) == 100
        assert all(0 <= node < 4 for _, _, node in ops)

    def test_first_op_is_insert(self):
        spec = WorkloadSpec(n_ops=30, n_nodes=2, insert_fraction=0.3, seed=2)
        ops = list(generate_ops(spec))
        assert ops[0][0] == "ins"

    def test_all_deletes_when_fraction_zero(self):
        spec = WorkloadSpec(n_ops=20, n_nodes=2, insert_fraction=0.0, seed=2)
        assert all(k == "del" for k, _, _ in generate_ops(spec))

    def test_hot_node(self):
        spec = WorkloadSpec(n_ops=300, n_nodes=8, hot_node_fraction=0.9, seed=4)
        nodes = [node for _, _, node in generate_ops(spec)]
        assert nodes.count(0) > 200

    def test_empty_workload(self):
        assert list(generate_ops(WorkloadSpec(n_ops=0, n_nodes=1))) == []

    def test_invalid_spec(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(n_ops=10, n_nodes=2, insert_fraction=1.5)
        with pytest.raises(WorkloadError):
            WorkloadSpec(n_ops=-1, n_nodes=2)
        with pytest.raises(WorkloadError):
            WorkloadSpec(n_ops=1, n_nodes=0)

    @given(st.integers(0, 200), st.integers(1, 16), st.integers(0, 100))
    def test_mix_fraction_roughly_respected(self, n_ops, n_nodes, seed):
        spec = WorkloadSpec(n_ops=n_ops, n_nodes=n_nodes, insert_fraction=0.5, seed=seed)
        ops = list(generate_ops(spec))
        assert len(ops) == n_ops
        if n_ops >= 100:
            frac = sum(1 for k, _, _ in ops if k == "ins") / n_ops
            assert 0.3 < frac < 0.7


class TestScenarios:
    def test_scheduling_trace_shape(self):
        trace = scheduling_trace(50, 8, n_urgency_classes=3, seed=1)
        assert len(trace) == 50
        assert all(1 <= j.urgency <= 3 for j in trace)
        assert all(0 <= j.submitted_by < 8 for j in trace)
        assert len({j.job_id for j in trace}) == 50

    def test_scheduling_urgency_skew(self):
        trace = scheduling_trace(600, 4, n_urgency_classes=3, seed=2)
        counts = [sum(1 for j in trace if j.urgency == u) for u in (1, 2, 3)]
        assert counts[0] < counts[2]  # urgent work is rare

    def test_sorting_batch_distinct(self):
        vals = sorting_batch(100, seed=5)
        assert len(set(vals)) == 100

    def test_sorting_batch_deterministic(self):
        assert sorting_batch(50, seed=9) == sorting_batch(50, seed=9)

    def test_invalid_sizes(self):
        with pytest.raises(WorkloadError):
            scheduling_trace(-1, 2)
        with pytest.raises(WorkloadError):
            sorting_batch(-5)
