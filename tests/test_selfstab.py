"""Tests for self-stabilizing list linearization (Appendix A's substrate)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.overlay.selfstab import LinearizationCluster


class TestConvergence:
    @pytest.mark.parametrize("initial", ["line", "random", "star"])
    def test_converges_from_every_shape(self, initial):
        cluster = LinearizationCluster(24, seed=3, initial=initial)
        cluster.run_to_convergence()
        assert cluster.is_linearized()

    def test_converged_state_matches_sorted_order(self):
        cluster = LinearizationCluster(12, seed=4)
        cluster.run_to_convergence()
        order = cluster.sorted_ids()
        by_id = {n.id: n for n in cluster.nodes}
        for i, nid in enumerate(order):
            node = by_id[nid]
            assert node.left == (order[i - 1] if i > 0 else None)
            assert node.right == (order[i + 1] if i < len(order) - 1 else None)

    def test_single_node(self):
        cluster = LinearizationCluster(1, seed=5)
        cluster.run_to_convergence(max_rounds=10)
        assert cluster.is_linearized()

    def test_two_nodes(self):
        cluster = LinearizationCluster(2, seed=6)
        cluster.run_to_convergence()
        assert cluster.is_linearized()

    def test_closure_after_convergence(self):
        """Once linearized, further rounds change nothing (self-stabilization
        closure)."""
        cluster = LinearizationCluster(16, seed=7)
        cluster.run_to_convergence()
        snapshot = [(n.left, n.right) for n in cluster.nodes]
        for _ in range(20):
            cluster.runner.step()
        assert [(n.left, n.right) for n in cluster.nodes] == snapshot
        assert cluster.is_linearized()

    @given(st.integers(0, 2**20), st.integers(2, 40))
    @settings(max_examples=15)
    def test_random_instances_always_converge(self, seed, n):
        cluster = LinearizationCluster(n, seed=seed, initial="random")
        cluster.run_to_convergence(max_rounds=20_000)
        assert cluster.is_linearized()


class TestInvariants:
    def test_connectivity_preserved_every_round(self):
        """Delegation must never partition the knowledge graph."""
        cluster = LinearizationCluster(20, seed=8, initial="star")
        for _ in range(60):
            assert cluster.knowledge_is_connected()
            cluster.runner.step()
        assert cluster.is_linearized()

    def test_no_self_knowledge(self):
        cluster = LinearizationCluster(10, seed=9)
        cluster.run_to_convergence()
        for node in cluster.nodes:
            assert node.id not in node.knowledge

    def test_invalid_parameters(self):
        with pytest.raises(TopologyError):
            LinearizationCluster(0)
        with pytest.raises(TopologyError):
            LinearizationCluster(4, initial="clique-of-doom")

    def test_learn_ignores_self(self):
        cluster = LinearizationCluster(3, seed=10)
        node = cluster.nodes[0]
        node.learn(node.id, node.label)
        assert node.id not in node.knowledge
