"""Wire-protocol robustness: framing survives hostile and unlucky bytes.

The codec is pure, so most of this drives :class:`FrameDecoder` byte by
byte; the live-server cases then prove a framing violation kills only
the offending connection, never the service.
"""

import asyncio

import pytest

from repro.errors import WireError
from repro.service.wire import (
    DEFAULT_MAX_FRAME,
    HEADER_SIZE,
    FrameDecoder,
    encode_frame,
    read_frame,
    write_frame,
)


class TestEncode:
    def test_round_trip(self):
        frame = encode_frame({"op": "ping", "rid": 7})
        decoder = FrameDecoder()
        assert list(decoder.feed(frame)) == [{"op": "ping", "rid": 7}]

    def test_encode_is_canonical(self):
        # Sorted keys: the same object always produces the same bytes.
        assert encode_frame({"b": 1, "a": 2}) == encode_frame({"a": 2, "b": 1})

    def test_rejects_non_dict(self):
        with pytest.raises(WireError, match="JSON object"):
            encode_frame(["not", "a", "dict"])

    def test_rejects_oversized_payload(self):
        with pytest.raises(WireError, match="exceeds max_frame"):
            encode_frame({"blob": "x" * 64}, max_frame=32)


class TestDecoderPartialReads:
    def test_one_byte_at_a_time(self):
        frame = encode_frame({"op": "insert", "priority": 3})
        decoder = FrameDecoder()
        got = []
        for i in range(len(frame)):
            got.extend(decoder.feed(frame[i : i + 1]))
        assert got == [{"op": "insert", "priority": 3}]

    def test_split_inside_header(self):
        frame = encode_frame({"k": 1})
        decoder = FrameDecoder()
        assert list(decoder.feed(frame[:2])) == []
        assert decoder.pending_bytes == 2
        assert list(decoder.feed(frame[2:])) == [{"k": 1}]
        assert decoder.pending_bytes == 0

    def test_interleaved_frames_in_one_chunk(self):
        chunk = b"".join(encode_frame({"rid": i}) for i in range(5))
        # ...plus a partial sixth frame dangling at the end.
        sixth = encode_frame({"rid": 5})
        decoder = FrameDecoder()
        got = list(decoder.feed(chunk + sixth[:3]))
        assert got == [{"rid": i} for i in range(5)]
        assert list(decoder.feed(sixth[3:])) == [{"rid": 5}]

    def test_frame_boundary_straddles_chunks(self):
        a, b = encode_frame({"x": 1}), encode_frame({"y": 2})
        blob = a + b
        decoder = FrameDecoder()
        got = []
        # Split exactly one byte past the first frame's end.
        got.extend(decoder.feed(blob[: len(a) + 1]))
        got.extend(decoder.feed(blob[len(a) + 1 :]))
        assert got == [{"x": 1}, {"y": 2}]


class TestDecoderErrors:
    def test_oversized_declared_length_rejected_before_buffering(self):
        decoder = FrameDecoder(max_frame=128)
        header = (1 << 24).to_bytes(HEADER_SIZE, "big")
        with pytest.raises(WireError, match="exceeds max_frame"):
            list(decoder.feed(header))
        # Nothing beyond the header was ever buffered.
        assert decoder.pending_bytes <= HEADER_SIZE

    def test_garbage_body_rejected(self):
        garbage = b"\xff\xfe\x00garbage"
        frame = len(garbage).to_bytes(HEADER_SIZE, "big") + garbage
        decoder = FrameDecoder()
        with pytest.raises(WireError, match="not valid JSON"):
            list(decoder.feed(frame))

    def test_non_object_json_rejected(self):
        body = b"[1,2,3]"
        frame = len(body).to_bytes(HEADER_SIZE, "big") + body
        decoder = FrameDecoder()
        with pytest.raises(WireError, match="must be a JSON object"):
            list(decoder.feed(frame))

    def test_decoder_poisoned_after_error(self):
        decoder = FrameDecoder(max_frame=16)
        with pytest.raises(WireError):
            list(decoder.feed((1 << 20).to_bytes(HEADER_SIZE, "big")))
        with pytest.raises(WireError, match="poisoned"):
            list(decoder.feed(encode_frame({"fine": True}, max_frame=16)))


class TestStreamHelpers:
    """read_frame/write_frame over real loopback sockets."""

    @staticmethod
    def run(coro):
        return asyncio.run(coro)

    def test_round_trip_and_clean_eof(self):
        async def scenario():
            server_got = []

            async def handler(reader, writer):
                while (frame := await read_frame(reader)) is not None:
                    server_got.append(frame)
                writer.close()

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            await write_frame(writer, {"rid": 1})
            await write_frame(writer, {"rid": 2})
            writer.close()
            await writer.wait_closed()
            await asyncio.sleep(0.05)
            server.close()
            await server.wait_closed()
            return server_got

        assert self.run(scenario()) == [{"rid": 1}, {"rid": 2}]

    def test_mid_frame_disconnect_raises_wire_error(self):
        async def scenario():
            result = {}

            async def handler(reader, writer):
                try:
                    await read_frame(reader)
                except WireError as exc:
                    result["error"] = str(exc)
                writer.close()

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            _, writer = await asyncio.open_connection("127.0.0.1", port)
            frame = encode_frame({"op": "insert", "priority": 1})
            writer.write(frame[: len(frame) // 2])  # ...and vanish mid-frame
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            await asyncio.sleep(0.1)
            server.close()
            await server.wait_closed()
            return result

        assert "mid-frame" in self.run(scenario())["error"]

    def test_mid_header_disconnect_raises_wire_error(self):
        async def scenario():
            result = {}

            async def handler(reader, writer):
                try:
                    await read_frame(reader)
                except WireError as exc:
                    result["error"] = str(exc)
                writer.close()

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            _, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"\x00\x00")  # half a header
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            await asyncio.sleep(0.1)
            server.close()
            await server.wait_closed()
            return result

        assert "mid-header" in self.run(scenario())["error"]


class TestServiceSurvivesBadPeers:
    """A framing violation drops one connection; the service lives on."""

    def test_garbage_bytes_then_healthy_client(self):
        from repro.service import QueueClient, QueueService

        async def scenario():
            async with QueueService("skeap", n_nodes=4, seed=0) as service:
                # Malicious peer: declares a huge frame, then garbage.
                _, bad = await asyncio.open_connection(service.host, service.port)
                bad.write((1 << 30).to_bytes(HEADER_SIZE, "big") + b"\xde\xad")
                await bad.drain()
                await asyncio.sleep(0.05)
                bad.close()

                # Sloppy peer: valid header, non-JSON body.
                _, ugly = await asyncio.open_connection(service.host, service.port)
                ugly.write(len(b"nope").to_bytes(HEADER_SIZE, "big") + b"nope")
                await ugly.drain()
                await asyncio.sleep(0.05)
                ugly.close()

                # The service still serves a healthy client end to end.
                client = await QueueClient.connect(
                    service.host, service.port, client="healthy"
                )
                result = await client.insert(1, "alive")
                got = await client.delete_min()
                await client.aclose()
                return result.uid, got.uid, got.value

        ins_uid, del_uid, value = asyncio.run(scenario())
        assert ins_uid == del_uid
        assert value == "alive"

    def test_oversized_request_frame_gets_error_frame(self):
        from repro.service import QueueService

        async def scenario():
            async with QueueService(
                "skeap", n_nodes=4, seed=0, max_frame=256
            ) as service:
                reader, writer = await asyncio.open_connection(
                    service.host, service.port
                )
                writer.write((1 << 20).to_bytes(HEADER_SIZE, "big"))
                await writer.drain()
                # The server reports the violation before dropping us.
                frame = await read_frame(reader, max_frame=DEFAULT_MAX_FRAME)
                writer.close()
                return frame

        frame = asyncio.run(scenario())
        assert frame["status"] == "error"
        assert "exceeds max_frame" in frame["error"]
